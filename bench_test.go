package easypap

// One benchmark per figure of the paper's evaluation (Section III plus the
// §II-C performance-mode example). Each benchmark runs the corresponding
// workload via internal/figures and reports the figure's headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. DESIGN.md §4 is the index;
// EXPERIMENTS.md records paper-vs-measured values. Set -short to shrink
// the workloads.

import (
	"testing"

	"easypap/internal/core"
	"easypap/internal/figures"
	_ "easypap/internal/kernels"
	"easypap/internal/sched"
)

// benchParams picks quick workloads under -short, paper-sized otherwise.
func benchParams(b *testing.B) figures.Params {
	return figures.Params{Quick: testing.Short(), OutDir: "", Log: nil}
}

// BenchmarkPerfModeMandel is the paper's §II-C example:
// "easypap --kernel mandel --variant omp_tiled --tile-size 16
// --iterations 50 --no-display" -> "50 iterations completed in 579 ms".
func BenchmarkPerfModeMandel(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.PerfMode(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Result.WallTime.Milliseconds()), "ms/50iter")
	}
}

// BenchmarkFig3LoadImbalance measures the per-CPU imbalance of mandel
// under schedule(static), the situation Fig. 3's monitoring windows show.
func BenchmarkFig3LoadImbalance(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Imbalance, "max/mean-load")
		b.ReportMetric(res.Idleness*100, "idle%")
	}
}

// BenchmarkFig4Schedules runs mandel omp_tiled under each of the four
// scheduling policies of Fig. 4 and times one iteration.
func BenchmarkFig4Schedules(b *testing.B) {
	dim := 1024
	if testing.Short() {
		dim = 256
	}
	for _, pol := range []sched.Policy{
		sched.StaticPolicy, sched.DynamicPolicy(2),
		sched.NonmonotonicPolicy, sched.GuidedPolicy,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{
					Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
					TileW: 16, TileH: 16, Iterations: 1, NoDisplay: true,
					Schedule: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6SpeedupSweep regenerates the Fig. 6 speedup study (threads
// x schedules x grain against the sequential reference).
func BenchmarkFig6SpeedupSweep(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestSpeedup, "best-speedup")
	}
}

// BenchmarkFig7GanttTrace records and explores the mandel trace of §II-D.
func BenchmarkFig7GanttTrace(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkFig8DynamicPatterns measures the two tiling patterns of Fig. 8
// under dynamic scheduling of small tiles.
func BenchmarkFig8DynamicPatterns(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CyclicScore, "cyclic-score")
		b.ReportMetric(float64(len(res.LongRunRows)), "longrun-rows")
	}
}

// BenchmarkFig9Heat measures the heat-map observations: mandel's in-set
// vs outside tile cost ratio and blur's border/inner ratio.
func BenchmarkFig9Heat(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MandelMaxOverMin, "mandel-max/min")
		b.ReportMetric(res.BlurRatio, "blur-border/inner")
	}
}

// BenchmarkFig10BlurCompare regenerates the trace comparison of Fig. 10:
// basic vs optimized blur (paper: ~3x overall, ~10x on inner tasks with
// AVX2 auto-vectorization; see DESIGN.md for the substitution).
func BenchmarkFig10BlurCompare(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig10(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WallSpeedup, "wall-speedup")
		b.ReportMetric(res.Compare.MedianTaskRatio, "median-task-ratio")
	}
}

// BenchmarkCoverageLocality regenerates the §III-B coverage-map study:
// how clustered each CPU's tile coverage is under nonmonotonic vs dynamic.
func BenchmarkCoverageLocality(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.CoverageStudy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanLocality["nonmonotonic:dynamic"], "nonmono-locality")
		b.ReportMetric(res.MeanLocality["dynamic,1"], "dynamic-locality")
	}
}

// BenchmarkFig12TaskWave regenerates the cc dependency wavefront of
// Figs. 11/12 and its over-constrained counterpart.
func BenchmarkFig12TaskWave(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig12(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("%d dependency violations", res.Violations)
		}
		b.ReportMetric(float64(res.WaveConcurrency), "wave-concurrency")
		b.ReportMetric(float64(res.SerialConcurrency), "serial-concurrency")
	}
}

// BenchmarkFig13LifeMPI regenerates the MPI+OpenMP lazy Game of Life of
// Fig. 13 (2 processes x 4 threads, planers along the diagonals).
func BenchmarkFig13LifeMPI(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig13(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ComputedFraction*100, "computed-tiles%")
		b.ReportMetric(res.DiagonalHitRate*100, "diag-hit%")
	}
}

// BenchmarkKernelsSeqVsBestParallel times every kernel's sequential and
// best parallel variant on a mid-size image — an ablation-style summary
// table beyond the paper's figures.
func BenchmarkKernelsSeqVsBestParallel(b *testing.B) {
	dim := 512
	if testing.Short() {
		dim = 128
	}
	cases := []struct{ kernel, variant string }{
		{"mandel", "seq"}, {"mandel", "omp_tiled"},
		{"blur", "seq"}, {"blur", "omp_tiled_opt"},
		{"life", "seq"}, {"life", "lazy"}, {"life", "bitpack"},
		{"invert", "seq"}, {"invert", "omp_tiled"},
		{"transpose", "seq"}, {"transpose", "omp_tiled"},
	}
	for _, c := range cases {
		b.Run(c.kernel+"/"+c.variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{
					Kernel: c.kernel, Variant: c.variant, Dim: dim,
					TileW: 16, TileH: 16, Iterations: 2, NoDisplay: true,
					Schedule: sched.NonmonotonicPolicy, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
