module easypap

go 1.22
