module easypap

go 1.23
