package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
)

// TestJobStatusExposesActivity: a lazy job's status carries the frontier
// snapshot (live hook) and the full collapse series in the result.
func TestJobStatusExposesActivity(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	defer m.Close()

	st, err := m.Submit(core.Config{Kernel: "life", Variant: "lazy", Dim: 64,
		TileW: 8, TileH: 8, Iterations: 8, Arg: "diag", Threads: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("job state %s: %s", done.State, done.Error)
	}
	if done.Activity == nil {
		t.Fatal("lazy job status has no activity snapshot")
	}
	total := (64 / 8) * (64 / 8)
	if done.Activity.Total != total {
		t.Errorf("activity total = %d, want %d", done.Activity.Total, total)
	}
	if done.Activity.Active <= 0 || done.Activity.Active > total {
		t.Errorf("activity active = %d out of range (0, %d]", done.Activity.Active, total)
	}
	if r := done.Activity.Ratio; r <= 0 || r > 1 {
		t.Errorf("activity ratio = %f out of range", r)
	}
	if done.Result == nil || len(done.Result.Activity) == 0 {
		t.Fatal("result carries no activity series")
	}
	if done.Result.Activity[0].Active != total {
		t.Errorf("first iteration dispatched %d tiles, want full grid %d",
			done.Result.Activity[0].Active, total)
	}

	// Stats aggregate the dispatched/skipped tiles per kernel.
	stats := m.Stats()
	kt, ok := stats.Kernels["life"]
	if !ok {
		t.Fatal("no life kernel throughput")
	}
	if kt.TilesDispatched <= 0 {
		t.Errorf("TilesDispatched = %d, want > 0", kt.TilesDispatched)
	}
	if kt.TilesSkipped <= 0 {
		t.Errorf("TilesSkipped = %d, want > 0 on the sparse diag dataset", kt.TilesSkipped)
	}

	// An eager job leaves the activity fields empty.
	st2, err := m.Submit(core.Config{Kernel: "life", Variant: "omp_tiled", Dim: 64,
		TileW: 8, TileH: 8, Iterations: 3, Arg: "diag", Threads: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := m.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.Activity != nil {
		t.Errorf("eager job status has activity %+v", done2.Activity)
	}
}

// TestActivityInStatusJSON: the HTTP status body serializes the activity
// snapshot under "activity" with the documented field names.
func TestActivityInStatusJSON(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(core.Config{Kernel: "fire", Variant: "lazy", Dim: 64,
		TileW: 8, TileH: 8, Iterations: 30, Arg: "full", Threads: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Activity *struct {
			Iter   int     `json:"iter"`
			Active int     `json:"active_tiles"`
			Total  int     `json:"total_tiles"`
			Ratio  float64 `json:"ratio"`
		} `json:"activity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Activity == nil {
		t.Fatal("status JSON has no activity object")
	}
	if body.Activity.Total != 64 || body.Activity.Iter == 0 {
		t.Errorf("activity JSON = %+v", body.Activity)
	}
}
