package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/store"
)

// R-way cache replication. The single-box stack already makes results
// durable (internal/serve/store); this layer makes them survive losing
// the box. Three mechanisms share the entry wire format (EZSTORE1, the
// exact on-disk bytes, CRC'd and self-describing):
//
//	push      — write-behind: the manager's spill hook hands every
//	            freshly persisted entry to a queue, and a worker PUTs
//	            it to the R-1 ring successors of its owner. Losing the
//	            queue loses nothing but redundancy (the entry is on
//	            disk locally; the rebalancer will retry it).
//	fetch     — read failover: on a local memory+disk miss the manager
//	            asks the ring replicas for the entry before computing.
//	            A node death therefore costs recomputes only for
//	            entries whose replication had not completed.
//	rebalance — after any ring change, every node walks its entry set
//	            and pushes entries to the replicas that should now hold
//	            them, under a bandwidth budget so a membership change
//	            does not flatten the network. Content addressing makes
//	            the transfer self-verifying: the receiver re-derives
//	            CRC and hash from the bytes and refuses mismatches.

// replTimeout bounds one entry transfer (push or fetch).
const replTimeout = 2 * time.Second

// replTask is one queued replication push; the trace id ties the push
// spans into the originating job's distributed trace. Exactly one of
// e and snap is set — snapshots ride the same queue and wire path as
// entries, just under their own key and magic.
type replTask struct {
	e       *store.Entry
	snap    *store.Snapshot
	traceID string
}

// enqueueReplication is the manager's spill hook: called after an
// entry hits the local disk. Never blocks the spiller — a full queue
// drops the push (counted; the rebalancer heals the gap later).
func (n *Node) enqueueReplication(e *store.Entry, traceID string) {
	select {
	case n.replq <- replTask{e: e, traceID: traceID}:
	default:
		n.replDropped.Add(1)
	}
}

// enqueueSnapReplication is the manager's snapshot hook: checkpoints
// replicate exactly like entries, so a node death costs at most
// SnapshotEvery iterations of recompute on the surviving replicas.
func (n *Node) enqueueSnapReplication(s *store.Snapshot, traceID string) {
	select {
	case n.replq <- replTask{snap: s, traceID: traceID}:
	default:
		n.replDropped.Add(1)
	}
}

func (n *Node) replicateLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case t := <-n.replq:
			if t.snap != nil {
				n.pushSnapshot(t.snap, t.traceID)
			} else {
				n.pushEntry(t.e, t.traceID)
			}
		}
	}
}

// replicaTargets returns the non-self members among the first R ring
// replicas of an entry's key — the peers that should hold a copy.
func (n *Node) replicaTargets(hash string) []*member {
	ring, _ := n.snapshot()
	ids := ring.Replicas(core.HashPoint(hash), n.opts.Replicate)
	var out []*member
	for _, id := range ids {
		if m := n.memberByID(id); m != nil && !m.self {
			out = append(out, m)
		}
	}
	return out
}

// pushEntry sends e to every replica target. Counted per target; a
// push to an unreachable peer is dropped (the rebalancer retries after
// the ring reflects the death). Each push is a replicate span in the
// originating job's trace, naming the receiving peer.
func (n *Node) pushEntry(e *store.Entry, traceID string) {
	var buf bytes.Buffer
	if err := store.EncodeEntry(&buf, e); err != nil {
		n.replDropped.Add(1)
		return
	}
	n.pushWire(e.Hash, buf.Bytes(), traceID)
}

// pushSnapshot replicates a checkpoint under its snapshot key. The ring
// routes by the full key, so successive snapshots of one prefix spread
// like any other content — what matters is only that R nodes hold each.
func (n *Node) pushSnapshot(s *store.Snapshot, traceID string) {
	var buf bytes.Buffer
	if err := store.EncodeSnapshot(&buf, s); err != nil {
		n.replDropped.Add(1)
		return
	}
	n.pushWire(store.SnapshotKey(s.PrefixHash, s.Iter), buf.Bytes(), traceID)
}

// pushWire sends one encoded record (entry or snapshot — the magic line
// tells the receiver) to every replica target of its storage key.
// Counted per target; a push to an unreachable peer is dropped (the
// rebalancer retries after the ring reflects the death). Each push is a
// replicate span in the originating job's trace, naming the receiver.
func (n *Node) pushWire(key string, body []byte, traceID string) {
	for _, m := range n.replicaTargets(key) {
		begin := time.Now()
		ok := n.putRemoteEntry(m, key, body, traceID)
		var spanErr error
		if ok {
			n.replPushed.Add(1)
		} else {
			n.replDropped.Add(1)
			spanErr = fmt.Errorf("push to %s failed", m.id)
		}
		n.observeSpan(n.replicateHist, traceID, serve.StageReplicate, m.id, begin, time.Now(), spanErr)
	}
}

// putRemoteEntry PUTs one encoded entry to a peer. The receiver
// decodes, CRC-checks, and re-derives the content hash before
// admitting it (handler.go), so a corrupt transfer cannot poison a
// remote cache.
func (n *Node) putRemoteEntry(m *member, hash string, body []byte, traceID string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), replTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, m.url+"/v1/cluster/entries/"+hash, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if traceID != "" {
		req.Header.Set(serve.TraceHeader, traceID)
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent
}

// fetchEntry is the manager's remote entry source: on a local miss it
// walks the entry's replica chain and returns the first copy that
// decodes (CRC + hash verified by store.DecodeEntry plus an explicit
// key check). Returns nil when no replica has it — the manager then
// computes, which is the correct fallback, so errors here are silent.
func (n *Node) fetchEntry(hash, traceID string) *store.Entry {
	for _, m := range n.replicaTargets(hash) {
		if m.state.Load() == stateDead {
			continue
		}
		begin := time.Now()
		e := n.getRemoteEntry(m, hash, traceID)
		var spanErr error
		if e == nil {
			spanErr = fmt.Errorf("no entry on %s", m.id)
		} else if e.Hash != hash {
			spanErr = fmt.Errorf("entry from %s does not match key", m.id)
			e = nil // content does not match the key it was fetched by
		}
		// Per-peer attempt spans (no histogram: serve times the whole
		// entry-source call as replica_fetch) name which replica answered
		// — the failover chain is visible in the trace.
		n.observeSpan(nil, traceID, serve.StageReplicaFetch, m.id, begin, time.Now(), spanErr)
		if e != nil {
			n.replFetched.Add(1)
			return e
		}
	}
	return nil
}

func (n *Node) getRemoteEntry(m *member, hash, traceID string) *store.Entry {
	ctx, cancel := context.WithTimeout(context.Background(), replTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/cluster/entries/"+hash, nil)
	if err != nil {
		return nil
	}
	if traceID != "" {
		req.Header.Set(serve.TraceHeader, traceID)
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	e, err := store.DecodeEntry(resp.Body)
	if err != nil {
		return nil
	}
	return e
}

// remoteHashes lists a peer's entry set (GET /v1/cluster/entries).
func (n *Node) remoteHashes(m *member) (map[string]bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), replTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/cluster/entries", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s entries list returned %s", m.url, resp.Status)
	}
	var body EntryList
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&body); err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(body.Hashes))
	for _, h := range body.Hashes {
		set[h] = true
	}
	return set, nil
}

// EntryList is the GET /v1/cluster/entries body.
type EntryList struct {
	Node   string   `json:"node"`
	Hashes []string `json:"hashes"`
}

// --- rebalancer -------------------------------------------------------

// rebalanceLoop waits for ring changes (rebuildRingLocked kicks it),
// debounces briefly so a burst of membership churn triggers one pass,
// then re-replicates the local entry set against the new ring.
func (n *Node) rebalanceLoop() {
	defer n.wg.Done()
	debounce := 4 * n.opts.ProbeInterval
	if debounce > 2*time.Second {
		debounce = 2 * time.Second
	}
	for {
		select {
		case <-n.stop:
			return
		case <-n.rebalanceKick:
		}
		// Let the membership settle: a node death usually also reorders
		// suspicion on others, and two kicks in one debounce window
		// should cost one pass, not two.
		timer := time.NewTimer(debounce)
	settle:
		for {
			select {
			case <-n.stop:
				timer.Stop()
				return
			case <-n.rebalanceKick:
				// fresh churn: restart the settle window
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(debounce)
			case <-timer.C:
				break settle
			}
		}
		n.rebalance()
	}
}

// rebalance pushes every local entry to the replicas the current ring
// says should hold it and do not yet. Transfers are throttled to
// RebalanceBPS. The pass is cooperative — every node runs it over its
// own entries — and idempotent: pushing an entry a peer already has is
// avoided by consulting its hash list first, and harmless otherwise
// (content addressing makes duplicate PUTs a no-op overwrite of
// identical bytes).
func (n *Node) rebalance() {
	hashes := n.mgr.EntryHashes()
	if len(hashes) == 0 {
		return
	}
	// One hash-list fetch per distinct target for the whole pass.
	remote := make(map[string]map[string]bool)
	missing := func(m *member, hash string) bool {
		set, ok := remote[m.id]
		if !ok {
			var err error
			set, err = n.remoteHashes(m)
			if err != nil {
				set = nil // unknown: push anyway, receiver dedups by overwrite
			}
			remote[m.id] = set
		}
		return set == nil || !set[hash]
	}
	start := time.Now()
	var moved int64
	for _, hash := range hashes {
		select {
		case <-n.stop:
			return
		default:
		}
		// The wire getter is kind-agnostic: entry and snapshot keys both
		// come out as self-describing CRC'd records, so checkpoints heal
		// to their new replicas exactly like results.
		body, ok := n.mgr.GetEntryWire(hash)
		if !ok {
			continue // evicted since listing
		}
		for _, m := range n.replicaTargets(hash) {
			if m.state.Load() == stateDead || !missing(m, hash) {
				continue
			}
			if n.putRemoteEntry(m, hash, body, "") {
				n.rebalanced.Add(1)
				n.rebalBytes.Add(int64(len(body)))
				moved += int64(len(body))
				if set := remote[m.id]; set != nil {
					set[hash] = true
				}
				// Bandwidth budget: sleep long enough that cumulative
				// bytes/elapsed stays under RebalanceBPS.
				if n.opts.RebalanceBPS > 0 {
					ahead := time.Duration(moved)*time.Second/time.Duration(n.opts.RebalanceBPS) - time.Since(start)
					if ahead > 0 {
						select {
						case <-n.stop:
							return
						case <-time.After(ahead):
						}
					}
				}
			}
		}
	}
}
