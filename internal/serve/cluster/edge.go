package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"

	"easypap/internal/gfx"
	"easypap/internal/serve"
)

// Edge fan-out: any node can serve a job's frame stream, but a non-owner
// opens at most ONE upstream connection per (job, format) regardless of
// how many local viewers attach. The upstream records are re-published
// into a local serve.FrameHub, and every local subscriber reads from
// that hub with the usual independent-cursor/drop-to-keyframe semantics.
// 100k watchers on 100 nodes cost the owner 100 streams, not 100k.
//
// Lifecycle: the first viewer creates the edge stream and dials the
// owner; later viewers share it (refcounted). When the last viewer
// detaches the upstream is canceled and the entry dropped. When the
// upstream ends first (job finished), the hub closes and viewers drain
// the retained ring to a clean EOF; the entry stays until the viewers
// release it, so a burst of watchers on a just-finished job still shares
// one upstream fetch.

// edgeStream is one deduplicated upstream frame stream.
type edgeStream struct {
	key    string // jobID + "|" + format
	hub    *serve.FrameHub
	cancel context.CancelFunc
	ready  chan struct{} // closed once the upstream answered (or failed)
	err    error         // set before ready closes when the dial failed
	refs   int           // guarded by n.edgeMu
}

// edgeUpstreamError relays an upstream non-200 answer (404 unknown job,
// 409 no frames, ...) to edge viewers verbatim.
type edgeUpstreamError struct {
	Status int
	Body   []byte
}

func (e *edgeUpstreamError) Error() string {
	return fmt.Sprintf("cluster: upstream frames fetch returned %d: %s", e.Status, e.Body)
}

// acquireEdge returns the node's edge stream for (fullID, format),
// creating and dialing it when this is the first viewer. It blocks until
// the upstream answered or ctx (the viewer's request context) is done.
// The caller must releaseEdge exactly once.
func (n *Node) acquireEdge(ctx context.Context, m *member, fullID string, format gfx.StreamFormat) (*edgeStream, error) {
	key := fullID + "|" + string(format)
	n.edgeMu.Lock()
	if n.edgeClosed {
		n.edgeMu.Unlock()
		return nil, fmt.Errorf("cluster: node closed")
	}
	es, ok := n.edges[key]
	if ok {
		es.refs++
		n.edgeMu.Unlock()
	} else {
		upCtx, cancel := context.WithCancel(context.Background())
		es = &edgeStream{
			key:    key,
			hub:    serve.NewFrameHub(serve.HubOptions{Stats: &n.edgeStats}),
			cancel: cancel,
			ready:  make(chan struct{}),
			refs:   1,
		}
		n.edges[key] = es
		n.edgeMu.Unlock()
		n.wg.Add(1)
		go n.pumpEdge(upCtx, es, m, fullID, format)
	}
	select {
	case <-es.ready:
	case <-ctx.Done():
		n.releaseEdge(es)
		return nil, ctx.Err()
	}
	if es.err != nil {
		err := es.err
		n.releaseEdge(es)
		return nil, err
	}
	return es, nil
}

// releaseEdge drops one viewer reference; the last reference cancels the
// upstream and removes the entry.
func (n *Node) releaseEdge(es *edgeStream) {
	n.edgeMu.Lock()
	es.refs--
	if es.refs <= 0 {
		delete(n.edges, es.key)
		es.cancel()
	}
	n.edgeMu.Unlock()
}

// closeEdges cancels every upstream stream (Node.Close). Viewers see the
// hubs close and drain out.
func (n *Node) closeEdges() {
	n.edgeMu.Lock()
	n.edgeClosed = true
	for _, es := range n.edges {
		es.cancel()
	}
	n.edgeMu.Unlock()
}

// pumpEdge dials the owner once and re-publishes every upstream record
// into the edge hub. Exactly one pump runs per edge stream.
func (n *Node) pumpEdge(ctx context.Context, es *edgeStream, m *member, fullID string, format gfx.StreamFormat) {
	defer n.wg.Done()
	defer es.hub.Close()
	url := m.url + "/v1/jobs/" + fullID + "/frames"
	if format == gfx.FormatDelta {
		url += "?format=" + string(gfx.FormatDelta)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		es.err = err
		close(es.ready)
		return
	}
	req.Header.Set(HopHeader, n.id)
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		n.markDown(m)
		es.err = fmt.Errorf("cluster: node %s (%s) unreachable: %w", m.id, m.url, err)
		close(es.ready)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		es.err = &edgeUpstreamError{Status: resp.StatusCode, Body: body}
		close(es.ready)
		return
	}
	n.markUp(m)
	n.edgeUpstreams.Add(1)
	close(es.ready)

	br := bufio.NewReader(resp.Body)
	for {
		rec, err := gfx.ReadRecord(br)
		if err != nil {
			// io.EOF: the owner ended the stream (job finished) — the hub
			// close in the defer turns it into a clean viewer EOF. Anything
			// else truncates; viewers see the stream end early, and a fresh
			// viewer triggers a fresh upstream fetch.
			return
		}
		// Re-publish the raw wire bytes. Full records are keyframes; delta
		// records only exist on delta-format streams, where no full-format
		// subscriber ever attaches to this hub.
		var full, delta []byte
		enc := rec.Encode()
		if rec.Kind == gfx.RecordFull {
			full = enc
		} else {
			delta = enc
		}
		if es.hub.Publish(rec.Window, rec.Kind == gfx.RecordFull, full, delta) != nil {
			return
		}
	}
}
