package cluster_test

// Chaos coverage: a node dies mid-sweep. The sweep must still complete
// with correct results — the multi-endpoint client skips the dead
// endpoint and the surviving daemons re-route the dead node's ring arc
// to the next replica — and the survivors' /v1/stats must report the
// peer unhealthy.

import (
	"context"
	"sync"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/expt"
	_ "easypap/internal/kernels"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
)

// killOnFirstWrite is an expt.Sweep Progress writer that runs f once,
// on the first completed run — "mid-sweep" made deterministic.
type killOnFirstWrite struct {
	once sync.Once
	f    func()
}

func (k *killOnFirstWrite) Write(p []byte) (int, error) {
	k.once.Do(k.f)
	return len(p), nil
}

func TestClusterFailoverMidSweep(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2, QueueDepth: 32})
	ctx := context.Background()

	// Kill the node that owns the sweep's *last* combination, so work
	// that belongs to the dead node is still ahead when it dies and the
	// replica-retry path must carry it.
	grains := []int{8, 16, 32}
	victim := tc.ownerIndex(core.Config{Kernel: "mandel", Variant: "seq", Dim: 64,
		TileW: grains[len(grains)-1], Iterations: 2, Threads: 1}, false)

	multi := client.NewMulti(tc.urls...)
	if err := multi.RefreshRing(ctx); err != nil {
		t.Fatal(err)
	}
	sweep := &expt.Sweep{
		Base: core.Config{Kernel: "mandel", Variant: "seq", Dim: 64,
			Iterations: 2, Threads: 1},
		Grains:   grains,
		Runs:     2,
		Remote:   multi,
		Progress: &killOnFirstWrite{f: func() { tc.kill(victim) }},
	}
	results, err := sweep.Execute()
	if err != nil {
		t.Fatalf("sweep did not survive the node kill: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for i, r := range results {
		if r.Iterations != 2 {
			t.Errorf("result %d: %d iterations, want 2", i, r.Iterations)
		}
		if r.WallTime <= 0 {
			t.Errorf("result %d: wall time %v", i, r.WallTime)
		}
	}

	// The dead node's combination ran somewhere that is still alive:
	// every computed job is accounted for by a surviving manager.
	victimID := cluster.NodeID(tc.urls[victim])
	var survivorJobs int64
	for i, mgr := range tc.mgrs {
		if i == victim {
			continue
		}
		survivorJobs += mgr.Stats().Kernels["mandel"].Jobs
	}
	if survivorJobs < 1 {
		t.Error("no surviving node computed anything")
	}

	// Survivors report the dead peer unhealthy (passive marking on the
	// failed proxy, or the next probe tick — give it a probe interval).
	deadline := time.Now().Add(5 * time.Second)
	for {
		unhealthySeen := true
		for i, node := range tc.nodes {
			if i == victim {
				continue
			}
			found := false
			for _, m := range node.Stats().Cluster.Members {
				if m.ID == victimID && !m.Healthy {
					found = true
				}
			}
			if !found {
				unhealthySeen = false
			}
		}
		if unhealthySeen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never marked the dead peer unhealthy in /v1/stats")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The aggregated view agrees: 2 of 3 healthy, the dead member
	// carries an error instead of stats.
	agg, err := multi.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Nodes != 3 || agg.Healthy != 2 {
		t.Errorf("aggregate %d/%d healthy, want 2/3", agg.Healthy, agg.Nodes)
	}
	for _, m := range agg.Members {
		if m.ID == victimID {
			if m.Error == "" || m.Stats != nil {
				t.Errorf("dead member reported as reachable: %+v", m)
			}
		}
	}
	// All 6 sweep results exist, but only 3 unique combinations were
	// ever computed cluster-wide... unless the kill landed between a
	// combination's first run and its repeat, in which case the repeat
	// recomputes on the failover replica. Either way: computed + cache
	// hits == 6 across the survivors and the victim.
	var computed, hits int64
	for i, mgr := range tc.mgrs {
		if i == victim {
			continue
		}
		s := mgr.Stats()
		computed += s.Kernels["mandel"].Jobs
		hits += s.CacheHits
	}
	if computed+hits < 4 { // victim handled at most its own arc before dying
		t.Errorf("survivors computed %d + %d cached, implausibly low", computed, hits)
	}
}

// TestClusterFailoverOnDirectSubmit: with the owner already dead, a
// submission through a surviving node must be served by a replica (the
// daemon-side failover, no client cooperation involved).
func TestClusterFailoverOnDirectSubmit(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 1, QueueDepth: 16})
	ctx := context.Background()

	cfg := mandelCfg(4, 8)
	victim := tc.ownerIndex(cfg, false)
	tc.kill(victim)

	submitter := (victim + 1) % 3
	cl := client.New(tc.urls[submitter])
	st, err := cl.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatalf("submission with dead owner failed: %v", err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != serve.JobDone || st.Result == nil || st.Result.Iterations != 4 {
		t.Fatalf("failover job ended %s: %+v", st.State, st.Result)
	}
	node, _, _ := cluster.SplitJobID(st.ID)
	if node == cluster.NodeID(tc.urls[victim]) {
		t.Fatal("job id claims the dead node ran it")
	}

	// The dead owner was detected: either the submission hit it first
	// and recorded a failover, or the prober demoted it before the
	// submission arrived (a 50ms race this test must not depend on).
	var failovers int64
	victimUnhealthy := false
	for i, n := range tc.nodes {
		if i == victim {
			continue
		}
		failovers += n.Stats().Cluster.Failovers
		for _, m := range n.Stats().Cluster.Members {
			if m.ID == cluster.NodeID(tc.urls[victim]) && !m.Healthy {
				victimUnhealthy = true
			}
		}
	}
	if failovers < 1 && !victimUnhealthy {
		t.Errorf("dead owner neither failed over past nor marked unhealthy")
	}
}
