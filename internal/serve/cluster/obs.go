package cluster

// Cluster observability: the routing layer's metrics (registered into
// the local Manager's registry, so one GET /metrics scrape covers both
// tiers) and the merged distributed trace behind GET /v1/trace/{job}.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"easypap/internal/metrics"
	"easypap/internal/serve"
	"easypap/internal/trace"
)

// registerObs wires the routing layer into the manager's registry and
// names this node for span recording. Called once from NewNode, before
// the node serves traffic.
func (n *Node) registerObs() {
	n.mgr.SetNodeName(n.id)
	reg := n.mgr.Metrics()

	n.proxyHist = serve.StageHistogram(reg, serve.StageProxy)
	n.replicateHist = serve.StageHistogram(reg, serve.StageReplicate)
	n.gossipHist = serve.StageHistogram(reg, serve.StageGossip)

	ctr := func(name, help string, v interface{ Load() int64 }) {
		reg.CounterFunc(name, help, nil, func() uint64 { return uint64(v.Load()) })
	}
	ctr("easypapd_cluster_jobs_owned_total", "Cluster submissions served by the local manager.", &n.jobsOwned)
	ctr("easypapd_cluster_jobs_proxied_total", "Submissions forwarded to their owning peer.", &n.jobsProxied)
	ctr("easypapd_cluster_status_proxied_total", "Status/cancel/frames calls forwarded by id prefix.", &n.statusProxied)
	ctr("easypapd_cluster_failovers_total", "Submissions re-routed past an unreachable replica.", &n.failovers)
	ctr("easypapd_replica_pushed_total", "Entries pushed to ring successors.", &n.replPushed)
	ctr("easypapd_replica_dropped_total", "Replication pushes dropped (queue full or unreachable).", &n.replDropped)
	ctr("easypapd_replica_fetched_total", "Entries fetched from a replica on local miss.", &n.replFetched)
	ctr("easypapd_rebalanced_total", "Entries migrated by the rebalancer.", &n.rebalanced)
	ctr("easypapd_rebalance_bytes_total", "Bytes moved by the rebalancer.", &n.rebalBytes)

	// Edge frame fan-out: dedup'd upstream fetches plus the local edge
	// hubs' subscriber/drop counters (the manager's own hubs report under
	// easypapd_frame_*; these series are the proxy layer's).
	ctr("easypapd_edge_upstream_streams_total", "Upstream frame streams opened by the edge fan-out (one per job/format, not per viewer).", &n.edgeUpstreams)
	ctr("easypapd_edge_dropped_keyframe_total", "Edge-hub slow-subscriber catch-ups that skipped ahead to a keyframe.", &n.edgeStats.DroppedToKey)
	reg.GaugeFunc("easypapd_edge_subscribers", "Viewers currently attached to local edge frame hubs.", nil,
		func() float64 { return float64(n.edgeStats.Subscribers.Load()) })

	reg.GaugeFunc("easypapd_ring_version", "Ring swap counter (the convergence clock).", nil,
		func() float64 { return float64(n.ringVersion.Load()) })
	reg.GaugeFunc("easypapd_ring_nodes", "Members on the ring (non-dead).", nil, func() float64 {
		ring, _ := n.snapshot()
		return float64(ring.Len())
	})
	for _, st := range []int32{stateAlive, stateSuspect, stateDead} {
		st := st
		reg.GaugeFunc("easypapd_cluster_members", "Known members by state.",
			metrics.Labels{"state": stateName(st)}, func() float64 {
				_, ms := n.snapshot()
				var c int
				for _, m := range ms {
					if m.self {
						if st == stateAlive {
							c++
						}
						continue
					}
					if m.state.Load() == st {
						c++
					}
				}
				return float64(c)
			})
	}
	reg.GaugeFunc("easypapd_replication_lag", "Entries waiting in the replication push queue.", nil,
		func() float64 { return float64(len(n.replq)) })
}

// observeSpan records a stage span (and its histogram) on the local
// manager's ring. Trace-less operations (gossip, rebalancing) pass
// traceID "" and only feed the histogram.
func (n *Node) observeSpan(h *metrics.Histogram, traceID, stage, peer string, start, end time.Time, err error) {
	if h != nil {
		h.Observe(end.Sub(start).Nanoseconds())
	}
	if traceID == "" {
		return
	}
	s := trace.Span{
		TraceID: traceID, Node: n.id, Stage: stage, Peer: peer,
		Start: start.UnixNano(), End: end.UnixNano(),
	}
	if err != nil {
		s.Err = err.Error()
	}
	n.mgr.RecordSpan(s)
}

// --- merged distributed trace ----------------------------------------

// TraceJob resolves a cluster job id to its merged span tree: the trace
// id comes from the job's record (locally, or from the owning node named
// by the id prefix), then every non-dead member is asked for its spans
// for that id and the union is nested into one TraceDoc.
func (n *Node) TraceJob(ctx context.Context, id string) (*serve.TraceDoc, error) {
	node, local, prefixed := SplitJobID(id)
	var traceID string
	if !prefixed || node == n.id {
		traceID = n.mgr.TraceIDOf(local)
	} else if m := n.memberByID(node); m != nil {
		traceID = n.remoteTraceID(ctx, m, id)
	}
	if traceID == "" {
		return nil, serve.ErrUnknownJob
	}
	spans := n.mgr.SpansForTrace(traceID)
	_, ms := n.snapshot()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range ms {
		if m.self || m.state.Load() == stateDead {
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			remote := n.remoteSpans(ctx, m, traceID)
			mu.Lock()
			spans = append(spans, remote...)
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	return serve.BuildTraceDoc(traceID, id, dedupeSpans(spans)), nil
}

// remoteTraceID asks the node that owns a job id for its trace id, via
// the owner's local-scope trace endpoint.
func (n *Node) remoteTraceID(ctx context.Context, m *member, id string) string {
	ctx, cancel := context.WithTimeout(ctx, replTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/trace/"+id+"?scope=local", nil)
	if err != nil {
		return ""
	}
	req.Header.Set(HopHeader, n.id)
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	var doc serve.TraceDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&doc); err != nil {
		return ""
	}
	return doc.TraceID
}

// remoteSpans fetches one member's flat spans for a trace id.
// Best-effort: an unreachable member contributes nothing (its spans are
// gone with it, which is exactly what the tree should show).
func (n *Node) remoteSpans(ctx context.Context, m *member, traceID string) []trace.Span {
	ctx, cancel := context.WithTimeout(ctx, replTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/cluster/spans/"+traceID, nil)
	if err != nil {
		return nil
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var spans []trace.Span
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&spans); err != nil {
		return nil
	}
	return spans
}

// dedupeSpans drops exact duplicates (a span can arrive twice when the
// local ring and a remote fetch overlap).
func dedupeSpans(spans []trace.Span) []trace.Span {
	type key struct {
		node, job, stage, peer string
		start, end             int64
	}
	seen := make(map[key]bool, len(spans))
	out := spans[:0:0]
	for _, s := range spans {
		k := key{s.Node, s.Job, s.Stage, s.Peer, s.Start, s.End}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// handleTrace serves GET /v1/trace/{id}. scope=local (or an incoming
// hop header) answers from the local ring only — the recursion floor of
// the merged query; anything else merges cluster-wide.
func (n *Node) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("scope") == "local" || r.Header.Get(HopHeader) != "" {
		_, local, prefixed := SplitJobID(id)
		if !prefixed {
			local = id
		}
		doc, err := n.mgr.Trace(local)
		if err != nil {
			serve.WriteError(w, serve.JobStatusCode(err), err)
			return
		}
		doc.Job = id
		serve.WriteJSON(w, http.StatusOK, doc)
		return
	}
	doc, err := n.TraceJob(r.Context(), id)
	if err != nil {
		serve.WriteError(w, serve.JobStatusCode(err), err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, doc)
}

// handleSpans serves GET /v1/cluster/spans/{trace}: this node's flat
// spans for a trace id (always an array, possibly empty).
func (n *Node) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := n.mgr.SpansForTrace(r.PathValue("trace"))
	if spans == nil {
		spans = []trace.Span{}
	}
	serve.WriteJSON(w, http.StatusOK, spans)
}
