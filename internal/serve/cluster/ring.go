package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over node ids. Each node owns a set of
// virtual points on the uint64 circle; a job's routing key
// (core.HashPoint of its canonical config hash) is owned by the first
// point clockwise from it. Identical configs therefore always map to the
// same node — the one whose result cache already holds them — and adding
// or removing one node only remaps the arcs adjacent to its points
// instead of reshuffling the whole key space (the property a modulo
// assignment lacks).
//
// A Ring is immutable after NewRing; membership changes build a new one.
type Ring struct {
	points []ringPoint
	nodes  []string // distinct node ids, sorted
}

type ringPoint struct {
	pos  uint64
	node string
}

// DefaultVirtualNodes is how many points each node projects onto the
// ring when the caller does not choose: enough that ownership shares
// stay within a few percent of uniform for small clusters, small enough
// that building and searching the ring stays trivial.
const DefaultVirtualNodes = 64

// NewRing builds a ring over the given node ids with vnodes virtual
// points per node (DefaultVirtualNodes when <= 0). Duplicate ids are
// collapsed. An empty ring is valid: Owner and Replicas return nothing.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: pointFor(n, v), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node // deterministic tie-break
	})
	return r
}

// pointFor hashes a node's v-th virtual point onto the circle.
func pointFor(node string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the distinct node ids on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key — the first point at or clockwise
// from it — or "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= key })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.points[i].node
}

// Replicas returns up to max distinct nodes in ring order starting at
// key's owner — the failover chain: if the owner is down, the job
// belongs to the next node clockwise, and so on. max <= 0 means all.
func (r *Ring) Replicas(key uint64, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= key })
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Shares returns the fraction of the key space each node owns — the
// ownership figure /v1/stats surfaces, and the load-balance check the
// harness test asserts stays within sanity bounds.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return shares
	}
	const whole = float64(1 << 63) * 2 // 2^64 as float64
	for i, p := range r.points {
		// The arc (previous point, p] belongs to p's node.
		var arc uint64
		if i == 0 {
			arc = p.pos - r.points[len(r.points)-1].pos // wraps mod 2^64
		} else {
			arc = p.pos - r.points[i-1].pos
		}
		shares[p.node] += float64(arc) / whole
	}
	return shares
}
