package cluster_test

// Routing-overhead benchmarks behind BENCH_cluster.json: what one proxy
// hop costs a submission, and what a cluster-wide cache hit costs when
// it is served by the owner directly vs. through a non-owner node. All
// nodes are in-process (httptest), so the numbers isolate the software
// overhead — HTTP round-trip, routing decision, hop — from network
// latency.

import (
	"context"
	"testing"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
)

// benchTinyCfg is the near-free job (one scrollup iteration, 32x32) so
// the measured time is serving + routing overhead, not compute.
func benchTinyCfg(seed int64) core.Config {
	return core.Config{
		Kernel: "scrollup", Variant: "seq", Dim: 32, TileW: 16,
		Iterations: 1, Threads: 1, Seed: seed,
	}
}

// seedsOwnedBy collects n seeds whose tiny-job config routes to the
// given node (varying the seed varies the hash, so ownership hops
// around the ring; the benchmarks need it pinned).
func seedsOwnedBy(b *testing.B, tc *testCluster, nodeIdx int, n int) []int64 {
	b.Helper()
	ids := make([]string, len(tc.urls))
	for i, u := range tc.urls {
		ids[i] = cluster.NodeID(u)
	}
	ring := cluster.NewRing(ids, 0)
	want := ids[nodeIdx]
	seeds := make([]int64, 0, n)
	for s := int64(1); len(seeds) < n; s++ {
		_, _, key, err := cluster.RouteKey(benchTinyCfg(s), false)
		if err != nil {
			b.Fatal(err)
		}
		if ring.Owner(key) == want {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// benchSubmit drives b.N tiny jobs through the HTTP endpoint at
// submitIdx, each owned by ownerIdx, waiting in-process on the owner's
// manager (no poll latency in the measurement).
func benchSubmit(b *testing.B, nodes int, submitIdx, ownerIdx int) {
	tc := startCluster(b, nodes, serve.Options{Workers: 1, QueueDepth: 1 << 16, CacheCapacity: 1})
	seeds := seedsOwnedBy(b, tc, ownerIdx, b.N)
	cl := client.New(tc.urls[submitIdx])
	ctx := context.Background()
	ownerMgr := tc.mgrs[ownerIdx]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := cl.Submit(ctx, benchTinyCfg(seeds[i]), false)
		if err != nil {
			b.Fatal(err)
		}
		_, local, _ := cluster.SplitJobID(st.ID)
		if st, err = ownerMgr.Wait(ctx, local); err != nil || st.State != serve.JobDone {
			b.Fatalf("job ended %v: %v", st, err)
		}
	}
}

// BenchmarkClusterSubmit1Node: the single-node floor — one cluster node,
// submissions land on it directly (ring of one).
func BenchmarkClusterSubmit1Node(b *testing.B) { benchSubmit(b, 1, 0, 0) }

// BenchmarkClusterSubmit3NodeOwner: 3-node ring, submissions sent
// straight to their owner — the hash-aware client's path, no hop.
func BenchmarkClusterSubmit3NodeOwner(b *testing.B) { benchSubmit(b, 3, 0, 0) }

// BenchmarkClusterSubmit3NodeProxied: 3-node ring, submissions sent to
// a non-owner — one proxy hop to the owner. The delta against the
// Owner variant is the routing overhead per proxied job.
func BenchmarkClusterSubmit3NodeProxied(b *testing.B) { benchSubmit(b, 3, 1, 0) }

// benchCacheHit measures resubmission latency of an already-cached
// config through the HTTP endpoint at submitIdx.
func benchCacheHit(b *testing.B, nodes int, viaOwner bool) {
	tc := startCluster(b, nodes, serve.Options{Workers: 1, QueueDepth: 64})
	cfg := benchTinyCfg(12345)
	owner := tc.ownerIndex(cfg, false)
	submitIdx := owner
	if !viaOwner {
		submitIdx = (owner + 1) % nodes
	}
	ctx := context.Background()
	warm := client.New(tc.urls[owner])
	st, err := warm.Submit(ctx, cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	_, local, _ := cluster.SplitJobID(st.ID)
	if _, err := tc.mgrs[owner].Wait(ctx, local); err != nil {
		b.Fatal(err)
	}
	cl := client.New(tc.urls[submitIdx])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := cl.Submit(ctx, cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Cached {
			b.Fatal("expected a cluster cache hit")
		}
	}
}

// BenchmarkClusterCacheHit1Node: cache-hit floor on a ring of one.
func BenchmarkClusterCacheHit1Node(b *testing.B) { benchCacheHit(b, 1, true) }

// BenchmarkClusterCacheHitOwner: 3-node ring, resubmission through the
// owning node — local cache, no hop.
func BenchmarkClusterCacheHitOwner(b *testing.B) { benchCacheHit(b, 3, true) }

// BenchmarkClusterCacheHitProxied: 3-node ring, resubmission through a
// non-owner — the cluster-wide cache-hit latency any node can offer.
func BenchmarkClusterCacheHitProxied(b *testing.B) { benchCacheHit(b, 3, false) }
