package cluster_test

// Gossip membership edge cases: join propagation without a fleet
// restart, suspect-then-recover without a ring swap (the anti-flap
// property), dead-then-rejoin through incarnation refutation, and
// replication/rebalance plumbing over the entries endpoints.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/chaosnet"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
	"easypap/internal/serve/store"
)

// TestGossipJoinReachesEveryMember pins the elasticity acceptance
// criterion: a node started with a single --join seed appears in EVERY
// member's view — including members the joiner never contacted — and
// every ring reaches the same size, without restarting anything.
func TestGossipJoinReachesEveryMember(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 1, QueueDepth: 8})

	swap := &swapHandler{}
	srv := httptest.NewServer(swap)
	defer srv.Close()
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8})
	defer mgr.Close()
	joiner, err := cluster.NewNode(mgr, cluster.Options{
		Self:          srv.URL,
		Peers:         tc.urls[:1], // --join=<any live peer>
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	swap.set(joiner.Handler())

	all := append([]*cluster.Node{joiner}, tc.nodes...)
	waitFor(t, "join to reach every member", func() bool {
		for _, n := range all {
			mem := n.Membership()
			if len(mem.Members) != 4 {
				return false
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					return false
				}
			}
			if n.Stats().Cluster.RingNodes != 4 {
				return false
			}
		}
		return true
	})
}

// gossipPair is a 2-node cluster with one chaosnet transport per node,
// so the pair can be symmetrically partitioned: neither side can reach
// the other, which is what makes suspicion mature — a node whose
// inbound alone is broken keeps refuting rumors through its outbound
// path (that is SWIM working as designed, not a dead peer).
type gossipPair struct {
	urls  [2]string
	hosts [2]string
	swaps [2]*swapHandler
	mgrs  [2]*serve.Manager
	nodes [2]*cluster.Node
	chaos [2]*chaosnet.Transport
}

func startGossipPair(t *testing.T, suspectTimeout time.Duration) *gossipPair {
	t.Helper()
	p := &gossipPair{}
	srvs := [2]*httptest.Server{}
	for i := 0; i < 2; i++ {
		p.swaps[i] = &swapHandler{}
		srvs[i] = httptest.NewServer(p.swaps[i])
		p.urls[i] = srvs[i].URL
		p.hosts[i] = hostOf(p.urls[i])
		p.chaos[i] = chaosnet.New(uint64(i)+11, nil)
	}
	for i := 0; i < 2; i++ {
		p.mgrs[i] = serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8})
		node, err := cluster.NewNode(p.mgrs[i], cluster.Options{
			Self:           p.urls[i],
			Peers:          p.urls[:],
			ProbeInterval:  20 * time.Millisecond,
			ProbeTimeout:   300 * time.Millisecond,
			SuspectTimeout: suspectTimeout,
			HTTP:           &http.Client{Transport: p.chaos[i]},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.nodes[i] = node
		p.swaps[i].set(node.Handler())
	}
	t.Cleanup(func() {
		for i := 1; i >= 0; i-- {
			srvs[i].Close()
			p.nodes[i].Close()
			p.mgrs[i].Close()
		}
	})
	waitFor(t, "2-node cluster alive", func() bool {
		for _, n := range p.nodes {
			mem := n.Membership()
			if len(mem.Members) != 2 {
				return false
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					return false
				}
			}
		}
		return true
	})
	return p
}

// partition cuts both directions between the pair; heal restores them.
func (p *gossipPair) partition() {
	p.chaos[0].Kill(p.hosts[1])
	p.chaos[1].Kill(p.hosts[0])
}

func (p *gossipPair) heal() {
	p.chaos[0].Revive(p.hosts[1])
	p.chaos[1].Revive(p.hosts[0])
}

// stateOf returns node's view of peer id.
func stateOf(n *cluster.Node, id string) (state string, incarnation uint64) {
	for _, m := range n.Membership().Members {
		if m.ID == id {
			return m.State, m.Incarnation
		}
	}
	return "", 0
}

// TestSuspectRecoverNoRingSwap is the prober edge case the satellite
// demands: a peer that misses probes long enough to go suspect but
// recovers before SuspectTimeout must come back alive WITHOUT the ring
// ever swapping — one flap, zero key movement.
func TestSuspectRecoverNoRingSwap(t *testing.T) {
	p := startGossipPair(t, 5*time.Second) // generous: suspicion never matures
	n0, n1 := p.nodes[0], p.nodes[1]
	v0 := n0.RingVersion()

	p.partition()
	waitFor(t, "node 1 suspect on node 0", func() bool {
		st, _ := stateOf(n0, n1.ID())
		return st == "suspect"
	})

	p.heal() // back before the suspicion matures
	waitFor(t, "node 1 alive again on node 0", func() bool {
		st, _ := stateOf(n0, n1.ID())
		return st == "alive"
	})

	if got := n0.RingVersion(); got != v0 {
		t.Fatalf("ring version moved %d -> %d across an up->suspect->alive flap, want unchanged", v0, got)
	}
	if n0.Stats().Cluster.RingNodes != 2 {
		t.Fatalf("ring lost a member across a flap")
	}
}

// TestDeadRejoinViaIncarnationRefutation: a peer unreachable past
// SuspectTimeout is declared dead and drops off the ring (one swap); on
// recovery it learns the dead{k} rumor about itself, refutes with
// alive{k+1}, and rejoins (second swap) with a higher incarnation —
// no restart of anything, just gossip.
func TestDeadRejoinViaIncarnationRefutation(t *testing.T) {
	p := startGossipPair(t, 150*time.Millisecond)
	n0, n1 := p.nodes[0], p.nodes[1]
	v0 := n0.RingVersion()
	_, incBefore := stateOf(n0, n1.ID())

	p.partition()
	waitFor(t, "node 1 declared dead", func() bool {
		st, _ := stateOf(n0, n1.ID())
		return st == "dead"
	})
	if n0.Stats().Cluster.RingNodes != 1 {
		t.Fatalf("dead member still on the ring")
	}
	if n0.RingVersion() != v0+1 {
		t.Fatalf("death swapped ring %d times, want exactly 1", n0.RingVersion()-v0)
	}

	p.heal()
	waitFor(t, "node 1 rejoined alive", func() bool {
		st, _ := stateOf(n0, n1.ID())
		return st == "alive" && n0.Stats().Cluster.RingNodes == 2
	})
	_, incAfter := stateOf(n0, n1.ID())
	if incAfter <= incBefore {
		t.Fatalf("rejoin did not bump incarnation (%d -> %d): the dead rumor was never refuted",
			incBefore, incAfter)
	}
	if n0.RingVersion() != v0+2 {
		t.Fatalf("death+rejoin swapped ring %d times, want exactly 2", n0.RingVersion()-v0)
	}
}

// TestEntryEndpointsVerifyContent: the replication receiving path must
// re-derive CRC and content hash — corrupt or mislabeled transfers are
// refused, valid ones are admitted and durably stored.
func TestEntryEndpointsVerifyContent(t *testing.T) {
	cc := startChaosCluster(t, 2, 2)
	ctx := context.Background()

	// Compute one entry on its owner.
	cfg := mandelCfg(3, 16)
	cl := client.New(cc.urls[0])
	if _, err := cl.Submit(ctx, cfg, false); err != nil {
		t.Fatal(err)
	}
	hash := hashOf(t, cfg)
	waitFor(t, "entry spilled somewhere", func() bool {
		return cc.replicaCount(hash) >= 1
	})

	// Fetch its wire form from whichever node has it.
	var wire []byte
	for i := range cc.urls {
		resp, err := http.Get(cc.urls[i] + "/v1/cluster/entries/" + hash)
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			wire = body
			break
		}
	}
	if wire == nil {
		t.Fatal("no node served the entry")
	}
	if e, err := store.DecodeEntry(bytes.NewReader(wire)); err != nil || e.Hash != hash {
		t.Fatalf("served entry does not verify: %v", err)
	}

	put := func(url, hash string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, url+"/v1/cluster/entries/"+hash, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// A flipped payload byte must be refused (CRC), and a valid body
	// under the wrong key must be refused (hash pinning).
	corrupt := bytes.Clone(wire)
	corrupt[len(corrupt)-1] ^= 0xFF
	if code := put(cc.urls[1], hash, corrupt); code != http.StatusBadRequest {
		t.Fatalf("corrupt entry accepted with status %d", code)
	}
	wrongKey := hashOf(t, mandelCfg(2, 8))
	if code := put(cc.urls[1], wrongKey, wire); code != http.StatusBadRequest {
		t.Fatalf("mislabeled entry accepted with status %d", code)
	}
	// The genuine transfer is accepted and lands durably.
	if code := put(cc.urls[1], hash, wire); code != http.StatusNoContent {
		t.Fatalf("valid entry refused with status %d", code)
	}
	if _, ok := cc.mgrs[1].GetEntry(hash); !ok {
		t.Fatal("accepted entry not in the receiver's store")
	}
}

// TestRebalancerMigratesToJoiner: entries computed on a 2-node cluster
// flow to a third node after it joins, without any submission traffic —
// the rebalancer notices the ring change and pushes the entries whose
// new replica set includes the joiner.
func TestRebalancerMigratesToJoiner(t *testing.T) {
	cc := startChaosCluster(t, 2, 2)
	cfgs := sweepConfigs()
	multi := client.NewMulti(cc.urls...)
	for _, cfg := range cfgs {
		if _, err := multi.RunConfig(cfg); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "initial replication", func() bool {
		for _, cfg := range cfgs {
			if cc.replicaCount(hashOf(t, cfg)) < 2 {
				return false
			}
		}
		return true
	})

	// A third daemon joins via one seed.
	swap := &swapHandler{}
	srv := httptest.NewServer(swap)
	defer srv.Close()
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 16, Store: s})
	defer func() { mgr.Close(); s.Close() }()
	joiner, err := cluster.NewNode(mgr, cluster.Options{
		Self:           srv.URL,
		Peers:          cc.urls[:1],
		ProbeInterval:  25 * time.Millisecond,
		SuspectTimeout: 250 * time.Millisecond,
		Replicate:      2,
		RebalanceBPS:   64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	swap.set(joiner.Handler())

	// The joiner becomes a first-choice replica for some arc of the key
	// space; the rebalancer must hand it those entries.
	ids := []string{cluster.NodeID(cc.urls[0]), cluster.NodeID(cc.urls[1]), joiner.ID()}
	ring := cluster.NewRing(ids, 0)
	wantOnJoiner := 0
	for _, cfg := range cfgs {
		for _, id := range ring.Replicas(core.HashPoint(hashOf(t, cfg)), 2) {
			if id == joiner.ID() {
				wantOnJoiner++
			}
		}
	}
	if wantOnJoiner == 0 {
		t.Skip("ring assigned the joiner no replicas of this sweep (hash layout)")
	}
	waitFor(t, "rebalancer to migrate entries to the joiner", func() bool {
		have := 0
		for _, cfg := range cfgs {
			if _, ok := mgr.GetEntry(hashOf(t, cfg)); ok {
				have++
			}
		}
		return have >= wantOnJoiner
	})
	// Everything the joiner received decodes and hash-verifies.
	for _, h := range mgr.EntryHashes() {
		e, ok := mgr.GetEntry(h)
		if !ok || e.Hash != h {
			t.Fatalf("migrated entry %s fails verification", h)
		}
	}
}
