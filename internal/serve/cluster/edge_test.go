package cluster_test

// The viewing-edge path: any node serves GET /v1/jobs/{id}/frames for a
// peer-owned job by proxying ONE upstream stream per (job, format) and
// fanning it out to every local subscriber through an edge hub.

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
)

// lifeFramesCfg is a deterministic frames job with delta-friendly
// dirty-tile reporting (lazy variant).
func lifeFramesCfg(iters int) core.Config {
	return core.Config{
		Kernel: "life", Variant: "lazy", Dim: 64, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 2, Arg: "diag",
	}
}

func serveOptsForEdge() serve.Options {
	return serve.Options{Workers: 2, QueueDepth: 16}
}

// fetchStream GETs a frame stream URL and returns the raw body.
func fetchStream(t *testing.T, url string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEdgeFanOutSingleUpstream: N viewers on a non-owner node share one
// upstream stream, every viewer sees byte-identical frames, and the
// same is true independently for the delta format.
func TestEdgeFanOutSingleUpstream(t *testing.T) {
	tc := startCluster(t, 3, serveOptsForEdge())
	ctx := context.Background()

	multi := client.NewMulti(tc.urls...)
	st, _, err := multi.Submit(ctx, lifeFramesCfg(40), true)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.ownerIndex(lifeFramesCfg(40), true)
	if _, err := client.New(tc.urls[owner]).Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	edge := (owner + 1) % len(tc.urls)

	// Burst of concurrent viewers on the edge node, both formats.
	const viewers = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, viewers)
	deltas := make([][]byte, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = fetchStream(t, tc.urls[edge]+"/v1/jobs/"+st.ID+"/frames")
			deltas[i] = fetchStream(t, tc.urls[edge]+"/v1/jobs/"+st.ID+"/frames?format=delta")
		}(i)
	}
	wg.Wait()

	sum := sha256.Sum256(bodies[0])
	dsum := sha256.Sum256(deltas[0])
	for i := 1; i < viewers; i++ {
		if sha256.Sum256(bodies[i]) != sum {
			t.Errorf("viewer %d full stream differs from viewer 0", i)
		}
		if sha256.Sum256(deltas[i]) != dsum {
			t.Errorf("viewer %d delta stream differs from viewer 0", i)
		}
	}

	// The edge stream equals the owner's own stream byte for byte.
	direct := fetchStream(t, tc.urls[owner]+"/v1/jobs/"+st.ID+"/frames")
	if !bytes.Equal(direct, bodies[0]) {
		t.Error("edge-proxied stream differs from the owner's stream")
	}

	// The burst shared upstream streams: at most one per format — not one
	// per viewer. (Viewers that arrive after the last ref released may
	// redial, hence <= 2 per format rather than == 1; the concurrency
	// dedup is asserted exactly in TestEdgeConcurrentViewersShareDial.)
	ups := tc.nodes[edge].Stats().Cluster.EdgeUpstreams
	if ups < 2 || ups > 2*viewers/3 {
		t.Errorf("edge opened %d upstream streams for %d viewers x 2 formats", ups, viewers)
	}
	if tc.nodes[owner].Stats().Cluster.EdgeUpstreams != 0 {
		t.Error("owner node recorded edge upstreams for its own job")
	}

	// The delta stream reassembles to the same pixels as the full stream.
	raFull, raDelta := gfx.NewReassembler(), gfx.NewReassembler()
	fr := bufio.NewReader(bytes.NewReader(bodies[0]))
	dr := bufio.NewReader(bytes.NewReader(deltas[0]))
	frames := 0
	for {
		frec, ferr := gfx.ReadRecord(fr)
		drec, derr := gfx.ReadRecord(dr)
		if ferr == io.EOF && derr == io.EOF {
			break
		}
		if ferr != nil || derr != nil {
			t.Fatalf("stream decode: full=%v delta=%v", ferr, derr)
		}
		fi, err := raFull.Apply(frec)
		if err != nil {
			t.Fatal(err)
		}
		di, err := raDelta.Apply(drec)
		if err != nil {
			t.Fatal(err)
		}
		if frec.Iter != drec.Iter || !fi.Equal(di) {
			t.Fatalf("iter %d/%d: edge delta frame differs from full frame", frec.Iter, drec.Iter)
		}
		frames++
	}
	if frames != 40 {
		t.Errorf("edge streams carried %d frames, want 40", frames)
	}
}

// TestEdgeConcurrentViewersShareDial pins the singleflight exactly: a
// simultaneous burst on an idle edge results in exactly one upstream
// dial because every viewer holds its ref for the whole read.
func TestEdgeConcurrentViewersShareDial(t *testing.T) {
	tc := startCluster(t, 2, serveOptsForEdge())
	ctx := context.Background()

	multi := client.NewMulti(tc.urls...)
	cfg := lifeFramesCfg(30)
	st, _, err := multi.Submit(ctx, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.ownerIndex(cfg, true)
	if _, err := client.New(tc.urls[owner]).Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	edge := (owner + 1) % len(tc.urls)

	// Start every request at the same instant; each keeps its edge ref
	// until its body is fully read, so the streams overlap and share.
	const viewers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	sums := make([][32]byte, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sums[i] = sha256.Sum256(fetchStream(t, tc.urls[edge]+"/v1/jobs/"+st.ID+"/frames"))
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < viewers; i++ {
		if sums[i] != sums[0] {
			t.Errorf("viewer %d stream differs", i)
		}
	}
	if ups := tc.nodes[edge].Stats().Cluster.EdgeUpstreams; ups != 1 {
		t.Errorf("edge opened %d upstream streams for a simultaneous burst, want 1", ups)
	}
	if proxied := tc.nodes[edge].Stats().Cluster.StatusProxied; proxied < viewers {
		t.Errorf("status_proxied = %d, want >= %d", proxied, viewers)
	}
}

// TestEdgeRelaysUpstreamErrors: the owner's error answers pass through
// the edge verbatim — a non-frames job is 409 and an unknown job 404 on
// the edge exactly as on the owner.
func TestEdgeRelaysUpstreamErrors(t *testing.T) {
	tc := startCluster(t, 2, serveOptsForEdge())
	ctx := context.Background()

	multi := client.NewMulti(tc.urls...)
	cfg := mandelCfg(2, 16)
	st, _, err := multi.Submit(ctx, cfg, false) // no frames
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.ownerIndex(cfg, false)
	if _, err := client.New(tc.urls[owner]).Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	edge := (owner + 1) % len(tc.urls)

	status := func(url string) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := status(tc.urls[edge] + "/v1/jobs/" + st.ID + "/frames"); got != http.StatusConflict {
		t.Errorf("edge frames of a non-frames job: %d, want 409", got)
	}
	ownerID := tc.nodes[owner].ID()
	if got := status(tc.urls[edge] + "/v1/jobs/" + ownerID + ".j-999999/frames"); got != http.StatusNotFound {
		t.Errorf("edge frames of an unknown job: %d, want 404", got)
	}
}
