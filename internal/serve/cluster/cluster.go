// Package cluster turns a set of easypapd daemons into one horizontally
// scalable compute service. Every node runs the full single-box stack
// (internal/serve: queueing, warm pools, result cache) plus this layer:
//
//   - SWIM-style gossip membership (gossip.go): members carry
//     alive/suspect/dead states with incarnation numbers, views travel
//     piggybacked on the health probe, and a node started with nothing
//     but --join=<any live peer> appears in every member's ring without
//     a fleet restart,
//   - a consistent-hash ring (Ring) over the canonical config hash
//     (core.Config.Hash via serve.NormalizeSubmission), so identical
//     configs always land on the node whose result cache already holds
//     them — cache locality without a shared cache. The ring holds the
//     non-dead members and is rebuilt only when that set changes:
//     suspicion never moves keys, so a flapping peer cannot oscillate
//     routing,
//   - R-way result replication (replicate.go): completed entries are
//     pushed write-behind to the next R-1 ring successors, reads fail
//     over owner -> replica -> recompute, and a background rebalancer
//     migrates entries to new owners after every ring change under a
//     bandwidth budget, with CRC+hash verification on receipt,
//   - transparent proxying: any node accepts any request; submissions
//     hop to the owning node, status/cancel/frames follow the node
//     prefix embedded in cluster job ids ("n1a2b3c4.j-000017"),
//   - retry-on-next-replica failover: when the owner is unreachable the
//     submission walks the ring to the next distinct node, the dead peer
//     is marked suspect, and gossip brings it back when it recovers.
//
// The coordination path is deliberately lock-light: member state is
// atomics, the ring is immutable and swapped whole under a short mutex
// on membership change, and the proxy path takes no node-wide lock.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"easypap/internal/core"
	"easypap/internal/metrics"
	"easypap/internal/serve"
)

// HopHeader marks a proxied request so the receiving node serves it
// locally instead of re-routing — one hop max, so divergent membership
// views degrade to an extra network hop, never a forwarding loop.
const HopHeader = "X-Easypap-Cluster-Hop"

// NodeID derives the stable node id advertised for a base URL: "n" plus
// the first 8 hex digits of its SHA-256. Ids are embedded in cluster job
// ids, so they must be short, path-safe and identical on every node that
// knows the URL.
func NodeID(baseURL string) string {
	sum := sha256.Sum256([]byte(strings.TrimRight(baseURL, "/")))
	return "n" + hex.EncodeToString(sum[:4])
}

// Options configures a Node.
type Options struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.3:8080"),
	// the address peers use to reach it. Required.
	Self string
	// Peers are the other members' base URLs (Self may be included; it is
	// recognized and deduplicated). Static membership: the list every node
	// is started with should agree.
	Peers []string
	// VirtualNodes is the ring points per node (DefaultVirtualNodes if 0).
	VirtualNodes int
	// ProbeInterval is the gossip/health-probe period (default 1s;
	// negative disables active probing — passive marking on proxy
	// failure remains).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one gossip exchange (default 500ms).
	ProbeTimeout time.Duration
	// SuspectTimeout is how long a member stays suspect before it is
	// declared dead and dropped from the ring (default 10x ProbeInterval,
	// min 2s). Short enough that routing converges fast after a crash,
	// long enough that one dropped probe never moves keys.
	SuspectTimeout time.Duration
	// ProbeBackoffCap bounds the exponential probe backoff applied to
	// failing members (default 30x ProbeInterval, max 30s): after k
	// consecutive failures a member is probed every
	// min(ProbeInterval<<k, cap), so a dead peer costs little and a
	// recovered one is still noticed within the cap.
	ProbeBackoffCap time.Duration
	// Replicate is the replication factor R for cache entries: completed
	// entries are pushed to the R-1 ring successors of their owner, and
	// reads fail over to replicas before recomputing. 0 or 1 disables
	// replication. Requires a disk store on every participating node.
	Replicate int
	// RebalanceBPS caps rebalance transfer bandwidth in bytes/second
	// (default 8 MiB/s; negative disables the rebalancer).
	RebalanceBPS int64
	// HTTP is the client used for proxying, gossip and replication. The
	// default has no overall timeout (frame-stream proxies are
	// long-lived); probes are bounded per-request.
	HTTP *http.Client
}

func (o Options) withDefaults() (Options, error) {
	if o.Self == "" {
		return o, fmt.Errorf("cluster: Options.Self (advertised base URL) is required")
	}
	o.Self = strings.TrimRight(o.Self, "/")
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.SuspectTimeout <= 0 {
		o.SuspectTimeout = 10 * o.ProbeInterval
		if o.SuspectTimeout < 2*time.Second {
			o.SuspectTimeout = 2 * time.Second
		}
	}
	if o.ProbeBackoffCap <= 0 {
		o.ProbeBackoffCap = 30 * o.ProbeInterval
		if o.ProbeBackoffCap > 30*time.Second {
			o.ProbeBackoffCap = 30 * time.Second
		}
		if o.ProbeBackoffCap < o.ProbeInterval {
			o.ProbeBackoffCap = o.ProbeInterval
		}
	}
	if o.RebalanceBPS == 0 {
		o.RebalanceBPS = 8 << 20
	}
	if o.HTTP == nil {
		o.HTTP = &http.Client{}
	}
	return o, nil
}

// member is one node of the cluster as seen from here. State is
// written by gossip and the proxy path, read lock-free everywhere;
// transitions that change the routable set go through n.mu so the ring
// rebuild is serialized.
type member struct {
	id   string
	url  string
	self bool

	state       atomic.Int32  // stateAlive | stateSuspect | stateDead (gossip.go)
	incarnation atomic.Uint64 // owned by the member itself; rumors carry it
	suspectAt   atomic.Int64  // unix nanos when suspicion began (0 otherwise)
	lastSeen    atomic.Int64  // unix nanos of the last successful contact
	failures    atomic.Int64  // probe + proxy failures observed (lifetime)
	probeFails  atomic.Int64  // consecutive probe failures (drives backoff)
	nextProbe   atomic.Int64  // unix nanos before which the prober skips us
	// warmDisk is the peer's advertised disk-cache entry count, learned
	// from gossip. A restarted node re-advertises its warm disk tier
	// here, making "route back to it, it still owns its results"
	// visible in the membership view instead of a matter of faith.
	warmDisk atomic.Int64
}

// alive reports whether the member is fully alive (not suspect, not
// dead) — the "healthy" bit of membership views and candidate ordering.
func (m *member) alive() bool { return m.state.Load() == stateAlive }

// Node is one cluster member: the local Manager plus the routing layer.
// Create with NewNode, expose with Handler, shut down with Close (the
// Manager's lifecycle stays with its owner).
type Node struct {
	opts Options
	id   string
	mgr  *serve.Manager

	mu      sync.RWMutex
	members map[string]*member // id -> member (includes self)
	ring    *Ring

	// ringVersion counts ring swaps; it is the convergence clock the
	// chaos suites (and operators) read: two nodes agree on routing iff
	// their rings hold the same member set, and a kill is "converged"
	// once every survivor's ring has dropped the victim.
	ringVersion   atomic.Uint64
	rebalanceKick chan struct{} // buffered(1): ring changed, rebalance

	stop chan struct{}
	wg   sync.WaitGroup

	replq chan replTask // write-behind replication queue (nil if R<=1)

	// Stage histograms registered into the manager's metrics registry
	// (obs.go): routing and membership latencies that only exist in
	// cluster mode.
	proxyHist     *metrics.Histogram
	replicateHist *metrics.Histogram
	gossipHist    *metrics.Histogram

	// Edge frame fan-out (edge.go): one upstream stream per (job,
	// format) shared by all local viewers of a remote job's frames.
	edgeMu        sync.Mutex
	edges         map[string]*edgeStream
	edgeClosed    bool
	edgeUpstreams atomic.Int64   // upstream frame streams opened (dedup'd fetches)
	edgeStats     serve.HubStats // local edge-hub subscriber/drop counters

	// Counters surfaced in ClusterStats.
	jobsOwned     atomic.Int64 // cluster submissions served by the local manager
	jobsProxied   atomic.Int64 // submissions forwarded to their owning peer
	statusProxied atomic.Int64 // status/cancel/frames calls forwarded by id prefix
	failovers     atomic.Int64 // submissions re-routed past an unreachable replica
	replPushed    atomic.Int64 // entries pushed to ring successors
	replDropped   atomic.Int64 // pushes dropped (queue full or no reachable target)
	replFetched   atomic.Int64 // entries fetched from a replica on local miss
	rebalanced    atomic.Int64 // entries migrated by the rebalancer
	rebalBytes    atomic.Int64 // bytes moved by the rebalancer
}

// NewNode builds the routing layer around mgr and starts the health
// prober. The node immediately considers every configured peer healthy
// and lets probing/proxying correct that — optimistic start means a
// cluster booting in any order routes correctly as soon as peers are up.
func NewNode(mgr *serve.Manager, opts Options) (*Node, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		opts:          opts,
		id:            NodeID(opts.Self),
		mgr:           mgr,
		members:       make(map[string]*member),
		rebalanceKick: make(chan struct{}, 1),
		stop:          make(chan struct{}),
		edges:         make(map[string]*edgeStream),
	}
	self := &member{id: n.id, url: opts.Self, self: true}
	self.lastSeen.Store(time.Now().UnixNano())
	n.members[n.id] = self
	for _, p := range opts.Peers {
		n.addMemberLocked(p)
	}
	n.rebuildRingLocked()
	n.registerObs()
	if opts.ProbeInterval > 0 {
		n.wg.Add(1)
		go n.probeLoop()
	}
	if opts.Replicate > 1 {
		n.replq = make(chan replTask, 256)
		mgr.SetSpillHook(n.enqueueReplication)
		mgr.SetSnapshotHook(n.enqueueSnapReplication)
		mgr.SetEntrySource(n.fetchEntry)
		n.wg.Add(1)
		go n.replicateLoop()
	}
	if opts.Replicate > 1 && opts.RebalanceBPS > 0 {
		n.wg.Add(1)
		go n.rebalanceLoop()
	}
	// Distributed single-job execution: sharded submissions reaching this
	// node's manager are coordinated across the ring (shard.go).
	mgr.SetShardRunner(n.runSharded)
	return n, nil
}

// ID returns this node's id (NodeID of its advertised URL).
func (n *Node) ID() string { return n.id }

// Manager returns the wrapped local manager.
func (n *Node) Manager() *serve.Manager { return n.mgr }

// Close stops the prober, replicator and rebalancer. It does not close
// the Manager.
func (n *Node) Close() {
	if n.opts.Replicate > 1 {
		n.mgr.SetSpillHook(nil)
		n.mgr.SetSnapshotHook(nil)
		n.mgr.SetEntrySource(nil)
	}
	n.mgr.SetShardRunner(nil)
	n.closeEdges()
	close(n.stop)
	n.wg.Wait()
}

// RingVersion returns the ring-swap counter (the convergence clock).
func (n *Node) RingVersion() uint64 { return n.ringVersion.Load() }

// addMemberLocked registers a peer URL; the caller holds no lock during
// NewNode (single-threaded) or n.mu elsewhere. Returns true when new.
func (n *Node) addMemberLocked(baseURL string) bool {
	baseURL = strings.TrimRight(baseURL, "/")
	if baseURL == "" {
		return false
	}
	id := NodeID(baseURL)
	if _, ok := n.members[id]; ok {
		return false
	}
	// Optimistic start: new members begin alive (the zero state) and the
	// prober demotes dead peers, so a cluster booting in any order routes
	// correctly as soon as peers are up.
	n.members[id] = &member{id: id, url: baseURL}
	return true
}

// AddMember registers a peer at runtime (the join endpoint) and rebuilds
// the ring. Returns true when the peer was new.
func (n *Node) AddMember(baseURL string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.addMemberLocked(baseURL) {
		return false
	}
	n.rebuildRingLocked()
	return true
}

// rebuildRingLocked rebuilds the ring over the non-dead members,
// swapping (and bumping ringVersion) only when the routable set
// actually changed — suspect transitions land here too and must be
// free. A real swap kicks the rebalancer.
func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.members))
	for id, m := range n.members {
		if m.state.Load() != stateDead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if n.ring != nil && slices.Equal(n.ring.Nodes(), ids) {
		return
	}
	n.ring = NewRing(ids, n.opts.VirtualNodes)
	n.ringVersion.Add(1)
	select {
	case n.rebalanceKick <- struct{}{}:
	default:
	}
}

// snapshot returns the current ring and a stable member list.
func (n *Node) snapshot() (*Ring, []*member) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ms := make([]*member, 0, len(n.members))
	for _, m := range n.members {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	return n.ring, ms
}

func (n *Node) memberByID(id string) *member {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.members[id]
}

// candidates returns the failover chain for a routing key: every member
// in ring order starting at the owner, alive nodes first (ring order
// preserved within each class). Suspects stay in the chain — suspicion
// may be stale, and trying them last costs nothing when an alive
// replica answered first. Dead members are off the ring entirely.
func (n *Node) candidates(key uint64) []*member {
	ring, _ := n.snapshot()
	ids := ring.Replicas(key, 0)
	alive := make([]*member, 0, len(ids))
	var suspect []*member
	for _, id := range ids {
		m := n.memberByID(id)
		if m == nil {
			continue
		}
		if m.alive() {
			alive = append(alive, m)
		} else {
			suspect = append(suspect, m)
		}
	}
	return append(alive, suspect...)
}

// markDown records a failed contact with a peer: proxy and probe
// failures both land here, so a dead node is demoted (to suspect — only
// the SuspectTimeout sweep declares dead) on first contact rather than
// on the next probe tick.
func (n *Node) markDown(m *member) {
	n.suspect(m)
}

// markUp records a successful direct contact. It only refreshes
// liveness bookkeeping — state revival flows through gossip merge, so
// a one-off lucky response to a proxied request cannot resurrect a
// dead member ahead of its refutation round.
func (n *Node) markUp(m *member) {
	m.lastSeen.Store(time.Now().UnixNano())
	m.probeFails.Store(0)
	m.nextProbe.Store(0)
}

// --- gossip probing ---------------------------------------------------

func (n *Node) probeLoop() {
	defer n.wg.Done()
	n.announce() // tell configured peers we exist (no-op if they know)
	n.probeAll()
	ticker := time.NewTicker(n.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.probeAll()
			n.sweepSuspects()
		}
	}
}

// probeAll gossips with every due peer concurrently. Exchanges are
// cheap (one JSON view each way) and bounded by ProbeTimeout, so a
// wedged peer costs one goroutine-interval, not a head-of-line stall
// for the others. Members under probe backoff (consecutive failures)
// are skipped until their nextProbe deadline — a dead peer is probed
// geometrically less often, up to ProbeBackoffCap.
func (n *Node) probeAll() {
	now := time.Now().UnixNano()
	_, ms := n.snapshot()
	var wg sync.WaitGroup
	for _, m := range ms {
		if m.self || m.nextProbe.Load() > now {
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			if !n.gossipWith(m) {
				n.suspect(m)
			}
		}(m)
	}
	wg.Wait()
}

// announce joins this node to every known peer and merges the
// membership each returns, so a node pointed at any live member learns
// the whole cluster. Rounds repeat while the merge keeps teaching us
// new members (bounded: membership only grows), so members discovered
// *from* a join response are announced to as well — otherwise they
// would never learn about us and the cluster would run with divergent
// rings. Best-effort: static --peers lists remain the source of truth
// when every node is started with the full list.
func (n *Node) announce() {
	announced := map[string]bool{n.id: true}
	for round := 0; round < 8; round++ {
		if !n.announceRound(announced) {
			return // everyone known has been told
		}
	}
}

// announceRound joins to every not-yet-announced member and returns
// whether any new announcements were made.
func (n *Node) announceRound(announced map[string]bool) bool {
	_, ms := n.snapshot()
	progressed := false
	for _, m := range ms {
		if m.self || announced[m.id] {
			continue
		}
		announced[m.id] = true
		progressed = true
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
		body, _ := json.Marshal(JoinRequest{URL: n.opts.Self})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/cluster/join", strings.NewReader(string(body)))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.opts.HTTP.Do(req)
		cancel()
		if err != nil {
			continue
		}
		var mem Membership
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&mem) == nil {
			for _, mi := range mem.Members {
				if mi.URL != "" {
					n.AddMember(mi.URL)
				}
			}
		}
		resp.Body.Close()
	}
	return progressed
}

// --- wire types ------------------------------------------------------

// JoinRequest is the POST /v1/cluster/join body.
type JoinRequest struct {
	URL string `json:"url"`
}

// HealthInfo is the GET /v1/cluster/health body: liveness plus cache
// warmth, so peers (and operators) can see that a restarted node still
// owns its previously computed results on disk.
type HealthInfo struct {
	OK           bool   `json:"ok"`
	ID           string `json:"id"`
	URL          string `json:"url"`
	CacheEntries int    `json:"cache_entries"` // in-memory tier
	DiskEntries  int64  `json:"disk_entries"`  // durable tier (0 without --data-dir)
	DiskBytes    int64  `json:"disk_bytes,omitempty"`
}

// MemberInfo is one row of the membership document. Healthy is
// state == "alive" — a suspect member is unhealthy but still routable
// (on the ring); a dead one is neither.
type MemberInfo struct {
	ID          string    `json:"id"`
	URL         string    `json:"url"`
	Self        bool      `json:"self,omitempty"`
	Healthy     bool      `json:"healthy"`
	State       string    `json:"state"`
	Incarnation uint64    `json:"incarnation"`
	LastSeen    time.Time `json:"last_seen,omitempty"`
	Failures    int64     `json:"failures,omitempty"`
	// DiskEntries is the member's advertised durable-cache size (its
	// last gossip exchange; self reads its own store directly).
	DiskEntries int64 `json:"disk_entries,omitempty"`
}

// Membership is the GET /v1/cluster body: this node's view of the ring.
type Membership struct {
	Self         string       `json:"self"` // this node's id
	VirtualNodes int          `json:"virtual_nodes"`
	RingVersion  uint64       `json:"ring_version"`
	Members      []MemberInfo `json:"members"`
}

// Membership returns this node's current membership view.
func (n *Node) Membership() Membership {
	_, ms := n.snapshot()
	out := Membership{Self: n.id, VirtualNodes: n.opts.VirtualNodes, RingVersion: n.ringVersion.Load()}
	for _, m := range ms {
		st := m.state.Load()
		if m.self {
			st = stateAlive
		}
		mi := MemberInfo{
			ID: m.id, URL: m.url, Self: m.self,
			Healthy: st == stateAlive, State: stateName(st),
			Incarnation: m.incarnation.Load(), Failures: m.failures.Load(),
			DiskEntries: m.warmDisk.Load(),
		}
		if m.self {
			_, disk, _ := n.mgr.CacheSizes()
			mi.DiskEntries = int64(disk)
		}
		if ns := m.lastSeen.Load(); ns > 0 {
			mi.LastSeen = time.Unix(0, ns)
		}
		out.Members = append(out.Members, mi)
	}
	return out
}

// ClusterStats is the per-node routing section added to /v1/stats.
type ClusterStats struct {
	NodeID      string       `json:"node_id"`
	SelfURL     string       `json:"self_url"`
	RingNodes   int          `json:"ring_nodes"`
	RingVersion uint64       `json:"ring_version"` // swap counter (convergence clock)
	RingShare   float64      `json:"ring_share"`   // fraction of the key space this node owns
	Replicate   int          `json:"replicate,omitempty"`
	Members     []MemberInfo `json:"members"`

	JobsOwned     int64 `json:"jobs_owned"`     // cluster submissions run locally
	JobsProxied   int64 `json:"jobs_proxied"`   // submissions forwarded to a peer
	StatusProxied int64 `json:"status_proxied"` // status/cancel/frames forwarded by id prefix
	Failovers     int64 `json:"failovers"`      // submissions re-routed past a dead replica

	// Replication counters (no omitempty: a reported zero must be
	// distinguishable from "replication disabled" — Replicate carries
	// that bit).
	ReplicaPushed  int64 `json:"replica_pushed"`  // entries pushed to successors
	ReplicaDropped int64 `json:"replica_dropped"` // pushes lost (queue full / unreachable)
	ReplicaFetched int64 `json:"replica_fetched"` // remote-hit fetches served to local misses
	Rebalanced     int64 `json:"rebalanced"`      // entries migrated after ring changes
	RebalanceBytes int64 `json:"rebalance_bytes"`

	// Edge frame fan-out: a viewing non-owner opens ONE upstream stream
	// per (job, format) and fans it out to all local subscribers.
	EdgeUpstreams    int64 `json:"edge_upstreams"`
	EdgeSubscribers  int64 `json:"edge_subscribers"`
	EdgeDroppedToKey int64 `json:"edge_dropped_to_keyframe"`
}

// NodeStats is the cluster-mode GET /v1/stats body: the single-node
// serve.Stats flattened, plus the routing section.
type NodeStats struct {
	serve.Stats
	Cluster ClusterStats `json:"cluster"`
}

// Stats returns the local stats with the routing section attached.
func (n *Node) Stats() NodeStats {
	ring, _ := n.snapshot()
	mem := n.Membership()
	return NodeStats{
		Stats: n.mgr.Stats(),
		Cluster: ClusterStats{
			NodeID:         n.id,
			SelfURL:        n.opts.Self,
			RingNodes:      ring.Len(),
			RingVersion:    n.ringVersion.Load(),
			RingShare:      ring.Shares()[n.id],
			Replicate:      n.opts.Replicate,
			Members:        mem.Members,
			JobsOwned:      n.jobsOwned.Load(),
			JobsProxied:    n.jobsProxied.Load(),
			StatusProxied:  n.statusProxied.Load(),
			Failovers:      n.failovers.Load(),
			ReplicaPushed:  n.replPushed.Load(),
			ReplicaDropped: n.replDropped.Load(),
			ReplicaFetched: n.replFetched.Load(),
			Rebalanced:     n.rebalanced.Load(),
			RebalanceBytes: n.rebalBytes.Load(),

			EdgeUpstreams:    n.edgeUpstreams.Load(),
			EdgeSubscribers:  n.edgeStats.Subscribers.Load(),
			EdgeDroppedToKey: n.edgeStats.DroppedToKey.Load(),
		},
	}
}

// ClusterTotals sums the headline counters across reachable members.
type ClusterTotals struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Computed    int64 `json:"computed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	DiskHits    int64 `json:"disk_hits"`
	Spills      int64 `json:"spills"`
	DiskEntries int64 `json:"disk_entries"`
	Recovered   int64 `json:"recovered_jobs"`
	Interrupted int64 `json:"interrupted_jobs"`
	JobsOwned   int64 `json:"jobs_owned"`
	JobsProxied int64 `json:"jobs_proxied"`
	Failovers   int64 `json:"failovers"`

	// Distributed-execution totals (no omitempty, like every counter
	// here): cluster-wide shard coordination and halo-exchange activity.
	JobsCoordinated int64 `json:"jobs_coordinated"`
	ShardsExecuted  int64 `json:"shards_executed"`
	HalosSent       int64 `json:"halos_sent"`
	HalosSkipped    int64 `json:"halos_skipped"`
}

// MemberStats is one member's contribution to the aggregate (Stats nil
// when the member was unreachable).
type MemberStats struct {
	ID      string     `json:"id"`
	URL     string     `json:"url"`
	Healthy bool       `json:"healthy"`
	Error   string     `json:"error,omitempty"`
	Stats   *NodeStats `json:"stats,omitempty"`
}

// ClusterAggregate is the GET /v1/cluster/stats body: every member's
// /v1/stats merged into cluster-wide totals.
type ClusterAggregate struct {
	Nodes   int           `json:"nodes"`
	Healthy int           `json:"healthy"`
	Totals  ClusterTotals `json:"totals"`
	Members []MemberStats `json:"members"`
}

// AggregateStats fans GET /v1/stats out to every member (self answers
// locally) and merges the results. Unreachable members appear with an
// error and contribute nothing to the totals.
func (n *Node) AggregateStats(ctx context.Context) ClusterAggregate {
	_, ms := n.snapshot()
	agg := ClusterAggregate{Nodes: len(ms)}
	results := make([]MemberStats, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			r := MemberStats{ID: m.id, URL: m.url}
			if m.self {
				st := n.Stats()
				r.Stats, r.Healthy = &st, true
			} else if st, err := n.fetchStats(ctx, m); err != nil {
				r.Error = err.Error()
			} else {
				r.Stats, r.Healthy = st, true
			}
			results[i] = r
		}(i, m)
	}
	wg.Wait()
	for _, r := range results {
		agg.Members = append(agg.Members, r)
		if r.Stats == nil {
			continue
		}
		agg.Healthy++
		s := r.Stats
		agg.Totals.Submitted += s.Submitted
		agg.Totals.Completed += s.Completed
		agg.Totals.Computed += s.Computed
		agg.Totals.Failed += s.Failed
		agg.Totals.Canceled += s.Canceled
		agg.Totals.Rejected += s.Rejected
		agg.Totals.CacheHits += s.CacheHits
		agg.Totals.CacheMisses += s.CacheMisses
		agg.Totals.DiskHits += s.DiskHits
		agg.Totals.Spills += s.Spills
		agg.Totals.DiskEntries += int64(s.DiskEntries)
		agg.Totals.Recovered += s.RecoveredJobs
		agg.Totals.Interrupted += s.InterruptedJobs
		agg.Totals.JobsOwned += s.Cluster.JobsOwned
		agg.Totals.JobsProxied += s.Cluster.JobsProxied
		agg.Totals.Failovers += s.Cluster.Failovers
		agg.Totals.JobsCoordinated += s.JobsCoordinated
		agg.Totals.ShardsExecuted += s.ShardsExecuted
		agg.Totals.HalosSent += s.HalosSent
		agg.Totals.HalosSkipped += s.HalosSkipped
	}
	return agg
}

func (n *Node) fetchStats(ctx context.Context, m *member) (*NodeStats, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s returned %s", m.url, resp.Status)
	}
	var st NodeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// --- routing keys and job ids ----------------------------------------

// RouteKey computes the routing key of a submission: the canonical hash
// the owner's cache will use, mapped onto the ring's key space. Frames
// submissions route identically — they bypass the cache, but keeping
// them on the owner means the whole lifecycle of a config lives on one
// node.
//
// It also returns the normalized config, and the router forwards THAT,
// not the raw client body: normalization fills machine-dependent
// defaults (Threads defaults to the local GOMAXPROCS), so on a
// heterogeneous cluster the owner re-deriving defaults from the raw
// config could compute a different hash than the one it was routed by,
// splitting one submission's cache entry across nodes. Forwarding the
// normalized form makes the entry node's canonicalization authoritative
// — normalization is idempotent (FuzzConfigCanonicalHash), so the owner
// lands on exactly the routed hash.
func RouteKey(cfg core.Config, frames bool) (core.Config, string, uint64, error) {
	norm, hash, err := serve.NormalizeSubmission(cfg, frames)
	if err != nil {
		return cfg, "", 0, err
	}
	return norm, hash, core.HashPoint(hash), nil
}

// prefixID namespaces a manager-local job id with this node's id.
func (n *Node) prefixID(local string) string { return n.id + "." + local }

// SplitJobID splits a cluster job id "n1a2b3c4.j-000017" into node and
// local parts. Unprefixed ids return ("", id, false).
func SplitJobID(id string) (node, local string, ok bool) {
	i := strings.IndexByte(id, '.')
	if i <= 0 || i == len(id)-1 {
		return "", id, false
	}
	return id[:i], id[i+1:], true
}
