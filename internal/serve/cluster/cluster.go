// Package cluster turns a set of easypapd daemons into one horizontally
// scalable compute service. Every node runs the full single-box stack
// (internal/serve: queueing, warm pools, result cache) plus this layer:
//
//   - a peer registry with static membership (the --peers flag) and
//     /v1/cluster join/health endpoints,
//   - a consistent-hash ring (Ring) over the canonical config hash
//     (core.Config.Hash via serve.NormalizeSubmission), so identical
//     configs always land on the node whose result cache already holds
//     them — cache locality without a shared cache,
//   - transparent proxying: any node accepts any request; submissions
//     hop to the owning node, status/cancel/frames follow the node
//     prefix embedded in cluster job ids ("n1a2b3c4.j-000017"),
//   - retry-on-next-replica failover: when the owner is unreachable the
//     submission walks the ring to the next distinct node, the dead peer
//     is marked unhealthy, and the background prober brings it back when
//     it recovers.
//
// The coordination path is deliberately lock-light: health is atomic
// flags, the ring is immutable and swapped whole under a short mutex on
// membership change, and the proxy path takes no node-wide lock at all.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
)

// HopHeader marks a proxied request so the receiving node serves it
// locally instead of re-routing — one hop max, so divergent membership
// views degrade to an extra network hop, never a forwarding loop.
const HopHeader = "X-Easypap-Cluster-Hop"

// NodeID derives the stable node id advertised for a base URL: "n" plus
// the first 8 hex digits of its SHA-256. Ids are embedded in cluster job
// ids, so they must be short, path-safe and identical on every node that
// knows the URL.
func NodeID(baseURL string) string {
	sum := sha256.Sum256([]byte(strings.TrimRight(baseURL, "/")))
	return "n" + hex.EncodeToString(sum[:4])
}

// Options configures a Node.
type Options struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.3:8080"),
	// the address peers use to reach it. Required.
	Self string
	// Peers are the other members' base URLs (Self may be included; it is
	// recognized and deduplicated). Static membership: the list every node
	// is started with should agree.
	Peers []string
	// VirtualNodes is the ring points per node (DefaultVirtualNodes if 0).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 1s; negative
	// disables active probing — passive marking on proxy failure remains).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 500ms).
	ProbeTimeout time.Duration
	// HTTP is the client used for proxying and probing. The default has
	// no overall timeout (frame-stream proxies are long-lived); probes
	// are bounded per-request.
	HTTP *http.Client
}

func (o Options) withDefaults() (Options, error) {
	if o.Self == "" {
		return o, fmt.Errorf("cluster: Options.Self (advertised base URL) is required")
	}
	o.Self = strings.TrimRight(o.Self, "/")
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.HTTP == nil {
		o.HTTP = &http.Client{}
	}
	return o, nil
}

// member is one node of the cluster as seen from here. Health is
// written by the prober and the proxy path, read lock-free everywhere.
type member struct {
	id   string
	url  string
	self bool

	healthy  atomic.Bool
	lastSeen atomic.Int64 // unix nanos of the last successful contact
	failures atomic.Int64 // probe + proxy failures observed
	// warmDisk is the peer's advertised disk-cache entry count, learned
	// from health probes. A restarted node re-advertises its warm disk
	// tier here, making "route back to it, it still owns its results"
	// visible in the membership view instead of a matter of faith.
	warmDisk atomic.Int64
}

// Node is one cluster member: the local Manager plus the routing layer.
// Create with NewNode, expose with Handler, shut down with Close (the
// Manager's lifecycle stays with its owner).
type Node struct {
	opts Options
	id   string
	mgr  *serve.Manager

	mu      sync.RWMutex
	members map[string]*member // id -> member (includes self)
	ring    *Ring

	stop chan struct{}
	wg   sync.WaitGroup

	// Counters surfaced in ClusterStats.
	jobsOwned     atomic.Int64 // cluster submissions served by the local manager
	jobsProxied   atomic.Int64 // submissions forwarded to their owning peer
	statusProxied atomic.Int64 // status/cancel/frames calls forwarded by id prefix
	failovers     atomic.Int64 // submissions re-routed past an unreachable replica
}

// NewNode builds the routing layer around mgr and starts the health
// prober. The node immediately considers every configured peer healthy
// and lets probing/proxying correct that — optimistic start means a
// cluster booting in any order routes correctly as soon as peers are up.
func NewNode(mgr *serve.Manager, opts Options) (*Node, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		opts:    opts,
		id:      NodeID(opts.Self),
		mgr:     mgr,
		members: make(map[string]*member),
		stop:    make(chan struct{}),
	}
	self := &member{id: n.id, url: opts.Self, self: true}
	self.healthy.Store(true)
	self.lastSeen.Store(time.Now().UnixNano())
	n.members[n.id] = self
	for _, p := range opts.Peers {
		n.addMemberLocked(p)
	}
	n.rebuildRingLocked()
	if opts.ProbeInterval > 0 {
		n.wg.Add(1)
		go n.probeLoop()
	}
	return n, nil
}

// ID returns this node's id (NodeID of its advertised URL).
func (n *Node) ID() string { return n.id }

// Manager returns the wrapped local manager.
func (n *Node) Manager() *serve.Manager { return n.mgr }

// Close stops the prober. It does not close the Manager.
func (n *Node) Close() {
	close(n.stop)
	n.wg.Wait()
}

// addMemberLocked registers a peer URL; the caller holds no lock during
// NewNode (single-threaded) or n.mu elsewhere. Returns true when new.
func (n *Node) addMemberLocked(baseURL string) bool {
	baseURL = strings.TrimRight(baseURL, "/")
	if baseURL == "" {
		return false
	}
	id := NodeID(baseURL)
	if _, ok := n.members[id]; ok {
		return false
	}
	m := &member{id: id, url: baseURL}
	m.healthy.Store(true) // optimistic: the prober demotes dead peers
	n.members[id] = m
	return true
}

// AddMember registers a peer at runtime (the join endpoint) and rebuilds
// the ring. Returns true when the peer was new.
func (n *Node) AddMember(baseURL string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.addMemberLocked(baseURL) {
		return false
	}
	n.rebuildRingLocked()
	return true
}

func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	n.ring = NewRing(ids, n.opts.VirtualNodes)
}

// snapshot returns the current ring and a stable member list.
func (n *Node) snapshot() (*Ring, []*member) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ms := make([]*member, 0, len(n.members))
	for _, m := range n.members {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	return n.ring, ms
}

func (n *Node) memberByID(id string) *member {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.members[id]
}

// candidates returns the failover chain for a routing key: every member
// in ring order starting at the owner, healthy nodes first (ring order
// preserved within each class). Unhealthy nodes stay in the chain — the
// health view may be stale, and trying them last costs nothing when a
// healthy replica answered first.
func (n *Node) candidates(key uint64) []*member {
	ring, _ := n.snapshot()
	ids := ring.Replicas(key, 0)
	healthy := make([]*member, 0, len(ids))
	var suspect []*member
	for _, id := range ids {
		m := n.memberByID(id)
		if m == nil {
			continue
		}
		if m.healthy.Load() {
			healthy = append(healthy, m)
		} else {
			suspect = append(suspect, m)
		}
	}
	return append(healthy, suspect...)
}

// markDown records a failed contact with a peer: proxy and probe
// failures both land here, so a dead node is demoted on first contact
// rather than on the next probe tick.
func (n *Node) markDown(m *member) {
	if m.self {
		return
	}
	m.healthy.Store(false)
	m.failures.Add(1)
}

func (n *Node) markUp(m *member) {
	m.healthy.Store(true)
	m.lastSeen.Store(time.Now().UnixNano())
}

// --- health probing -------------------------------------------------

func (n *Node) probeLoop() {
	defer n.wg.Done()
	n.announce() // tell configured peers we exist (no-op if they know)
	n.probeAll()
	ticker := time.NewTicker(n.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.probeAll()
		}
	}
}

// probeAll checks every peer concurrently. Probes are cheap (a static
// JSON body) and bounded by ProbeTimeout, so a wedged peer costs one
// goroutine-interval, not a head-of-line stall for the others.
func (n *Node) probeAll() {
	_, ms := n.snapshot()
	var wg sync.WaitGroup
	for _, m := range ms {
		if m.self {
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			if n.probe(m) {
				n.markUp(m)
			} else {
				n.markDown(m)
			}
		}(m)
	}
	wg.Wait()
}

func (n *Node) probe(m *member) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/cluster/health", nil)
	if err != nil {
		return false
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	// The health body advertises cache warmth; record the peer's disk
	// tier so the membership view shows which members hold durable
	// results (a just-restarted peer reports disk_entries > 0 while its
	// memory tier is still empty).
	var h HealthInfo
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h) == nil {
		m.warmDisk.Store(h.DiskEntries)
	}
	return true
}

// announce joins this node to every known peer and merges the
// membership each returns, so a node pointed at any live member learns
// the whole cluster. Rounds repeat while the merge keeps teaching us
// new members (bounded: membership only grows), so members discovered
// *from* a join response are announced to as well — otherwise they
// would never learn about us and the cluster would run with divergent
// rings. Best-effort: static --peers lists remain the source of truth
// when every node is started with the full list.
func (n *Node) announce() {
	announced := map[string]bool{n.id: true}
	for round := 0; round < 8; round++ {
		if !n.announceRound(announced) {
			return // everyone known has been told
		}
	}
}

// announceRound joins to every not-yet-announced member and returns
// whether any new announcements were made.
func (n *Node) announceRound(announced map[string]bool) bool {
	_, ms := n.snapshot()
	progressed := false
	for _, m := range ms {
		if m.self || announced[m.id] {
			continue
		}
		announced[m.id] = true
		progressed = true
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
		body, _ := json.Marshal(JoinRequest{URL: n.opts.Self})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/cluster/join", strings.NewReader(string(body)))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.opts.HTTP.Do(req)
		cancel()
		if err != nil {
			continue
		}
		var mem Membership
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&mem) == nil {
			for _, mi := range mem.Members {
				if mi.URL != "" {
					n.AddMember(mi.URL)
				}
			}
		}
		resp.Body.Close()
	}
	return progressed
}

// --- wire types ------------------------------------------------------

// JoinRequest is the POST /v1/cluster/join body.
type JoinRequest struct {
	URL string `json:"url"`
}

// HealthInfo is the GET /v1/cluster/health body: liveness plus cache
// warmth, so peers (and operators) can see that a restarted node still
// owns its previously computed results on disk.
type HealthInfo struct {
	OK           bool   `json:"ok"`
	ID           string `json:"id"`
	URL          string `json:"url"`
	CacheEntries int    `json:"cache_entries"` // in-memory tier
	DiskEntries  int64  `json:"disk_entries"`  // durable tier (0 without --data-dir)
	DiskBytes    int64  `json:"disk_bytes,omitempty"`
}

// MemberInfo is one row of the membership document.
type MemberInfo struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Self     bool      `json:"self,omitempty"`
	Healthy  bool      `json:"healthy"`
	LastSeen time.Time `json:"last_seen,omitempty"`
	Failures int64     `json:"failures,omitempty"`
	// DiskEntries is the member's advertised durable-cache size (its
	// last health probe; self reads its own store directly).
	DiskEntries int64 `json:"disk_entries,omitempty"`
}

// Membership is the GET /v1/cluster body: this node's view of the ring.
type Membership struct {
	Self         string       `json:"self"` // this node's id
	VirtualNodes int          `json:"virtual_nodes"`
	Members      []MemberInfo `json:"members"`
}

// Membership returns this node's current membership view.
func (n *Node) Membership() Membership {
	_, ms := n.snapshot()
	out := Membership{Self: n.id, VirtualNodes: n.opts.VirtualNodes}
	for _, m := range ms {
		mi := MemberInfo{
			ID: m.id, URL: m.url, Self: m.self,
			Healthy: m.healthy.Load(), Failures: m.failures.Load(),
			DiskEntries: m.warmDisk.Load(),
		}
		if m.self {
			_, disk, _ := n.mgr.CacheSizes()
			mi.DiskEntries = int64(disk)
		}
		if ns := m.lastSeen.Load(); ns > 0 {
			mi.LastSeen = time.Unix(0, ns)
		}
		out.Members = append(out.Members, mi)
	}
	return out
}

// ClusterStats is the per-node routing section added to /v1/stats.
type ClusterStats struct {
	NodeID    string       `json:"node_id"`
	SelfURL   string       `json:"self_url"`
	RingNodes int          `json:"ring_nodes"`
	RingShare float64      `json:"ring_share"` // fraction of the key space this node owns
	Members   []MemberInfo `json:"members"`

	JobsOwned     int64 `json:"jobs_owned"`     // cluster submissions run locally
	JobsProxied   int64 `json:"jobs_proxied"`   // submissions forwarded to a peer
	StatusProxied int64 `json:"status_proxied"` // status/cancel/frames forwarded by id prefix
	Failovers     int64 `json:"failovers"`      // submissions re-routed past a dead replica
}

// NodeStats is the cluster-mode GET /v1/stats body: the single-node
// serve.Stats flattened, plus the routing section.
type NodeStats struct {
	serve.Stats
	Cluster ClusterStats `json:"cluster"`
}

// Stats returns the local stats with the routing section attached.
func (n *Node) Stats() NodeStats {
	ring, _ := n.snapshot()
	mem := n.Membership()
	return NodeStats{
		Stats: n.mgr.Stats(),
		Cluster: ClusterStats{
			NodeID:        n.id,
			SelfURL:       n.opts.Self,
			RingNodes:     ring.Len(),
			RingShare:     ring.Shares()[n.id],
			Members:       mem.Members,
			JobsOwned:     n.jobsOwned.Load(),
			JobsProxied:   n.jobsProxied.Load(),
			StatusProxied: n.statusProxied.Load(),
			Failovers:     n.failovers.Load(),
		},
	}
}

// ClusterTotals sums the headline counters across reachable members.
type ClusterTotals struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Computed    int64 `json:"computed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	DiskHits    int64 `json:"disk_hits"`
	Spills      int64 `json:"spills"`
	DiskEntries int64 `json:"disk_entries"`
	Recovered   int64 `json:"recovered_jobs"`
	Interrupted int64 `json:"interrupted_jobs"`
	JobsOwned   int64 `json:"jobs_owned"`
	JobsProxied int64 `json:"jobs_proxied"`
	Failovers   int64 `json:"failovers"`
}

// MemberStats is one member's contribution to the aggregate (Stats nil
// when the member was unreachable).
type MemberStats struct {
	ID      string     `json:"id"`
	URL     string     `json:"url"`
	Healthy bool       `json:"healthy"`
	Error   string     `json:"error,omitempty"`
	Stats   *NodeStats `json:"stats,omitempty"`
}

// ClusterAggregate is the GET /v1/cluster/stats body: every member's
// /v1/stats merged into cluster-wide totals.
type ClusterAggregate struct {
	Nodes   int           `json:"nodes"`
	Healthy int           `json:"healthy"`
	Totals  ClusterTotals `json:"totals"`
	Members []MemberStats `json:"members"`
}

// AggregateStats fans GET /v1/stats out to every member (self answers
// locally) and merges the results. Unreachable members appear with an
// error and contribute nothing to the totals.
func (n *Node) AggregateStats(ctx context.Context) ClusterAggregate {
	_, ms := n.snapshot()
	agg := ClusterAggregate{Nodes: len(ms)}
	results := make([]MemberStats, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			r := MemberStats{ID: m.id, URL: m.url}
			if m.self {
				st := n.Stats()
				r.Stats, r.Healthy = &st, true
			} else if st, err := n.fetchStats(ctx, m); err != nil {
				r.Error = err.Error()
			} else {
				r.Stats, r.Healthy = st, true
			}
			results[i] = r
		}(i, m)
	}
	wg.Wait()
	for _, r := range results {
		agg.Members = append(agg.Members, r)
		if r.Stats == nil {
			continue
		}
		agg.Healthy++
		s := r.Stats
		agg.Totals.Submitted += s.Submitted
		agg.Totals.Completed += s.Completed
		agg.Totals.Computed += s.Computed
		agg.Totals.Failed += s.Failed
		agg.Totals.Canceled += s.Canceled
		agg.Totals.Rejected += s.Rejected
		agg.Totals.CacheHits += s.CacheHits
		agg.Totals.CacheMisses += s.CacheMisses
		agg.Totals.DiskHits += s.DiskHits
		agg.Totals.Spills += s.Spills
		agg.Totals.DiskEntries += int64(s.DiskEntries)
		agg.Totals.Recovered += s.RecoveredJobs
		agg.Totals.Interrupted += s.InterruptedJobs
		agg.Totals.JobsOwned += s.Cluster.JobsOwned
		agg.Totals.JobsProxied += s.Cluster.JobsProxied
		agg.Totals.Failovers += s.Cluster.Failovers
	}
	return agg
}

func (n *Node) fetchStats(ctx context.Context, m *member) (*NodeStats, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s returned %s", m.url, resp.Status)
	}
	var st NodeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// --- routing keys and job ids ----------------------------------------

// RouteKey computes the routing key of a submission: the canonical hash
// the owner's cache will use, mapped onto the ring's key space. Frames
// submissions route identically — they bypass the cache, but keeping
// them on the owner means the whole lifecycle of a config lives on one
// node.
//
// It also returns the normalized config, and the router forwards THAT,
// not the raw client body: normalization fills machine-dependent
// defaults (Threads defaults to the local GOMAXPROCS), so on a
// heterogeneous cluster the owner re-deriving defaults from the raw
// config could compute a different hash than the one it was routed by,
// splitting one submission's cache entry across nodes. Forwarding the
// normalized form makes the entry node's canonicalization authoritative
// — normalization is idempotent (FuzzConfigCanonicalHash), so the owner
// lands on exactly the routed hash.
func RouteKey(cfg core.Config, frames bool) (core.Config, string, uint64, error) {
	norm, hash, err := serve.NormalizeSubmission(cfg, frames)
	if err != nil {
		return cfg, "", 0, err
	}
	return norm, hash, core.HashPoint(hash), nil
}

// prefixID namespaces a manager-local job id with this node's id.
func (n *Node) prefixID(local string) string { return n.id + "." + local }

// SplitJobID splits a cluster job id "n1a2b3c4.j-000017" into node and
// local parts. Unprefixed ids return ("", id, false).
func SplitJobID(id string) (node, local string, ok bool) {
	i := strings.IndexByte(id, '.')
	if i <= 0 || i == len(id)-1 {
		return "", id, false
	}
	return id[:i], id[i+1:], true
}
