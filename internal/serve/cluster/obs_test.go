package cluster_test

// Cluster-tier observability acceptance: the merged distributed trace
// behind GET /v1/trace/{job} across proxy hops and replica failover,
// the /metrics exposition on every node, and the JSON-stats contract
// for the cluster counters.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"easypap/internal/serve"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
	"easypap/internal/trace"
)

// flatSpans walks a TraceDoc's nested spans into a flat list.
func flatSpans(nodes []*trace.SpanNode) []trace.Span {
	var out []trace.Span
	var walk func(n *trace.SpanNode)
	walk = func(n *trace.SpanNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range nodes {
		walk(n)
	}
	return out
}

// assertConnectedTrace checks the span tree is one connected component:
// starting from the node of the earliest span (the entry node), every
// node in doc.Nodes is reachable over peer edges (span.Node — span.Peer).
func assertConnectedTrace(t *testing.T, doc *serve.TraceDoc) {
	t.Helper()
	spans := flatSpans(doc.Spans)
	if len(spans) == 0 {
		t.Fatalf("trace %s for %s has no spans", doc.TraceID, doc.Job)
	}
	adj := make(map[string]map[string]bool)
	link := func(a, b string) {
		if adj[a] == nil {
			adj[a] = make(map[string]bool)
		}
		adj[a][b] = true
	}
	entry := spans[0].Node
	for _, s := range spans {
		if s.Start < spans[0].Start {
			entry = s.Node
		}
		if s.Peer != "" && s.Peer != s.Node {
			link(s.Node, s.Peer)
			link(s.Peer, s.Node)
		}
	}
	reach := map[string]bool{entry: true}
	frontier := []string{entry}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for p := range adj[n] {
			if !reach[p] {
				reach[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	for _, n := range doc.Nodes {
		if !reach[n] {
			t.Errorf("trace %s: node %s is disconnected from entry %s (nodes %v)",
				doc.TraceID, n, entry, doc.Nodes)
		}
	}
}

func stageCount(spans []trace.Span) map[string]int {
	m := make(map[string]int)
	for _, s := range spans {
		m[s.Stage]++
	}
	return m
}

// TestClusterTraceProxyAndReplicaFailover is the observability
// acceptance scenario: a submission entering at a non-owner proxies to
// the remote owner (pass 1), and — once the owner is unreachable from
// the entry node — fails over to the replica (pass 2). Both passes must
// yield ONE connected span tree from GET /v1/trace/{job} naming every
// node the request touched.
func TestClusterTraceProxyAndReplicaFailover(t *testing.T) {
	const R = 2
	cc := startChaosCluster(t, 3, R)
	ctx := context.Background()

	cfg := mandelCfg(2, 16)
	_, _, key, err := cluster.RouteKey(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(cc.urls))
	byID := make(map[string]int)
	for i, u := range cc.urls {
		ids[i] = cluster.NodeID(u)
		byID[ids[i]] = i
	}
	chain := cluster.NewRing(ids, 0).Replicas(key, R) // [owner, replica]
	owner, replica := byID[chain[0]], byID[chain[1]]
	entry := 3 - owner - replica // the node on neither role: forced proxy

	// --- pass 1: proxied submission, merged trace ---------------------
	cl := client.New(cc.urls[entry])
	st, err := cl.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil || st.State != serve.JobDone {
		t.Fatalf("pass 1 ended state=%v err=%v", st.State, err)
	}
	if !strings.HasPrefix(st.ID, ids[owner]+".") {
		t.Fatalf("job %s not owned by %s — ring routing broke", st.ID, ids[owner])
	}

	doc, err := cl.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	nodes := strings.Join(doc.Nodes, ",")
	for _, want := range []string{ids[entry], ids[owner]} {
		if !strings.Contains(nodes, want) {
			t.Fatalf("pass 1 trace nodes %v missing %s", doc.Nodes, want)
		}
	}
	spans := flatSpans(doc.Spans)
	stages := stageCount(spans)
	for _, want := range []string{serve.StageProxy, serve.StageAdmit, serve.StageQueue, serve.StageCompute} {
		if stages[want] == 0 {
			t.Errorf("pass 1 trace missing a %s span: %v", want, stages)
		}
	}
	assertConnectedTrace(t, doc)

	// Replication settles before the failover pass: the replica holds a
	// durable copy the failover can answer from.
	waitFor(t, "replication to settle", func() bool {
		return cc.replicaCount(hashOf(t, cfg)) >= R
	})

	// --- pass 2: owner unreachable from entry, replica failover -------
	cc.chaos[entry].Kill(cc.hosts[owner])
	st2, err := cl.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = cl.Wait(ctx, st2.ID); err != nil || st2.State != serve.JobDone {
		t.Fatalf("pass 2 ended state=%v err=%v", st2.State, err)
	}
	if !strings.HasPrefix(st2.ID, ids[replica]+".") {
		t.Fatalf("failover job %s not on replica %s", st2.ID, ids[replica])
	}

	doc2, err := cl.Trace(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	spans2 := flatSpans(doc2.Spans)
	var failedProxy, okProxy bool
	for _, s := range spans2 {
		if s.Stage == serve.StageProxy && s.Node == ids[entry] {
			if s.Err != "" && s.Peer == ids[owner] {
				failedProxy = true
			}
			if s.Err == "" && s.Peer == ids[replica] {
				okProxy = true
			}
		}
	}
	if !failedProxy || !okProxy {
		t.Errorf("failover trace should show a failed proxy to the owner and a successful one to the replica:\n%+v", spans2)
	}
	if stageCount(spans2)[serve.StageCacheDisk] == 0 {
		t.Errorf("failover answer should come from the replica's disk tier: %v", stageCount(spans2))
	}
	assertConnectedTrace(t, doc2)
}

// metricValue extracts the value of the first sample line starting with
// prefix, or -1 when absent.
func metricValue(text, prefix string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
					return v
				}
			}
		}
	}
	return -1
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestClusterMetricsEveryNode: each member serves /metrics with the
// cluster series present, gossip histogram counts monotone between
// scrapes, and the member gauge agreeing with the ring.
func TestClusterMetricsEveryNode(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 1, QueueDepth: 16})
	for i, url := range tc.urls {
		text := scrape(t, url)
		for _, series := range []string{
			"easypapd_ring_version ",
			"easypapd_ring_nodes 3",
			`easypapd_cluster_members{state="alive"} 3`,
			"easypapd_replication_lag ",
			`easypapd_stage_ns_count{stage="gossip"}`,
			"easypapd_jobs_submitted_total ",
		} {
			if !strings.Contains(text, series) {
				t.Errorf("node %d metrics missing %q", i, series)
			}
		}
		first := metricValue(text, `easypapd_stage_ns_count{stage="gossip"}`)
		if first < 0 {
			t.Fatalf("node %d: no gossip histogram count", i)
		}
		waitFor(t, "gossip histogram to advance", func() bool {
			return metricValue(scrape(t, url), `easypapd_stage_ns_count{stage="gossip"}`) > first
		})
	}
}

// TestClusterStatsCountersAlwaysPresent pins the cluster half of the
// stats JSON contract: replication counters serialize even at zero.
func TestClusterStatsCountersAlwaysPresent(t *testing.T) {
	raw, err := json.Marshal(cluster.ClusterStats{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"replica_pushed":0`, `"replica_dropped":0`, `"replica_fetched":0`,
		`"rebalanced":0`, `"rebalance_bytes":0`,
		`"jobs_owned":0`, `"jobs_proxied":0`, `"status_proxied":0`, `"failovers":0`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("zero-valued ClusterStats is missing %s: %s", key, raw)
		}
	}
}
