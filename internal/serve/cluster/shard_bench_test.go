package cluster_test

// Benchmarks behind BENCH_dist.json: what a distributed single-job run
// actually costs. Three questions, all answered with real sharded runs
// over in-process httptest daemons (so numbers isolate protocol +
// software overhead from physical network latency):
//
//   - halo step cost: mean ns per per-iteration halo exchange, read from
//     the easypapd_stage_ns{stage="halo"} histogram each node exports —
//     bit-packed life rows vs raw u32 fire rows,
//   - frontier skipping: halos_skipped/halos_sent for a sparse board vs
//     a dense one,
//   - 1-vs-N shards: wall time of the same job unsharded and split 2 and
//     3 ways (on one box N shards share the same cores, so this bounds
//     the protocol overhead a real multi-host win must amortize).

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
)

// haloHistogram scrapes easypapd_stage_ns{stage="halo"} sum and count
// from one node's /metrics endpoint.
func haloHistogram(tb testing.TB, url string) (sum, count float64) {
	tb.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var dst *float64
		switch {
		case strings.HasPrefix(line, `easypapd_stage_ns_sum{stage="halo"}`):
			dst = &sum
		case strings.HasPrefix(line, `easypapd_stage_ns_count{stage="halo"}`):
			dst = &count
		default:
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			tb.Fatal(err)
		}
		*dst += v
	}
	return sum, count
}

// benchSharded submits b.N copies of cfg (seed-perturbed so the result
// cache never answers) with the given shard count and reports per-job
// wall time plus, when halos flowed, the mean ns per halo step. The
// halo histograms are sampled (first 16 steps per rank land spans; the
// histogram itself sees every step), so sum/count is the true mean.
func benchSharded(b *testing.B, cfg core.Config, shards int) {
	tc := startCluster(b, 3, serve.Options{Workers: 2, QueueDepth: 16})
	c := client.New(tc.urls[0])
	ctx := context.Background()

	var s0, c0 float64
	for _, u := range tc.urls {
		s, n := haloHistogram(b, u)
		s0, c0 = s0+s, c0+n
	}
	var halosSent, halosSkipped, haloBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cfg
		run.Seed = int64(i)*31 + int64(shards) // fresh cache key per run
		st, err := c.SubmitShards(ctx, run, false, shards)
		if err != nil {
			b.Fatal(err)
		}
		if !st.State.Terminal() {
			if st, err = c.Wait(ctx, st.ID); err != nil {
				b.Fatal(err)
			}
		}
		if st.State != serve.JobDone || st.Result == nil {
			b.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		halosSent += st.Result.HalosSent
		halosSkipped += st.Result.HalosSkipped
		haloBytes += st.Result.HaloBytes
	}
	b.StopTimer()
	var s1, c1 float64
	for _, u := range tc.urls {
		s, n := haloHistogram(b, u)
		s1, c1 = s1+s, c1+n
	}
	if steps := c1 - c0; steps > 0 {
		b.ReportMetric((s1-s0)/steps, "ns/halo")
		b.ReportMetric(float64(haloBytes)/float64(halosSent+1), "B/halo")
	}
	if halosSent+halosSkipped > 0 {
		b.ReportMetric(float64(halosSkipped)/float64(halosSent+halosSkipped), "skipped-frac")
	}
}

func distCfg(kernel, arg string, iters int) core.Config {
	return core.Config{
		Kernel: kernel, Variant: "mpi_omp", Dim: 128, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 2, Arg: arg,
	}
}

// Halo step cost, bit-packed (life sends 1 bit/cell) vs raw (fire sends
// 4 B/cell), dense boards so every step really exchanges.
func BenchmarkDistHaloPackedLife(b *testing.B) { benchSharded(b, distCfg("life", "random", 50), 3) }
func BenchmarkDistHaloRawFire(b *testing.B)    { benchSharded(b, distCfg("fire", "forest", 50), 3) }

// Frontier skipping: sparse (one blinker) vs dense (random soup).
func BenchmarkDistSparseLife(b *testing.B) { benchSharded(b, distCfg("life", "blinker", 50), 3) }

// Same job, 1 / 2 / 3 shards. Shards=1 is the plain local run.
func BenchmarkDistShards1(b *testing.B) { benchSharded(b, distCfg("life", "random", 50), 1) }
func BenchmarkDistShards2(b *testing.B) { benchSharded(b, distCfg("life", "random", 50), 2) }
func BenchmarkDistShards3(b *testing.B) { benchSharded(b, distCfg("life", "random", 50), 3) }
