package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SWIM-style gossip membership. Every member is in one of three states
// with an incarnation number attached:
//
//	alive   — reachable, on the ring
//	suspect — missed probes, still on the ring (anti-flap: suspicion
//	          must not move keys), declared dead after SuspectTimeout
//	dead    — off the ring; probed on an exponential backoff so a
//	          recovered node is noticed without hammering a corpse
//
// Views travel piggybacked on the health probe: each probe is a POST
// /v1/cluster/gossip carrying the sender's full view, answered with the
// receiver's view, and both sides merge. Merging follows the SWIM
// precedence rules, with the incarnation number — owned exclusively by
// the member it describes — as the tie-breaker:
//
//	alive{i}   overrides alive{j}/suspect{j}  iff i > j
//	suspect{i} overrides alive{j}             iff i >= j
//	suspect{i} overrides suspect{j}           iff i > j
//	dead{i}    overrides alive{j}/suspect{j}  iff i >= j
//	alive{i}   overrides dead{j}              iff i > j   (rejoin)
//
// Refutation closes the loop: a member that sees itself reported
// suspect or dead at incarnation >= its own bumps its incarnation past
// the claim, and its next gossip round overrides the rumor. A restarted
// node (incarnation reset to 0) therefore rejoins in two rounds: round
// one teaches it the dead{k} rumor about itself, round two spreads
// alive{k+1}. With every member probing every peer each interval, a
// state change reaches the whole fleet in O(log N) rounds.

// Member states. The zero value is alive so a freshly constructed
// member needs no initialization to be routable (optimistic start).
const (
	stateAlive int32 = iota
	stateSuspect
	stateDead
)

func stateName(s int32) string {
	switch s {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

func stateFromName(s string) (int32, bool) {
	switch s {
	case "alive":
		return stateAlive, true
	case "suspect":
		return stateSuspect, true
	case "dead":
		return stateDead, true
	}
	return 0, false
}

// GossipMember is one member's row in a gossip view.
type GossipMember struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	State       string `json:"state"` // "alive" | "suspect" | "dead"
	Incarnation uint64 `json:"incarnation"`
	DiskEntries int64  `json:"disk_entries,omitempty"`
}

// GossipView is the POST /v1/cluster/gossip body and response: the
// sender's self-report plus its view of everyone else. From is
// authoritative for the sender (a member reporting on itself is always
// alive, at its current incarnation).
type GossipView struct {
	From        GossipMember   `json:"from"`
	RingVersion uint64         `json:"ring_version"`
	Members     []GossipMember `json:"members"`
}

// view renders this node's current membership view for gossip.
func (n *Node) view() GossipView {
	_, ms := n.snapshot()
	v := GossipView{RingVersion: n.ringVersion.Load()}
	for _, m := range ms {
		gm := GossipMember{
			ID:          m.id,
			URL:         m.url,
			State:       stateName(m.state.Load()),
			Incarnation: m.incarnation.Load(),
			DiskEntries: m.warmDisk.Load(),
		}
		if m.self {
			gm.State = stateName(stateAlive) // self-report is always alive
			_, disk, _ := n.mgr.CacheSizes()
			gm.DiskEntries = int64(disk)
			v.From = gm
		}
		v.Members = append(v.Members, gm)
	}
	return v
}

// mergeView folds a received view into the local membership, applying
// the SWIM precedence rules, and rebuilds the ring when the routable
// (non-dead) member set changed. It returns true when anything about
// the membership changed (used by tests; the ring swap is internal).
func (n *Node) mergeView(v GossipView) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	changed := false
	for _, gm := range v.Members {
		st, ok := stateFromName(gm.State)
		if !ok || gm.ID == "" || gm.URL == "" {
			continue
		}
		// The sender's self-report wins over its row in Members if both
		// appear (they should agree; From is just decoded like any row).
		if n.applyRemoteLocked(gm, st) {
			changed = true
		}
	}
	if changed {
		n.rebuildRingLocked()
	}
	return changed
}

// applyRemoteLocked applies one remote claim about a member. Caller
// holds n.mu. Returns true when local state changed.
func (n *Node) applyRemoteLocked(gm GossipMember, claimed int32) bool {
	m, ok := n.members[gm.ID]
	if !ok {
		// A member we have never heard of: adopt the claim as-is. This is
		// how --join propagates — the joining node appears in its contact
		// peer's view and every gossip exchange spreads it further.
		url := strings.TrimRight(gm.URL, "/")
		if NodeID(url) != gm.ID {
			return false // id must be derivable from the URL; drop forgeries
		}
		m = &member{id: gm.ID, url: url}
		m.state.Store(claimed)
		m.incarnation.Store(gm.Incarnation)
		if claimed == stateSuspect {
			m.suspectAt.Store(time.Now().UnixNano())
		}
		m.warmDisk.Store(gm.DiskEntries)
		n.members[gm.ID] = m
		return true
	}
	if gm.DiskEntries > 0 {
		m.warmDisk.Store(gm.DiskEntries)
	}
	if m.self {
		// A rumor about us. Alive needs no action; suspect or dead at our
		// incarnation (or higher — a view from a future generation) is
		// refuted by bumping past the claim, so our next self-report
		// overrides it everywhere.
		if claimed != stateAlive && gm.Incarnation >= n.selfIncarnation() {
			n.setIncarnation(gm.Incarnation + 1)
			return true
		}
		return false
	}
	cur, inc := m.state.Load(), m.incarnation.Load()
	override := false
	switch claimed {
	case stateAlive:
		override = gm.Incarnation > inc
	case stateSuspect:
		override = gm.Incarnation > inc || (gm.Incarnation == inc && cur == stateAlive)
	case stateDead:
		override = gm.Incarnation >= inc && cur != stateDead
	}
	if !override {
		return false
	}
	n.transitionLocked(m, claimed, gm.Incarnation)
	return cur != claimed || inc != gm.Incarnation
}

// transitionLocked moves m to (state, incarnation), maintaining the
// suspect clock and probe backoff. Caller holds n.mu (or is inside
// NewNode). The ring is NOT rebuilt here — callers batch transitions
// and rebuild once.
func (n *Node) transitionLocked(m *member, st int32, inc uint64) {
	prev := m.state.Load()
	m.state.Store(st)
	m.incarnation.Store(inc)
	switch st {
	case stateAlive:
		m.suspectAt.Store(0)
		m.probeFails.Store(0)
		m.nextProbe.Store(0)
		m.lastSeen.Store(time.Now().UnixNano())
	case stateSuspect:
		if prev != stateSuspect {
			m.suspectAt.Store(time.Now().UnixNano())
		}
	case stateDead:
		m.suspectAt.Store(0)
	}
}

func (n *Node) selfIncarnation() uint64 {
	return n.members[n.id].incarnation.Load()
}

// setIncarnation bumps self past a refuted claim (monotonic).
func (n *Node) setIncarnation(inc uint64) {
	self := n.members[n.id]
	for {
		cur := self.incarnation.Load()
		if inc <= cur {
			return
		}
		if self.incarnation.CompareAndSwap(cur, inc) {
			return
		}
	}
}

// gossipWith performs one probe: POST our view to m, merge its reply.
// A successful exchange is direct first-hand evidence of liveness, but
// revival of a suspect/dead member still flows through the merge — the
// peer saw our suspicion in the request, refuted it, and its From row
// in the response carries the overriding incarnation.
func (n *Node) gossipWith(m *member) bool {
	begin := time.Now()
	defer func() {
		if n.gossipHist != nil {
			n.gossipHist.Observe(time.Since(begin).Nanoseconds())
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
	defer cancel()
	body, err := json.Marshal(n.view())
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/cluster/gossip", strings.NewReader(string(body)))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var peer GossipView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&peer); err != nil {
		return false
	}
	if peer.From.ID != "" && peer.From.ID != m.id {
		return false // someone else answering on that address is not m being alive
	}
	n.mergeView(peer)
	m.lastSeen.Store(time.Now().UnixNano())
	return true
}

// suspect marks a failed contact: alive members degrade to suspect
// (ring unchanged — flapping must not move keys), suspect members are
// left to the SuspectTimeout sweep, dead members just extend their
// probe backoff. The suspicion spreads on the next gossip rounds.
func (n *Node) suspect(m *member) {
	if m.self {
		return
	}
	m.failures.Add(1)
	fails := m.probeFails.Add(1)
	// Exponential probe backoff, capped: after k consecutive failures the
	// next probe waits min(interval<<k, cap). A flapping peer therefore
	// costs geometrically less probing, and — because passive failure
	// only ever yields suspect, never dead — cannot oscillate the ring.
	backoff := n.opts.ProbeInterval << min(fails, 10)
	if backoff > n.opts.ProbeBackoffCap {
		backoff = n.opts.ProbeBackoffCap
	}
	m.nextProbe.Store(time.Now().Add(backoff).UnixNano())
	if m.state.Load() != stateAlive {
		return
	}
	n.mu.Lock()
	if m.state.Load() == stateAlive {
		n.transitionLocked(m, stateSuspect, m.incarnation.Load())
	}
	n.mu.Unlock()
}

// sweepSuspects declares dead every member that has been suspect longer
// than SuspectTimeout, rebuilding the ring once if any fell.
func (n *Node) sweepSuspects() {
	deadline := time.Now().Add(-n.opts.SuspectTimeout).UnixNano()
	_, ms := n.snapshot()
	var fallen []*member
	for _, m := range ms {
		if m.self || m.state.Load() != stateSuspect {
			continue
		}
		if at := m.suspectAt.Load(); at != 0 && at < deadline {
			fallen = append(fallen, m)
		}
	}
	if len(fallen) == 0 {
		return
	}
	n.mu.Lock()
	changed := false
	for _, m := range fallen {
		if m.state.Load() == stateSuspect {
			n.transitionLocked(m, stateDead, m.incarnation.Load())
			changed = true
		}
	}
	if changed {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
}

// HandleGossip is the POST /v1/cluster/gossip exchange: merge the
// sender's view, answer with ours (post-merge, so the response already
// reflects — and refutes, where needed — what the sender just told us).
func (n *Node) HandleGossip(w io.Writer, r io.Reader) error {
	var v GossipView
	if err := json.NewDecoder(io.LimitReader(r, 1<<22)).Decode(&v); err != nil {
		return fmt.Errorf("cluster: decoding gossip view: %w", err)
	}
	n.mergeView(v)
	return json.NewEncoder(w).Encode(n.view())
}
