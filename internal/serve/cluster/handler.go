package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/store"
	"easypap/internal/trace"
)

// Handler serves the cluster-mode /v1 API. It is a superset of the
// single-node API (internal/serve/http.go): the job endpoints route by
// ring ownership and job-id prefix, /v1/stats gains a "cluster"
// section, and /v1/cluster* expose membership, health, join and the
// aggregated view.
//
//	POST   /v1/jobs                submit — proxied to the ring owner
//	GET    /v1/jobs/{id}           status — follows the id's node prefix
//	DELETE /v1/jobs/{id}           cancel — follows the id's node prefix
//	GET    /v1/jobs/{id}/frames    frame stream — follows the id's node prefix
//	GET    /v1/stats               local stats + cluster section
//	GET    /v1/kernels             local kernel registry
//	GET    /v1/trace/{id}          merged span tree (?scope=local: this node only)
//	GET    /metrics                Prometheus exposition (manager + cluster series)
//	GET    /v1/cluster             membership + health view
//	GET    /v1/cluster/health      liveness probe
//	POST   /v1/cluster/gossip      SWIM view exchange (the probe wire)
//	POST   /v1/cluster/join        add a member {"url": "..."}
//	GET    /v1/cluster/stats       cluster-aggregated stats
//	GET    /v1/cluster/owner/{hash} ring ownership of a config hash
//	GET    /v1/cluster/entries     local durable entry hashes
//	GET    /v1/cluster/entries/{hash}  one entry, EZSTORE1 wire form
//	PUT    /v1/cluster/entries/{hash}  replicate an entry here
//	GET    /v1/cluster/spans/{trace}   this node's flat spans for a trace id
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.HandleFunc("GET /v1/trace/{id}", n.handleTrace)
	mux.HandleFunc("GET /v1/cluster/spans/{trace}", n.handleSpans)
	mux.Handle("GET /metrics", n.mgr.Metrics().Handler())
	mux.HandleFunc("GET /v1/jobs/{id}", n.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/frames", n.handleFrames)
	mux.HandleFunc("POST /v1/shard/start", n.handleShardStart)
	mux.HandleFunc("POST /v1/shard/halo", n.handleShardHalo)
	mux.HandleFunc("POST /v1/shard/abort", n.handleShardAbort)

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, n.Stats())
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, core.KernelList())
	})

	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, n.Membership())
	})
	mux.HandleFunc("GET /v1/cluster/health", func(w http.ResponseWriter, r *http.Request) {
		mem, disk, diskBytes := n.mgr.CacheSizes()
		serve.WriteJSON(w, http.StatusOK, HealthInfo{
			OK: true, ID: n.id, URL: n.opts.Self,
			CacheEntries: mem, DiskEntries: int64(disk), DiskBytes: diskBytes,
		})
	})
	mux.HandleFunc("POST /v1/cluster/gossip", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := n.HandleGossip(w, io.LimitReader(r.Body, 1<<22)); err != nil {
			serve.WriteError(w, http.StatusBadRequest, err)
		}
	})
	mux.HandleFunc("GET /v1/cluster/entries", func(w http.ResponseWriter, r *http.Request) {
		hashes := n.mgr.EntryHashes()
		if hashes == nil {
			hashes = []string{}
		}
		serve.WriteJSON(w, http.StatusOK, EntryList{Node: n.id, Hashes: hashes})
	})
	mux.HandleFunc("GET /v1/cluster/entries/{hash}", func(w http.ResponseWriter, r *http.Request) {
		// Kind-agnostic: the key may name a result entry (EZSTORE1) or a
		// checkpoint (EZSNAP1); the record's magic line tells the peer
		// which decoder to use.
		body, ok := n.mgr.GetEntryWire(r.PathValue("hash"))
		if !ok {
			serve.WriteError(w, http.StatusNotFound, fmt.Errorf("cluster: no entry %s here", r.PathValue("hash")))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body)
	})
	mux.HandleFunc("PUT /v1/cluster/entries/{hash}", func(w http.ResponseWriter, r *http.Request) {
		// The body is a self-describing wire record; the path key decides
		// the expected kind. Either way the decoder re-derives the CRC and
		// the key check pins the content to the path, so a corrupt or
		// mislabeled transfer is refused, never stored.
		if key := r.PathValue("hash"); store.IsSnapshotKey(key) {
			s, err := store.DecodeSnapshot(io.LimitReader(r.Body, 1<<30))
			if err != nil {
				serve.WriteError(w, http.StatusBadRequest, err)
				return
			}
			if store.SnapshotKey(s.PrefixHash, s.Iter) != key {
				serve.WriteError(w, http.StatusBadRequest,
					fmt.Errorf("cluster: snapshot key %s does not match path %s",
						store.SnapshotKey(s.PrefixHash, s.Iter), key))
				return
			}
			if err := n.mgr.PutSnapshot(s); err != nil {
				serve.WriteError(w, http.StatusNotImplemented, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
		e, err := store.DecodeEntry(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, err)
			return
		}
		if e.Hash != r.PathValue("hash") {
			serve.WriteError(w, http.StatusBadRequest,
				fmt.Errorf("cluster: entry hash %s does not match path %s", e.Hash, r.PathValue("hash")))
			return
		}
		if err := n.mgr.PutEntry(e); err != nil {
			// 501, not 5xx-gateway: a storeless node is a config problem,
			// and the proxy layer must not read it as a dead peer.
			serve.WriteError(w, http.StatusNotImplemented, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.URL == "" {
			serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("cluster: join needs {\"url\": \"...\"}"))
			return
		}
		n.AddMember(req.URL)
		serve.WriteJSON(w, http.StatusOK, n.Membership())
	})
	mux.HandleFunc("GET /v1/cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, n.AggregateStats(r.Context()))
	})
	mux.HandleFunc("GET /v1/cluster/owner/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		key := core.HashPoint(hash)
		ring, _ := n.snapshot()
		replicas := ring.Replicas(key, 0)
		resp := map[string]any{"hash": hash, "key": key, "replicas": replicas}
		if len(replicas) > 0 {
			resp["owner"] = replicas[0]
			if m := n.memberByID(replicas[0]); m != nil {
				resp["url"] = m.url
			}
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})

	return mux
}

// handleSubmit routes a submission to the owner of its canonical config
// hash, walking the ring to the next distinct replica when a peer is
// unreachable. A request that already hopped once is served locally.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("reading submission: %w", err))
		return
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
		return
	}
	// The entry node mints the trace id (unless the client brought one);
	// every hop, replica fetch, and recompute downstream carries it in
	// the X-Easypap-Trace header, which is what makes GET /v1/trace able
	// to stitch one tree out of many nodes' span rings.
	traceID := r.Header.Get(serve.TraceHeader)
	if traceID == "" {
		traceID = trace.NewTraceID()
	}
	if r.Header.Get(HopHeader) != "" {
		n.submitLocal(w, req, traceID)
		return
	}
	norm, _, key, err := RouteKey(req.Config, req.Frames)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// Forward the normalized config, not the raw body: the entry node's
	// canonicalization is authoritative (see RouteKey), so the owner's
	// cache key always equals the hash this request was routed by.
	req.Config = norm
	fwd, err := json.Marshal(req)
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	r.Header.Set(serve.TraceHeader, traceID) // proxy() copies it downstream
	var lastErr error
	for _, m := range n.candidates(key) {
		if m.self {
			n.submitLocal(w, req, traceID)
			return
		}
		begin := time.Now()
		ok, err := n.proxy(w, r, m, "/v1/jobs", fwd)
		n.observeSpan(n.proxyHist, traceID, serve.StageProxy, m.id, begin, time.Now(), err)
		if ok {
			n.jobsProxied.Add(1)
			return
		}
		// The replica is unreachable (or draining): demote it and walk on.
		n.markDown(m)
		n.failovers.Add(1)
		lastErr = err
	}
	serve.WriteError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: no reachable replica for submission (last error: %v)", lastErr))
}

// submitLocal admits the job on the local manager and namespaces its id.
// A sharded submission lands here on its ring owner, which makes the
// owner the session coordinator (shard.go).
func (n *Node) submitLocal(w http.ResponseWriter, req serve.SubmitRequest, traceID string) {
	st, err := n.mgr.SubmitShards(req.Config, req.Frames, traceID, req.Shards)
	if err != nil {
		serve.WriteSubmitError(w, err)
		return
	}
	n.jobsOwned.Add(1)
	st.ID = n.prefixID(st.ID)
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK // cache hit: the result is already here
	}
	serve.WriteJSON(w, code, st)
}

// handleJob serves GET (status) and DELETE (cancel), following the job
// id's node prefix: local ids are answered by the local manager, remote
// ids proxy to the owning node. There is no failover for these — the
// job record lives exactly where the id says.
func (n *Node) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, local, prefixed := SplitJobID(id)
	if !prefixed || node == n.id {
		var st *serve.JobStatus
		var err error
		if r.Method == http.MethodDelete {
			st, err = n.mgr.Cancel(local)
		} else {
			st, err = n.mgr.Get(local)
		}
		if err != nil {
			serve.WriteError(w, serve.JobStatusCode(err), err)
			return
		}
		st.ID = n.prefixID(st.ID)
		serve.WriteJSON(w, http.StatusOK, st)
		return
	}
	n.proxyJobRequest(w, r, node, "/v1/jobs/"+id)
}

// handleFrames streams a job's frames. Locally owned jobs subscribe to
// the manager's hub directly. For a peer-owned job this node acts as a
// viewing edge: all local viewers share ONE upstream stream per (job,
// format), fanned out through a local hub (edge.go) — instead of one
// owner connection per viewer.
func (n *Node) handleFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, local, prefixed := SplitJobID(id)
	format := serve.FrameFormat(r)
	if !prefixed || node == n.id {
		rd, err := n.mgr.FrameStream(r.Context(), local, format)
		if err != nil {
			serve.WriteError(w, serve.JobStatusCode(err), err)
			return
		}
		defer rd.Close()
		w.Header().Set("Content-Type", serve.FrameContentType(format))
		w.WriteHeader(http.StatusOK)
		streamAll(w, rd)
		return
	}
	m := n.memberByID(node)
	if m == nil {
		serve.WriteError(w, http.StatusNotFound,
			fmt.Errorf("cluster: job id names unknown node %q", node))
		return
	}
	n.statusProxied.Add(1)
	es, err := n.acquireEdge(r.Context(), m, id, format)
	if err != nil {
		var ue *edgeUpstreamError
		if errors.As(err, &ue) {
			// Relay the owner's answer (404 unknown job, 409 no frames, ...)
			// verbatim.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(ue.Status)
			w.Write(ue.Body)
			return
		}
		serve.WriteError(w, http.StatusBadGateway, err)
		return
	}
	defer n.releaseEdge(es)
	rd := es.hub.Subscribe(r.Context(), format)
	defer rd.Close()
	w.Header().Set("Content-Type", serve.FrameContentType(format))
	w.WriteHeader(http.StatusOK)
	streamAll(w, rd)
}

// proxyJobRequest forwards a status/cancel/frames call to the node a job
// id names.
func (n *Node) proxyJobRequest(w http.ResponseWriter, r *http.Request, nodeID, path string) {
	m := n.memberByID(nodeID)
	if m == nil {
		serve.WriteError(w, http.StatusNotFound,
			fmt.Errorf("cluster: job id names unknown node %q", nodeID))
		return
	}
	ok, err := n.proxy(w, r, m, path, nil)
	if ok {
		n.statusProxied.Add(1)
		return
	}
	n.markDown(m)
	serve.WriteError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: node %s (%s) unreachable: %v", m.id, m.url, err))
}

// proxy forwards the request to m and relays the response. It returns
// (false, err) when the peer must be considered unreachable — transport
// error, or a gateway/drain status — and nothing was written to w, so
// the caller can fail over. Any other response (including 4xx and 429)
// is relayed verbatim and counts as reached.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, m *member, path string, body []byte) (bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, m.url+path, rd)
	if err != nil {
		return false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if tid := r.Header.Get(serve.TraceHeader); tid != "" {
		req.Header.Set(serve.TraceHeader, tid)
	}
	req.Header.Set(HopHeader, n.id)
	resp, err := n.opts.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		// 503 is serve's "manager draining" answer; treat like a dead peer
		// so in-flight sweeps fail over instead of erroring out.
		return false, fmt.Errorf("cluster: %s returned %s", m.url, resp.Status)
	}
	n.markUp(m)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if rerr := streamAll(w, resp.Body); rerr != nil && rerr != io.EOF {
		// The upstream died mid-stream. Ending the chunked response
		// normally would hand the client a clean EOF on a truncated
		// stream — abort the connection instead so the truncation is
		// visible (net/http treats ErrAbortHandler as a deliberate
		// mid-response abort).
		panic(http.ErrAbortHandler)
	}
	return true, nil
}

// streamAll copies rd to w, flushing after every chunk — both the local
// frame stream and the proxied one must deliver frames as they render,
// not when the job ends. It returns rd's terminal error (io.EOF on a
// clean end; nil only when the client went away first).
func streamAll(w http.ResponseWriter, rd io.Reader) error {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 64<<10)
	for {
		nr, rerr := rd.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return nil // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return rerr
		}
	}
}
