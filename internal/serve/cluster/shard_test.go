package cluster_test

// Acceptance suites for distributed single-job execution (row-band
// sharding with frontier-aware halo exchange):
//
//   - the byte-identity battery: for every halo-capable kernel (life,
//     fire, sandpile), several seeds, and shard counts that split the
//     grid unevenly, the sharded cluster run must produce the SAME
//     image checksum and iteration count as an in-process run of the
//     same normalized config,
//   - frontier-awareness: a sparse board (one blinker) must skip more
//     halo exchanges than it performs, without changing the output,
//   - chaos: killing a shard node (or partitioning two shard neighbors)
//     mid-job must fail the job with the typed "shard_failed" error
//     within the halo timeout — never a hang — drain every shard
//     session and goroutine, and let the client resubmit unsharded
//     successfully.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/chaosnet"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
)

// shardCfg is the battery's base config: 64x64, 8x8 tiles (8 tile rows,
// so 3 shards split 3/3/2 — the uneven case the issue calls out).
func shardCfg(kernel, arg string, iters int, seed int64) core.Config {
	return core.Config{
		Kernel: kernel, Variant: "mpi_omp", Dim: 64, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 2, Arg: arg, Seed: seed,
	}
}

// singleNodeRef computes the reference result for cfg in-process (the
// normalized form a daemon would run).
func singleNodeRef(t *testing.T, cfg core.Config) core.Result {
	t.Helper()
	norm, _, err := serve.NormalizeSubmission(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.RunWith(context.Background(), norm, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Checksum == "" {
		t.Fatal("reference run produced no checksum")
	}
	return out.Result
}

// shardsExecutedTotal sums the shard-rank counter over live managers.
func shardsExecutedTotal(mgrs []*serve.Manager) int64 {
	var total int64
	for _, m := range mgrs {
		total += m.Stats().ShardsExecuted
	}
	return total
}

// TestShardedByteIdenticalToSingleNode is the equivalence battery: every
// kernel, multiple seeds, shard counts 2 and 3 (3 over 8 tile rows is
// the uneven split), plus an over-asked count that must clamp to the
// cluster size. Checksums and iteration counts must match the
// single-node reference exactly.
func TestShardedByteIdenticalToSingleNode(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2, QueueDepth: 16})
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"life-random-s3", shardCfg("life", "random", 24, 3)},
		{"life-random-s7", shardCfg("life", "random", 24, 7)},
		{"life-diag", shardCfg("life", "diag", 20, 0)},
		{"fire-forest-s3", shardCfg("fire", "forest", 40, 3)},
		{"fire-sparse-s9", shardCfg("fire", "sparse", 40, 9)},
		{"sandpile", shardCfg("sandpile", "", 60, 0)},
	}
	ctx := context.Background()
	for _, tcase := range cases {
		for _, shards := range []int{2, 3, 5} { // 5 clamps to the 3 live nodes
			// The shard count is advisory and not part of the cache key,
			// so resubmitting the identical config would be answered by
			// the result cache. Perturb the iteration count per shard
			// count to make each submission a fresh key.
			cfg := tcase.cfg
			cfg.Iterations += 3 * shards
			ref := singleNodeRef(t, cfg)
			before := shardsExecutedTotal(tc.mgrs)

			// Submit through a non-owner so the shards field rides the
			// routing hop to the coordinator.
			owner := tc.ownerIndex(cfg, false)
			c := client.New(tc.urls[(owner+1)%len(tc.urls)])
			st, err := c.SubmitShards(ctx, cfg, false, shards)
			if err != nil {
				t.Fatalf("%s shards=%d: submit: %v", tcase.name, shards, err)
			}
			if !st.State.Terminal() {
				if st, err = c.Wait(ctx, st.ID); err != nil {
					t.Fatalf("%s shards=%d: wait: %v", tcase.name, shards, err)
				}
			}
			if st.State != serve.JobDone || st.Result == nil {
				t.Fatalf("%s shards=%d: job ended %s: %s", tcase.name, shards, st.State, st.Error)
			}
			if st.Result.Checksum != ref.Checksum {
				t.Errorf("%s shards=%d: checksum %s, single-node %s — sharding changed the image",
					tcase.name, shards, st.Result.Checksum, ref.Checksum)
			}
			if st.Result.Iterations != ref.Iterations {
				t.Errorf("%s shards=%d: ran %d iterations, single-node %d",
					tcase.name, shards, st.Result.Iterations, ref.Iterations)
			}
			wantRanks := int64(shards)
			if shards > 3 {
				wantRanks = 3
			}
			if got := shardsExecutedTotal(tc.mgrs) - before; got != wantRanks {
				t.Errorf("%s shards=%d: %d shard ranks executed, want %d (cache must not have answered, and the clamp must hold)",
					tcase.name, shards, got, wantRanks)
			}
			if tc.mgrs[owner].Stats().JobsCoordinated == 0 {
				t.Errorf("%s shards=%d: owner node never counted a coordinated job", tcase.name, shards)
			}
		}
	}
}

// TestShardedSparseSkipsHalos: a lone blinker oscillates in the middle
// band, so after the priming exchange every band-boundary tile row stays
// quiet — the frontier rule must skip (nearly) every halo send, and
// skipping must not change the result.
func TestShardedSparseSkipsHalos(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2, QueueDepth: 16})
	cfg := shardCfg("life", "blinker", 50, 0)
	ref := singleNodeRef(t, cfg)

	c := client.New(tc.urls[0])
	st, err := c.SubmitShards(context.Background(), cfg, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != serve.JobDone || st.Result == nil {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Result.Checksum != ref.Checksum {
		t.Errorf("skipping halos changed the image: %s vs %s", st.Result.Checksum, ref.Checksum)
	}
	var sent, skipped int64
	for _, m := range tc.mgrs {
		s := m.Stats()
		sent += s.HalosSent
		skipped += s.HalosSkipped
	}
	if skipped <= sent {
		t.Errorf("sparse board sent %d halos but skipped only %d — frontier-aware skipping is not engaging", sent, skipped)
	}
	if st.Result.HalosSkipped == 0 {
		t.Errorf("result reports no skipped halos: %+v", st.Result)
	}
}

// --- chaos -----------------------------------------------------------

// shardChaosCluster is 3 daemons with a fast halo timeout and one
// seeded chaosnet transport per node, so shard traffic (which rides the
// node's cluster HTTP client) can be cut per-path.
type shardChaosCluster struct {
	t      *testing.T
	urls   []string
	hosts  []string
	mgrs   []*serve.Manager
	nodes  []*cluster.Node
	srvs   []*httptest.Server
	chaos  []*chaosnet.Transport
	killed []bool
}

func startShardChaosCluster(t *testing.T, n int) *shardChaosCluster {
	t.Helper()
	sc := &shardChaosCluster{
		t:      t,
		urls:   make([]string, n),
		hosts:  make([]string, n),
		mgrs:   make([]*serve.Manager, n),
		nodes:  make([]*cluster.Node, n),
		srvs:   make([]*httptest.Server, n),
		chaos:  make([]*chaosnet.Transport, n),
		killed: make([]bool, n),
	}
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		sc.srvs[i] = httptest.NewServer(swaps[i])
		sc.urls[i] = sc.srvs[i].URL
		sc.hosts[i] = hostOf(sc.urls[i])
		sc.chaos[i] = chaosnet.New(uint64(i)+41, nil)
	}
	for i := 0; i < n; i++ {
		sc.mgrs[i] = serve.NewManager(serve.Options{
			Workers: 2, QueueDepth: 16, HaloTimeout: 300 * time.Millisecond,
		})
		node, err := cluster.NewNode(sc.mgrs[i], cluster.Options{
			Self:           sc.urls[i],
			Peers:          sc.urls,
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   500 * time.Millisecond,
			SuspectTimeout: 250 * time.Millisecond,
			HTTP:           &http.Client{Transport: sc.chaos[i]},
		})
		if err != nil {
			t.Fatal(err)
		}
		sc.nodes[i] = node
		swaps[i].set(node.Handler())
	}
	t.Cleanup(func() {
		for i := range sc.nodes {
			if !sc.killed[i] {
				sc.kill(i)
			}
		}
	})
	waitFor(t, "shard chaos cluster all-alive", func() bool {
		for i, node := range sc.nodes {
			if sc.killed[i] {
				continue
			}
			mem := node.Membership()
			if len(mem.Members) != n {
				return false
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					return false
				}
			}
		}
		return true
	})
	return sc
}

func (sc *shardChaosCluster) kill(i int) {
	if sc.killed[i] {
		return
	}
	sc.killed[i] = true
	for j := range sc.chaos {
		if j != i {
			sc.chaos[j].Kill(sc.hosts[i])
		}
	}
	sc.srvs[i].Close()
	sc.nodes[i].Close()
	sc.mgrs[i].Close()
}

// partition cuts the network between nodes i and j (both stay up).
func (sc *shardChaosCluster) partition(i, j int) {
	sc.chaos[i].Kill(sc.hosts[j])
	sc.chaos[j].Kill(sc.hosts[i])
}

// ownerOf resolves which node coordinates cfg.
func (sc *shardChaosCluster) ownerOf(cfg core.Config) int {
	sc.t.Helper()
	_, _, key, err := cluster.RouteKey(cfg, false)
	if err != nil {
		sc.t.Fatal(err)
	}
	ids := make([]string, len(sc.urls))
	for i, u := range sc.urls {
		ids[i] = cluster.NodeID(u)
	}
	owner := cluster.NewRing(ids, 0).Owner(key)
	for i, id := range ids {
		if id == owner {
			return i
		}
	}
	sc.t.Fatalf("owner %s not a member", owner)
	return -1
}

// neverConverging is a sharded job that runs until canceled: blinkers
// oscillate forever, so the chaos suites control exactly when it ends.
func neverConverging() core.Config {
	return shardCfg("life", "random", 10_000_000, 5)
}

// waitShardActive blocks until every live node is executing a shard and
// halos are flowing.
func (sc *shardChaosCluster) waitShardActive() {
	sc.t.Helper()
	waitFor(sc.t, "sharded job active on every node", func() bool {
		for i, m := range sc.mgrs {
			if sc.killed[i] {
				continue
			}
			s := m.Stats()
			if s.ShardsExecuted == 0 || s.HalosSent == 0 {
				return false
			}
		}
		return true
	})
}

// drainAssert waits for shard sessions and their goroutines to drain on
// every live node after a shard failure.
func (sc *shardChaosCluster) drainAssert(baseline int) {
	sc.t.Helper()
	waitFor(sc.t, "shard sessions drained", func() bool {
		for i, m := range sc.mgrs {
			if !sc.killed[i] && m.ShardSessions() != 0 {
				return false
			}
		}
		return true
	})
	waitFor(sc.t, "goroutines back to baseline", func() bool {
		// Idle keep-alive connections from the halo burst are pool
		// reuse, not leaks — reap them so the count reflects shard
		// session goroutines only.
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+10
	})
}

// runShardChaos drives the shared chaos scenario: start a never-ending
// sharded job, inject the fault mid-run, and assert the typed-failure /
// no-hang / drain / resubmit-unsharded contract.
func runShardChaos(t *testing.T, inject func(sc *shardChaosCluster, owner int)) {
	sc := startShardChaosCluster(t, 3)
	baseline := runtime.NumGoroutine()
	cfg := neverConverging()
	owner := sc.ownerOf(cfg)
	c := client.New(sc.urls[owner])
	ctx := context.Background()

	st, err := c.SubmitShards(ctx, cfg, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("never-converging job terminal at submit: %s %s", st.State, st.Error)
	}
	sc.waitShardActive()

	faultAt := time.Now()
	inject(sc, owner)

	// The job must fail typed within the halo timeout (300ms) plus
	// transport slack — and must never hang.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	st, err = c.Wait(wctx, st.ID)
	cancel()
	if err != nil {
		t.Fatalf("job did not reach a terminal state after the fault: %v", err)
	}
	detect := time.Since(faultAt)
	if st.State != serve.JobFailed {
		t.Fatalf("job ended %s (%s), want failed", st.State, st.Error)
	}
	if st.ErrorKind != serve.ErrorKindShardFailed {
		t.Fatalf("error kind %q (%s), want %q", st.ErrorKind, st.Error, serve.ErrorKindShardFailed)
	}
	if !client.ShardFailed(st) {
		t.Fatal("client.ShardFailed must recognize the typed status")
	}
	if detect > 5*time.Second {
		t.Errorf("shard failure took %v to surface; the halo timeout is 300ms", detect)
	}

	sc.drainAssert(baseline)

	// The typed error's contract: the same config resubmitted unsharded
	// must succeed. Bound the iteration count so the retry finishes.
	retry := cfg
	retry.Iterations = 30
	st, err = c.Submit(ctx, retry, false)
	if err != nil {
		t.Fatalf("unsharded resubmit: %v", err)
	}
	if !st.State.Terminal() {
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		st, err = c.Wait(wctx, st.ID)
		cancel()
		if err != nil {
			t.Fatalf("unsharded resubmit never finished: %v", err)
		}
	}
	if st.State != serve.JobDone || st.Result == nil {
		t.Fatalf("unsharded resubmit ended %s: %s", st.State, st.Error)
	}
}

// TestShardChaosKillNode: a shard node dies mid-job (server closed,
// network cut, loops stopped).
func TestShardChaosKillNode(t *testing.T) {
	runShardChaos(t, func(sc *shardChaosCluster, owner int) {
		sc.kill((owner + 1) % 3) // any non-coordinator shard rank
	})
}

// TestShardChaosNeighborPartition: both shard nodes stay alive but the
// network between two of them is cut — halo sends between those ranks
// fail, and nothing may hang.
func TestShardChaosNeighborPartition(t *testing.T) {
	runShardChaos(t, func(sc *shardChaosCluster, owner int) {
		sc.partition((owner+1)%3, (owner+2)%3)
	})
}
