package cluster_test

// Restart chaos: a cluster node dies and comes back on the same URL
// with the same data directory. The ring routes identical submissions
// back to it (same URL → same node id → same ring points), and the
// node must answer them from its warm disk cache instead of
// recomputing — the whole point of the persistence layer in cluster
// mode. Also covered: the restarted member re-advertises its disk
// warmth through health probes, and the aggregated stats account the
// disk tier.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
	"easypap/internal/serve/store"
)

// persistCluster is n in-process daemons, each with its own data dir,
// restartable in place: the httptest server (and so the URL) survives a
// restart, exactly like a daemon process bouncing on a fixed host:port.
type persistCluster struct {
	t     *testing.T
	urls  []string
	dirs  []string
	swaps []*swapHandler
	mgrs  []*serve.Manager
	nodes []*cluster.Node
	srvs  []*httptest.Server
}

func startPersistCluster(t *testing.T, n int) *persistCluster {
	t.Helper()
	pc := &persistCluster{
		t:     t,
		urls:  make([]string, n),
		dirs:  make([]string, n),
		swaps: make([]*swapHandler, n),
		mgrs:  make([]*serve.Manager, n),
		nodes: make([]*cluster.Node, n),
		srvs:  make([]*httptest.Server, n),
	}
	for i := 0; i < n; i++ {
		pc.swaps[i] = &swapHandler{}
		pc.srvs[i] = httptest.NewServer(pc.swaps[i])
		pc.urls[i] = pc.srvs[i].URL
		pc.dirs[i] = t.TempDir()
	}
	for i := 0; i < n; i++ {
		pc.boot(i)
	}
	t.Cleanup(func() {
		for i := range pc.nodes {
			pc.halt(i)
			pc.srvs[i].Close()
		}
	})
	pc.waitHealthy()
	return pc
}

// boot starts generation g of node i on its data dir.
func (pc *persistCluster) boot(i int) {
	pc.t.Helper()
	s, err := store.Open(pc.dirs[i], store.Options{})
	if err != nil {
		pc.t.Fatal(err)
	}
	pc.mgrs[i] = serve.NewManager(serve.Options{Workers: 1, Store: s})
	testStores[pc.mgrs[i]] = s
	node, err := cluster.NewNode(pc.mgrs[i], cluster.Options{
		Self:          pc.urls[i],
		Peers:         pc.urls,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		pc.t.Fatal(err)
	}
	pc.nodes[i] = node
	pc.swaps[i].set(node.Handler())
}

// halt stops node i (handler answers 503, like a daemon going down),
// closing its manager and store. The server and URL stay.
func (pc *persistCluster) halt(i int) {
	if pc.nodes[i] == nil {
		return
	}
	pc.swaps[i].set(nil)
	pc.nodes[i].Close()
	st := managerStore(pc.mgrs[i])
	pc.mgrs[i].Close()
	if st != nil {
		st.Close()
		delete(testStores, pc.mgrs[i])
	}
	pc.nodes[i] = nil
}

// restart bounces node i in place: same URL, same data dir, fresh
// process state (empty memory cache, rebuilt ring).
func (pc *persistCluster) restart(i int) {
	pc.t.Helper()
	pc.halt(i)
	pc.boot(i)
	pc.waitHealthy()
}

// managerStore digs the store back out for closing. The manager does
// not own it (mirrors cmd/easypapd, which closes it after the manager).
var testStores = map[*serve.Manager]*store.Store{}

func managerStore(m *serve.Manager) *store.Store { return testStores[m] }

func (pc *persistCluster) waitHealthy() {
	pc.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for i, node := range pc.nodes {
			if node == nil {
				continue
			}
			mem := node.Membership()
			if len(mem.Members) != len(pc.nodes) {
				ok = false
				break
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					ok = false
				}
			}
			if !ok {
				break
			}
			_ = i
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			pc.t.Fatal("cluster never converged to all-healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterRestartServesFromWarmDisk(t *testing.T) {
	pc := startPersistCluster(t, 3)
	ctx := context.Background()

	// A small sweep through the ring: each config computes exactly once
	// on its owning node and spills to that node's disk.
	configs := []core.Config{mandelCfg(3, 8), mandelCfg(3, 16), mandelCfg(3, 32)}
	multi := client.NewMulti(pc.urls...)
	for _, cfg := range configs {
		if _, err := multi.RunConfig(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := range pc.nodes {
		i := i
		waitFor(t, "spills to settle", func() bool {
			st := pc.mgrs[i].Stats()
			return st.Spills == st.Computed
		})
	}

	// Bounce the node that owns configs[0].
	owner := pc.ownerOf(configs[0])
	preStats := pc.mgrs[owner].Stats()
	if preStats.Computed == 0 {
		t.Fatalf("owner %d computed nothing pre-restart", owner)
	}
	pc.restart(owner)

	// Resubmit the whole sweep through a non-owner entry point: the ring
	// still routes configs[0] to the restarted node, which must answer
	// from disk — no recompute anywhere in the cluster.
	entry := (owner + 1) % len(pc.urls)
	cl := client.New(pc.urls[entry])
	for _, cfg := range configs {
		st, err := cl.Submit(ctx, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			if st, err = cl.Wait(ctx, st.ID); err != nil {
				t.Fatal(err)
			}
		}
		if st.State != serve.JobDone || !st.Cached {
			t.Fatalf("replayed %v: %+v", cfg, st)
		}
	}
	ownerStats := pc.mgrs[owner].Stats()
	if ownerStats.Computed != 0 {
		t.Fatalf("restarted owner recomputed %d jobs, want 0 (disk hits)", ownerStats.Computed)
	}
	if ownerStats.DiskHits == 0 {
		t.Fatalf("restarted owner served no disk hits: %+v", ownerStats)
	}

	// The restarted member re-advertises its warm disk tier: peers learn
	// its disk_entries through health probes.
	ownerID := cluster.NodeID(pc.urls[owner])
	waitFor(t, "warm-disk advertisement", func() bool {
		for _, m := range pc.nodes[entry].Membership().Members {
			if m.ID == ownerID {
				return m.DiskEntries > 0
			}
		}
		return false
	})

	// And the aggregate accounts the disk tier cluster-wide.
	agg := pc.nodes[entry].AggregateStats(ctx)
	if agg.Totals.DiskHits == 0 || agg.Totals.DiskEntries == 0 {
		t.Fatalf("aggregate misses the disk tier: %+v", agg.Totals)
	}
}

// ownerOf resolves which node index owns cfg on the current ring.
func (pc *persistCluster) ownerOf(cfg core.Config) int {
	pc.t.Helper()
	_, _, key, err := cluster.RouteKey(cfg, false)
	if err != nil {
		pc.t.Fatal(err)
	}
	ids := make([]string, len(pc.urls))
	for i, u := range pc.urls {
		ids[i] = cluster.NodeID(u)
	}
	ownerID := cluster.NewRing(ids, 0).Owner(key)
	for i, u := range pc.urls {
		if cluster.NodeID(u) == ownerID {
			return i
		}
	}
	pc.t.Fatalf("no node owns %v", cfg)
	return -1
}

// TestClusterRecoversInterruptedSweepJobs: kill a node mid-job with an
// open journal, restart it, and watch the journaled job finish under
// its original cluster id.
func TestClusterRecoversInterruptedSweepJobs(t *testing.T) {
	pc := startPersistCluster(t, 2)
	ctx := context.Background()

	// A long job, entered at node 0 but routed by hash to its ring
	// owner — the id prefix says where it actually lives.
	cfg := mandelCfg(60, 8)
	cfg.Dim = 256
	cl := client.New(pc.urls[0])
	st, err := cl.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("long job finished instantly: %+v", st)
	}
	nodeID, local, ok := cluster.SplitJobID(st.ID)
	if !ok {
		t.Fatalf("unprefixed cluster job id %q", st.ID)
	}
	owner := -1
	for i, u := range pc.urls {
		if cluster.NodeID(u) == nodeID {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatalf("job id %q names no cluster member", st.ID)
	}

	// Wait until it is actually running, then pull the plug on the
	// owner. halt() closes the manager gracefully, which CANCELS the job
	// and journals the cancel — so fabricate the crash the way a SIGKILL
	// leaves it: re-open the journal and re-admit the job before boot.
	waitFor(t, "job running", func() bool {
		got, err := cl.Job(ctx, st.ID)
		return err == nil && got.State == serve.JobRunning
	})
	pc.halt(owner)
	s, err := store.Open(pc.dirs[owner], store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm, hash, err := serve.NormalizeSubmission(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Begin(local, hash, false, norm, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	pc.boot(owner)
	pc.waitHealthy()

	// The recovered job is pollable under its pre-crash cluster id —
	// from the surviving node — and runs to completion.
	other := (owner + 1) % len(pc.urls)
	done, err := client.New(pc.urls[other]).Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != serve.JobDone || !done.Recovered {
		t.Fatalf("recovered cluster job: %+v", done)
	}
	if got := pc.mgrs[owner].Stats(); got.RecoveredJobs != 1 {
		t.Fatalf("recovered_jobs=%d, want 1", got.RecoveredJobs)
	}
}
