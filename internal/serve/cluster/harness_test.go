package cluster_test

// The in-process cluster harness: N full daemons (manager + cluster
// node + HTTP server) wired into one ring over httptest servers. On top
// of it, the acceptance tests of cluster mode: single-node vs cluster
// result equivalence (byte-identical frames), cache-hit routing
// (identical configs land on the owning node and hit its cache exactly
// once cluster-wide), and membership/ownership surfaces.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/expt"
	"easypap/internal/gfx"
	_ "easypap/internal/kernels" // register the predefined kernels
	"easypap/internal/serve"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
)

// swapHandler lets the httptest server come up before the node handler
// exists (the node needs its own URL first). It answers 503 until set —
// exactly what a booting daemon would do.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, `{"error":"booting"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is N in-process daemons forming one ring.
type testCluster struct {
	t      testing.TB
	urls   []string
	mgrs   []*serve.Manager
	nodes  []*cluster.Node
	srvs   []*httptest.Server
	killed []bool
}

// startCluster boots n daemons that all know each other statically —
// the --peers topology — and waits until every node sees every peer
// healthy, so tests observe steady-state routing.
func startCluster(t testing.TB, n int, opts serve.Options) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:      t,
		urls:   make([]string, n),
		mgrs:   make([]*serve.Manager, n),
		nodes:  make([]*cluster.Node, n),
		srvs:   make([]*httptest.Server, n),
		killed: make([]bool, n),
	}
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		tc.srvs[i] = httptest.NewServer(swaps[i])
		tc.urls[i] = tc.srvs[i].URL
	}
	for i := 0; i < n; i++ {
		tc.mgrs[i] = serve.NewManager(opts)
		node, err := cluster.NewNode(tc.mgrs[i], cluster.Options{
			Self:          tc.urls[i],
			Peers:         tc.urls,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		swaps[i].set(node.Handler())
	}
	t.Cleanup(tc.closeAll)
	tc.waitAllHealthy()
	return tc
}

func (tc *testCluster) closeAll() {
	for i := range tc.nodes {
		if !tc.killed[i] {
			tc.kill(i)
		}
	}
}

// kill tears node i down completely: server, router, manager. Peers see
// connection-refused from here on.
func (tc *testCluster) kill(i int) {
	if tc.killed[i] {
		return
	}
	tc.killed[i] = true
	tc.srvs[i].Close()
	tc.nodes[i].Close()
	tc.mgrs[i].Close()
}

// waitAllHealthy blocks until every live node reports every member
// healthy (boot-order probe failures heal within a probe interval).
func (tc *testCluster) waitAllHealthy() {
	tc.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for i, node := range tc.nodes {
			if tc.killed[i] {
				continue
			}
			mem := node.Membership()
			if len(mem.Members) != len(tc.nodes) {
				ok = false
				break
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			tc.t.Fatal("cluster never converged to all-healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ownerIndex returns which node owns cfg, resolved through the HTTP
// ownership endpoint and cross-checked against a locally built ring.
func (tc *testCluster) ownerIndex(cfg core.Config, frames bool) int {
	tc.t.Helper()
	_, hash, key, err := cluster.RouteKey(cfg, frames)
	if err != nil {
		tc.t.Fatal(err)
	}
	var live int
	for i := range tc.nodes {
		if !tc.killed[i] {
			live = i
			break
		}
	}
	resp, err := http.Get(tc.urls[live] + "/v1/cluster/owner/" + hash)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Owner string `json:"owner"`
	}
	if err := decodeJSON(resp, &body); err != nil {
		tc.t.Fatal(err)
	}
	// Cross-check: the exported ring must agree with the server's view.
	ids := make([]string, len(tc.urls))
	for i, u := range tc.urls {
		ids[i] = cluster.NodeID(u)
	}
	if want := cluster.NewRing(ids, 0).Owner(key); want != body.Owner {
		tc.t.Fatalf("owner endpoint says %s, local ring says %s", body.Owner, want)
	}
	for i, u := range tc.urls {
		if cluster.NodeID(u) == body.Owner {
			return i
		}
	}
	tc.t.Fatalf("owner %s is not a cluster member", body.Owner)
	return -1
}

func decodeJSON(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// mandelCfg is the small deterministic job the harness routes around.
func mandelCfg(iters, grain int) core.Config {
	return core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 64, TileW: grain,
		Iterations: iters, Threads: 1,
	}
}

// TestRingDeterminism: every node must compute the same ownership for
// the same key, shares must be sane, and the failover chain must cover
// all nodes exactly once.
func TestRingDeterminism(t *testing.T) {
	ids := []string{"n-a", "n-b", "n-c"}
	r1 := cluster.NewRing(ids, 0)
	r2 := cluster.NewRing([]string{"n-c", "n-a", "n-b", "n-a"}, 0) // order + dup must not matter
	shares := r1.Shares()
	var total float64
	for _, id := range ids {
		if shares[id] <= 0 {
			t.Errorf("node %s owns no key space", id)
		}
		total += shares[id]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %v, want 1", total)
	}
	for key := uint64(0); key < 1<<20; key += 1 << 14 {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("rings disagree on key %d", key)
		}
		reps := r1.Replicas(key, 0)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%d) = %v, want all 3 nodes", key, reps)
		}
		if reps[0] != r1.Owner(key) {
			t.Fatalf("replica chain %v does not start at owner %s", reps, r1.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("replica chain %v repeats %s", reps, n)
			}
			seen[n] = true
		}
	}
}

// TestClusterCacheHitRouting: a config submitted through a NON-owner
// node runs on the owner (the job id says so), a resubmission through a
// different non-owner is served from the owner's cache, and the hit
// counter increments exactly once cluster-wide.
func TestClusterCacheHitRouting(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 1, QueueDepth: 16})
	ctx := context.Background()
	cfg := mandelCfg(3, 16)

	owner := tc.ownerIndex(cfg, false)
	ownerID := cluster.NodeID(tc.urls[owner])
	submitter := (owner + 1) % 3
	resubmitter := (owner + 2) % 3

	// First submission through a non-owner: must be proxied to the owner.
	cl1 := client.New(tc.urls[submitter])
	st, err := cl1.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	node, _, prefixed := cluster.SplitJobID(st.ID)
	if !prefixed || node != ownerID {
		t.Fatalf("job id %q not owned by ring owner %s", st.ID, ownerID)
	}
	// Status polling through the submitter exercises the proxy path too.
	if st, err = cl1.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != serve.JobDone || st.Cached {
		t.Fatalf("first submission ended %s cached=%v", st.State, st.Cached)
	}
	if st.Result == nil || st.Result.Iterations != 3 {
		t.Fatalf("result %+v", st.Result)
	}

	// Resubmission through yet another node: owner's cache answers.
	cl2 := client.New(tc.urls[resubmitter])
	again, err := cl2.Submit(ctx, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != serve.JobDone {
		t.Fatalf("resubmission not a cache hit: state=%s cached=%v", again.State, again.Cached)
	}
	if node, _, _ := cluster.SplitJobID(again.ID); node != ownerID {
		t.Fatalf("cached job id %q not on owner %s", again.ID, ownerID)
	}

	// Exactly one hit, on the owner, cluster-wide.
	for i, mgr := range tc.mgrs {
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := mgr.Stats().CacheHits; got != want {
			t.Errorf("node %d cache hits = %d, want %d", i, got, want)
		}
	}
	agg, err := client.NewMulti(tc.urls...).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Totals.CacheHits != 1 {
		t.Errorf("cluster-wide cache hits = %d, want exactly 1", agg.Totals.CacheHits)
	}
	if agg.Totals.JobsProxied < 2 {
		t.Errorf("jobs proxied = %d, want >= 2 (both submissions hopped)", agg.Totals.JobsProxied)
	}
	if agg.Healthy != 3 || agg.Nodes != 3 {
		t.Errorf("aggregate sees %d/%d healthy", agg.Healthy, agg.Nodes)
	}

	// Per-node stats surface the routing counters.
	ns := tc.nodes[submitter].Stats()
	if ns.Cluster.JobsProxied < 1 {
		t.Errorf("submitter proxied %d jobs, want >= 1", ns.Cluster.JobsProxied)
	}
	if ns.Cluster.RingShare <= 0 || ns.Cluster.RingShare >= 1 {
		t.Errorf("ring share %v out of (0, 1)", ns.Cluster.RingShare)
	}
	if tc.nodes[owner].Stats().Cluster.JobsOwned < 1 {
		t.Error("owner reports no owned jobs")
	}
}

// TestClusterVsSingleNodeEquivalence: the same sweep executed against a
// 3-node cluster and a single standalone daemon must produce identical
// results, and the frames of every configuration must be byte-identical
// — proxying must never corrupt a stream.
func TestClusterVsSingleNodeEquivalence(t *testing.T) {
	tc := startCluster(t, 3, serve.Options{Workers: 2, QueueDepth: 32})
	ctx := context.Background()

	// The single-node reference service.
	single := serve.NewManager(serve.Options{Workers: 2, QueueDepth: 32})
	singleSrv := httptest.NewServer(serve.NewHandler(single))
	defer func() {
		singleSrv.Close()
		single.Close()
	}()
	singleCl := client.New(singleSrv.URL)

	newSweep := func(r expt.Runner) *expt.Sweep {
		return &expt.Sweep{
			Base: core.Config{Kernel: "mandel", Variant: "seq", Dim: 64,
				Iterations: 2, Threads: 1},
			Grains: []int{8, 16, 32},
			Runs:   2, // repeats exercise the cluster-wide cache
			Remote: r,
		}
	}
	multi := client.NewMulti(tc.urls...)
	clusterResults, err := newSweep(multi).Execute()
	if err != nil {
		t.Fatal(err)
	}
	singleResults, err := newSweep(singleCl).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterResults) != len(singleResults) || len(clusterResults) != 6 {
		t.Fatalf("result counts differ: cluster %d, single %d", len(clusterResults), len(singleResults))
	}
	for i := range clusterResults {
		cr, sr := clusterResults[i], singleResults[i]
		if cr.Iterations != sr.Iterations {
			t.Errorf("run %d: cluster %d iterations, single %d", i, cr.Iterations, sr.Iterations)
		}
		if cr.Config.TileW != sr.Config.TileW {
			t.Errorf("run %d: configs diverged (%d vs %d)", i, cr.Config.TileW, sr.Config.TileW)
		}
	}

	// The sweep's repeats must have been answered from node-local caches:
	// 3 unique combinations, 3 cache hits — never recomputed.
	agg, err := multi.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Totals.CacheHits != 3 {
		t.Errorf("cluster-wide cache hits = %d, want 3 (one per repeated combination)", agg.Totals.CacheHits)
	}

	// Byte-identical frames for every configuration, cluster vs single.
	for _, grain := range []int{8, 16, 32} {
		cfg := mandelCfg(2, grain)
		clusterPNGs := lastFrames(t, func() (string, *client.Client) {
			st, cl, err := multi.Submit(ctx, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			// Read the stream through a different node than the one that
			// accepted it, so the frames proxy path is on the wire.
			other := client.New(tc.urls[0])
			if other.Base == cl.Base {
				other = client.New(tc.urls[1])
			}
			return st.ID, other
		})
		singlePNGs := lastFrames(t, func() (string, *client.Client) {
			st, err := singleCl.Submit(ctx, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			return st.ID, singleCl
		})
		if len(clusterPNGs) != len(singlePNGs) {
			t.Fatalf("grain %d: %d cluster frames vs %d single frames",
				grain, len(clusterPNGs), len(singlePNGs))
		}
		for i := range clusterPNGs {
			if !bytes.Equal(clusterPNGs[i], singlePNGs[i]) {
				t.Errorf("grain %d frame %d: cluster and single-node PNGs differ", grain, i)
			}
		}
	}
}

// lastFrames submits a frames job via submit and returns every frame's
// PNG bytes in order.
func lastFrames(t *testing.T, submit func() (string, *client.Client)) [][]byte {
	t.Helper()
	id, cl := submit()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var pngs [][]byte
	if err := cl.Frames(ctx, id, func(f *gfx.StreamFrame) bool {
		pngs = append(pngs, f.PNG)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pngs) == 0 {
		t.Fatal("frames job produced no frames")
	}
	return pngs
}

// TestClusterJoinMerge: a node pointed at a single member learns the
// whole cluster through the join handshake.
func TestClusterJoinMerge(t *testing.T) {
	tc := startCluster(t, 2, serve.Options{Workers: 1, QueueDepth: 8})

	// A third daemon that only knows node 0.
	swap := &swapHandler{}
	srv := httptest.NewServer(swap)
	defer srv.Close()
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8})
	defer mgr.Close()
	node, err := cluster.NewNode(mgr, cluster.Options{
		Self:          srv.URL,
		Peers:         tc.urls[:1],
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	swap.set(node.Handler())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(node.Membership().Members) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never learned full membership: %+v", node.Membership())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And node 0 learned the joiner.
	if len(tc.nodes[0].Membership().Members) != 3 {
		t.Errorf("seed node membership = %+v, want 3 members", tc.nodes[0].Membership())
	}
}
