package cluster

// Sharded-job coordination: the cluster side of distributed single-job
// execution (internal/serve/shard.go holds the per-rank executor). A
// submission carrying shards > 1 reaches its ring owner through the
// normal routing path; there, instead of running the whole grid locally,
// the manager's shard-runner hook lands here and the node becomes the
// session coordinator:
//
//  1. plan: clamp the shard count to the healthy member count and the
//     grid's tile rows, order the participants self-first (the
//     coordinator is always rank 0 — it owns the job record, the frame
//     stream, and the stitched result),
//  2. start: POST /v1/shard/start to every remote rank. Any start
//     failure aborts the ranks already started and falls back to a plain
//     local run — nothing has been computed yet, so degrading is free
//     and the client never sees the hiccup,
//  3. run: execute rank 0 in-process via Manager.RunShard; the halo
//     engine exchanges boundary rows directly between neighbor ranks
//     (coordinator not in the loop), and the per-iteration convergence
//     vote rides the same wire,
//  4. finish: rank 0's GatherBands stitches the final image; deferred
//     abort POSTs tear down any session still live on a peer (no-ops on
//     the common path where every rank completed).
//
// A rank lost mid-run surfaces as serve.ErrShardFailed within the halo
// timeout — the job fails typed (ErrorKind "shard_failed"), and the
// client resubmits unsharded.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
)

// shardStartTimeout bounds one POST /v1/shard/start round trip: starting
// a shard only registers a session and spawns its goroutine, so a peer
// that cannot answer quickly is a peer to fall back from.
const shardStartTimeout = 5 * time.Second

// runSharded is the serve.ShardRunner installed by NewNode: coordinate
// one sharded job, or degrade to a plain local run when the cluster
// cannot shard it right now.
func (n *Node) runSharded(ctx context.Context, job serve.ShardJob) (*core.RunOutput, error) {
	ranks, ok := n.planShards(job)
	if !ok {
		return n.runLocal(ctx, job)
	}
	session := n.prefixID(job.ID)
	peers := make([]string, len(ranks))
	for i, m := range ranks {
		peers[i] = m.url
	}
	mkReq := func(rank int) serve.StartShardRequest {
		return serve.StartShardRequest{
			Session: session, Job: job.ID, TraceID: job.TraceID,
			Config: job.Config, Frames: job.Frames,
			Rank: rank, Shards: len(ranks), Peers: peers,
		}
	}

	var started []*member
	for rank := 1; rank < len(ranks); rank++ {
		if err := n.startRemoteShard(ctx, ranks[rank], mkReq(rank)); err != nil {
			// Nothing has computed yet: tear down what started, demote the
			// unreachable peer, and run the job locally instead.
			for _, m := range started {
				n.abortRemoteShard(m, session, "coordinator start failed")
			}
			n.markDown(ranks[rank])
			return n.runLocal(ctx, job)
		}
		started = append(started, ranks[rank])
	}
	defer func() {
		// Best-effort teardown: a rank that completed normally already
		// unregistered its session, so these are no-ops on the happy path.
		for _, m := range started {
			n.abortRemoteShard(m, session, "coordinator finished")
		}
	}()
	return n.mgr.RunShard(ctx, mkReq(0), n.opts.HTTP, job.Sink, job.OnActivity)
}

// runLocal runs the job unsharded with the same observers the manager
// would have wired — the graceful-degradation path.
func (n *Node) runLocal(ctx context.Context, job serve.ShardJob) (*core.RunOutput, error) {
	opts := core.RunOptions{OnActivity: job.OnActivity}
	if job.Sink != nil {
		opts.Sink = job.Sink
	}
	return core.RunWith(ctx, job.Config, opts)
}

// planShards decides whether (and how) to shard: the variant must be
// distributed-capable (an mpi variant — it programs against a Comm), and
// the effective shard count is clamped to the healthy member count and
// the grid's tile rows (every rank needs at least one tile row). Returns
// the participant list in rank order, self first.
func (n *Node) planShards(job serve.ShardJob) ([]*member, bool) {
	if job.Shards < 2 || !strings.HasPrefix(job.Config.Variant, "mpi") {
		return nil, false
	}
	tileRows := 0
	if job.Config.TileH > 0 {
		tileRows = job.Config.Dim / job.Config.TileH
	}
	if tileRows < 2 {
		return nil, false // not enough tile rows to give every rank one
	}
	ring, ms := n.snapshot()
	ranks := make([]*member, 0, job.Shards)
	var self *member
	for _, m := range ms {
		if m.self {
			self = m
		}
	}
	if self == nil {
		return nil, false
	}
	ranks = append(ranks, self)
	hash, err := job.Config.Hash()
	if err != nil {
		return nil, false
	}
	// Fill remaining ranks with alive peers in ring order from the job's
	// key — the same deterministic order routing uses, so repeated runs
	// of one config land on the same band layout.
	for _, id := range ring.Replicas(core.HashPoint(hash), 0) {
		if len(ranks) >= job.Shards || len(ranks) >= tileRows {
			break
		}
		m := n.memberByID(id)
		if m == nil || m.self || !m.alive() {
			continue
		}
		ranks = append(ranks, m)
	}
	if len(ranks) < 2 {
		return nil, false
	}
	return ranks, true
}

// startRemoteShard POSTs a rank's start request to its node.
func (n *Node) startRemoteShard(ctx context.Context, m *member, req serve.StartShardRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, shardStartTimeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/shard/start", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if req.TraceID != "" {
		hr.Header.Set(serve.TraceHeader, req.TraceID)
	}
	resp, err := n.opts.HTTP.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cluster: %s refused shard start: HTTP %d", m.url, resp.StatusCode)
	}
	n.markUp(m)
	return nil
}

// abortRemoteShard tears a session down on a peer, best-effort.
func (n *Node) abortRemoteShard(m *member, session, reason string) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	target := m.url + "/v1/shard/abort?session=" + url.QueryEscape(session) +
		"&reason=" + url.QueryEscape(reason)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, target, nil)
	if err != nil {
		return
	}
	resp, err := n.opts.HTTP.Do(hr)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// --- HTTP endpoints ---------------------------------------------------

// handleShardStart serves POST /v1/shard/start: begin executing one rank
// of a distributed session here.
func (n *Node) handleShardStart(w http.ResponseWriter, r *http.Request) {
	var req serve.StartShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding shard start: %w", err))
		return
	}
	if err := n.mgr.StartShard(req, n.opts.HTTP); err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, serve.ErrShardExists):
			code = http.StatusConflict
		case errors.Is(err, serve.ErrClosed):
			code = http.StatusServiceUnavailable
		}
		serve.WriteError(w, code, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleShardHalo serves POST /v1/shard/halo?session=S: inject one wire
// frame into the session's mailbox. 404 tells the sender the session is
// not here (yet) — it retries until its halo timeout.
func (n *Node) handleShardHalo(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	if session == "" {
		serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("cluster: halo without session"))
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.mgr.InjectShardHalo(session, frame); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, serve.ErrUnknownShard) {
			code = http.StatusNotFound
		}
		serve.WriteError(w, code, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleShardAbort serves POST /v1/shard/abort?session=S (idempotent).
func (n *Node) handleShardAbort(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "aborted by peer"
	}
	n.mgr.AbortShard(session, reason)
	w.WriteHeader(http.StatusNoContent)
}
