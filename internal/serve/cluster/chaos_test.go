package cluster_test

// Chaos acceptance suites for the elastic cluster: a deterministic
// fault-injection transport (internal/serve/chaosnet) sits under every
// node's HTTP client, nodes die for real (server closed, loops
// stopped), and the assertions are the robustness contract itself:
//
//   - killing any one node under a sustained sweep yields ZERO failed
//     RunConfig calls,
//   - every survivor's ring drops the victim in under a second,
//   - the recompute count is bounded by the entries whose replication
//     had not completed at kill time (zero once replication settled).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/chaosnet"
	"easypap/internal/serve/client"
	"easypap/internal/serve/cluster"
	"easypap/internal/serve/store"
)

// chaosCluster is n in-process daemons with disk stores, R-way
// replication, fast gossip, and one seeded chaosnet transport per node
// (so pairwise faults need no origin plumbing: node i's view of node j
// is controlled on transport i).
type chaosCluster struct {
	t      testing.TB
	urls   []string
	hosts  []string
	swaps  []*swapHandler
	mgrs   []*serve.Manager
	nodes  []*cluster.Node
	srvs   []*httptest.Server
	chaos  []*chaosnet.Transport
	killed []bool
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

func startChaosCluster(t testing.TB, n, replicate int) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{
		t:      t,
		urls:   make([]string, n),
		hosts:  make([]string, n),
		swaps:  make([]*swapHandler, n),
		mgrs:   make([]*serve.Manager, n),
		nodes:  make([]*cluster.Node, n),
		srvs:   make([]*httptest.Server, n),
		chaos:  make([]*chaosnet.Transport, n),
		killed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		cc.swaps[i] = &swapHandler{}
		cc.srvs[i] = httptest.NewServer(cc.swaps[i])
		cc.urls[i] = cc.srvs[i].URL
		cc.hosts[i] = hostOf(cc.urls[i])
		cc.chaos[i] = chaosnet.New(uint64(i)+1, nil)
	}
	for i := 0; i < n; i++ {
		s, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cc.mgrs[i] = serve.NewManager(serve.Options{Workers: 2, QueueDepth: 64, Store: s})
		testStores[cc.mgrs[i]] = s
		node, err := cluster.NewNode(cc.mgrs[i], cluster.Options{
			Self:           cc.urls[i],
			Peers:          cc.urls,
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   500 * time.Millisecond,
			SuspectTimeout: 250 * time.Millisecond,
			Replicate:      replicate,
			RebalanceBPS:   64 << 20,
			HTTP:           &http.Client{Transport: cc.chaos[i]},
		})
		if err != nil {
			t.Fatal(err)
		}
		cc.nodes[i] = node
		cc.swaps[i].set(node.Handler())
	}
	t.Cleanup(func() {
		for i := range cc.nodes {
			if !cc.killed[i] {
				cc.kill(i)
			}
		}
	})
	cc.waitAlive()
	return cc
}

// kill tears node i down the SIGKILL way: every peer's network path to
// it fails (chaosnet), its server stops accepting, and its loops and
// manager are stopped without any goodbye to the cluster.
func (cc *chaosCluster) kill(i int) {
	if cc.killed[i] {
		return
	}
	cc.killed[i] = true
	for j := range cc.chaos {
		if j != i {
			cc.chaos[j].Kill(cc.hosts[i])
		}
	}
	cc.srvs[i].Close()
	cc.nodes[i].Close()
	st := managerStore(cc.mgrs[i])
	cc.mgrs[i].Close()
	if st != nil {
		st.Close()
		delete(testStores, cc.mgrs[i])
	}
}

// waitAlive blocks until every live node sees every member alive.
func (cc *chaosCluster) waitAlive() {
	cc.t.Helper()
	waitFor(cc.t, "cluster all-alive", func() bool {
		for i, node := range cc.nodes {
			if cc.killed[i] {
				continue
			}
			mem := node.Membership()
			if len(mem.Members) != len(cc.nodes) {
				return false
			}
			for _, m := range mem.Members {
				if !m.Healthy {
					return false
				}
			}
		}
		return true
	})
}

// waitConverged blocks until every survivor's ring has dropped the
// victim, returning how long convergence took from the call.
func (cc *chaosCluster) waitConverged() time.Duration {
	cc.t.Helper()
	start := time.Now()
	live := 0
	for i := range cc.nodes {
		if !cc.killed[i] {
			live++
		}
	}
	waitFor(cc.t, "ring convergence after kill", func() bool {
		for i, node := range cc.nodes {
			if cc.killed[i] {
				continue
			}
			if node.Stats().Cluster.RingNodes != live {
				return false
			}
		}
		return true
	})
	return time.Since(start)
}

// survivorsComputed sums Computed over live nodes.
func (cc *chaosCluster) survivorsComputed() int64 {
	var total int64
	for i, mgr := range cc.mgrs {
		if !cc.killed[i] {
			total += mgr.Stats().Computed
		}
	}
	return total
}

// replicaCount returns on how many live nodes hash is durably stored.
func (cc *chaosCluster) replicaCount(hash string) int {
	count := 0
	for i, mgr := range cc.mgrs {
		if cc.killed[i] {
			continue
		}
		if _, ok := mgr.GetEntry(hash); ok {
			count++
		}
	}
	return count
}

// sweepConfigs is the workload: distinct configs spread over the ring.
func sweepConfigs() []core.Config {
	var cfgs []core.Config
	for _, grain := range []int{8, 16, 32, 64} {
		for _, iters := range []int{2, 3} {
			cfgs = append(cfgs, mandelCfg(iters, grain))
		}
	}
	return cfgs
}

func hashOf(t testing.TB, cfg core.Config) string {
	t.Helper()
	_, hash, _, err := cluster.RouteKey(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// TestChaosKillAfterReplicationZeroRecompute is the strong form of the
// acceptance bound: once replication has settled (every entry on >= R
// nodes), killing ANY node costs zero recomputes — the whole sweep is
// re-served from replicas — with zero failed RunConfig calls and
// sub-second routing convergence.
func TestChaosKillAfterReplicationZeroRecompute(t *testing.T) {
	const R = 2
	cc := startChaosCluster(t, 3, R)
	cfgs := sweepConfigs()

	multi := client.NewMulti(cc.urls...)
	for _, cfg := range cfgs {
		if _, err := multi.RunConfig(cfg); err != nil {
			t.Fatalf("pass 1 RunConfig(%+v): %v", cfg, err)
		}
	}

	// Wait for write-behind replication to settle: every entry durable on
	// at least R nodes.
	waitFor(t, "replication to settle", func() bool {
		for _, cfg := range cfgs {
			if cc.replicaCount(hashOf(t, cfg)) < R {
				return false
			}
		}
		return true
	})

	victim := cc.ownerOf(cfgs[0])
	before := func() int64 {
		var total int64
		for i, mgr := range cc.mgrs {
			if i != victim {
				total += mgr.Stats().Computed
			}
		}
		return total
	}()

	cc.kill(victim)
	conv := cc.waitConverged()
	if conv >= time.Second {
		t.Fatalf("routing convergence took %v, want < 1s", conv)
	}
	t.Logf("ring convergence after SIGKILL: %v", conv)

	// The whole sweep again, through the survivors: zero errors, zero
	// recomputes — every config is on a replica's disk.
	var survivors []string
	for i, u := range cc.urls {
		if !cc.killed[i] {
			survivors = append(survivors, u)
		}
	}
	multi2 := client.NewMulti(survivors...)
	for _, cfg := range cfgs {
		if _, err := multi2.RunConfig(cfg); err != nil {
			t.Fatalf("post-kill RunConfig(%+v): %v", cfg, err)
		}
	}
	if delta := cc.survivorsComputed() - before; delta != 0 {
		t.Fatalf("survivors recomputed %d jobs after the kill, want 0 (fully replicated)", delta)
	}
}

// TestChaosKillMidSweepBoundedRecompute kills a node while a sweep is
// actively running and replication may not have settled. The contract:
// the sweep still completes with zero RunConfig failures, routing
// converges in under a second, and the survivors recompute at most the
// entries that were not yet on any surviving disk at kill time.
func TestChaosKillMidSweepBoundedRecompute(t *testing.T) {
	const R = 2
	cc := startChaosCluster(t, 3, R)
	cfgs := sweepConfigs()

	// Pass 1: populate the cluster (no replication wait — the kill must
	// land while some entries exist only on their owner).
	multi := client.NewMulti(cc.urls...)
	for _, cfg := range cfgs {
		if _, err := multi.RunConfig(cfg); err != nil {
			t.Fatalf("pass 1 RunConfig: %v", err)
		}
	}

	victim := cc.ownerOf(cfgs[0])

	// The sustained sweep: every config continuously resubmitted from
	// several workers while the kill lands.
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs)*4)
	stopSweep := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := client.NewMulti(cc.urls...)
			for round := 0; ; round++ {
				select {
				case <-stopSweep:
					return
				default:
				}
				cfg := cfgs[(w+round)%len(cfgs)]
				if _, err := m.RunConfig(cfg); err != nil {
					errs <- fmt.Errorf("worker %d round %d cfg %+v: %w", w, round, cfg, err)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // let the sweep get airborne

	// Snapshot the replication frontier at the kill instant, then kill.
	beforeSurvivors := func() int64 {
		var total int64
		for i, mgr := range cc.mgrs {
			if i != victim {
				total += mgr.Stats().Computed
			}
		}
		return total
	}()
	unreplicated := 0
	survivorSetAtKill := make(map[string]bool)
	for i, mgr := range cc.mgrs {
		if i == victim {
			continue
		}
		for _, h := range mgr.EntryHashes() {
			survivorSetAtKill[h] = true
		}
	}
	for _, cfg := range cfgs {
		if !survivorSetAtKill[hashOf(t, cfg)] {
			unreplicated++
		}
	}
	cc.kill(victim)
	conv := cc.waitConverged()
	if conv >= time.Second {
		t.Fatalf("routing convergence took %v, want < 1s", conv)
	}
	t.Logf("ring convergence under sustained sweep: %v", conv)

	// Let the sweep run a little past the kill, then wind it down.
	time.Sleep(300 * time.Millisecond)
	close(stopSweep)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("sweep failed across the kill: %v", err)
	}

	// The recompute bound: survivors may recompute only what was not on
	// any surviving disk when the victim died.
	delta := cc.survivorsComputed() - beforeSurvivors
	if delta > int64(unreplicated) {
		t.Fatalf("survivors recomputed %d jobs, want <= %d (entries unreplicated at kill time)",
			delta, unreplicated)
	}
}

// ownerOf resolves which node index owns cfg on the full original ring.
func (cc *chaosCluster) ownerOf(cfg core.Config) int {
	cc.t.Helper()
	_, _, key, err := cluster.RouteKey(cfg, false)
	if err != nil {
		cc.t.Fatal(err)
	}
	ids := make([]string, len(cc.urls))
	for i, u := range cc.urls {
		ids[i] = cluster.NodeID(u)
	}
	ownerID := cluster.NewRing(ids, 0).Owner(key)
	for i, u := range cc.urls {
		if cluster.NodeID(u) == ownerID {
			return i
		}
	}
	cc.t.Fatalf("no node owns %v", cfg)
	return -1
}

// TestChaosTracePropagationKillMidSweep is the trace-propagation
// contract under faults: with a node killed mid-sweep, every job that
// completes AND whose trace is still resolvable yields a non-empty,
// connected span tree containing the stage that produced its result
// (compute or a cache tier). Jobs whose trace state died with the
// victim surface as a clean lookup error, never a broken tree.
func TestChaosTracePropagationKillMidSweep(t *testing.T) {
	const R = 2
	cc := startChaosCluster(t, 3, R)
	cfgs := sweepConfigs()

	// Pass 1 populates the cluster so post-kill rounds exercise the
	// cache/replica stages, not just compute.
	seed := client.NewMulti(cc.urls...)
	for _, cfg := range cfgs {
		if _, err := seed.RunConfig(cfg); err != nil {
			t.Fatalf("seed RunConfig: %v", err)
		}
	}

	victim := cc.ownerOf(cfgs[0])
	var verified, skipped atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stopSweep := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := client.NewMulti(cc.urls...)
			ctx := context.Background()
			for round := 0; ; round++ {
				select {
				case <-stopSweep:
					return
				default:
				}
				cfg := cfgs[(w+round)%len(cfgs)]
				st, cl, err := m.Submit(ctx, cfg, false)
				if err != nil {
					errs <- fmt.Errorf("worker %d submit: %w", w, err)
					return
				}
				if !st.State.Terminal() {
					if st, err = m.Wait(ctx, st.ID, cl); err != nil || !st.State.Terminal() {
						continue // job lost to the kill; the sweep moves on
					}
				}
				if st.State != serve.JobDone {
					continue
				}
				doc, err := m.Trace(ctx, st.ID, cl)
				if err != nil {
					// The trace state died with the victim (or the fetch hit
					// the dying node): a clean error is the contract here.
					skipped.Add(1)
					continue
				}
				spans := flatSpans(doc.Spans)
				if len(spans) == 0 {
					errs <- fmt.Errorf("job %s: trace %s resolved but has no spans", st.ID, doc.TraceID)
					continue
				}
				stages := stageCount(spans)
				if stages[serve.StageCompute] == 0 && stages[serve.StageCacheMem] == 0 &&
					stages[serve.StageCacheDisk] == 0 && stages[serve.StageReplicaFetch] == 0 {
					errs <- fmt.Errorf("job %s: trace has no compute/cache span: %v", st.ID, stages)
					continue
				}
				assertConnectedTrace(t, doc)
				verified.Add(1)
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // let the sweep get airborne
	cc.kill(victim)
	cc.waitConverged()
	time.Sleep(300 * time.Millisecond)
	close(stopSweep)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("trace propagation under chaos: %v", err)
	}
	if verified.Load() == 0 {
		t.Fatal("no trace was verified across the kill")
	}
	t.Logf("verified %d span trees across the kill (%d skipped with the victim's state)",
		verified.Load(), skipped.Load())
}
