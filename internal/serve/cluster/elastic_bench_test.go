package cluster_test

// The replicated-read ladder (BENCH_elastic.json): what a result costs
// depending on where it survives — the local disk entry (owner or
// replica answering from its own store), a remote replica fetch over
// HTTP with full CRC+hash verification (the owner-miss failover path),
// and the wire encode/decode alone (what the rebalancer pays per
// migrated entry on top of bandwidth). Recompute, the ladder's top rung
// when no replica survives, is in BENCH_serve.json (~1.5 ms for even
// the small reference job).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"

	"easypap/internal/serve/client"
	"easypap/internal/serve/store"
)

// benchEntry boots a replicated pair, computes one entry, and waits
// until both nodes hold it durably.
func benchEntry(b *testing.B) (cc *chaosCluster, hash string) {
	cc = startChaosCluster(b, 2, 2)
	cfg := mandelCfg(3, 16)
	if _, err := client.New(cc.urls[0]).Submit(context.Background(), cfg, false); err != nil {
		b.Fatal(err)
	}
	hash = hashOf(b, cfg)
	waitFor(b, "entry replicated to both nodes", func() bool {
		return cc.replicaCount(hash) == 2
	})
	return cc, hash
}

func BenchmarkElasticLocalEntry(b *testing.B) {
	cc, hash := benchEntry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cc.mgrs[0].GetEntry(hash); !ok {
			b.Fatal("entry vanished")
		}
	}
}

func BenchmarkElasticReplicaFetch(b *testing.B) {
	cc, hash := benchEntry(b)
	url := cc.urls[1] + "/v1/cluster/entries/" + hash
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		e, err := store.DecodeEntry(resp.Body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || e.Hash != hash {
			b.Fatalf("replica fetch failed: %v", err)
		}
	}
}

func BenchmarkElasticEntryWire(b *testing.B) {
	cc, hash := benchEntry(b)
	e, ok := cc.mgrs[0].GetEntry(hash)
	if !ok {
		b.Fatal("entry vanished")
	}
	var buf bytes.Buffer
	if err := store.EncodeEntry(&buf, e); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := store.EncodeEntry(&buf, e); err != nil {
			b.Fatal(err)
		}
		if _, err := store.DecodeEntry(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElasticGossipExchange prices one probe round-trip — the
// membership protocol's steady-state cost per peer per ProbeInterval.
func BenchmarkElasticGossipExchange(b *testing.B) {
	cc := startChaosCluster(b, 2, 0)
	var view bytes.Buffer
	if err := cc.nodes[0].HandleGossip(&view, bytes.NewReader(nil)); err == nil {
		b.Fatal("empty gossip body unexpectedly accepted")
	}
	view.Reset()
	// A self-contained exchange: node 1's view posted to node 0 over HTTP.
	var peerView bytes.Buffer
	if err := cc.nodes[1].HandleGossip(&peerView, bytes.NewReader([]byte("{}"))); err != nil {
		b.Fatal(err)
	}
	body := peerView.Bytes()
	url := cc.urls[0] + "/v1/cluster/gossip"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatal(fmt.Errorf("gossip returned %d", resp.StatusCode))
		}
	}
}
