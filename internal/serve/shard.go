package serve

// Distributed single-job execution: the shard executor. A sharded job is
// one kernel run split into horizontal row bands, one band ("shard") per
// cluster node. The entry node's manager becomes the coordinator (rank 0,
// via the shard-runner hook the cluster layer installs); every other
// participating node executes one rank through the endpoints below:
//
//	POST /v1/shard/start              begin a shard rank (StartShardRequest)
//	POST /v1/shard/halo?session=S     inject one EZMSG1 halo frame
//	POST /v1/shard/abort?session=S    abort a session (coordinator cleanup)
//
// Each rank runs the ordinary mpi_omp kernel variant against an
// mpi.NetWorld: Send to a remote rank encodes the message with the wire
// codec (mpi/wire.go) and POSTs it to the peer's halo endpoint over the
// cluster's persistent HTTP client; frames arriving there are injected
// into the local mailbox. The frontier-aware halo engine (mpi/halo.go)
// is shared verbatim with the in-process --mpirun path, so a sharded run
// is byte-identical to a single-node run of the same config — and is
// cached under the same canonical hash.
//
// Failure semantics: a dead or partitioned peer surfaces as a transport
// error (immediately) or a receive timeout (within Options.HaloTimeout);
// either cancels the session with an mpi.ErrPeerLost cause, which the
// executor maps to ErrShardFailed. The coordinator's job fails with
// ErrorKind "shard_failed", a typed signal clients use to resubmit the
// job unsharded. ErrShardFailed deliberately does not wrap
// context.Canceled: Manager.finish must classify a shard failure as
// JobFailed, not JobCanceled.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/mpi"
)

// Shard errors.
var (
	// ErrShardFailed marks a distributed job aborted because a shard rank
	// died, partitioned, or timed out. Clients detect it via
	// JobStatus.ErrorKind == ErrorKindShardFailed and resubmit unsharded.
	ErrShardFailed = errors.New("serve: shard execution failed")
	// ErrUnknownShard is returned for halo/abort calls naming no live
	// session (HTTP 404 — the sender retries until its halo timeout,
	// which also absorbs the start-ordering race).
	ErrUnknownShard = errors.New("serve: unknown shard session")
	// ErrShardExists rejects a duplicate session id (HTTP 409).
	ErrShardExists = errors.New("serve: shard session already exists")
)

// ErrorKindShardFailed is the JobStatus.ErrorKind of ErrShardFailed jobs.
const ErrorKindShardFailed = "shard_failed"

// haloSpanSample bounds how many per-iteration halo spans one shard run
// records: enough to see the exchange cadence in a trace, few enough that
// a 10k-iteration job cannot flood the 4096-span ring.
const haloSpanSample = 16

// StartShardRequest is the POST /v1/shard/start body: everything one
// rank needs to join a distributed session.
type StartShardRequest struct {
	// Session identifies the distributed session cluster-wide (the
	// coordinator uses its prefixed job id — unique, and legible in logs).
	Session string `json:"session"`
	// Job and TraceID tie the shard's spans into the coordinating job's
	// trace tree.
	Job     string `json:"job,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Config is the normalized job config (the coordinator's
	// canonicalization is authoritative, as with proxied submissions).
	Config core.Config `json:"config"`
	// Frames makes every rank run the per-iteration display path (the
	// graphical refresh is a collective gather, so all ranks must take it
	// in lockstep); only rank 0 actually emits frames.
	Frames bool `json:"frames,omitempty"`
	Rank   int  `json:"rank"`
	Shards int  `json:"shards"`
	// Peers maps rank -> base URL. Peers[Rank] is this node (unused).
	Peers []string `json:"peers"`
}

func (r *StartShardRequest) validate() error {
	if r.Session == "" {
		return fmt.Errorf("serve: shard request without a session id")
	}
	if r.Shards < 2 || r.Rank < 0 || r.Rank >= r.Shards {
		return fmt.Errorf("serve: invalid shard rank %d of %d", r.Rank, r.Shards)
	}
	if len(r.Peers) != r.Shards {
		return fmt.Errorf("serve: %d peers for %d shards", len(r.Peers), r.Shards)
	}
	return nil
}

// shardSession is one live rank of a distributed session on this node.
type shardSession struct {
	nw     *mpi.NetWorld
	cancel context.CancelCauseFunc
}

// ShardJob describes a sharded submission handed to the coordinator hook
// (SetShardRunner): the job's identity plus the live observers the
// manager would have wired into a local run.
type ShardJob struct {
	ID         string
	TraceID    string
	Config     core.Config
	Shards     int
	Frames     bool
	Sink       gfx.FrameSink // non-nil for frames jobs (the job's stream hub)
	OnActivity func(core.IterActivity)
}

// ShardRunner coordinates one sharded job end to end and returns rank
// 0's output. The cluster layer installs one via SetShardRunner; without
// it, sharded submissions simply run locally.
type ShardRunner func(ctx context.Context, job ShardJob) (*core.RunOutput, error)

// SetShardRunner installs (or, with nil, removes) the sharded-job
// coordinator. Safe to call concurrently with running jobs.
func (m *Manager) SetShardRunner(f ShardRunner) {
	if f == nil {
		m.shardRunner.Store(nil)
		return
	}
	m.shardRunner.Store(&f)
}

// StartShard begins executing one remote rank of a distributed session
// asynchronously: the session is registered (so halo frames can be
// injected) before StartShard returns, and the rank runs on its own
// goroutine until completion or abort. httpc is the transport for
// outgoing halo frames — the cluster layer passes its own client so
// fault injection and connection pooling apply.
func (m *Manager) StartShard(req StartShardRequest, httpc *http.Client) error {
	sess, sctx, err := m.prepareShard(m.baseCtx, req, httpc)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.releaseShard(req.Session, sess)
		return ErrClosed
	}
	m.shardWg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.shardWg.Done()
		// Remote ranks contribute their band through the collectives; the
		// output object is rank 0's concern. Errors land in the span.
		_, _ = m.executeShard(sctx, sess, req, nil, nil)
	}()
	return nil
}

// RunShard executes one rank synchronously and returns its output — the
// coordinator's path for its own rank 0. sink and onActivity are the
// job's live observers (nil for non-frames / eager jobs).
func (m *Manager) RunShard(ctx context.Context, req StartShardRequest, httpc *http.Client, sink gfx.FrameSink, onActivity func(core.IterActivity)) (*core.RunOutput, error) {
	sess, sctx, err := m.prepareShard(ctx, req, httpc)
	if err != nil {
		return nil, err
	}
	return m.executeShard(sctx, sess, req, sink, onActivity)
}

// prepareShard validates the request, builds the rank's NetWorld, and
// registers the session so incoming halo frames find their mailbox.
func (m *Manager) prepareShard(ctx context.Context, req StartShardRequest, httpc *http.Client) (*shardSession, context.Context, error) {
	if err := req.validate(); err != nil {
		return nil, nil, err
	}
	sctx, cancel := context.WithCancelCause(ctx)
	nw, err := mpi.NewNetWorld(sctx, cancel, req.Shards, req.Rank,
		mpi.Config{RecvTimeout: m.opts.HaloTimeout}, m.shardTransport(req, httpc))
	if err != nil {
		cancel(context.Canceled)
		return nil, nil, err
	}
	sess := &shardSession{nw: nw, cancel: cancel}
	m.shardMu.Lock()
	if _, ok := m.shardSessions[req.Session]; ok {
		m.shardMu.Unlock()
		cancel(context.Canceled)
		nw.Close()
		return nil, nil, fmt.Errorf("%w: %q", ErrShardExists, req.Session)
	}
	m.shardSessions[req.Session] = sess
	m.shardMu.Unlock()
	return sess, sctx, nil
}

// releaseShard unregisters a session and releases its world.
func (m *Manager) releaseShard(session string, sess *shardSession) {
	m.shardMu.Lock()
	if m.shardSessions[session] == sess {
		delete(m.shardSessions, session)
	}
	m.shardMu.Unlock()
	sess.cancel(context.Canceled)
	sess.nw.Close()
}

// executeShard runs the rank's band of the kernel and cleans the session
// up. The run's halo observer feeds the node counters, the halo stage
// histogram, and (sampled) halo spans; the whole rank run is one
// StageShard span.
func (m *Manager) executeShard(sctx context.Context, sess *shardSession, req StartShardRequest, sink gfx.FrameSink, onActivity func(core.IterActivity)) (*core.RunOutput, error) {
	defer m.releaseShard(req.Session, sess)
	m.shardsExecuted.Add(1)

	haloSpans := 0
	opts := core.RunOptions{
		Comm:       sess.nw.Comm(),
		OnActivity: onActivity,
		OnHalo: func(sent, skipped, bytes int64, d time.Duration) {
			m.halosSent.Add(sent)
			m.halosSkipped.Add(skipped)
			m.obs.halo.Observe(d.Nanoseconds())
			if haloSpans < haloSpanSample { // compute goroutine only: no race
				haloSpans++
				end := time.Now()
				m.span(nil, req.TraceID, req.Job, StageHalo, end.Add(-d), end, nil)
			}
		},
	}
	if sink != nil {
		opts.Sink = sink
	} else if req.Frames {
		// A frames job runs the per-iteration display path on EVERY rank
		// (the refresh is a collective gather); remote ranks discard the
		// frames rank 0 assembles.
		opts.Sink = gfx.Null{}
	}

	begin := time.Now()
	out, err := core.RunWith(sctx, req.Config, opts)
	if err != nil {
		// A session canceled because a peer was lost is a shard failure;
		// any other cancellation (client DELETE, shutdown) keeps its cause
		// so Manager.finish classifies it as canceled, not failed. The
		// cause is flattened with %v on purpose: ErrShardFailed must not
		// transitively wrap context.Canceled.
		if cause := context.Cause(sctx); cause != nil && errors.Is(cause, mpi.ErrPeerLost) {
			err = fmt.Errorf("%w: rank %d of session %s: %v", ErrShardFailed, req.Rank, req.Session, cause)
		}
	}
	m.span(m.obs.shard, req.TraceID, req.Job, StageShard, begin, time.Now(), err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InjectShardHalo delivers one wire frame into a session's mailbox — the
// body of POST /v1/shard/halo. ErrUnknownShard (404) tells the sender to
// retry: the session may simply not have started yet.
func (m *Manager) InjectShardHalo(session string, frame []byte) error {
	m.shardMu.Lock()
	sess := m.shardSessions[session]
	m.shardMu.Unlock()
	if sess == nil {
		return fmt.Errorf("%w: %q", ErrUnknownShard, session)
	}
	return sess.nw.Inject(frame)
}

// AbortShard cancels a session (no-op when it already finished) — the
// coordinator's cleanup broadcast, and the fast path when gossip reports
// a participant dead before any message times out.
func (m *Manager) AbortShard(session, reason string) bool {
	m.shardMu.Lock()
	sess := m.shardSessions[session]
	m.shardMu.Unlock()
	if sess == nil {
		return false
	}
	sess.nw.Fail(fmt.Errorf("session aborted: %s", reason))
	return true
}

// ShardSessions reports the live shard-session count (tests assert it
// drains to zero).
func (m *Manager) ShardSessions() int {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	return len(m.shardSessions)
}

// shardTransport builds the rank's outgoing-frame sender: POST the frame
// to the destination rank's halo endpoint. A connection error fails the
// send immediately (the peer is gone — the session aborts within one
// round trip); a 404/503 means the peer is up but the session is not
// registered there yet (start ordering) or its manager is momentarily
// unavailable, so the send retries until the halo timeout.
func (m *Manager) shardTransport(req StartShardRequest, httpc *http.Client) func(dst int, frame []byte) error {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	timeout := m.opts.HaloTimeout
	if timeout <= 0 {
		timeout = mpi.DefaultRecvTimeout
	}
	return func(dst int, frame []byte) error {
		target := strings.TrimRight(req.Peers[dst], "/") +
			"/v1/shard/halo?session=" + url.QueryEscape(req.Session)
		deadline := time.Now().Add(timeout)
		for {
			hr, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(frame))
			if err != nil {
				return err
			}
			hr.Header.Set("Content-Type", "application/x-easypap-halo")
			if req.TraceID != "" {
				hr.Header.Set(TraceHeader, req.TraceID)
			}
			resp, err := httpc.Do(hr)
			if err != nil {
				return fmt.Errorf("halo to rank %d (%s): %w", dst, req.Peers[dst], err)
			}
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusNoContent, http.StatusOK:
				return nil
			case http.StatusNotFound, http.StatusServiceUnavailable:
				if time.Now().After(deadline) {
					return fmt.Errorf("halo to rank %d (%s): session not ready after %v (HTTP %d)",
						dst, req.Peers[dst], timeout, resp.StatusCode)
				}
				time.Sleep(10 * time.Millisecond)
			default:
				return fmt.Errorf("halo to rank %d (%s): HTTP %d", dst, req.Peers[dst], resp.StatusCode)
			}
		}
	}
}
