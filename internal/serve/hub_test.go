package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
)

// testRecord builds one EZFRAME wire record with a deterministic tiny
// payload tagged by iter.
func testRecord(t *testing.T, window string, iter int) []byte {
	t.Helper()
	rec, err := gfx.EncodeFrameRecord(window, iter, []byte{byte(iter), byte(iter >> 8), 0xaa})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func publishN(t *testing.T, h *FrameHub, n, keyEvery int) {
	t.Helper()
	for i := 0; i < n; i++ {
		full := testRecord(t, "main", i)
		var delta []byte
		key := keyEvery <= 0 || i%keyEvery == 0
		if !key {
			d, err := gfx.EncodeDeltaRecord("main", i, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			delta = d
		}
		if err := h.Publish("main", key, full, delta); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
}

// drainRecords reads records off a HubReader until EOF.
func drainRecords(t *testing.T, rd io.Reader) []*gfx.Record {
	t.Helper()
	br := bufio.NewReader(rd)
	var out []*gfx.Record
	for {
		rec, err := gfx.ReadRecord(br)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("after %d records: %v", len(out), err)
		}
		out = append(out, rec)
	}
}

// Publishing after Close must error and count, never silently append —
// the regression this pins: the old frameHub accepted post-close writes
// that no subscriber could ever observe.
func TestHubPostClosePublish(t *testing.T) {
	var stats HubStats
	h := NewFrameHub(HubOptions{Stats: &stats})
	publishN(t, h, 2, 0)
	h.Close()
	h.Close() // idempotent

	err := h.Publish("main", true, testRecord(t, "main", 99), nil)
	if !errors.Is(err, ErrHubClosed) {
		t.Fatalf("post-close publish: got %v, want ErrHubClosed", err)
	}
	if got := stats.PostCloseDrops.Load(); got != 1 {
		t.Errorf("PostCloseDrops = %d, want 1", got)
	}

	rd := h.Subscribe(context.Background(), gfx.FormatFull)
	defer rd.Close()
	recs := drainRecords(t, rd)
	if len(recs) != 2 {
		t.Fatalf("subscriber saw %d records, want 2 (dropped record leaked into the ring)", len(recs))
	}
}

// A subscriber blocked waiting for frames must unblock when its context
// is canceled — the goroutine-leak regression: a viewer that closed its
// connection used to park in cond.Wait until the job finished.
func TestHubSubscriberCancelUnblocks(t *testing.T) {
	h := NewFrameHub(HubOptions{})
	ctx, cancel := context.WithCancel(context.Background())

	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		rd := h.Subscribe(ctx, gfx.FormatFull)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			_, err := io.ReadAll(rd)
			errs <- err
		}()
	}

	// All readers are (or soon will be) parked on the empty hub.
	time.Sleep(20 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled subscribers still blocked after 2s — reader goroutines leaked")
	}
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Errorf("reader %d: got %v, want context.Canceled", i, err)
		}
	}
	// The hub is still usable for other subscribers afterwards.
	publishN(t, h, 1, 0)
	h.Close()
	rd := h.Subscribe(context.Background(), gfx.FormatFull)
	defer rd.Close()
	if got := len(drainRecords(t, rd)); got != 1 {
		t.Errorf("post-cancel subscriber saw %d records, want 1", got)
	}
}

// A stalled subscriber must never stall the writer: with a tiny ring the
// writer keeps evicting and publishing at full speed, and when the
// subscriber finally reads it lands on the latest keyframe (counted as a
// drop) instead of chasing evicted history.
func TestHubSlowSubscriberDropsToKeyframe(t *testing.T) {
	var stats HubStats
	// Ring ≥ keyframe interval (as with the defaults), so a keyframe is
	// always retained for resync.
	h := NewFrameHub(HubOptions{MaxRecords: 16, KeyframeEvery: 8, Stats: &stats})

	// Subscribe first, read nothing: the cursor points at seq 0.
	rd := h.Subscribe(context.Background(), gfx.FormatDelta)
	defer rd.Close()

	// The writer publishes far more than the ring holds. Publish never
	// blocks on the stalled subscriber; a wall-clock bound catches any
	// future backpressure coupling.
	done := make(chan struct{})
	go func() {
		publishN(t, h, 200, 8)
		h.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked by a stalled subscriber")
	}

	recs := drainRecords(t, rd)
	if len(recs) == 0 {
		t.Fatal("stalled subscriber got nothing after resync")
	}
	if recs[0].Kind != gfx.RecordFull {
		t.Errorf("first record after resync is %v, want a keyframe (RecordFull)", recs[0].Kind)
	}
	if recs[0].Iter != 192 {
		t.Errorf("resynced to keyframe iter %d, want 192 (the newest keyframe)", recs[0].Iter)
	}
	// It must have resynced near the head, not replayed the stream.
	if len(recs) > 16 {
		t.Errorf("resynced subscriber got %d records, want at most the ring", len(recs))
	}
	if got := stats.DroppedToKey.Load(); got == 0 {
		t.Error("DroppedToKey = 0, want > 0 for a lapped subscriber")
	}
}

// Ring memory is bounded by MaxBytes/MaxRecords regardless of stream
// length — the tentpole's memory guarantee.
func TestHubMemoryBounded(t *testing.T) {
	const maxBytes = 64 << 10
	h := NewFrameHub(HubOptions{MaxRecords: 1 << 20, MaxBytes: maxBytes})
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	for i := 0; i < 500; i++ {
		full, err := gfx.EncodeFrameRecord("main", i, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Publish("main", true, full, nil); err != nil {
			t.Fatal(err)
		}
		h.mu.Lock()
		b, n := h.bytes, len(h.ring)
		h.mu.Unlock()
		if b > maxBytes && n > 1 {
			t.Fatalf("after %d publishes ring holds %d bytes > MaxBytes %d", i+1, b, maxBytes)
		}
	}
	h.mu.Lock()
	n := len(h.ring)
	h.mu.Unlock()
	if n >= 500 {
		t.Errorf("ring retained all %d records — eviction never ran", n)
	}
}

// A late full-format subscriber replays the retained ring from the
// oldest record; concurrent subscribers see identical bytes.
func TestHubLateSubscribersSeeIdenticalStreams(t *testing.T) {
	h := NewFrameHub(HubOptions{})
	publishN(t, h, 10, 3)
	h.Close()

	var streams [][]byte
	for i := 0; i < 3; i++ {
		rd := h.Subscribe(context.Background(), gfx.FormatFull)
		b, err := io.ReadAll(rd)
		rd.Close()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, b)
	}
	for i := 1; i < len(streams); i++ {
		if !bytes.Equal(streams[0], streams[i]) {
			t.Errorf("subscriber %d bytes differ from subscriber 0", i)
		}
	}
	recs := drainRecords(t, bytes.NewReader(streams[0]))
	if len(recs) != 10 {
		t.Errorf("full-format replay has %d records, want 10", len(recs))
	}
	for _, rec := range recs {
		if rec.Kind != gfx.RecordFull {
			t.Errorf("full-format stream contains a %v record", rec.Kind)
		}
	}
}

// Delta-format subscribers skip a window's delta records until they have
// its keyframe; a delta stream therefore always starts with EZFRAME.
func TestHubDeltaStreamStartsOnKeyframe(t *testing.T) {
	h := NewFrameHub(HubOptions{MaxRecords: 3, KeyframeEvery: 4})
	// Publish so the ring's oldest survivor is a non-key record.
	publishN(t, h, 6, 4) // keys at 0 and 4; ring keeps 3,4,5
	h.Close()

	rd := h.Subscribe(context.Background(), gfx.FormatDelta)
	defer rd.Close()
	recs := drainRecords(t, rd)
	if len(recs) == 0 {
		t.Fatal("no records delivered")
	}
	if recs[0].Kind != gfx.RecordFull {
		t.Fatalf("delta stream started with %v, want keyframe", recs[0].Kind)
	}
	if recs[0].Iter != 4 {
		t.Errorf("first keyframe is iter %d, want 4 (the retained keyframe)", recs[0].Iter)
	}
	for _, rec := range recs[1:] {
		if rec.Kind != gfx.RecordDelta {
			t.Errorf("post-keyframe record for a delta reader is %v", rec.Kind)
		}
	}
}

// hubSink encodes deltas only off the keyframe cadence and falls back to
// a keyframe when the patch would not be smaller.
func TestHubSinkKeyframeCadence(t *testing.T) {
	var stats HubStats
	h := NewFrameHub(HubOptions{KeyframeEvery: 4, Stats: &stats})
	sink := newHubSink(h)

	const dim, tile = 32, 8
	img := img2d.New(dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			if (x+y)%2 == 0 {
				img.Set(y, x, img2d.RGB(255, 255, 255))
			}
		}
	}
	grid := &gfx.TileSet{TilesX: dim / tile, TilesY: dim / tile, TileW: tile, TileH: tile}
	for i := 0; i < 8; i++ {
		set := &gfx.TileSet{TilesX: grid.TilesX, TilesY: grid.TilesY,
			TileW: tile, TileH: tile, Tiles: []int32{int32(i % 16)}}
		img.FillRect((i%4)*tile, (i/4)*tile, tile, tile, img2d.RGB(0, uint8(40*i), 0))
		if err := sink.FrameDirty("main", i+1, img, set); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()

	rd := h.Subscribe(context.Background(), gfx.FormatDelta)
	defer rd.Close()
	recs := drainRecords(t, rd)
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	// Frames 0 and 4 of the window are on the cadence; the rest carry
	// one-tile patches that are clearly smaller than a 32x32 PNG.
	for i, rec := range recs {
		wantKey := i%4 == 0
		if (rec.Kind == gfx.RecordFull) != wantKey {
			t.Errorf("record %d kind %v, want key=%v", i, rec.Kind, wantKey)
		}
	}
	if stats.DeltaBytes.Load() >= stats.FullBytes.Load() {
		t.Errorf("delta bytes %d not smaller than full bytes %d for sparse dirt",
			stats.DeltaBytes.Load(), stats.FullBytes.Load())
	}
}

// Subscribers gauge goes up on Subscribe and back down on Close, once,
// even if Close is called repeatedly.
func TestHubSubscriberGauge(t *testing.T) {
	var stats HubStats
	h := NewFrameHub(HubOptions{Stats: &stats})
	rd1 := h.Subscribe(context.Background(), gfx.FormatFull)
	rd2 := h.Subscribe(context.Background(), gfx.FormatDelta)
	if got := stats.Subscribers.Load(); got != 2 {
		t.Fatalf("gauge = %d after two subscribes, want 2", got)
	}
	rd1.Close()
	rd1.Close()
	rd2.Close()
	if got := stats.Subscribers.Load(); got != 0 {
		t.Errorf("gauge = %d after closes, want 0", got)
	}
}
