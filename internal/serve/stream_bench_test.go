package serve

// Frame-path encoding cost: what one published frame costs the run loop
// with the full-PNG path versus the dirty-tile delta path, and what the
// hub's publish fan-out costs per subscriber. BENCH_stream.json records
// the numbers together with the byte-shrink measurement from
// TestDeltaStreamShrinksBytes.

import (
	"context"
	"io"
	"testing"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
)

// benchBoard builds a 256x256 two-color board with a sparse diagonal of
// live cells — the shape of a steady-state lazy-life frame.
func benchBoard() (*img2d.Image, *gfx.TileSet) {
	const dim, tile = 256, 16
	img := img2d.New(dim)
	set := &gfx.TileSet{TilesX: dim / tile, TilesY: dim / tile, TileW: tile, TileH: tile}
	for i := 0; i < dim; i += 4 {
		img.Set(i, i, img2d.RGB(255, 255, 255))
		if i+1 < dim {
			img.Set(i+1, i, img2d.RGB(255, 255, 255))
		}
	}
	// The dispatch frontier: the diagonal tiles plus their neighbours.
	seen := map[int32]bool{}
	for ty := 0; ty < set.TilesY; ty++ {
		for _, dx := range []int{-1, 0, 1} {
			tx := ty + dx
			if tx < 0 || tx >= set.TilesX {
				continue
			}
			t := int32(ty*set.TilesX + tx)
			if !seen[t] {
				seen[t] = true
				set.Tiles = append(set.Tiles, t)
			}
		}
	}
	return img, set
}

// BenchmarkFramePublishFull is the pre-delta baseline: every frame PNG
// encoded and published as a keyframe.
func BenchmarkFramePublishFull(b *testing.B) {
	img, _ := benchBoard()
	h := NewFrameHub(HubOptions{MaxRecords: 64})
	s := newHubSink(h)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Frame("main", i+1, img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFramePublishDelta is the dirty-tile path: PNG still encoded
// (it backs keyframes and full-format readers) plus the changed-tile
// diff and EZDELTA encoding.
func BenchmarkFramePublishDelta(b *testing.B) {
	img, set := benchBoard()
	h := NewFrameHub(HubOptions{MaxRecords: 64, KeyframeEvery: 1 << 30})
	s := newHubSink(h)
	// Seed the previous frame so every benched iteration takes the delta
	// path; flip one pixel per round so the diff is never empty.
	if err := s.FrameDirty("main", 1, img, set); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on := i%2 == 0
		px := img2d.RGB(0, 0, 0)
		if on {
			px = img2d.RGB(255, 255, 255)
		}
		img.Set(8, 8, px)
		if err := s.FrameDirty("main", i+2, img, set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubFanout measures delivering one published record to N
// subscribers — the per-viewer cost of the broadcast hub.
func BenchmarkHubFanout(b *testing.B) {
	img, _ := benchBoard()
	h := NewFrameHub(HubOptions{MaxRecords: 8})
	s := newHubSink(h)
	const subs = 16
	readers := make([]*HubReader, subs)
	for i := range readers {
		readers[i] = h.Subscribe(context.Background(), gfx.FormatFull)
		defer readers[i].Close()
	}
	buf := make([]byte, 64<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Frame("main", i+1, img); err != nil {
			b.Fatal(err)
		}
		for _, rd := range readers {
			// Drain exactly the published record from each cursor.
			for {
				n, err := rd.Read(buf)
				if err != nil && err != io.EOF {
					b.Fatal(err)
				}
				if n < len(buf) {
					break
				}
			}
		}
	}
}
