package serve_test

// Observability acceptance at the single-node tier: the span tree behind
// GET /v1/trace/{job}, the Prometheus exposition behind GET /metrics
// (inventory pinned by a golden file), and the JSON-stats contract that
// zero-valued counters stay present (dashboards key on them).

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easypap/internal/serve"
	"easypap/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// flattenSpans walks a TraceDoc's nested spans into a flat list.
func flattenSpans(nodes []*trace.SpanNode) []trace.Span {
	var out []trace.Span
	var walk func(n *trace.SpanNode)
	walk = func(n *trace.SpanNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range nodes {
		walk(n)
	}
	return out
}

func stagesOf(spans []trace.Span) map[string]int {
	m := make(map[string]int)
	for _, s := range spans {
		m[s.Stage]++
	}
	return m
}

// TestTraceSingleNode: a computed job yields a span tree with the
// admit/queue/compute stages, all on the "local" node, sharing the
// trace id the job status reported.
func TestTraceSingleNode(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	st, err := cl.Submit(ctx, mandelCfg(2), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" {
		t.Fatal("job status carries no trace id")
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil || st.State != serve.JobDone {
		t.Fatalf("job ended state=%v err=%v", st.State, err)
	}

	doc, err := cl.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != st.TraceID {
		t.Fatalf("trace id mismatch: doc %s vs status %s", doc.TraceID, st.TraceID)
	}
	if len(doc.Nodes) != 1 || doc.Nodes[0] != "local" {
		t.Fatalf("nodes = %v, want [local]", doc.Nodes)
	}
	spans := flattenSpans(doc.Spans)
	stages := stagesOf(spans)
	for _, want := range []string{serve.StageAdmit, serve.StageQueue, serve.StageCompute} {
		if stages[want] == 0 {
			t.Errorf("no %s span in %v", want, stages)
		}
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %s ends before it starts: %+v", s.Stage, s)
		}
		if s.TraceID != doc.TraceID {
			t.Errorf("span %s has foreign trace id %s", s.Stage, s.TraceID)
		}
	}

	// A cache-served resubmission joins a NEW trace (it is a new request)
	// but still resolves to a span tree.
	st2, err := cl.Submit(ctx, mandelCfg(2), false)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.TraceID == st.TraceID {
		t.Fatalf("resubmission cached=%v trace=%s (first %s)", st2.Cached, st2.TraceID, st.TraceID)
	}
	doc2, err := cl.Trace(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stagesOf(flattenSpans(doc2.Spans))[serve.StageAdmit] == 0 {
		t.Errorf("cache-served trace has no admit span: %v", stagesOf(flattenSpans(doc2.Spans)))
	}

	// Unknown job ids 404.
	if _, err := cl.Trace(ctx, "j-999999"); err == nil {
		t.Error("trace of unknown job did not error")
	}
}

// TestMetricsEndpoint: GET /metrics serves the Prometheus text format,
// the job counters track the stats atomics, and the compute stage
// histogram saw the run.
func TestMetricsEndpoint(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	st, err := cl.Submit(ctx, mandelCfg(2), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cl.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"easypapd_jobs_submitted_total 1",
		"easypapd_jobs_completed_total 1",
		`easypapd_cache_hits_total{tier="memory"} 0`,
		`easypapd_stage_ns_count{stage="compute"} 1`,
		`easypapd_stage_ns_bucket{stage="compute",le="+Inf"} 1`,
		"easypapd_queue_capacity 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// scrubValues replaces every sample value with "V" so the golden file
// pins the series inventory — names, types, help, label sets, bucket
// bounds — without depending on timings or counts.
func scrubValues(text string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			b.WriteString(line)
		} else if i := strings.LastIndexByte(line, ' '); i >= 0 {
			b.WriteString(line[:i+1] + "V")
		} else {
			b.WriteString(line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMetricsGolden pins the /metrics exposition of a fresh manager
// against testdata/metrics.golden. Run with -update to rewrite it after
// an intentional metrics change.
func TestMetricsGolden(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	resp, err := http.Get(cl.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := scrubValues(string(body))

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics exposition drifted from %s (run with -update if intentional)\n--- got ---\n%s", golden, got)
	}
}

// TestStatsCountersAlwaysPresent pins the /v1/stats JSON contract:
// counters serialize even at zero, so dashboards and scrapers can key
// on them from the first scrape (no omitempty on counters).
func TestStatsCountersAlwaysPresent(t *testing.T) {
	raw, err := json.Marshal(serve.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"remote_hits":0`, `"spills":0`, `"spill_errors":0`, `"spill_dropped":0`,
		`"disk_corrupt":0`, `"recovered_jobs":0`, `"interrupted_jobs":0`,
		`"disk_hits":0`, `"disk_misses":0`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("zero-valued Stats is missing %s: %s", key, raw)
		}
	}
	raw, err = json.Marshal(serve.KernelThroughput{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tiles_dispatched":0`, `"tiles_skipped":0`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("zero-valued KernelThroughput is missing %s: %s", key, raw)
		}
	}
}
