package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"easypap/internal/core"
)

// resultCache is the daemon's result cache: completed performance-mode
// runs keyed by the canonical hash of their normalized core.Config
// (core.Config.Hash). Repeat submissions of the same computation are
// answered instantly from here — the paper's workflow of re-running the
// same configuration while exploring parameters makes this the single
// highest-leverage optimization a serving frontend can apply.
//
// Eviction is LRU with a fixed entry capacity; results are a few hundred
// bytes each, so the default capacity costs practically nothing.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element whose Value is *cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	hash   string
	result core.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for hash, counting the hit or miss.
func (c *resultCache) get(hash string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		c.misses.Add(1)
		return core.Result{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).result, true
}

// put stores a result, evicting the least recently used entry beyond
// capacity.
func (c *resultCache) put(hash string, r core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, result: r})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).hash)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
