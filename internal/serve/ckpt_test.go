package serve

// Manager-level checkpointing tests: the exactly-once sweep (the
// feature's acceptance bar — deepening runs of one config prefix must
// never recompute an iteration another run already computed), crash
// recovery that resumes from the journaled checkpoint instead of
// iteration zero, and the frames-job carve-out (checkpointed frames
// jobs requeue; snapshot-less ones stay interrupted, see
// TestFramesJobAlwaysInterrupted in persist_test.go).

import (
	"bytes"
	"context"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve/store"
)

// ckptCfg is a life (codec-capable) config at depth iters — small
// geometry so the whole sweep fits the CI box.
func ckptCfg(iters int) core.Config {
	return core.Config{Kernel: "life", Variant: "seq", Dim: 64, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 1, Seed: 3, Label: "ckpt-test"}
}

// waitSnapshots polls until the manager has durably written n snapshots
// (the spiller is write-behind, so a submission racing the previous
// job's checkpoint would nondeterministically miss the resume).
func waitSnapshots(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().SnapshotsWritten >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("snapshots written never reached %d (stats: %+v)", n, m.Stats())
}

// TestSweepComputesEachIterationOnce is the acceptance test: a sweep
// over iterations {20,40,60,80} of one config with snapshotting on
// computes each iteration exactly once — every run past the first
// resumes from the previous run's end-state checkpoint — and every
// result is byte-identical to a cold (snapshot-free) run.
func TestSweepComputesEachIterationOnce(t *testing.T) {
	const every = 20
	depths := []int{20, 40, 60, 80}

	sA, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sA.Close()
	mA := NewManager(Options{Workers: 1, Store: sA, SnapshotEvery: every})
	defer mA.Close()

	sB, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sB.Close()
	mB := NewManager(Options{Workers: 1, Store: sB}) // cold reference: no checkpointing
	defer mB.Close()

	hashes := make([]string, len(depths))
	for i, n := range depths {
		stA := submitWait(t, mA, ckptCfg(n))
		if stA.State != JobDone || stA.Cached {
			t.Fatalf("sweep step %d: %+v", n, stA)
		}
		hashes[i] = stA.Hash
		// Provenance on the live job: every step but the first started
		// from the previous step's end-state snapshot.
		if want := n - every; stA.Result.ResumedFrom != want {
			t.Errorf("step %d resumed from %d, want %d", n, stA.Result.ResumedFrom, want)
		}
		if stA.Result.Iterations != n {
			t.Errorf("step %d reports %d iterations, want %d", n, stA.Result.Iterations, n)
		}
		// Each step checkpoints its own end boundary before the next
		// submission — that snapshot is what the next step resumes from.
		waitSnapshots(t, mA, int64(i+1))

		stB := submitWait(t, mB, ckptCfg(n))
		if stB.State != JobDone || stB.Result.ResumedFrom != 0 {
			t.Fatalf("cold step %d: %+v", n, stB)
		}
	}
	waitSpills(t, mA, int64(len(depths)))
	waitSpills(t, mB, int64(len(depths)))

	// Exactly once: the iteration counter is the sum of computed-this-run
	// iterations, which for a perfectly resumed sweep is just the deepest
	// depth. The cold manager pays the full quadratic bill.
	stats := mA.Stats()
	if got := stats.Kernels["life"].Iterations; got != int64(depths[len(depths)-1]) {
		t.Errorf("sweep computed %d iterations, want %d (each exactly once)", got, depths[len(depths)-1])
	}
	if cold := mB.Stats().Kernels["life"].Iterations; cold != 20+40+60+80 {
		t.Errorf("cold reference computed %d iterations, want 200", cold)
	}
	if stats.SnapshotsResumed != int64(len(depths)-1) {
		t.Errorf("snapshots_resumed = %d, want %d", stats.SnapshotsResumed, len(depths)-1)
	}
	if stats.SnapshotsWritten < int64(len(depths)) {
		t.Errorf("snapshots_written = %d, want >= %d", stats.SnapshotsWritten, len(depths))
	}

	// Byte-identity: the spilled entry of every resumed run matches the
	// cold run's — same frames, same iteration count, and no resume
	// provenance leaked into the content-addressed record.
	for i, n := range depths {
		entA, ok := sA.Cache.Get(hashes[i])
		if !ok {
			t.Fatalf("step %d entry not on disk", n)
		}
		entB, ok := sB.Cache.Get(hashes[i])
		if !ok {
			t.Fatalf("cold step %d entry not on disk", n)
		}
		if !bytes.Equal(entA.Frames, entB.Frames) {
			t.Errorf("step %d: resumed frames differ from cold run (%d vs %d bytes)",
				n, len(entA.Frames), len(entB.Frames))
		}
		if entA.Result.Iterations != entB.Result.Iterations || entA.Result.ResumedFrom != 0 {
			t.Errorf("step %d: cached result %+v not canonical (cold: %+v)",
				n, entA.Result, entB.Result)
		}
	}
}

// crashStoreCkpt fabricates a SIGKILL'd daemon that had checkpointing
// on: an open journal record carrying the original submit time, a snap
// record at iteration k, and the snapshot itself in the cache. The
// state bytes come from a real run, so the restarted manager restores
// genuine kernel state, not a fixture.
func crashStoreCkpt(t *testing.T, dir, id string, cfg core.Config, frames bool, k int, submitted time.Time) {
	t.Helper()
	norm, hash, err := NormalizeSubmission(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	var state []byte
	if _, err := core.RunWith(context.Background(), norm, core.RunOptions{
		SnapshotEvery: k,
		OnSnapshot: func(iter int, s []byte) {
			if iter == k {
				state = append([]byte(nil), s...)
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if state == nil {
		t.Fatalf("no snapshot at iteration %d", k)
	}
	prefixHash, err := norm.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Begin(id, hash, frames, norm, submitted.UnixNano()); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Snap(id, k); err != nil {
		t.Fatal(err)
	}
	if err := s.Cache.PutSnapshot(&store.Snapshot{PrefixHash: prefixHash, Iter: k, State: state}); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestRecoveryResumesFromCheckpoint pins the crash path end to end: the
// requeued job restarts from the journaled checkpoint (not iteration
// zero), keeps its original submit time across the restart, and the
// kernel counter credits only the iterations this generation computed.
func TestRecoveryResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCfg(24)
	const k = 16
	submitted := time.Unix(0, 1700000000000000000)
	crashStoreCkpt(t, dir, "j-000003", cfg, false, k, submitted)

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s})
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, "j-000003")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Recovered {
		t.Fatalf("recovered job: %+v", st)
	}
	if st.Result.ResumedFrom != k {
		t.Errorf("recovered job resumed from %d, want %d", st.Result.ResumedFrom, k)
	}
	if st.Result.Iterations != cfg.Iterations {
		t.Errorf("recovered job reports %d iterations, want %d", st.Result.Iterations, cfg.Iterations)
	}
	if !st.SubmittedAt.Equal(submitted) {
		t.Errorf("recovered job lost its submit time: %v, want %v", st.SubmittedAt, submitted)
	}
	stats := m.Stats()
	if stats.SnapshotsResumed != 1 {
		t.Errorf("snapshots_resumed = %d, want 1", stats.SnapshotsResumed)
	}
	if got := stats.Kernels["life"].Iterations; got != int64(cfg.Iterations-k) {
		t.Errorf("kernel counter credits %d iterations, want %d (only what this run computed)",
			got, cfg.Iterations-k)
	}

	// The resumed result must match a cold run byte for byte.
	waitSpills(t, m, 1)
	ent, ok := s.Cache.Get(st.Hash)
	if !ok {
		t.Fatal("recovered job's entry not on disk")
	}
	if !bytes.Equal(ent.Frames, coldFrames(t, cfg)) {
		t.Error("resumed result not byte-identical to cold run")
	}
}

// coldFrames computes the reference final-frame bytes for cfg through a
// snapshot-free manager with its own store.
func coldFrames(t *testing.T, cfg core.Config) []byte {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s})
	defer m.Close()
	st := submitWait(t, m, cfg)
	waitSpills(t, m, 1)
	ent, ok := s.Cache.Get(st.Hash)
	if !ok {
		t.Fatal("reference entry not on disk")
	}
	return ent.Frames
}

// TestFramesJobWithCheckpointRequeued pins the frames carve-out: a
// frames job is normally interrupted on restart (its subscribers are
// gone and replaying every frame would be wrong), but one that reached
// a checkpoint requeues and finishes from there — the terminal state
// and final frames survive even though the live stream did not.
func TestFramesJobWithCheckpointRequeued(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCfg(24)
	const k = 8
	crashStoreCkpt(t, dir, "j-000005", cfg, true, k, time.Unix(0, 1700000000000000000))

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s}) // default requeue policy
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, "j-000005")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Recovered || !st.Frames {
		t.Fatalf("checkpointed frames job should requeue and finish: %+v", st)
	}
	if st.Result.ResumedFrom != k {
		t.Errorf("frames job resumed from %d, want %d", st.Result.ResumedFrom, k)
	}
	if got := m.Stats().InterruptedJobs; got != 0 {
		t.Errorf("interrupted_jobs = %d, want 0", got)
	}
}
