// Package serve is the compute-service subsystem behind easypapd: it
// turns the one-shot core.Run of the paper's CLI workflow into a
// multi-tenant job service. A Manager owns
//
//   - a bounded submission queue with admission control (submissions
//     beyond the queue depth are rejected, not buffered — the McKenney
//     discipline for a shared backend),
//   - a fixed team of job runners,
//   - a warm-pool set (internal: poolSet) so jobs lease reusable
//     sched.Pools instead of building their own,
//   - a result cache keyed by core.Config.Hash with hit/miss counters,
//   - per-job cancellation threaded through core.RunContext down to the
//     iteration loop and mpi.Recv.
//
// The HTTP layer in http.go exposes it as the /v1 API; internal/serve/client
// is the Go client, which also plugs into expt.Sweep as a remote backend.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/sched"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned by Submit when admission control rejects
	// the job (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full, submission rejected")
	// ErrUnknownJob is returned for ids that do not exist (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrNoFrames is returned when streaming is requested for a job that
	// was not submitted with frames enabled (HTTP 409).
	ErrNoFrames = errors.New("serve: job was not submitted with frames enabled")
	// ErrClosed is returned by Submit after the manager shut down.
	ErrClosed = errors.New("serve: manager closed")
)

// JobState is the lifecycle of a submission.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Options tunes a Manager. The zero value is a sane single-node setup.
type Options struct {
	// QueueDepth bounds how many jobs may wait for a runner (default 64).
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// Workers is the number of concurrent job runners (default
	// GOMAXPROCS). Each running job additionally owns its leased pool's
	// worker team, so on a small machine 1–2 runners is plenty.
	Workers int
	// CacheCapacity bounds the result cache in entries (default 128).
	CacheCapacity int
	// MaxIdlePools bounds how many warm pools are kept per thread count
	// (default 4). Zero disables warm reuse: every job builds and closes
	// its own pool, which is what the serving benchmark compares against.
	MaxIdlePools int
	// DisableWarmPools turns pool reuse off even with a nonzero
	// MaxIdlePools (the cold baseline of BENCH_serve.json).
	DisableWarmPools bool
	// RecvTimeout bounds the MPI receive watchdog for distributed jobs
	// (zero keeps mpi.DefaultRecvTimeout).
	RecvTimeout time.Duration
	// MaxJobHistory bounds how many *terminal* job records (and their
	// frame buffers) are kept for status queries (default 4096). Oldest
	// finished jobs are forgotten first; active jobs are never evicted.
	MaxJobHistory int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 128
	}
	if o.MaxIdlePools <= 0 {
		o.MaxIdlePools = 4
	}
	if o.DisableWarmPools {
		o.MaxIdlePools = 0
	}
	if o.MaxJobHistory <= 0 {
		o.MaxJobHistory = 4096
	}
	return o
}

// JobStatus is the externally visible snapshot of a job — the JSON body
// of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached,omitempty"` // result came from the cache, no recompute
	Frames bool     `json:"frames,omitempty"` // job streams frames
	Hash   string   `json:"hash"`             // canonical config hash (the cache key)

	Config core.Config  `json:"config"`           // normalized
	Result *core.Result `json:"result,omitempty"` // present once done
	Error  string       `json:"error,omitempty"`  // present when failed/canceled

	// Activity is the latest tile-frontier report of a lazy kernel job —
	// updated live while the job runs, so polling GET /v1/jobs/{id} shows
	// the frontier collapsing. Absent for eager variants. The full
	// per-iteration series lands in Result.Activity once done.
	Activity *ActivityStatus `json:"activity,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	QueuedNS    int64     `json:"queued_ns,omitempty"` // time spent waiting for a runner
	RanNS       int64     `json:"ran_ns,omitempty"`    // time spent executing
}

// ActivityStatus is the live frontier snapshot of a lazy job: at
// iteration Iter, Active of Total owned tiles were dispatched.
type ActivityStatus struct {
	Iter   int     `json:"iter"`
	Active int     `json:"active_tiles"`
	Total  int     `json:"total_tiles"`
	Ratio  float64 `json:"ratio"` // Active / Total
}

// job is the internal record.
type job struct {
	id     string
	hash   string
	cfg    core.Config // normalized, scrubbed
	frames *frameHub   // nil unless the submission requested frames
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{} // closed when the job reaches a terminal state

	mu        sync.Mutex
	state     JobState
	cached    bool
	result    *core.Result
	errMsg    string
	activity  *ActivityStatus // latest lazy-frontier report (nil for eager)
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// snapshot builds the external view under the job lock.
func (j *job) snapshot() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &JobStatus{
		ID: j.id, State: j.state, Cached: j.cached, Frames: j.frames != nil,
		Hash: j.hash, Config: j.cfg, Result: j.result, Error: j.errMsg,
		Activity: j.activity, SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		s.QueuedNS = j.started.Sub(j.submitted).Nanoseconds()
		if !j.finished.IsZero() {
			s.RanNS = j.finished.Sub(j.started).Nanoseconds()
		}
	}
	return s
}

// kernelStats accumulates per-kernel serving throughput.
type kernelStats struct {
	jobs       int64
	iterations int64
	wallNS     int64
	dispatched int64 // lazy frontier tiles actually computed
	skipped    int64 // tiles the frontier let the kernel skip
}

// Manager is the job service. Create with NewManager, shut down with
// Close. All methods are safe for concurrent use.
type Manager struct {
	opts  Options
	start time.Time

	baseCtx context.Context
	stopAll context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu        sync.Mutex // guards jobs map, doneOrder and closed
	jobs      map[string]*job
	doneOrder []string // terminal job ids, oldest first (history eviction)
	closed    bool

	cache *resultCache
	pools *poolSet

	nextID    atomic.Int64
	running   atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64

	kmu     sync.Mutex
	kernels map[string]*kernelStats
}

// NewManager starts the runner team and returns a ready manager.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		start:   time.Now(),
		queue:   make(chan *job, opts.QueueDepth),
		jobs:    make(map[string]*job),
		cache:   newResultCache(opts.CacheCapacity),
		pools:   newPoolSet(opts.MaxIdlePools),
		kernels: make(map[string]*kernelStats),
	}
	m.baseCtx, m.stopAll = context.WithCancel(context.Background())
	m.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go m.runner()
	}
	return m
}

// NormalizeSubmission applies the daemon's submission discipline to a
// client config and returns the normalized config plus its canonical
// hash — the cache key, and the routing key of cluster mode. The daemon
// never touches the server filesystem on behalf of a client: output and
// trace paths are scrubbed, performance mode is forced, and frames (when
// requested) stream from memory. Every layer that needs to know where a
// submission lands (Manager.Submit, the cluster router, the hash-aware
// multi-endpoint client) must use this one function, or identical
// submissions would route and cache under different keys.
func NormalizeSubmission(cfg core.Config, wantFrames bool) (core.Config, string, error) {
	cfg.OutputDir = ""
	cfg.TracePath = ""
	cfg.NoDisplay = true
	if !wantFrames {
		// Monitoring/heat-map instrumentation is excluded from the config
		// hash (it never changes what is computed), so a cacheable run must
		// not carry its timing overhead either — otherwise an instrumented
		// submission would poison the cache entry its uninstrumented twin
		// hits. Frames jobs keep it: it enables the tiling/activity windows
		// in the live stream, and they bypass the cache anyway.
		cfg.Monitoring = false
		cfg.HeatMode = false
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return cfg, "", err
	}
	hash, err := cfg.Hash()
	if err != nil {
		return cfg, "", err
	}
	return cfg, hash, nil
}

// Submit normalizes and admits a job. Identical resubmissions (same
// canonical config hash) of non-frames jobs are answered from the result
// cache without recomputation: the returned job is already done with
// Cached set. Jobs that stream frames bypass the cache — their value is
// the live stream, and display-mode timing must not pollute cached
// performance results.
func (m *Manager) Submit(cfg core.Config, wantFrames bool) (*JobStatus, error) {
	cfg, hash, err := NormalizeSubmission(cfg, wantFrames)
	if err != nil {
		return nil, err
	}

	j := &job{
		hash:      hash,
		cfg:       cfg,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if wantFrames {
		j.frames = newFrameHub()
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	j.id = fmt.Sprintf("j-%06d", m.nextID.Add(1))

	if !wantFrames {
		if r, ok := m.cache.get(hash); ok {
			now := time.Now()
			j.state = JobDone
			j.cached = true
			j.result = &r
			j.started, j.finished = now, now
			close(j.done)
			m.jobs[j.id] = j
			m.retireLocked(j.id)
			m.submitted.Add(1)
			m.completed.Add(1)
			m.mu.Unlock()
			return j.snapshot(), nil
		}
	}

	j.ctx, j.cancel = context.WithCancel(m.baseCtx)
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.submitted.Add(1)
		m.mu.Unlock()
		return j.snapshot(), nil
	default:
		m.mu.Unlock()
		// Release the child context immediately: a rejected submission must
		// not stay registered with baseCtx (under sustained overload —
		// exactly when rejections fire — that would grow without bound).
		j.cancel()
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// runner executes queued jobs until the queue closes.
func (m *Manager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through lease → run → release → publish.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		// Canceled (or manager shut down) while still queued.
		m.finish(j, nil, err)
		j.mu.Unlock()
		m.retire(j.id)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	m.running.Add(1)
	defer m.running.Add(-1)

	opts := core.RunOptions{RecvTimeout: m.opts.RecvTimeout}
	opts.OnActivity = func(a core.IterActivity) {
		st := &ActivityStatus{Iter: a.Iter, Active: a.Active, Total: a.Total}
		if a.Total > 0 {
			st.Ratio = float64(a.Active) / float64(a.Total)
		}
		j.mu.Lock()
		j.activity = st
		j.mu.Unlock()
	}
	var leased *sched.Pool
	if j.cfg.MPIRanks <= 1 {
		// Distributed jobs own one private pool per rank inside core; only
		// single-process jobs can lease a warm pool.
		leased = m.pools.lease(j.cfg.Threads)
		opts.Pool = leased
	}
	var sink *gfx.StreamSink
	if j.frames != nil {
		sink = gfx.NewStreamSink(j.frames)
		opts.Sink = sink
	}

	out, err := core.RunWith(j.ctx, j.cfg, opts)

	if leased != nil {
		m.pools.release(leased)
	}

	j.mu.Lock()
	m.finish(j, out, err)
	j.mu.Unlock()
	m.retire(j.id)
}

// finish moves a job to its terminal state and publishes the result.
// Callers hold j.mu (except for never-started cache hits, which finish
// inside Submit).
func (m *Manager) finish(j *job, out *core.RunOutput, err error) {
	now := time.Now()
	if j.started.IsZero() {
		j.started = now
	}
	j.finished = now
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.errMsg = err.Error()
		m.canceled.Add(1)
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
		m.failed.Add(1)
	default:
		j.state = JobDone
		j.result = &out.Result
		m.completed.Add(1)
		if j.frames == nil {
			m.cache.put(j.hash, out.Result)
		}
		m.recordKernel(out.Result)
	}
	if j.frames != nil {
		// Every terminal path must end the stream — a job canceled while
		// still queued (or drained at shutdown) has subscribers blocked in
		// hubReader.Read too.
		j.frames.closeHub()
	}
	if j.cancel != nil {
		j.cancel()
	}
	close(j.done)
}

// retire records a terminal job in the bounded history, evicting the
// oldest finished jobs beyond MaxJobHistory (active jobs are never in
// doneOrder, so they are never evicted). Frame buffers go with the job
// record, which is what keeps a long-lived daemon's memory bounded.
func (m *Manager) retire(id string) {
	m.mu.Lock()
	m.retireLocked(id)
	m.mu.Unlock()
}

// retireLocked is retire with m.mu held.
func (m *Manager) retireLocked(id string) {
	m.doneOrder = append(m.doneOrder, id)
	for len(m.doneOrder) > m.opts.MaxJobHistory {
		delete(m.jobs, m.doneOrder[0])
		m.doneOrder = m.doneOrder[1:]
	}
}

// recordKernel accumulates per-kernel throughput counters.
func (m *Manager) recordKernel(r core.Result) {
	m.kmu.Lock()
	defer m.kmu.Unlock()
	ks := m.kernels[r.Config.Kernel]
	if ks == nil {
		ks = &kernelStats{}
		m.kernels[r.Config.Kernel] = ks
	}
	ks.jobs++
	ks.iterations += int64(r.Iterations)
	ks.wallNS += r.WallTime.Nanoseconds()
	for _, a := range r.Activity {
		ks.dispatched += int64(a.Active)
		ks.skipped += int64(a.Total - a.Active)
	}
}

// lookup finds a job by id.
func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Get returns the current status of a job.
func (m *Manager) Get(id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation and returns the job's status immediately;
// a running job transitions to canceled as soon as its iteration loop
// observes the context (Wait on the job to observe the transition).
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	if queued {
		// A queued job has no runner to observe the context yet; finish it
		// here so DELETE is immediate. The runner skips non-queued jobs.
		j.mu.Lock()
		finished := j.state == JobQueued
		if finished {
			m.finish(j, nil, context.Canceled)
		}
		j.mu.Unlock()
		if finished {
			m.retire(j.id)
		}
	}
	return j.snapshot(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// FrameStream returns a reader over the job's frame stream (gfx stream
// records, decodable with gfx.ReadFrame). Late subscribers replay from
// the first frame; the reader ends when the job finishes.
func (m *Manager) FrameStream(id string) (io.Reader, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if j.frames == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoFrames, id)
	}
	return j.frames.reader(), nil
}

// Stats is the GET /v1/stats body.
type Stats struct {
	UptimeSec     float64 `json:"uptime_sec"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int64   `json:"running"`
	Workers       int     `json:"workers"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`

	PoolWarmLeases int64 `json:"pool_warm_leases"`
	PoolColdLeases int64 `json:"pool_cold_leases"`
	PoolsIdle      int   `json:"pools_idle"`

	// Kernels maps kernel name to serving throughput.
	Kernels map[string]KernelThroughput `json:"kernels"`
}

// KernelThroughput is the per-kernel serving record.
type KernelThroughput struct {
	Jobs        int64   `json:"jobs"`
	Iterations  int64   `json:"iterations"`
	WallNS      int64   `json:"wall_ns"`
	ItersPerSec float64 `json:"iters_per_sec"` // computed iterations per compute-second

	// TilesDispatched/TilesSkipped aggregate lazy-variant frontiers: how
	// many tiles sparse dispatch actually computed vs. how many the
	// tile-activity engine proved skippable (both 0 for eager-only load).
	TilesDispatched int64 `json:"tiles_dispatched,omitempty"`
	TilesSkipped    int64 `json:"tiles_skipped,omitempty"`
}

// Stats returns a consistent snapshot of the service counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		UptimeSec:      time.Since(m.start).Seconds(),
		QueueDepth:     len(m.queue),
		QueueCapacity:  cap(m.queue),
		Running:        m.running.Load(),
		Workers:        m.opts.Workers,
		Submitted:      m.submitted.Load(),
		Completed:      m.completed.Load(),
		Failed:         m.failed.Load(),
		Canceled:       m.canceled.Load(),
		Rejected:       m.rejected.Load(),
		CacheHits:      m.cache.hits.Load(),
		CacheMisses:    m.cache.misses.Load(),
		CacheSize:      m.cache.len(),
		PoolWarmLeases: m.pools.warm.Load(),
		PoolColdLeases: m.pools.cold.Load(),
		PoolsIdle:      m.pools.idleCount(),
		Kernels:        make(map[string]KernelThroughput),
	}
	m.kmu.Lock()
	for name, ks := range m.kernels {
		kt := KernelThroughput{Jobs: ks.jobs, Iterations: ks.iterations, WallNS: ks.wallNS,
			TilesDispatched: ks.dispatched, TilesSkipped: ks.skipped}
		if ks.wallNS > 0 {
			kt.ItersPerSec = float64(ks.iterations) / (float64(ks.wallNS) / 1e9)
		}
		s.Kernels[name] = kt
	}
	m.kmu.Unlock()
	return s
}

// Close shuts the service down: running jobs are canceled, queued jobs
// finish as canceled, the runner team drains, and every warm pool is
// closed. Close blocks until the teardown completes and is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.stopAll()
	close(m.queue)
	m.wg.Wait()
	m.pools.close()
}
