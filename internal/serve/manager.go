// Package serve is the compute-service subsystem behind easypapd: it
// turns the one-shot core.Run of the paper's CLI workflow into a
// multi-tenant job service. A Manager owns
//
//   - a bounded submission queue with admission control (submissions
//     beyond the queue depth are rejected, not buffered — the McKenney
//     discipline for a shared backend),
//   - a fixed team of job runners,
//   - a warm-pool set (internal: poolSet) so jobs lease reusable
//     sched.Pools instead of building their own,
//   - a two-tier result cache keyed by core.Config.Hash — an in-memory
//     LRU over an optional disk-backed content-addressed store
//     (internal/serve/store) that survives restarts,
//   - a write-ahead job journal (same store) so a crashed daemon's
//     queued and running jobs are re-enqueued, or marked interrupted,
//     on the next boot,
//   - iteration-prefix checkpointing (DESIGN.md §14): with
//     Options.SnapshotEvery the run loop snapshots codec-capable kernel
//     state at cadence boundaries, keyed by Config.PrefixHash (the
//     config hash minus the iteration count); any later submission of
//     the same prefix — deeper sweep step, crash-recovered job,
//     checkpointed frames job — resumes from the deepest stored
//     snapshot instead of recomputing the shared iterations,
//   - per-job cancellation threaded through core.RunContext down to the
//     iteration loop and mpi.Recv.
//
// The HTTP layer in http.go exposes it as the /v1 API; internal/serve/client
// is the Go client, which also plugs into expt.Sweep as a remote backend.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/img2d"
	"easypap/internal/sched"
	"easypap/internal/serve/store"
	"easypap/internal/trace"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned by Submit when admission control rejects
	// the job (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full, submission rejected")
	// ErrUnknownJob is returned for ids that do not exist (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrNoFrames is returned when streaming is requested for a job that
	// was not submitted with frames enabled (HTTP 409).
	ErrNoFrames = errors.New("serve: job was not submitted with frames enabled")
	// ErrClosed is returned by Submit after the manager shut down.
	ErrClosed = errors.New("serve: manager closed")
	// ErrNoStore is returned by PutEntry when the manager has no
	// persistence layer to adopt the entry into (HTTP 501 in cluster
	// mode — the pushing peer skips this node, it does not fail over).
	ErrNoStore = errors.New("serve: manager has no disk store")
)

// JobState is the lifecycle of a submission.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
	// JobInterrupted is the typed status of a job that was queued or
	// running when the daemon died and was not automatically re-enqueued
	// on restart (frames jobs — their subscribers are gone — or any job
	// under RecoverInterrupt policy, or recovery overflowing the queue).
	// Clients treat it as "resubmit me": expt sweeps running through
	// serve/client resubmit interrupted jobs automatically.
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled || s == JobInterrupted
}

// Options tunes a Manager. The zero value is a sane single-node setup.
type Options struct {
	// QueueDepth bounds how many jobs may wait for a runner (default 64).
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// Workers is the number of concurrent job runners (default
	// GOMAXPROCS). Each running job additionally owns its leased pool's
	// worker team, so on a small machine 1–2 runners is plenty.
	Workers int
	// CacheCapacity bounds the result cache in entries (default 128).
	CacheCapacity int
	// MaxIdlePools bounds how many warm pools are kept per thread count
	// (default 4). Zero disables warm reuse: every job builds and closes
	// its own pool, which is what the serving benchmark compares against.
	MaxIdlePools int
	// DisableWarmPools turns pool reuse off even with a nonzero
	// MaxIdlePools (the cold baseline of BENCH_serve.json).
	DisableWarmPools bool
	// RecvTimeout bounds the MPI receive watchdog for distributed jobs
	// (zero keeps mpi.DefaultRecvTimeout).
	RecvTimeout time.Duration
	// HaloTimeout bounds how long a shard rank of a distributed job waits
	// for a neighbor's halo message (or for a peer's session to appear)
	// before declaring the peer lost and aborting the session (default
	// 2s). It is the upper bound on how long a shard-node death can stall
	// the coordinating job.
	HaloTimeout time.Duration
	// MaxJobHistory bounds how many *terminal* job records (and their
	// frame buffers) are kept for status queries (default 4096). Oldest
	// finished jobs are forgotten first; active jobs are never evicted.
	MaxJobHistory int
	// Store, when non-nil, adds the persistence layer: a disk-backed
	// second cache tier under the in-memory LRU (looked up on memory
	// miss, filled by an async spiller on job completion) and a
	// write-ahead job journal whose open jobs are recovered — under
	// their original ids — when the manager starts. The caller owns the
	// store and closes it after Close.
	Store *store.Store
	// Recover selects what happens to journaled in-flight jobs on
	// startup: RecoverRequeue (the default) re-enqueues them,
	// RecoverInterrupt marks them with the terminal JobInterrupted
	// status and lets clients resubmit. Frames jobs without a journaled
	// checkpoint are always interrupted — their stream subscribers did
	// not survive the restart and the replay would start from zero;
	// checkpointed frames jobs re-enqueue and resume, with new
	// subscribers attaching at the resume keyframe.
	Recover RecoverPolicy
	// SnapshotEvery, when positive, checkpoints every running
	// single-process job of a codec-capable kernel at each iteration
	// divisible by this value (flag -snapshot-every; 0 = off, the exact
	// pre-checkpointing behavior). Snapshots land in the Store keyed by
	// (Config.PrefixHash, iter); submissions resume from the deepest
	// stored checkpoint below their target whenever one exists —
	// resumption does not require SnapshotEvery, only the snapshots.
	// Requires Store.
	SnapshotEvery int
}

// RecoverPolicy selects the restart fate of journaled in-flight jobs.
type RecoverPolicy string

const (
	RecoverRequeue   RecoverPolicy = "requeue"
	RecoverInterrupt RecoverPolicy = "interrupt"
)

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 128
	}
	if o.MaxIdlePools <= 0 {
		o.MaxIdlePools = 4
	}
	if o.DisableWarmPools {
		o.MaxIdlePools = 0
	}
	if o.MaxJobHistory <= 0 {
		o.MaxJobHistory = 4096
	}
	if o.HaloTimeout <= 0 {
		o.HaloTimeout = 2 * time.Second
	}
	return o
}

// JobStatus is the externally visible snapshot of a job — the JSON body
// of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached,omitempty"` // result came from a cache tier, no recompute
	// DiskHit marks a cached result that was served from the disk tier
	// (a restarted daemon's warm cache) rather than the in-memory LRU.
	DiskHit bool `json:"disk_hit,omitempty"`
	// RemoteHit marks a cached result fetched from a replica's cache
	// (cluster mode with replication): both local tiers missed, but a
	// ring peer held the entry, so no recompute happened anywhere.
	RemoteHit bool `json:"remote_hit,omitempty"`
	// Recovered marks a job re-enqueued (or interrupted) from the
	// write-ahead journal after a daemon restart.
	Recovered bool   `json:"recovered,omitempty"`
	Frames    bool   `json:"frames,omitempty"` // job streams frames
	Hash      string `json:"hash"`             // canonical config hash (the cache key)
	// TraceID correlates this job's service spans across every node it
	// touched (GET /v1/trace/{id}); minted at submission or inherited
	// from the X-Easypap-Trace header on proxied hops.
	TraceID string `json:"trace_id,omitempty"`

	Config core.Config  `json:"config"`           // normalized
	Result *core.Result `json:"result,omitempty"` // present once done
	Error  string       `json:"error,omitempty"`  // present when failed/canceled
	// ErrorKind is a machine-readable failure class. Currently the only
	// value is ErrorKindShardFailed ("shard_failed"): a distributed run
	// lost a shard node, and the client should resubmit unsharded rather
	// than give up.
	ErrorKind string `json:"error_kind,omitempty"`
	// Shards is the shard count the job actually ran with (0 or 1 for a
	// plain single-node run).
	Shards int `json:"shards,omitempty"`

	// Activity is the latest tile-frontier report of a lazy kernel job —
	// updated live while the job runs, so polling GET /v1/jobs/{id} shows
	// the frontier collapsing. Absent for eager variants. The full
	// per-iteration series lands in Result.Activity once done.
	Activity *ActivityStatus `json:"activity,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	QueuedNS    int64     `json:"queued_ns,omitempty"` // time spent waiting for a runner
	RanNS       int64     `json:"ran_ns,omitempty"`    // time spent executing
}

// ActivityStatus is the live frontier snapshot of a lazy job: at
// iteration Iter, Active of Total owned tiles were dispatched.
type ActivityStatus struct {
	Iter   int     `json:"iter"`
	Active int     `json:"active_tiles"`
	Total  int     `json:"total_tiles"`
	Ratio  float64 `json:"ratio"` // Active / Total
}

// job is the internal record.
type job struct {
	id      string
	hash    string
	traceID string      // correlates service spans across nodes
	cfg     core.Config // normalized, scrubbed
	frames  *FrameHub   // nil unless the submission requested frames
	shards  int         // requested shard count (0/1: plain local run)
	cancel  context.CancelFunc
	ctx     context.Context
	done    chan struct{} // closed when the job reaches a terminal state

	mu        sync.Mutex
	state     JobState
	cached    bool
	diskHit   bool
	remoteHit bool
	recovered bool
	result    *core.Result
	errMsg    string
	errKind   string          // machine-readable failure class (ErrorKind* consts)
	activity  *ActivityStatus // latest lazy-frontier report (nil for eager)
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// snapshot builds the external view under the job lock.
func (j *job) snapshot() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &JobStatus{
		ID: j.id, State: j.state, Cached: j.cached, DiskHit: j.diskHit,
		RemoteHit: j.remoteHit, Recovered: j.recovered, Frames: j.frames != nil,
		Hash: j.hash, TraceID: j.traceID, Config: j.cfg, Result: j.result, Error: j.errMsg,
		ErrorKind: j.errKind, Shards: j.shards, Activity: j.activity, SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		s.QueuedNS = j.started.Sub(j.submitted).Nanoseconds()
		if !j.finished.IsZero() {
			s.RanNS = j.finished.Sub(j.started).Nanoseconds()
		}
	}
	return s
}

// kernelStats accumulates per-kernel serving throughput.
type kernelStats struct {
	jobs       int64
	iterations int64
	wallNS     int64
	dispatched int64 // lazy frontier tiles actually computed
	skipped    int64 // tiles the frontier let the kernel skip
}

// Manager is the job service. Create with NewManager, shut down with
// Close. All methods are safe for concurrent use.
type Manager struct {
	opts  Options
	start time.Time

	baseCtx context.Context
	stopAll context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu        sync.Mutex // guards jobs map, doneOrder and closed
	jobs      map[string]*job
	doneOrder []string // terminal job ids, oldest first (history eviction)
	closed    bool
	closing   atomic.Bool // set by Close before jobs are drained

	cache *resultCache
	pools *poolSet

	store   *store.Store  // nil without persistence
	spill   chan spillReq // completion → disk write-behind queue
	spillWg sync.WaitGroup

	// Cluster hooks, set (before traffic, atomically because recovered
	// jobs may already be completing) by the cluster layer when
	// replication is on: spillHook observes every durably spilled entry
	// (the replication push point), entrySource is the last cache tier —
	// consulted after memory and disk both miss, before a recompute
	// (the cluster layer fetches from ring replicas there). Both carry
	// the trace id so replication pushes and replica fetches land in the
	// originating job's span tree.
	spillHook   atomic.Pointer[func(*store.Entry, string)]
	snapHook    atomic.Pointer[func(*store.Snapshot, string)]
	entrySource atomic.Pointer[func(hash, traceID string) *store.Entry]

	// Distributed single-job execution (shard.go): the coordinator hook
	// the cluster layer installs, and the registry of shard ranks this
	// node is currently executing for remote coordinators.
	shardRunner   atomic.Pointer[ShardRunner]
	shardMu       sync.Mutex
	shardSessions map[string]*shardSession
	shardWg       sync.WaitGroup

	// Observability: the metrics registry + stage histograms behind
	// GET /metrics, and the service-span ring behind GET /v1/trace.
	obs      *managerObs
	nodeName atomic.Value // string; span node label (cluster node id)

	nextID      atomic.Int64
	running     atomic.Int64
	submitted   atomic.Int64
	completed   atomic.Int64
	computed    atomic.Int64 // jobs that actually ran a kernel (no cache tier answered)
	failed      atomic.Int64
	canceled    atomic.Int64
	rejected    atomic.Int64
	diskHits    atomic.Int64
	diskMisses  atomic.Int64
	remoteHits  atomic.Int64 // entrySource (replica fetch) answered after both local tiers missed
	spills      atomic.Int64
	spillErrs   atomic.Int64
	spillDrops  atomic.Int64
	recovered   atomic.Int64 // journaled jobs re-enqueued on startup
	interrupted atomic.Int64 // journaled jobs marked JobInterrupted on startup

	// Checkpoint counters: snapsWritten = snapshots durably persisted,
	// snapsResumed = jobs that started from a stored checkpoint instead
	// of iteration zero.
	snapsWritten atomic.Int64
	snapsResumed atomic.Int64

	// Shard counters: coordinated = sharded jobs this node drove as rank
	// 0; executed = shard ranks run here (local and remote sessions);
	// halosSent/halosSkipped = boundary exchanges performed vs. proven
	// unnecessary by the frontier skip rule.
	jobsCoordinated atomic.Int64
	shardsExecuted  atomic.Int64
	halosSent       atomic.Int64
	halosSkipped    atomic.Int64

	// frameStats aggregates every job hub's subscriber/drop/byte counters
	// (one struct for the whole manager; hubs share it).
	frameStats HubStats

	kmu     sync.Mutex
	kernels map[string]*kernelStats
}

// NewManager starts the runner team and returns a ready manager.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		start:   time.Now(),
		queue:   make(chan *job, opts.QueueDepth),
		jobs:    make(map[string]*job),
		cache:   newResultCache(opts.CacheCapacity),
		pools:   newPoolSet(opts.MaxIdlePools),
		kernels: make(map[string]*kernelStats),

		shardSessions: make(map[string]*shardSession),
	}
	m.obs = newManagerObs(m)
	m.baseCtx, m.stopAll = context.WithCancel(context.Background())
	if opts.Store != nil {
		m.store = opts.Store
		m.spill = make(chan spillReq, 256)
		m.spillWg.Add(1)
		go m.spiller()
		m.recoverJournal()
	}
	m.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go m.runner()
	}
	return m
}

// spillReq is one completed result — or one mid-run checkpoint — on its
// way to the disk tier. Exactly one of (hash, result, final) and snap is
// populated.
type spillReq struct {
	hash    string
	job     string
	traceID string
	result  core.Result
	final   *img2d.Image
	snap    *store.Snapshot // checkpoint write (hash/result/final unused)
}

// spiller is the write-behind worker of the disk tier: it encodes the
// final image as a gfx frame-stream record and persists the entry.
// Spilling at completion (not at memory eviction) is what makes a crash
// lose nothing — an entry that never got evicted must still be on disk
// when the daemon dies.
func (m *Manager) spiller() {
	defer m.spillWg.Done()
	for req := range m.spill {
		begin := time.Now()
		if req.snap != nil {
			// Checkpoint write-behind: persist the snapshot, then journal
			// "job has a checkpoint at iter" so a crash resumes it there.
			// A snap error for an already-finished job (its open record is
			// gone) is harmless — the snapshot itself is still usable by
			// any future submission sharing the iteration prefix.
			err := m.store.Cache.PutSnapshot(req.snap)
			if err == nil && req.job != "" {
				_ = m.store.Journal.Snap(req.job, req.snap.Iter)
			}
			m.span(m.obs.snapshot, req.traceID, req.job, StageSnapshot, begin, time.Now(), err)
			if err != nil {
				m.spillErrs.Add(1)
				continue
			}
			m.snapsWritten.Add(1)
			if hook := m.snapHook.Load(); hook != nil {
				// Snapshot replication rides the spill exactly like entries:
				// durable locally first, then pushed to the ring successors.
				(*hook)(req.snap, req.traceID)
			}
			continue
		}
		e := &store.Entry{Hash: req.hash, Result: req.result}
		if req.final != nil {
			var buf bytes.Buffer
			if err := gfx.WriteFrame(&buf, "final", req.result.Iterations, req.final); err == nil {
				e.Frames = buf.Bytes()
			}
		}
		err := m.store.Cache.Put(e)
		m.span(m.obs.spill, req.traceID, req.job, StageSpill, begin, time.Now(), err)
		if err != nil {
			m.spillErrs.Add(1)
			continue
		}
		m.spills.Add(1)
		if hook := m.spillHook.Load(); hook != nil {
			// Replication rides the spill: the entry is durable locally,
			// now the cluster layer pushes it to the ring successors.
			(*hook)(e, req.traceID)
		}
	}
}

// SetSpillHook registers a function invoked with every entry after it
// is durably written to the disk tier — the cluster layer's replication
// push point. The second argument is the trace id of the job whose
// completion triggered the spill, so replication pushes join its span
// tree. Must be set before the hooked behavior is relied on; safe to
// set concurrently with running jobs.
func (m *Manager) SetSpillHook(f func(*store.Entry, string)) {
	if f == nil {
		m.spillHook.Store(nil)
		return
	}
	m.spillHook.Store(&f)
}

// SetSnapshotHook registers the checkpoint counterpart of SetSpillHook:
// invoked with every snapshot after it is durably written, so the
// cluster layer replicates checkpoints alongside results — a node death
// then costs at most SnapshotEvery iterations of recompute, not the
// whole prefix.
func (m *Manager) SetSnapshotHook(f func(*store.Snapshot, string)) {
	if f == nil {
		m.snapHook.Store(nil)
		return
	}
	m.snapHook.Store(&f)
}

// SetEntrySource registers the last-resort cache tier: consulted with a
// config hash after both the memory and disk tiers miss, before the job
// is queued for recompute. A non-nil return is adopted (promoted to the
// local tiers) and served as a cached result. The cluster layer uses
// this to read through to ring replicas, so an entry whose owner died
// is a remote fetch, not a recompute. traceID is the fetching job's
// trace id, propagated to the replica via X-Easypap-Trace.
func (m *Manager) SetEntrySource(f func(hash, traceID string) *store.Entry) {
	if f == nil {
		m.entrySource.Store(nil)
		return
	}
	m.entrySource.Store(&f)
}

// recoverJournal replays the write-ahead journal: every job that was
// queued or running when the previous daemon died is re-admitted under
// its ORIGINAL id — a client that submitted before the crash keeps
// polling the same id across the restart, and keeps its original
// submission time (the journal persists it, so recovered jobs do not
// jump the queue-age ordering). Non-frames jobs are re-enqueued
// (RecoverRequeue) or marked interrupted (RecoverInterrupt); frames
// jobs re-enqueue only when a checkpoint was journaled — the runner
// will resume from it and new subscribers attach at the resume
// keyframe — and are interrupted otherwise, since replaying the whole
// stream from zero for subscribers that did not survive is pure waste.
// The id sequence resumes past every journaled id so new submissions
// never collide with recovered ones.
func (m *Manager) recoverJournal() {
	recs := m.store.Journal.Recovered()
	if max := m.store.Journal.MaxID(); max > m.nextID.Load() {
		m.nextID.Store(max)
	}
	for _, rec := range recs {
		submitted := time.Now()
		if rec.Submitted > 0 {
			submitted = time.Unix(0, rec.Submitted)
		}
		j := &job{
			id:        rec.ID,
			hash:      rec.Hash,
			traceID:   trace.NewTraceID(), // pre-crash spans did not survive
			cfg:       rec.Config,
			state:     JobQueued,
			recovered: true,
			submitted: submitted,
			done:      make(chan struct{}),
		}
		requeue := m.opts.Recover != RecoverInterrupt && (!rec.Frames || rec.SnapIter > 0)
		if requeue && rec.Frames {
			j.frames = NewFrameHub(HubOptions{Stats: &m.frameStats})
		}
		m.mu.Lock()
		if requeue {
			j.ctx, j.cancel = context.WithCancel(m.baseCtx)
			select {
			case m.queue <- j:
				m.jobs[j.id] = j
				m.mu.Unlock()
				m.submitted.Add(1)
				m.recovered.Add(1)
				continue
			default:
				// Recovery outgrew the queue; fall through to interrupt so
				// the journal does not replay this job forever.
				j.cancel()
				j.ctx, j.cancel = nil, nil
			}
		}
		now := time.Now()
		j.state = JobInterrupted
		j.errMsg = "daemon restarted while the job was queued or running"
		j.started, j.finished = now, now
		close(j.done)
		m.jobs[j.id] = j
		m.retireLocked(j.id)
		m.mu.Unlock()
		m.submitted.Add(1)
		m.interrupted.Add(1)
		_ = m.store.Journal.End(j.id, string(JobInterrupted))
	}
}

// NormalizeSubmission applies the daemon's submission discipline to a
// client config and returns the normalized config plus its canonical
// hash — the cache key, and the routing key of cluster mode. The daemon
// never touches the server filesystem on behalf of a client: output and
// trace paths are scrubbed, performance mode is forced, and frames (when
// requested) stream from memory. Every layer that needs to know where a
// submission lands (Manager.Submit, the cluster router, the hash-aware
// multi-endpoint client) must use this one function, or identical
// submissions would route and cache under different keys.
func NormalizeSubmission(cfg core.Config, wantFrames bool) (core.Config, string, error) {
	cfg.OutputDir = ""
	cfg.TracePath = ""
	cfg.NoDisplay = true
	if !wantFrames {
		// Monitoring/heat-map instrumentation is excluded from the config
		// hash (it never changes what is computed), so a cacheable run must
		// not carry its timing overhead either — otherwise an instrumented
		// submission would poison the cache entry its uninstrumented twin
		// hits. Frames jobs keep it: it enables the tiling/activity windows
		// in the live stream, and they bypass the cache anyway.
		cfg.Monitoring = false
		cfg.HeatMode = false
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return cfg, "", err
	}
	hash, err := cfg.Hash()
	if err != nil {
		return cfg, "", err
	}
	return cfg, hash, nil
}

// Submit normalizes and admits a job. Identical resubmissions (same
// canonical config hash) of non-frames jobs are answered from the result
// cache without recomputation: the returned job is already done with
// Cached set. Jobs that stream frames bypass the cache — their value is
// the live stream, and display-mode timing must not pollute cached
// performance results.
func (m *Manager) Submit(cfg core.Config, wantFrames bool) (*JobStatus, error) {
	return m.SubmitTraced(cfg, wantFrames, "")
}

// SubmitTraced is Submit with an inherited trace id — the entry point
// for proxied cluster hops, where the entry node already minted the id
// and forwarded it via X-Easypap-Trace. An empty traceID mints a fresh
// one, so every job carries exactly one id for its whole cluster life.
func (m *Manager) SubmitTraced(cfg core.Config, wantFrames bool, traceID string) (*JobStatus, error) {
	return m.SubmitShards(cfg, wantFrames, traceID, 0)
}

// SubmitShards is SubmitTraced with a requested shard count: when shards
// > 1 and a coordinator is installed (SetShardRunner — cluster mode),
// the job runs distributed across the cluster as one kernel execution
// split into row bands. Without a coordinator, or when the cluster
// cannot shard the job (no healthy peers, non-mpi variant), it runs as
// a plain local job — sharding is an execution strategy, never part of
// the cache key, so sharded and unsharded runs of one config hit the
// same cache entry.
func (m *Manager) SubmitShards(cfg core.Config, wantFrames bool, traceID string, shards int) (*JobStatus, error) {
	admitStart := time.Now()
	cfg, hash, err := NormalizeSubmission(cfg, wantFrames)
	if err != nil {
		return nil, err
	}
	if traceID == "" {
		traceID = trace.NewTraceID()
	}

	j := &job{
		hash:      hash,
		traceID:   traceID,
		cfg:       cfg,
		shards:    shards,
		state:     JobQueued,
		submitted: admitStart,
		done:      make(chan struct{}),
	}
	if wantFrames {
		j.frames = NewFrameHub(HubOptions{Stats: &m.frameStats})
	}
	// The admit span closes on every exit path: cache-answered, rejected,
	// or enqueued. Its histogram is the admission-wait distribution.
	defer func() { m.span(m.obs.admit, traceID, j.id, StageAdmit, admitStart, time.Now(), nil) }()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	j.id = fmt.Sprintf("j-%06d", m.nextID.Add(1))

	if !wantFrames {
		lookup := time.Now()
		r, ok := m.cache.get(hash)
		m.obs.cacheMem.Observe(time.Since(lookup).Nanoseconds())
		if ok {
			m.finishCachedLocked(j, r, tierMemory)
			m.mu.Unlock()
			// Histogram already observed above; record the span only.
			m.span(nil, traceID, j.id, StageCacheMem, lookup, time.Now(), nil)
			return j.snapshot(), nil
		}
	}
	m.mu.Unlock()

	// Memory missed: try the disk tier before paying a recompute. The
	// read happens outside m.mu (it is file I/O) and is deduplicated
	// per hash inside the store, so a herd of identical submissions
	// costs one read.
	if !wantFrames && m.store != nil {
		lookup := time.Now()
		ent, ok := m.store.Cache.Get(hash)
		m.span(m.obs.cacheDisk, traceID, j.id, StageCacheDisk, lookup, time.Now(), nil)
		if ok {
			m.diskHits.Add(1)
			m.cache.put(hash, ent.Result) // promote to the memory tier
			return m.finishCached(j, ent.Result, tierDisk)
		}
		m.diskMisses.Add(1)
	}

	// Both local tiers missed: ask the entry source (cluster replicas)
	// before paying a recompute. Network I/O, so outside every lock;
	// the fetched entry is adopted into both local tiers — this node is
	// answering for the hash, so it should own a copy from now on.
	if !wantFrames {
		if src := m.entrySource.Load(); src != nil {
			fetch := time.Now()
			ent := (*src)(hash, traceID)
			m.span(m.obs.replicaFetch, traceID, j.id, StageReplicaFetch, fetch, time.Now(), nil)
			if ent != nil && ent.Hash == hash {
				m.remoteHits.Add(1)
				m.cache.put(hash, ent.Result)
				if m.store != nil {
					_ = m.store.Cache.Put(ent)
				}
				return m.finishCached(j, ent.Result, tierRemote)
			}
		}
	}

	// Write-ahead: the journal records the job before it can run, so a
	// crash at any later point recovers it. (Rejection below writes the
	// matching terminal record.) Shed load BEFORE touching the journal:
	// under sustained overload — when rejections fire at full rate — the
	// admission-control path must stay free of disk I/O. The check is
	// advisory (the queue may fill right after), so the enqueue below
	// still handles the race with a journaled reject.
	if m.store != nil {
		if len(m.queue) == cap(m.queue) {
			m.rejected.Add(1)
			return nil, ErrQueueFull
		}
		_ = m.store.Journal.Begin(j.id, hash, wantFrames, cfg, admitStart.UnixNano())
	}

	j.ctx, j.cancel = context.WithCancel(m.baseCtx)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.cancel()
		if m.store != nil {
			_ = m.store.Journal.End(j.id, string(JobCanceled))
		}
		return nil, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.submitted.Add(1)
		m.mu.Unlock()
		return j.snapshot(), nil
	default:
		m.mu.Unlock()
		// Release the child context immediately: a rejected submission must
		// not stay registered with baseCtx (under sustained overload —
		// exactly when rejections fire — that would grow without bound).
		j.cancel()
		if m.store != nil {
			_ = m.store.Journal.End(j.id, "rejected")
		}
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// cacheTier names which tier answered a cached submission.
type cacheTier int

const (
	tierMemory cacheTier = iota
	tierDisk
	tierRemote
)

// finishCached completes a submission from a non-memory cache tier,
// taking m.mu itself and handling a concurrent Close.
func (m *Manager) finishCached(j *job, r core.Result, tier cacheTier) (*JobStatus, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.finishCachedLocked(j, r, tier)
	m.mu.Unlock()
	return j.snapshot(), nil
}

// finishCachedLocked completes a submission straight from a cache tier.
// Caller holds m.mu; the job was never enqueued, so no journal record
// exists for it.
func (m *Manager) finishCachedLocked(j *job, r core.Result, tier cacheTier) {
	now := time.Now()
	j.state = JobDone
	j.cached = true
	j.diskHit = tier == tierDisk
	j.remoteHit = tier == tierRemote
	j.result = &r
	j.started, j.finished = now, now
	close(j.done)
	m.jobs[j.id] = j
	m.retireLocked(j.id)
	m.submitted.Add(1)
	m.completed.Add(1)
}

// runner executes queued jobs until the queue closes.
func (m *Manager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through lease → run → release → publish.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		// Canceled (or manager shut down) while still queued.
		m.finish(j, nil, err)
		j.mu.Unlock()
		m.retire(j.id)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Queue wait: admission → a runner picked the job up.
	m.span(m.obs.queue, j.traceID, j.id, StageQueue, j.submitted, j.started, nil)

	m.running.Add(1)
	defer m.running.Add(-1)

	opts := core.RunOptions{RecvTimeout: m.opts.RecvTimeout}
	opts.OnActivity = func(a core.IterActivity) {
		st := &ActivityStatus{Iter: a.Iter, Active: a.Active, Total: a.Total}
		if a.Total > 0 {
			st.Ratio = float64(a.Active) / float64(a.Total)
		}
		j.mu.Lock()
		j.activity = st
		j.mu.Unlock()
	}
	m.setupCheckpointing(j, &opts)
	var leased *sched.Pool
	if j.cfg.MPIRanks <= 1 {
		// Distributed jobs own one private pool per rank inside core; only
		// single-process jobs can lease a warm pool.
		leaseStart := time.Now()
		leased = m.pools.lease(j.cfg.Threads)
		m.span(m.obs.lease, j.traceID, j.id, StageLease, leaseStart, time.Now(), nil)
		opts.Pool = leased
	}
	if j.frames != nil {
		opts.Sink = newHubSink(j.frames)
	}

	computeStart := time.Now()
	var out *core.RunOutput
	var err error
	if hook := m.shardRunner.Load(); hook != nil && j.shards > 1 {
		// Distributed execution: the coordinator hook splits the job into
		// row bands across the cluster and returns rank 0's stitched
		// output. The leased pool (if any) goes unused — each rank builds
		// its own team — but mpi variants carry MPIRanks >= 2, so the
		// warm-lease branch above already skipped them.
		m.jobsCoordinated.Add(1)
		out, err = (*hook)(j.ctx, ShardJob{
			ID: j.id, TraceID: j.traceID, Config: j.cfg, Shards: j.shards,
			Frames: j.frames != nil, Sink: opts.Sink, OnActivity: opts.OnActivity,
		})
	} else {
		out, err = core.RunWith(j.ctx, j.cfg, opts)
	}
	m.span(m.obs.compute, j.traceID, j.id, StageCompute, computeStart, time.Now(), err)

	if leased != nil {
		m.pools.release(leased)
	}

	j.mu.Lock()
	m.finish(j, out, err)
	j.mu.Unlock()
	m.retire(j.id)
}

// setupCheckpointing wires iteration-prefix checkpointing into a run:
// resume from the deepest stored snapshot below the job's target (the
// shared prefix is never recomputed), and — when SnapshotEvery is on —
// hand periodic state snapshots to the write-behind spiller. Only
// single-process runs of codec-capable kernels participate; everything
// else runs exactly as before. Resumption needs no SnapshotEvery: the
// snapshots may have been written by an earlier daemon generation or
// pushed by a ring peer.
func (m *Manager) setupCheckpointing(j *job, opts *core.RunOptions) {
	if m.store == nil || j.shards > 1 || j.cfg.MPIRanks > 1 {
		return
	}
	k, err := core.Lookup(j.cfg.Kernel)
	if err != nil || k.Codec == nil {
		return
	}
	prefixHash, err := j.cfg.PrefixHash()
	if err != nil {
		return
	}
	// Deepest usable snapshot strictly below the target: a snapshot AT
	// the target would be the finished result, and that lives in the
	// entry cache, which Submit already consulted.
	lookup := time.Now()
	if s, ok := m.store.Cache.DeepestSnapshot(prefixHash, j.cfg.Iterations-1); ok {
		opts.Resume = &core.ResumeState{Iter: s.Iter, State: s.State}
		m.snapsResumed.Add(1)
		m.span(m.obs.resume, j.traceID, j.id, StageResume, lookup, time.Now(), nil)
	}
	if m.opts.SnapshotEvery > 0 {
		opts.SnapshotEvery = m.opts.SnapshotEvery
		opts.OnSnapshot = func(iter int, state []byte) {
			// Same shed rule as result spills: dropping a checkpoint under
			// a full spill queue only costs recompute, never correctness.
			select {
			case m.spill <- spillReq{job: j.id, traceID: j.traceID,
				snap: &store.Snapshot{PrefixHash: prefixHash, Iter: iter, State: state}}:
			default:
				m.spillDrops.Add(1)
			}
		}
	}
}

// finish moves a job to its terminal state and publishes the result.
// Callers hold j.mu (except for never-started cache hits, which finish
// inside Submit).
func (m *Manager) finish(j *job, out *core.RunOutput, err error) {
	now := time.Now()
	if j.started.IsZero() {
		j.started = now
	}
	j.finished = now
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.errMsg = err.Error()
		m.canceled.Add(1)
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
		if errors.Is(err, ErrShardFailed) {
			// Typed: the client reads ErrorKind and resubmits unsharded.
			j.errKind = ErrorKindShardFailed
		}
		m.failed.Add(1)
	default:
		j.state = JobDone
		j.result = &out.Result
		m.completed.Add(1)
		m.computed.Add(1)
		if j.frames == nil {
			// Cache tiers hold the canonical result: ResumedFrom is run
			// provenance (THIS execution started from a checkpoint), not
			// part of the content — a later cache hit was not resumed.
			cached := out.Result
			cached.ResumedFrom = 0
			m.cache.put(j.hash, cached)
			if m.spill != nil {
				// Write-behind to the disk tier. Dropping under a full spill
				// queue is safe — the entry is merely not durable yet and a
				// resubmission would recompute it.
				select {
				case m.spill <- spillReq{hash: j.hash, job: j.id, traceID: j.traceID, result: cached, final: out.Final}:
				default:
					m.spillDrops.Add(1)
				}
			}
		}
		m.recordKernel(out.Result)
	}
	if m.store != nil {
		if j.state == JobCanceled && m.closing.Load() {
			// Shutdown-induced cancellation: leave the open record in the
			// journal so the NEXT daemon generation recovers the job. This
			// is what makes a rolling deploy (SIGTERM, graceful drain) as
			// survivable as a crash — writing "canceled" here would erase
			// the recovery set precisely when the restart is planned.
		} else {
			_ = m.store.Journal.End(j.id, string(j.state))
		}
	}
	if j.frames != nil {
		// Every terminal path must end the stream — a job canceled while
		// still queued (or drained at shutdown) has subscribers blocked in
		// HubReader.Read too.
		j.frames.Close()
	}
	if j.cancel != nil {
		j.cancel()
	}
	close(j.done)
}

// retire records a terminal job in the bounded history, evicting the
// oldest finished jobs beyond MaxJobHistory (active jobs are never in
// doneOrder, so they are never evicted). Frame buffers go with the job
// record, which is what keeps a long-lived daemon's memory bounded.
func (m *Manager) retire(id string) {
	m.mu.Lock()
	m.retireLocked(id)
	m.mu.Unlock()
}

// retireLocked is retire with m.mu held.
func (m *Manager) retireLocked(id string) {
	m.doneOrder = append(m.doneOrder, id)
	for len(m.doneOrder) > m.opts.MaxJobHistory {
		delete(m.jobs, m.doneOrder[0])
		m.doneOrder = m.doneOrder[1:]
	}
}

// recordKernel accumulates per-kernel throughput counters.
func (m *Manager) recordKernel(r core.Result) {
	m.kmu.Lock()
	defer m.kmu.Unlock()
	ks := m.kernels[r.Config.Kernel]
	if ks == nil {
		ks = &kernelStats{}
		m.kernels[r.Config.Kernel] = ks
	}
	ks.jobs++
	// Only iterations computed THIS run count toward throughput: a
	// resumed job inherited its prefix from a snapshot, and crediting it
	// with the full depth would let iters_per_sec exceed the hardware.
	ks.iterations += int64(r.Iterations - r.ResumedFrom)
	ks.wallNS += r.WallTime.Nanoseconds()
	for _, a := range r.Activity {
		ks.dispatched += int64(a.Active)
		ks.skipped += int64(a.Total - a.Active)
	}
}

// lookup finds a job by id.
func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Get returns the current status of a job.
func (m *Manager) Get(id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation and returns the job's status immediately;
// a running job transitions to canceled as soon as its iteration loop
// observes the context (Wait on the job to observe the transition).
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	if queued {
		// A queued job has no runner to observe the context yet; finish it
		// here so DELETE is immediate. The runner skips non-queued jobs.
		j.mu.Lock()
		finished := j.state == JobQueued
		if finished {
			m.finish(j, nil, context.Canceled)
		}
		j.mu.Unlock()
		if finished {
			m.retire(j.id)
		}
	}
	return j.snapshot(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (*JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// FrameStream returns a reader over the job's frame stream in the
// requested format (FormatFull: EZFRAME records decodable with
// gfx.ReadFrame; FormatDelta: keyframes plus EZDELTA patches, decodable
// with gfx.ReadRecord). Late subscribers replay from the oldest record
// the hub still retains — the whole stream for short jobs, the bounded
// tail for long ones. The reader unblocks with ctx's error when ctx is
// canceled and reaches io.EOF when the job finishes; the caller must
// Close it to release the subscriber slot.
func (m *Manager) FrameStream(ctx context.Context, id string, format gfx.StreamFormat) (io.ReadCloser, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if j.frames == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoFrames, id)
	}
	return j.frames.Subscribe(ctx, format), nil
}

// Stats is the GET /v1/stats body.
type Stats struct {
	UptimeSec     float64 `json:"uptime_sec"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int64   `json:"running"`
	Workers       int     `json:"workers"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	// Computed counts jobs that actually ran a kernel — no cache tier
	// answered. completed - computed is the number of cache-served jobs.
	Computed int64 `json:"computed"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	Rejected int64 `json:"rejected"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`

	// Persistence counters (all zero when the daemon runs without
	// --data-dir). DiskHits/DiskMisses count second-tier lookups after a
	// memory miss; Spills counts results written behind to disk;
	// DiskCorrupt counts entries rejected by CRC and dropped.
	// Counters never carry omitempty: a client must be able to tell a
	// true zero ("no spill has ever failed") from a field the daemon
	// did not report. TestStatsCountersAlwaysPresent pins this.
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	// RemoteHits counts submissions answered by a replica fetch after
	// both local tiers missed (cluster mode with replication).
	RemoteHits      int64 `json:"remote_hits"`
	Spills          int64 `json:"spills"`
	SpillErrors     int64 `json:"spill_errors"`
	SpillDropped    int64 `json:"spill_dropped"`
	DiskEntries     int   `json:"disk_entries"`
	DiskBytes       int64 `json:"disk_bytes"`
	DiskCorrupt     int64 `json:"disk_corrupt"`
	RecoveredJobs   int64 `json:"recovered_jobs"`
	InterruptedJobs int64 `json:"interrupted_jobs"`
	// SnapshotsWritten counts checkpoints durably persisted;
	// SnapshotsResumed counts jobs that started from a stored checkpoint
	// instead of iteration zero (both zero without -snapshot-every and
	// an empty snapshot store).
	SnapshotsWritten int64 `json:"snapshots_written"`
	SnapshotsResumed int64 `json:"snapshots_resumed"`

	// Distributed-execution counters (see shard.go). Like every counter
	// above, no omitempty: zero is a reported value, not an absence.
	JobsCoordinated int64 `json:"jobs_coordinated"`
	ShardsExecuted  int64 `json:"shards_executed"`
	HalosSent       int64 `json:"halos_sent"`
	HalosSkipped    int64 `json:"halos_skipped"`

	PoolWarmLeases int64 `json:"pool_warm_leases"`
	PoolColdLeases int64 `json:"pool_cold_leases"`
	PoolsIdle      int   `json:"pools_idle"`

	// Frame-streaming counters (the broadcast hub; see hub.go). Gauge +
	// counters, no omitempty like every counter above.
	FrameSubscribers    int64 `json:"frame_subscribers"`
	FrameDroppedToKey   int64 `json:"frame_dropped_to_keyframe"`
	FramePostCloseDrops int64 `json:"frame_post_close_drops"`
	// FrameFullBytes is what the job hubs published as full-frame
	// encodings; FrameDeltaBytes is what a delta subscriber receives for
	// the same records — the spread is the delta savings.
	FrameFullBytes  int64 `json:"frame_full_bytes"`
	FrameDeltaBytes int64 `json:"frame_delta_bytes"`

	// Kernels maps kernel name to serving throughput.
	Kernels map[string]KernelThroughput `json:"kernels"`
}

// KernelThroughput is the per-kernel serving record.
type KernelThroughput struct {
	Jobs        int64   `json:"jobs"`
	Iterations  int64   `json:"iterations"`
	WallNS      int64   `json:"wall_ns"`
	ItersPerSec float64 `json:"iters_per_sec"` // computed iterations per compute-second

	// TilesDispatched/TilesSkipped aggregate lazy-variant frontiers: how
	// many tiles sparse dispatch actually computed vs. how many the
	// tile-activity engine proved skippable (both 0 for eager-only load;
	// no omitempty — zero must be reported as zero).
	TilesDispatched int64 `json:"tiles_dispatched"`
	TilesSkipped    int64 `json:"tiles_skipped"`
}

// Stats returns a consistent snapshot of the service counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		UptimeSec:      time.Since(m.start).Seconds(),
		QueueDepth:     len(m.queue),
		QueueCapacity:  cap(m.queue),
		Running:        m.running.Load(),
		Workers:        m.opts.Workers,
		Submitted:      m.submitted.Load(),
		Completed:      m.completed.Load(),
		Computed:       m.computed.Load(),
		Failed:         m.failed.Load(),
		Canceled:       m.canceled.Load(),
		Rejected:       m.rejected.Load(),
		CacheHits:      m.cache.hits.Load(),
		CacheMisses:    m.cache.misses.Load(),
		CacheSize:      m.cache.len(),
		PoolWarmLeases: m.pools.warm.Load(),
		PoolColdLeases: m.pools.cold.Load(),
		PoolsIdle:      m.pools.idleCount(),
		Kernels:        make(map[string]KernelThroughput),

		JobsCoordinated: m.jobsCoordinated.Load(),
		ShardsExecuted:  m.shardsExecuted.Load(),
		HalosSent:       m.halosSent.Load(),
		HalosSkipped:    m.halosSkipped.Load(),

		FrameSubscribers:    m.frameStats.Subscribers.Load(),
		FrameDroppedToKey:   m.frameStats.DroppedToKey.Load(),
		FramePostCloseDrops: m.frameStats.PostCloseDrops.Load(),
		FrameFullBytes:      m.frameStats.FullBytes.Load(),
		FrameDeltaBytes:     m.frameStats.DeltaBytes.Load(),
	}
	s.RemoteHits = m.remoteHits.Load()
	if m.store != nil {
		s.DiskHits = m.diskHits.Load()
		s.DiskMisses = m.diskMisses.Load()
		s.Spills = m.spills.Load()
		s.SpillErrors = m.spillErrs.Load()
		s.SpillDropped = m.spillDrops.Load()
		s.DiskEntries = m.store.Cache.Len()
		s.DiskBytes = m.store.Cache.Bytes()
		s.DiskCorrupt = m.store.Cache.Corrupt()
		s.RecoveredJobs = m.recovered.Load()
		s.InterruptedJobs = m.interrupted.Load()
		s.SnapshotsWritten = m.snapsWritten.Load()
		s.SnapshotsResumed = m.snapsResumed.Load()
	}
	m.kmu.Lock()
	for name, ks := range m.kernels {
		kt := KernelThroughput{Jobs: ks.jobs, Iterations: ks.iterations, WallNS: ks.wallNS,
			TilesDispatched: ks.dispatched, TilesSkipped: ks.skipped}
		if ks.wallNS > 0 {
			kt.ItersPerSec = float64(ks.iterations) / (float64(ks.wallNS) / 1e9)
		}
		s.Kernels[name] = kt
	}
	m.kmu.Unlock()
	return s
}

// Close shuts the service down: running jobs are canceled, queued jobs
// finish as canceled, the runner team drains, and every warm pool is
// closed. Close blocks until the teardown completes and is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.closing.Store(true)
	m.stopAll()
	close(m.queue)
	m.wg.Wait()
	// Shard ranks started for remote coordinators run off baseCtx, so
	// stopAll already aborted them; wait for their goroutines to drain.
	m.shardWg.Wait()
	if m.spill != nil {
		// Runners are done, so no more spills can arrive; drain the
		// write-behind queue so every completed result is on disk before
		// the caller closes the store.
		close(m.spill)
		m.spillWg.Wait()
	}
	m.pools.close()
}

// PutEntry adopts an externally supplied cache entry into the disk
// tier — the receive side of cluster replication and rebalancing. The
// entry's internal CRC was verified when it was decoded off the wire;
// content addressing makes the write idempotent. Returns ErrNoStore
// when the manager runs without persistence.
func (m *Manager) PutEntry(e *store.Entry) error {
	if m.store == nil {
		return ErrNoStore
	}
	return m.store.Cache.Put(e)
}

// GetEntry reads an entry from the disk tier (CRC-verified) — the send
// side of replication and the rebalancer's reader. ok is false without
// a store or when the tier misses.
func (m *Manager) GetEntry(hash string) (*store.Entry, bool) {
	if m.store == nil {
		return nil, false
	}
	return m.store.Cache.Get(hash)
}

// PutSnapshot adopts an externally supplied checkpoint into the disk
// tier — the receive side of snapshot replication. Idempotent like
// PutEntry: the key is (prefix hash, iteration).
func (m *Manager) PutSnapshot(s *store.Snapshot) error {
	if m.store == nil {
		return ErrNoStore
	}
	return m.store.Cache.PutSnapshot(s)
}

// GetEntryWire reads the raw CRC-verified record bytes for any object
// key — result entry or snapshot; the record's magic line tells the
// receiver which decoder to use. This is the kind-agnostic send side of
// replication and rebalancing, so snapshot keys appearing in
// EntryHashes move between nodes exactly like entries.
func (m *Manager) GetEntryWire(key string) ([]byte, bool) {
	if m.store == nil {
		return nil, false
	}
	return m.store.Cache.GetWire(key)
}

// EntryHashes lists the disk tier's live entries, most recently used
// first (nil without a store) — the rebalancer's work list and the
// replication-completeness view the chaos tests assert on.
func (m *Manager) EntryHashes() []string {
	if m.store == nil {
		return nil
	}
	return m.store.Cache.Hashes()
}

// CacheSizes reports the warmth of both cache tiers — what a cluster
// node advertises so peers can see a restarted member still owns its
// results (memory empties on restart, disk does not).
func (m *Manager) CacheSizes() (memEntries, diskEntries int, diskBytes int64) {
	memEntries = m.cache.len()
	if m.store != nil {
		diskEntries = m.store.Cache.Len()
		diskBytes = m.store.Cache.Bytes()
	}
	return memEntries, diskEntries, diskBytes
}
