package serve

// Manager-level chaos for the persistence layer: concurrent identical
// and distinct submissions against a 1-entry memory tier, so every code
// path — memory hit, disk hit with promotion, singleflight disk read,
// compute, write-behind spill, journal begin/end — races with itself.
// CI runs this under -race -count=2 (the race-concurrency job).

import (
	"context"
	"sync"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve/store"
)

func TestPersistConcurrentSubmitChaos(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 2, CacheCapacity: 1, QueueDepth: 256, Store: s})
	defer m.Close()

	// Four distinct configs cycling through a 1-entry memory LRU: most
	// lookups fall through to the disk tier or compute.
	configs := []core.Config{testCfg(16), testCfg(32), testCfg(48), testCfg(64)}

	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cfg := configs[(w+i)%len(configs)]
				st, err := m.Submit(cfg, false)
				if err != nil {
					t.Error(err)
					return
				}
				if !st.State.Terminal() {
					if st, err = m.Wait(ctx, st.ID); err != nil {
						t.Error(err)
						return
					}
				}
				if st.State != JobDone || st.Result == nil {
					t.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
					return
				}
				// Whatever tier answered, the result must be the right
				// computation.
				if st.Result.Config.Dim != cfg.Dim {
					t.Errorf("job %s returned dim %d, want %d", st.ID, st.Result.Config.Dim, cfg.Dim)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := m.Stats()
	if st.Completed != workers*rounds {
		t.Fatalf("completed=%d, want %d", st.Completed, workers*rounds)
	}
	// The whole point of the two tiers: most submissions are served from
	// cache. Some recomputation is expected — there is deliberately no
	// compute-level singleflight, and a result is only durable once the
	// write-behind spill lands — but anywhere near one compute per
	// submission means the tiers collapsed.
	if st.Computed > workers*rounds/2 {
		t.Fatalf("computed=%d of %d — caching collapsed under concurrency (stats %+v)",
			st.Computed, workers*rounds, st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("no disk hits despite a 1-entry memory tier: %+v", st)
	}
	if st.DiskCorrupt != 0 {
		t.Fatalf("disk tier served/dropped %d corrupt entries", st.DiskCorrupt)
	}

	// After the storm the journal must hold no open jobs: every admitted
	// job reached a terminal record.
	m.Close()
	if got := s.Journal.OpenCount(); got != 0 {
		t.Fatalf("journal left %d jobs open after a clean drain", got)
	}
}
