package serve_test

// End-to-end coverage of the compute service: the full lifecycle over
// real HTTP (submit → queue → run → result), concurrent submissions under
// admission control, cache hits on identical resubmission, cancellation
// latency, warm-pool reuse and the live frame stream.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	_ "easypap/internal/kernels" // register the predefined kernels
	"easypap/internal/serve"
	"easypap/internal/serve/client"
)

func newTestService(t *testing.T, opts serve.Options) (*serve.Manager, *client.Client) {
	t.Helper()
	mgr := serve.NewManager(opts)
	ts := httptest.NewServer(serve.NewHandler(mgr))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return mgr, client.New(ts.URL)
}

// mandelCfg is a small fast mandel job; iters varies it so each config
// hashes distinctly.
func mandelCfg(iters int) core.Config {
	return core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16,
		Iterations: iters, Threads: 1,
	}
}

// TestServiceLifecycleE2E drives the acceptance scenario: 8 concurrent
// submissions complete under admission control, an identical resubmission
// is served from cache without recompute, and DELETE on a long mandel job
// takes effect within 100ms with the leased pool reusable afterwards.
func TestServiceLifecycleE2E(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 2, QueueDepth: 32})
	ctx := context.Background()

	// 8 concurrent distinct submissions.
	const n = 8
	var wg sync.WaitGroup
	results := make([]*serve.JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cl.Submit(ctx, mandelCfg(i+1), false)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = cl.Wait(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i].State != serve.JobDone {
			t.Fatalf("job %d ended %s: %s", i, results[i].State, results[i].Error)
		}
		if results[i].Result == nil || results[i].Result.Iterations != i+1 {
			t.Fatalf("job %d result %+v, want %d iterations", i, results[i].Result, i+1)
		}
		if results[i].Cached {
			t.Fatalf("job %d reported cached on first submission", i)
		}
	}

	statsBefore, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsBefore.CacheHits != 0 {
		t.Fatalf("cache hits before resubmission: %d", statsBefore.CacheHits)
	}

	// Identical resubmission: served from cache, no recompute.
	st, err := cl.Submit(ctx, mandelCfg(3), false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() || !st.Cached {
		t.Fatalf("resubmission not served from cache: state=%s cached=%v", st.State, st.Cached)
	}
	if st.Result == nil || st.Result.Iterations != 3 {
		t.Fatalf("cached result %+v", st.Result)
	}
	statsAfter, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsAfter.CacheHits != statsBefore.CacheHits+1 {
		t.Errorf("cache hit counter did not increment: %d -> %d", statsBefore.CacheHits, statsAfter.CacheHits)
	}
	if statsAfter.Completed != statsBefore.Completed+1 {
		t.Errorf("completed count %d -> %d", statsBefore.Completed, statsAfter.Completed)
	}
	if ks, ok := statsAfter.Kernels["mandel"]; !ok || ks.Jobs != n {
		// The cached resubmission must NOT appear in compute throughput.
		t.Errorf("mandel kernel stats = %+v, want %d computed jobs", ks, n)
	}

	// Cancellation: a long mandel job is canceled within 100ms.
	long, err := cl.Submit(ctx, mandelCfg(1_000_000), false)
	if err != nil {
		t.Fatal(err)
	}
	deadlineCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for { // wait until it actually runs
		cur, err := cl.Job(deadlineCtx, long.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == serve.JobRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	canceledAt := time.Now()
	if _, err := cl.Cancel(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(deadlineCtx, long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(canceledAt); lat > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms", lat)
	}
	if final.State != serve.JobCanceled {
		t.Errorf("canceled job ended %s", final.State)
	}

	// The leased pool survived the cancel: the next job reuses it warm.
	after, err := cl.Submit(ctx, mandelCfg(9), false)
	if err != nil {
		t.Fatal(err)
	}
	if after, err = cl.Wait(ctx, after.ID); err != nil {
		t.Fatal(err)
	}
	if after.State != serve.JobDone {
		t.Fatalf("post-cancel job ended %s: %s", after.State, after.Error)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoolWarmLeases == 0 {
		t.Error("no warm pool leases recorded across 10 jobs")
	}
	if stats.Canceled != 1 {
		t.Errorf("canceled count = %d, want 1", stats.Canceled)
	}
}

// Admission control: with one runner and a queue of one, a third
// submission is rejected with 429 while the first two are in flight.
func TestAdmissionControl(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	first, err := cl.Submit(ctx, mandelCfg(1_000_000), false)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the runner picked it up so the queue slot is free.
	for {
		cur, err := cl.Job(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == serve.JobRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	second, err := cl.Submit(ctx, mandelCfg(999_999), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(ctx, mandelCfg(999_998), false); err == nil {
		t.Fatal("third submission admitted past a full queue")
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 1 {
		t.Errorf("rejected count = %d, want 1", stats.Rejected)
	}

	// A queued job cancels instantly (no runner involved).
	st, err := cl.Cancel(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.JobCanceled {
		t.Errorf("queued job state after DELETE = %s, want canceled", st.State)
	}
	if _, err := cl.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

// The frame stream delivers decodable PNG frames for a frames-enabled job.
func TestFrameStreaming(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	st, err := cl.Submit(ctx, core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 32, TileW: 16,
		Iterations: 3, Threads: 1,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*gfx.StreamFrame
	if err := cl.Frames(ctx, st.ID, func(f *gfx.StreamFrame) bool {
		frames = append(frames, f)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Window != "main" || f.Iter != i+1 {
			t.Errorf("frame %d = %s/%d", i, f.Window, f.Iter)
		}
		im, err := f.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if im.Dim() != 32 {
			t.Errorf("frame %d dim %d", i, im.Dim())
		}
	}

	// Frames jobs bypass the result cache.
	again, err := cl.Submit(ctx, core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 32, TileW: 16,
		Iterations: 3, Threads: 1,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("frames job served from cache")
	}
	if _, err := cl.Wait(ctx, again.ID); err != nil {
		t.Fatal(err)
	}

	// A non-frames job has no stream: 409.
	plain, err := cl.Submit(ctx, mandelCfg(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, plain.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.Frames(ctx, plain.ID, func(*gfx.StreamFrame) bool { return true }); err == nil {
		t.Error("frame stream served for a non-frames job")
	}
}

// HTTP error mapping: unknown jobs are 404, bad configs 400.
func TestHTTPErrors(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	if _, err := cl.Job(ctx, "j-999999"); err == nil {
		t.Error("unknown job id did not error")
	}
	if _, err := cl.Submit(ctx, core.Config{Kernel: "no-such-kernel"}, false); err == nil {
		t.Error("bad config did not error")
	}
	if _, err := cl.Submit(ctx, core.Config{}, false); err == nil {
		t.Error("empty config did not error")
	}
}

// Kernel discovery endpoint.
func TestKernelListing(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 2})
	ks, err := cl.Kernels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range ks {
		if k.Name == "mandel" {
			found = true
			if len(k.Variants) == 0 {
				t.Error("mandel has no variants listed")
			}
		}
	}
	if !found {
		t.Error("mandel not in kernel listing")
	}
}

// Cache eviction at capacity: the least recently used entry recomputes.
func TestCacheEviction(t *testing.T) {
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8, CacheCapacity: 2})
	defer mgr.Close()
	ctx := context.Background()

	run := func(iters int) *serve.JobStatus {
		t.Helper()
		st, err := mgr.Submit(mandelCfg(iters), false)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = mgr.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		return st
	}

	run(1) // fills slot 1
	run(2) // fills slot 2
	run(3) // evicts iters=1 (LRU)
	if st := run(2); !st.Cached {
		t.Error("iters=2 should still be cached")
	}
	if st := run(1); st.Cached {
		t.Error("iters=1 survived eviction from a capacity-2 cache")
	}
	stats := mgr.Stats()
	if stats.CacheSize > 2 {
		t.Errorf("cache size %d exceeds capacity 2", stats.CacheSize)
	}
}

// A frames job canceled while still queued must terminate its frame
// stream: subscribers get EOF, not a hang.
func TestFrameStreamEndsOnQueuedCancel(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	// Occupy the single runner so the frames job stays queued.
	blocker, err := cl.Submit(ctx, mandelCfg(1_000_000), false)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := cl.Job(ctx, blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == serve.JobRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fj, err := cl.Submit(ctx, mandelCfg(10), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, fj.ID); err != nil {
		t.Fatal(err)
	}
	streamCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := cl.Frames(streamCtx, fj.ID, func(*gfx.StreamFrame) bool { return true }); err != nil {
		t.Fatalf("frame stream of a queued-canceled job did not end cleanly: %v", err)
	}
	if _, err := cl.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// Terminal job records are evicted beyond MaxJobHistory, oldest first.
func TestJobHistoryEviction(t *testing.T) {
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8, MaxJobHistory: 2})
	defer mgr.Close()
	ctx := context.Background()

	var ids []string
	for i := 1; i <= 3; i++ {
		st, err := mgr.Submit(mandelCfg(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := mgr.Get(ids[0]); err == nil {
		t.Error("oldest terminal job survived a history of 2")
	}
	for _, id := range ids[1:] {
		if _, err := mgr.Get(id); err != nil {
			t.Errorf("job %s evicted too early: %v", id, err)
		}
	}
}

// Monitoring is scrubbed from cacheable jobs so instrumented timing never
// poisons the cache entry its uninstrumented twin hits.
func TestSubmitScrubsMonitoringForCacheableJobs(t *testing.T) {
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 8})
	defer mgr.Close()
	st, err := mgr.Submit(core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16,
		Iterations: 1, Threads: 1, Monitoring: true, HeatMode: true,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Config.Monitoring || st.Config.HeatMode {
		t.Errorf("cacheable job kept instrumentation: %+v", st.Config)
	}
}

// Close cancels running jobs and refuses new submissions.
func TestManagerClose(t *testing.T) {
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 4})
	st, err := mgr.Submit(mandelCfg(1_000_000), false)
	if err != nil {
		t.Fatal(err)
	}
	// Let it start.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := mgr.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == serve.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mgr.Close()
	final, err := mgr.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.JobCanceled {
		t.Errorf("running job after Close: %s", final.State)
	}
	if _, err := mgr.Submit(mandelCfg(1), false); err == nil {
		t.Error("submission accepted after Close")
	}
}
