// Package chaosnet is a deterministic fault-injection transport for
// testing the cluster layer. It wraps an http.RoundTripper and, per
// destination host, can
//
//   - kill    — fail every request (a crashed process),
//   - partition — fail requests between specific host pairs while both
//     stay reachable from everyone else (a network split),
//   - delay   — add fixed latency before the request is sent,
//   - drop    — fail a seeded fraction of requests (a lossy link),
//   - duplicate — send a seeded fraction of requests twice (a
//     retransmitting network; the duplicate's response is discarded).
//
// All randomness comes from one seeded PRNG behind a mutex, so a suite
// that replays the same schedule against the same request sequence sees
// the same faults — chaos that reproduces. Faults are keyed by the
// request's destination host (URL host:port); partitions are
// additionally keyed by an origin the test attaches to its clients via
// WithOrigin, since an in-process cluster shares one address space and
// the transport cannot otherwise know who "sent" a request.
//
// The package has no dependencies on the cluster layer: it is an
// http.RoundTripper, and anything that takes an *http.Client can be
// made chaotic.
package chaosnet

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

type originKey struct{}

// WithOrigin returns a context carrying the logical origin host of
// requests made with it. Partition rules match (origin, destination)
// pairs; requests without an origin only match whole-host rules.
func WithOrigin(ctx context.Context, host string) context.Context {
	return context.WithValue(ctx, originKey{}, host)
}

// Transport is the fault-injecting RoundTripper. The zero value is not
// usable; construct with New.
type Transport struct {
	base http.RoundTripper

	mu         sync.Mutex
	rng        *rand.Rand
	killed     map[string]bool
	partitions map[[2]string]bool // unordered pair, stored sorted
	delays     map[string]time.Duration
	dropRate   map[string]float64
	dupRate    map[string]float64

	faults atomic64 // injected failures, for assertions
}

// atomic64 is a tiny mutex-free counter (chaos runs under -race).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add() { a.mu.Lock(); a.n++; a.mu.Unlock() }

func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// New wraps base (http.DefaultTransport if nil) with a fault injector
// driven by the given seed. Same seed, same request sequence, same
// faults.
func New(seed uint64, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:       base,
		rng:        rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		killed:     make(map[string]bool),
		partitions: make(map[[2]string]bool),
		delays:     make(map[string]time.Duration),
		dropRate:   make(map[string]float64),
		dupRate:    make(map[string]float64),
	}
}

// Faults returns the number of faults injected so far.
func (t *Transport) Faults() int64 { return t.faults.load() }

// Kill makes every request to host fail until Revive.
func (t *Transport) Kill(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.killed[host] = true
}

// Revive undoes Kill.
func (t *Transport) Revive(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.killed, host)
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition blocks traffic between hosts a and b (both directions).
// Requests must carry an origin (WithOrigin) to be matched.
func (t *Transport) Partition(a, b string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitions[pairKey(a, b)] = true
}

// Heal removes a partition.
func (t *Transport) Heal(a, b string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitions, pairKey(a, b))
}

// Delay adds fixed latency to every request to host (0 clears).
func (t *Transport) Delay(host string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		delete(t.delays, host)
		return
	}
	t.delays[host] = d
}

// Drop fails a fraction p of requests to host (0 clears).
func (t *Transport) Drop(host string, p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p <= 0 {
		delete(t.dropRate, host)
		return
	}
	t.dropRate[host] = p
}

// Duplicate re-sends a fraction p of requests to host (0 clears). The
// duplicate is sent after the original returns; its response body is
// drained and discarded. Only requests with a rewindable or nil body
// are duplicated.
func (t *Transport) Duplicate(host string, p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p <= 0 {
		delete(t.dupRate, host)
		return
	}
	t.dupRate[host] = p
}

// verdict is the decision taken for one request, computed under the
// lock so the PRNG consumption order is deterministic.
type verdict struct {
	fail  error
	delay time.Duration
	dup   bool
}

func (t *Transport) decide(origin, dest string) verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.killed[dest] {
		return verdict{fail: fmt.Errorf("chaosnet: host %s is killed", dest)}
	}
	if origin != "" && t.partitions[pairKey(origin, dest)] {
		return verdict{fail: fmt.Errorf("chaosnet: %s and %s are partitioned", origin, dest)}
	}
	if p := t.dropRate[dest]; p > 0 && t.rng.Float64() < p {
		return verdict{fail: fmt.Errorf("chaosnet: request to %s dropped", dest)}
	}
	v := verdict{delay: t.delays[dest]}
	if p := t.dupRate[dest]; p > 0 && t.rng.Float64() < p {
		v.dup = true
	}
	return v
}

// RoundTrip applies the configured faults, then delegates to the base
// transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	origin, _ := req.Context().Value(originKey{}).(string)
	v := t.decide(origin, req.URL.Host)
	if v.fail != nil {
		t.faults.add()
		return nil, v.fail
	}
	if v.delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(v.delay):
		}
	}
	if v.dup {
		// The duplicate goes first and its response is discarded; the
		// original request's body is never touched (the clone reads a
		// fresh body from GetBody, and bodiless requests are trivially
		// replayable).
		if dup := cloneForReplay(req); dup != nil {
			t.faults.add()
			if resp, err := t.base.RoundTrip(dup); err == nil {
				resp.Body.Close()
			}
		}
	}
	return t.base.RoundTrip(req)
}

// cloneForReplay copies a request whose body can be replayed (nil body
// or GetBody available); otherwise returns nil and no duplication
// happens.
func cloneForReplay(req *http.Request) *http.Request {
	if req.Body == nil || req.Body == http.NoBody {
		return req.Clone(req.Context())
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	c := req.Clone(req.Context())
	c.Body = body
	return c
}

// --- seeded schedules -------------------------------------------------

// Step is one timed action of a chaos schedule.
type Step struct {
	// After is the delay from schedule start (or from the previous
	// step's firing when Sequential) to this step.
	After time.Duration
	// Do applies the step's faults.
	Do func(t *Transport)
}

// Schedule runs steps against t, each at its After offset from start,
// and returns a stop function. Steps fire in order on one goroutine,
// so a schedule is a deterministic script: kill at 100ms, heal at
// 400ms, ... — the same every run.
func Schedule(t *Transport, steps []Step) (stop func()) {
	done := make(chan struct{})
	go func() {
		start := time.Now()
		for _, s := range steps {
			wait := time.Until(start.Add(s.After))
			if wait > 0 {
				select {
				case <-done:
					return
				case <-time.After(wait):
				}
			}
			select {
			case <-done:
				return
			default:
			}
			s.Do(t)
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
