package chaosnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, c *http.Client, url string, origin string) (*http.Response, error) {
	t.Helper()
	ctx := context.Background()
	if origin != "" {
		ctx = WithOrigin(ctx, origin)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

func TestKillAndRevive(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(1, nil)
	client := &http.Client{Transport: tr}

	if resp, err := get(t, client, srv.URL, ""); err != nil {
		t.Fatalf("before kill: %v", err)
	} else {
		resp.Body.Close()
	}
	tr.Kill(host)
	if _, err := get(t, client, srv.URL, ""); err == nil {
		t.Fatal("killed host served a request")
	}
	tr.Revive(host)
	if resp, err := get(t, client, srv.URL, ""); err != nil {
		t.Fatalf("after revive: %v", err)
	} else {
		resp.Body.Close()
	}
	if tr.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", tr.Faults())
	}
}

func TestPartitionIsPairwise(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(2, nil)
	client := &http.Client{Transport: tr}
	tr.Partition("nodeA", host)

	if _, err := get(t, client, srv.URL, "nodeA"); err == nil {
		t.Fatal("partitioned pair exchanged a request")
	}
	// A different origin crosses fine, as does an origin-less request.
	if resp, err := get(t, client, srv.URL, "nodeB"); err != nil {
		t.Fatalf("unpartitioned origin blocked: %v", err)
	} else {
		resp.Body.Close()
	}
	if resp, err := get(t, client, srv.URL, ""); err != nil {
		t.Fatalf("origin-less request blocked: %v", err)
	} else {
		resp.Body.Close()
	}
	tr.Heal("nodeA", host)
	if resp, err := get(t, client, srv.URL, "nodeA"); err != nil {
		t.Fatalf("healed pair still blocked: %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestDropDeterminism pins the reproducibility contract: the same seed
// and the same request sequence produce the same fault pattern.
func TestDropDeterminism(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	pattern := func(seed uint64) []bool {
		tr := New(seed, nil)
		tr.Drop(host, 0.5)
		client := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := get(t, client, srv.URL, "")
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a, b)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-request patterns (suspicious)")
	}
}

func TestDuplicateSendsTwice(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(3, nil)
	tr.Duplicate(host, 1.0)
	client := &http.Client{Transport: tr}
	resp, err := get(t, client, srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + duplicate)", hits.Load())
	}
}

func TestDelayAddsLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(4, nil)
	tr.Delay(host, 50*time.Millisecond)
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := get(t, client, srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms", d)
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(5, nil)
	client := &http.Client{Transport: tr}
	stop := Schedule(tr, []Step{
		{After: 0, Do: func(t *Transport) { t.Kill(host) }},
		{After: 60 * time.Millisecond, Do: func(t *Transport) { t.Revive(host) }},
	})
	defer stop()

	time.Sleep(20 * time.Millisecond)
	if _, err := get(t, client, srv.URL, ""); err == nil {
		t.Fatal("schedule did not kill the host")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := get(t, client, srv.URL, "")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("schedule never revived the host")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
