package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"easypap/internal/core"
)

// The /v1 API:
//
//	POST   /v1/jobs           submit {"config": {...}, "frames": bool}
//	GET    /v1/jobs/{id}      status + result
//	GET    /v1/jobs/{id}/frames  live frame stream (gfx stream records)
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/stats          queue depth, cache hits, per-kernel throughput
//	GET    /v1/kernels        registered kernels and variants
//
// Errors are {"error": "..."} with 400 (bad config), 404 (unknown job),
// 409 (no frame stream), 429 (queue full) or 503 (shutting down).

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Config core.Config `json:"config"`
	// Frames requests live frame streaming for this job (disables result
	// caching for it).
	Frames bool `json:"frames,omitempty"`
}

// KernelInfo is one entry of GET /v1/kernels — the same shape
// `easypap --list-json` prints, so CLI and service clients share a parser.
type KernelInfo = core.KernelInfo

// NewHandler wires a Manager into an http.Handler serving the /v1 API.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
			return
		}
		st, err := m.Submit(req.Config, req.Frames)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		code := http.StatusAccepted
		if st.State.Terminal() {
			code = http.StatusOK // cache hit: the result is already here
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, jobStatusCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, jobStatusCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/frames", func(w http.ResponseWriter, r *http.Request) {
		rd, err := m.FrameStream(r.PathValue("id"))
		if err != nil {
			writeError(w, jobStatusCode(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/x-easypap-frames")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 64<<10)
		for {
			n, rerr := rd.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return // client went away
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, core.KernelList())
	})

	return mux
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest // config did not normalize
	}
}

func jobStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNoFrames):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
