package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"easypap/internal/core"
	"easypap/internal/gfx"
)

// The /v1 API:
//
//	POST   /v1/jobs           submit {"config": {...}, "frames": bool}
//	GET    /v1/jobs/{id}      status + result
//	GET    /v1/jobs/{id}/frames  live frame stream (gfx stream records)
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/stats          queue depth, cache hits, per-kernel throughput
//	GET    /v1/kernels        registered kernels and variants
//	GET    /v1/trace/{id}     service-span tree of a job (see obs.go)
//	GET    /metrics           Prometheus text exposition (internal/metrics)
//
// Errors are {"error": "..."} with 400 (bad config), 404 (unknown job),
// 409 (no frame stream), 429 (queue full) or 503 (shutting down).
//
// Submissions may carry an X-Easypap-Trace header to join an existing
// distributed trace; absent, the daemon mints a fresh trace id and
// returns it in the job status.

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Config core.Config `json:"config"`
	// Frames requests live frame streaming for this job (disables result
	// caching for it).
	Frames bool `json:"frames,omitempty"`
	// Shards asks for distributed execution across up to this many
	// cluster nodes (row-band sharding with halo exchange). Advisory: a
	// single-node daemon, a non-mpi variant, or a cluster without enough
	// healthy peers runs the job locally instead. Never part of the
	// cache key — sharding changes where a job runs, not what it
	// computes.
	Shards int `json:"shards,omitempty"`
}

// KernelInfo is one entry of GET /v1/kernels — the same shape
// `easypap --list-json` prints, so CLI and service clients share a parser.
type KernelInfo = core.KernelInfo

// NewHandler wires a Manager into an http.Handler serving the /v1 API.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
			return
		}
		st, err := m.SubmitShards(req.Config, req.Frames, r.Header.Get(TraceHeader), req.Shards)
		if err != nil {
			WriteSubmitError(w, err)
			return
		}
		code := http.StatusAccepted
		if st.State.Terminal() {
			code = http.StatusOK // cache hit: the result is already here
		}
		WriteJSON(w, code, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			WriteError(w, JobStatusCode(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			WriteError(w, JobStatusCode(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/frames", func(w http.ResponseWriter, r *http.Request) {
		format := FrameFormat(r)
		// r.Context() is the subscription context: a disconnected client
		// unblocks the hub reader instead of parking it until job end.
		rd, err := m.FrameStream(r.Context(), r.PathValue("id"), format)
		if err != nil {
			WriteError(w, JobStatusCode(err), err)
			return
		}
		defer rd.Close()
		w.Header().Set("Content-Type", FrameContentType(format))
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 64<<10)
		for {
			n, rerr := rd.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return // client went away
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, core.KernelList())
	})

	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := m.Trace(r.PathValue("id"))
		if err != nil {
			WriteError(w, JobStatusCode(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, doc)
	})

	mux.Handle("GET /metrics", m.Metrics().Handler())

	return mux
}

// TraceHeader carries the distributed trace id across proxy hops,
// replica fetches, and client submissions.
const TraceHeader = "X-Easypap-Trace"

// Frame-stream content types. The full format is the golden-pinned
// default; delta is opt-in (see FrameFormat).
const (
	FramesContentType      = "application/x-easypap-frames"
	FramesDeltaContentType = "application/x-easypap-frames-delta"
)

// FrameFormat negotiates the frame-stream wire format of a request:
// ?format=delta or an Accept header naming the delta content type opt in
// to dirty-tile delta records; everything else gets the default full
// stream. Exported for the cluster layer, which negotiates the same way
// on its edge-proxy path.
func FrameFormat(r *http.Request) gfx.StreamFormat {
	if r.URL.Query().Get("format") == string(gfx.FormatDelta) {
		return gfx.FormatDelta
	}
	if strings.Contains(r.Header.Get("Accept"), FramesDeltaContentType) {
		return gfx.FormatDelta
	}
	return gfx.FormatFull
}

// FrameContentType maps a stream format to its Content-Type.
func FrameContentType(format gfx.StreamFormat) string {
	if format == gfx.FormatDelta {
		return FramesDeltaContentType
	}
	return FramesContentType
}

// RetryAfterSeconds is the Retry-After value sent with every 429: the
// queue is bounded and jobs are short, so "come back in a second" is
// the honest hint. Clients combine it with jittered backoff so a herd
// of rejected submitters does not re-synchronize on the boundary.
const RetryAfterSeconds = 1

// WriteSubmitError writes a Submit error with its mapped status; 429
// responses carry a Retry-After header so well-behaved clients pace
// their retries instead of hammering the admission path.
func WriteSubmitError(w http.ResponseWriter, err error) {
	code := SubmitStatusCode(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
	}
	WriteError(w, code, err)
}

// SubmitStatusCode maps a Submit error to its HTTP status. Exported for
// the cluster layer, which serves the same API through its own handler.
func SubmitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest // config did not normalize
	}
}

// JobStatusCode maps a job-lookup error to its HTTP status.
func JobStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNoFrames):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// WriteJSON writes v as an indented JSON response with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes err as the {"error": ...} body every /v1 endpoint uses.
func WriteError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, map[string]string{"error": err.Error()})
}
