package serve_test

// Service-level coverage of the delta frame stream: format negotiation
// over real HTTP, pixel-exact equivalence between the full and delta
// encodings of the same job, and the slow-subscriber chaos scenario —
// a stalled viewer must never stall the run loop or other viewers.

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/img2d"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
)

// TestDeltaStreamEquivalence reassembles the delta stream of the lazy
// (frontier-reporting) kernels and checks it is pixel-identical, frame
// by frame, to the golden-pinned full stream of the same job.
func TestDeltaStreamEquivalence(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 2, QueueDepth: 16})
	ctx := context.Background()

	cases := []struct {
		name string
		cfg  core.Config
	}{
		// 40 iterations: past the 32-frame keyframe cadence, so the delta
		// stream holds keyframes AND patches, and well under the hub ring
		// bound, so late subscribers replay the entire stream.
		{"life diag", core.Config{Kernel: "life", Variant: "lazy", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2, Arg: "diag"}},
		{"life random seed1", core.Config{Kernel: "life", Variant: "lazy", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2, Seed: 1}},
		{"life random seed42", core.Config{Kernel: "life", Variant: "lazy", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2, Seed: 42}},
		{"fire full", core.Config{Kernel: "fire", Variant: "lazy", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2, Arg: "full"}},
		{"fire forest seed7", core.Config{Kernel: "fire", Variant: "lazy", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2, Seed: 7}},
		{"sandpile lazy_omp", core.Config{Kernel: "sandpile", Variant: "lazy_omp", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 40, Threads: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := cl.Submit(ctx, tc.cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Wait(ctx, st.ID); err != nil {
				t.Fatal(err)
			}

			// Both subscribers attach after the job finished: each replays
			// the full retained ring, so the comparison is deterministic.
			type frame struct {
				iter int
				img  *img2d.Image
			}
			var full []frame
			if err := cl.Frames(ctx, st.ID, func(f *gfx.StreamFrame) bool {
				im, err := f.Decode()
				if err != nil {
					t.Errorf("full frame %s/%d: %v", f.Window, f.Iter, err)
					return false
				}
				full = append(full, frame{f.Iter, im})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			var delta []frame
			if err := cl.FramesDelta(ctx, st.ID, func(window string, iter int, img *img2d.Image) bool {
				delta = append(delta, frame{iter, img.Clone()})
				return true
			}); err != nil {
				t.Fatal(err)
			}

			if len(full) != tc.cfg.Iterations {
				t.Fatalf("full stream has %d frames, want %d", len(full), tc.cfg.Iterations)
			}
			if len(delta) != len(full) {
				t.Fatalf("delta stream has %d frames, full has %d", len(delta), len(full))
			}
			for i := range full {
				if delta[i].iter != full[i].iter {
					t.Fatalf("frame %d: delta iter %d vs full iter %d", i, delta[i].iter, full[i].iter)
				}
				if !delta[i].img.Equal(full[i].img) {
					t.Errorf("iter %d: reassembled delta frame differs from full frame (%d pixels)",
						full[i].iter, delta[i].img.DiffCount(full[i].img))
				}
			}
		})
	}
}

// TestDeltaStreamShrinksBytes pins the headline win: for a sparse
// steady-state kernel, a steady-state frame of the delta stream costs a
// small fraction of its full-frame encoding — ≥ 5x smaller — and the
// whole delta stream (keyframe cadence included) is substantially
// smaller than the full stream.
func TestDeltaStreamShrinksBytes(t *testing.T) {
	mgr, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	// Sparse gliders on a big board: a handful of dirty tiles per iteration
	// against a 256x256 full frame.
	st, err := cl.Submit(ctx, core.Config{
		Kernel: "life", Variant: "lazy", Dim: 256, TileW: 16, TileH: 16,
		Iterations: 64, Threads: 2, Arg: "diag",
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	full, steady := streamRecordBytes(t, cl, st.ID)
	if full.n == 0 || steady.n == 0 {
		t.Fatalf("no records measured: %d full, %d steady", full.n, steady.n)
	}
	ratio := full.mean() / steady.mean()
	t.Logf("full frame %.0fB avg, steady-state delta %.0fB avg: %.1fx", full.mean(), steady.mean(), ratio)
	if ratio < 5 {
		t.Errorf("steady-state delta frame only %.1fx smaller than full, want >= 5x", ratio)
	}

	stats := mgr.Stats()
	if stats.FrameFullBytes == 0 || stats.FrameDeltaBytes == 0 {
		t.Fatalf("byte counters not populated: full=%d delta=%d",
			stats.FrameFullBytes, stats.FrameDeltaBytes)
	}
	if agg := float64(stats.FrameFullBytes) / float64(stats.FrameDeltaBytes); agg < 3 {
		t.Errorf("whole delta stream only %.1fx smaller than full, want >= 3x with keyframes included", agg)
	}
}

type byteTally struct {
	n     int
	total int
}

func (b *byteTally) add(sz int)   { b.n++; b.total += sz }
func (b byteTally) mean() float64 { return float64(b.total) / float64(b.n) }

// streamRecordBytes reads a job's full stream and delta stream and
// tallies wire-record sizes: all full-stream records, and the delta
// stream's steady-state (non-keyframe) records.
func streamRecordBytes(t *testing.T, cl *client.Client, id string) (full, steady byteTally) {
	t.Helper()
	ctx := context.Background()
	read := func(path string) []*gfx.Record {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		br := bufio.NewReader(resp.Body)
		var recs []*gfx.Record
		for {
			rec, err := gfx.ReadRecord(br)
			if err == io.EOF {
				return recs
			}
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
	}
	for _, rec := range read("/v1/jobs/" + id + "/frames") {
		full.add(len(rec.Encode()))
	}
	for _, rec := range read("/v1/jobs/" + id + "/frames?format=delta") {
		if rec.Kind == gfx.RecordDelta {
			steady.add(len(rec.Encode()))
		}
	}
	return full, steady
}

// TestSlowSubscriberNeverStallsJob is the chaos scenario: a subscriber
// that attaches and then never reads while the job produces more frames
// than the hub ring retains. The job must finish unimpeded, a healthy
// concurrent subscriber must see the stream, and when the stalled reader
// finally drains it lands on a keyframe (counted as a drop) instead of
// blocking anything.
func TestSlowSubscriberNeverStallsJob(t *testing.T) {
	mgr, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	// More iterations than the default 1024-record ring, so the stalled
	// cursor is guaranteed to be lapped.
	const iters = 1100
	st, err := cl.Submit(ctx, core.Config{
		Kernel: "life", Variant: "lazy", Dim: 64, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 2, Arg: "diag",
	}, true)
	if err != nil {
		t.Fatal(err)
	}

	// The stalled subscriber: attach immediately, read nothing until the
	// job is done.
	stalled, err := mgr.FrameStream(ctx, st.ID, gfx.FormatDelta)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// The healthy subscriber drains over HTTP concurrently with the run.
	healthyDone := make(chan error, 1)
	var healthyFrames int
	go func() {
		healthyDone <- cl.FramesDelta(ctx, st.ID, func(string, int, *img2d.Image) bool {
			healthyFrames++
			return true
		})
	}()

	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := cl.Wait(waitCtx, st.ID)
	if err != nil {
		t.Fatalf("job did not finish with a stalled subscriber attached: %v", err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if err := <-healthyDone; err != nil {
		t.Fatalf("healthy subscriber: %v", err)
	}
	if healthyFrames == 0 {
		t.Fatal("healthy subscriber starved by the stalled one")
	}

	// Now drain the stalled reader: it must resync to a keyframe and reach
	// EOF, not replay the whole stream.
	body, err := io.ReadAll(stalled)
	if err != nil {
		t.Fatalf("stalled reader drain: %v", err)
	}
	if len(body) == 0 {
		t.Fatal("stalled reader got nothing after resync")
	}
	stats := mgr.Stats()
	if stats.FrameDroppedToKey == 0 {
		t.Error("no drop-to-keyframe recorded for a lapped subscriber")
	}
	if stats.FramePostCloseDrops != 0 {
		t.Errorf("unexpected post-close drops: %d", stats.FramePostCloseDrops)
	}
}

// TestFrameStreamFormatNegotiation checks the HTTP layer: default and
// explicit full requests get the EZFRAME content type, `?format=delta`
// and the Accept header get the delta type.
func TestFrameStreamFormatNegotiation(t *testing.T) {
	_, cl := newTestService(t, serve.Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()
	st, err := cl.Submit(ctx, core.Config{
		Kernel: "life", Variant: "lazy", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 2, Threads: 1, Arg: "blinker",
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	get := func(path, accept string) (string, []byte) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), b
	}

	ct, body := get("/v1/jobs/"+st.ID+"/frames", "")
	if ct != serve.FramesContentType {
		t.Errorf("default stream content type %q", ct)
	}
	if !bytes.HasPrefix(body, []byte("EZFRAME ")) {
		t.Error("default stream does not start with EZFRAME")
	}
	ct, _ = get("/v1/jobs/"+st.ID+"/frames?format=delta", "")
	if ct != serve.FramesDeltaContentType {
		t.Errorf("?format=delta content type %q", ct)
	}
	ct, body = get("/v1/jobs/"+st.ID+"/frames", serve.FramesDeltaContentType)
	if ct != serve.FramesDeltaContentType {
		t.Errorf("Accept-negotiated content type %q", ct)
	}
	if !bytes.HasPrefix(body, []byte("EZFRAME ")) {
		t.Error("delta stream does not start with a keyframe")
	}
}
