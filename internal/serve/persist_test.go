package serve

// Integration tests of the persistence layer wired through the Manager:
// two-tier cache lookups (memory → disk → compute), write-behind
// spilling, journal recovery across simulated daemon generations
// (close the manager abruptly? no — fabricate the crash at the store
// level, which is exactly what a SIGKILL leaves behind), and the
// interrupted-status surface.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/serve/store"
)

func testCfg(dim int) core.Config {
	return core.Config{Kernel: "mandel", Variant: "seq", Dim: dim, TileW: 8, TileH: 8,
		Iterations: 2, Threads: 1, Label: "persist-test"}
}

// waitSpills polls until the manager has spilled n entries to disk.
func waitSpills(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().Spills >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("spills never reached %d (stats: %+v)", n, m.Stats())
}

func submitWait(t *testing.T, m *Manager, cfg core.Config) *JobStatus {
	t.Helper()
	st, err := m.Submit(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if st, err = m.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestTwoTierLookup(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// CacheCapacity 1: submitting A then B evicts A from memory, so the
	// third submission of A can only be answered by the disk tier.
	m := NewManager(Options{Workers: 1, CacheCapacity: 1, Store: s})
	defer m.Close()

	a, b := testCfg(32), testCfg(64)
	stA := submitWait(t, m, a)
	if stA.State != JobDone || stA.Cached {
		t.Fatalf("first run of A: %+v", stA)
	}
	submitWait(t, m, b) // evicts A's memory entry
	waitSpills(t, m, 2)

	stA2 := submitWait(t, m, a)
	if stA2.State != JobDone || !stA2.Cached || !stA2.DiskHit {
		t.Fatalf("A after eviction should be a disk hit: %+v", stA2)
	}
	if stA2.Result.Iterations != stA.Result.Iterations || stA2.Hash != stA.Hash {
		t.Fatalf("disk tier returned a different result: %+v vs %+v", stA2.Result, stA.Result)
	}

	// Promotion: the disk hit refilled the memory tier, so the next
	// lookup is a pure memory hit.
	stA3 := submitWait(t, m, a)
	if !stA3.Cached || stA3.DiskHit {
		t.Fatalf("A after promotion should be a memory hit: %+v", stA3)
	}

	st := m.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("disk_hits=%d, want 1", st.DiskHits)
	}
	if st.Computed != 2 {
		t.Fatalf("computed=%d, want 2 (A and B once each)", st.Computed)
	}
	if st.DiskEntries != 2 || st.DiskBytes <= 0 {
		t.Fatalf("disk tier empty: %+v", st)
	}
}

func TestDiskCacheSurvivesManagerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(32)

	// Generation 1 computes and spills.
	s1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Options{Workers: 1, Store: s1})
	st1 := submitWait(t, m1, cfg)
	waitSpills(t, m1, 1)
	m1.Close()
	// Byte-identity baseline: the stored entry as generation 1 wrote it.
	ent1, ok := s1.Cache.Get(st1.Hash)
	if !ok {
		t.Fatal("entry not on disk after spill")
	}
	s1.Close()

	// Generation 2 starts cold in memory, warm on disk.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := NewManager(Options{Workers: 1, Store: s2})
	defer m2.Close()

	st2 := submitWait(t, m2, cfg)
	if !st2.Cached || !st2.DiskHit {
		t.Fatalf("restarted manager should hit disk: %+v", st2)
	}
	if got := m2.Stats(); got.Computed != 0 || got.DiskHits != 1 {
		t.Fatalf("restart served by recompute: computed=%d disk_hits=%d", got.Computed, got.DiskHits)
	}
	ent2, ok := s2.Cache.Get(st2.Hash)
	if !ok {
		t.Fatal("entry vanished after restart")
	}
	if !bytes.Equal(ent1.Frames, ent2.Frames) {
		t.Fatalf("frames not byte-identical across restart (%d vs %d bytes)", len(ent1.Frames), len(ent2.Frames))
	}
	if len(ent2.Frames) == 0 || !bytes.HasPrefix(ent2.Frames, []byte("EZFRAME final ")) {
		t.Fatalf("stored frames are not gfx stream records: %q", ent2.Frames[:min(len(ent2.Frames), 40)])
	}
}

// crashStore fabricates what a SIGKILL'd daemon leaves behind: a
// journal with open (never-ended) jobs.
func crashStore(t *testing.T, dir string, jobs map[string]core.Config, frames map[string]bool) {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, cfg := range jobs {
		norm, hash, err := NormalizeSubmission(cfg, frames[id])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Journal.Begin(id, hash, frames[id], norm, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
}

func TestJournalRecoveryRequeuesJobs(t *testing.T) {
	dir := t.TempDir()
	crashStore(t, dir, map[string]core.Config{
		"j-000004": testCfg(32),
		"j-000007": testCfg(64),
	}, nil)

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s})
	defer m.Close()

	// The recovered jobs are pollable under their pre-crash ids and run
	// to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{"j-000004", "j-000007"} {
		st, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatalf("waiting for recovered job %s: %v", id, err)
		}
		if st.State != JobDone || !st.Recovered {
			t.Fatalf("recovered job %s: %+v", id, st)
		}
	}
	if st := m.Stats(); st.RecoveredJobs != 2 || st.Computed != 2 {
		t.Fatalf("recovered=%d computed=%d, want 2/2", st.RecoveredJobs, st.Computed)
	}

	// New ids must not collide with journaled ones: the sequence resumed
	// past j-000007.
	st, err := m.Submit(testCfg(16), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID <= "j-000007" {
		t.Fatalf("new id %s did not resume past recovered ids", st.ID)
	}
}

func TestJournalRecoveryInterruptPolicy(t *testing.T) {
	dir := t.TempDir()
	crashStore(t, dir, map[string]core.Config{"j-000001": testCfg(32)}, nil)

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s, Recover: RecoverInterrupt})
	defer m.Close()

	st, err := m.Get("j-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobInterrupted || !st.Recovered || !st.State.Terminal() {
		t.Fatalf("interrupt policy: %+v", st)
	}
	if got := m.Stats(); got.InterruptedJobs != 1 || got.Computed != 0 {
		t.Fatalf("interrupted=%d computed=%d, want 1/0", got.InterruptedJobs, got.Computed)
	}

	// The journal no longer replays it: a second generation is clean.
	m.Close()
	s.Close()
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := len(s2.Journal.Recovered()); n != 0 {
		t.Fatalf("interrupted job still open in journal (%d records)", n)
	}
}

// TestGracefulShutdownPreservesRecoverySet pins the rolling-deploy
// story (found in review): a SIGTERM drain (Manager.Close) cancels
// in-flight jobs but must NOT journal them as terminal — the next
// generation recovers them, exactly as after a crash.
func TestGracefulShutdownPreservesRecoverySet(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Workers: 1, Store: s})

	slow := testCfg(256)
	slow.Iterations = 500
	st, err := m.Submit(slow, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("slow job finished instantly: %+v", st)
	}
	m.Close() // graceful drain cancels it
	if got := s.Journal.OpenCount(); got != 1 {
		t.Fatalf("journal open count after graceful shutdown = %d, want 1 (the drained job)", got)
	}
	s.Close()

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := NewManager(Options{Workers: 1, Store: s2})
	defer m2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := m2.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone || !done.Recovered {
		t.Fatalf("job did not ride through the restart: %+v", done)
	}
}

func TestFramesJobAlwaysInterrupted(t *testing.T) {
	dir := t.TempDir()
	crashStore(t, dir, map[string]core.Config{"j-000001": testCfg(32)},
		map[string]bool{"j-000001": true})

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewManager(Options{Workers: 1, Store: s}) // default requeue policy
	defer m.Close()

	st, err := m.Get("j-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobInterrupted {
		t.Fatalf("frames job should be interrupted, not %s", st.State)
	}
}
