package serve_test

// Serving throughput: warm-pool leasing vs per-run pool construction, and
// the cache-hit fast path. BENCH_serve.json records these numbers.

import (
	"context"
	"testing"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/serve"
)

// benchServe submits one job per iteration and waits for it. Seeds vary
// per op so the result cache never short-circuits the measured path;
// threads are 8 so pool construction (7 goroutine spawns + first
// dispatch) is visible in the cold case.
func benchServe(b *testing.B, disableWarm bool, mkCfg func(i int) core.Config) {
	mgr := serve.NewManager(serve.Options{
		Workers: 1, QueueDepth: 1 << 16, CacheCapacity: 1,
		DisableWarmPools: disableWarm,
	})
	defer mgr.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := mgr.Submit(mkCfg(i), false)
		if err != nil {
			b.Fatal(err)
		}
		if st, err = mgr.Wait(ctx, st.ID); err != nil || st.State != serve.JobDone {
			b.Fatalf("job ended %v: %v", st, err)
		}
	}
}

// A realistic small job: ~1.4ms of mandel compute.
func mandelJob(i int) core.Config {
	return core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: 64, TileW: 16,
		Iterations: 1, Threads: 8, Seed: int64(i + 1),
	}
}

// A near-free job: one scrollup iteration on a 32x32 image, so the
// measured time is almost entirely serving overhead (queue hop + pool
// lease/build + run-loop setup).
func tinyJob(i int) core.Config {
	return core.Config{
		Kernel: "scrollup", Variant: "omp_tiled", Dim: 32, TileW: 16,
		Iterations: 1, Threads: 8, Seed: int64(i + 1),
	}
}

func BenchmarkServeJobWarmPool(b *testing.B) { benchServe(b, false, mandelJob) }

func BenchmarkServeJobColdPool(b *testing.B) { benchServe(b, true, mandelJob) }

func BenchmarkServeOverheadWarmPool(b *testing.B) { benchServe(b, false, tinyJob) }

func BenchmarkServeOverheadColdPool(b *testing.B) { benchServe(b, true, tinyJob) }

// BenchmarkServeCacheHit measures the cached serving fast path: identical
// resubmissions never reach a runner.
func BenchmarkServeCacheHit(b *testing.B) {
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 64})
	defer mgr.Close()
	ctx := context.Background()
	cfg := core.Config{
		Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16,
		Iterations: 1, Threads: 1,
	}
	st, err := mgr.Submit(cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Wait(ctx, st.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := mgr.Submit(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}
