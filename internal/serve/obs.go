package serve

// Observability surface of the Manager: the metrics registry wiring and
// the service-span recorder behind GET /metrics and GET /v1/trace/{job}.
//
// Two rules keep this layer honest:
//
//  1. No double bookkeeping. The Manager already counts everything in
//     atomics for /v1/stats; /metrics exposes those SAME atomics through
//     CounterFunc/GaugeFunc sampled at scrape time. Only latency
//     histograms add new state, because /v1/stats never had
//     distributions.
//  2. Nothing here touches the sched dispatch hot path. Stage timings
//     wrap service operations (admission, cache lookups, compute runs,
//     spills) that already cost µs..ms; one Histogram.Observe (~12ns)
//     and one SpanRing.Record (~100ns, off-path) are noise there, and
//     BenchmarkDispatchOverhead is pinned unchanged because internal/
//     sched is not instrumented at all.

import (
	"sync/atomic"
	"time"

	"easypap/internal/metrics"
	"easypap/internal/trace"
)

// Stage names used across serve and serve/cluster for the per-stage
// latency histograms and the service spans. Keeping them in one place
// means /metrics label values and span Stage fields never drift apart.
const (
	StageAdmit        = "admit"         // Submit entry → enqueued or cache-answered
	StageQueue        = "queue"         // admission → a runner picks the job up
	StageLease        = "lease"         // warm-pool lease
	StageCompute      = "compute"       // core.RunWith
	StageCacheMem     = "cache_mem"     // in-memory LRU lookup
	StageCacheDisk    = "cache_disk"    // disk-tier lookup
	StageReplicaFetch = "replica_fetch" // entry-source (cluster replica) fetch
	StageSpill        = "spill"         // write-behind disk persist
	StageSnapshot     = "snapshot"      // checkpoint write-behind persist
	StageResume       = "resume"        // deepest-checkpoint lookup that hit
	StageProxy        = "proxy"         // cluster: forwarding to the owner/replica
	StageReplicate    = "replicate"     // cluster: pushing an entry to a successor
	StageGossip       = "gossip"        // cluster: one gossip exchange with a peer
	StageShard        = "shard"         // distributed: one rank's whole band run
	StageHalo         = "halo"          // distributed: one boundary-row exchange
)

// stageHistHelp is shared by every easypapd_stage_ns registration (the
// cluster layer registers proxy/replicate/gossip into the same family).
const stageHistHelp = "Per-stage service latency in nanoseconds."

// managerObs bundles the Manager's scrape-facing state.
type managerObs struct {
	reg   *metrics.Registry
	spans *trace.SpanRing

	// Stage latency histograms (one family, labeled by stage).
	admit        *metrics.Histogram
	queue        *metrics.Histogram
	lease        *metrics.Histogram
	compute      *metrics.Histogram
	cacheMem     *metrics.Histogram
	cacheDisk    *metrics.Histogram
	replicaFetch *metrics.Histogram
	spill        *metrics.Histogram
	snapshot     *metrics.Histogram
	resume       *metrics.Histogram
	shard        *metrics.Histogram
	halo         *metrics.Histogram
}

// StageHistogram registers one easypapd_stage_ns histogram in reg —
// exported so the cluster layer adds its stages to the same family.
func StageHistogram(reg *metrics.Registry, stage string) *metrics.Histogram {
	return reg.Histogram("easypapd_stage_ns", stageHistHelp, metrics.Labels{"stage": stage})
}

// newManagerObs builds the registry and wires every existing Manager
// counter into it. Called once from NewManager, before traffic.
func newManagerObs(m *Manager) *managerObs {
	reg := metrics.NewRegistry()
	o := &managerObs{
		reg:          reg,
		spans:        trace.NewSpanRing(0),
		admit:        StageHistogram(reg, StageAdmit),
		queue:        StageHistogram(reg, StageQueue),
		lease:        StageHistogram(reg, StageLease),
		compute:      StageHistogram(reg, StageCompute),
		cacheMem:     StageHistogram(reg, StageCacheMem),
		cacheDisk:    StageHistogram(reg, StageCacheDisk),
		replicaFetch: StageHistogram(reg, StageReplicaFetch),
		spill:        StageHistogram(reg, StageSpill),
		snapshot:     StageHistogram(reg, StageSnapshot),
		resume:       StageHistogram(reg, StageResume),
		shard:        StageHistogram(reg, StageShard),
		halo:         StageHistogram(reg, StageHalo),
	}

	ctr := func(name, help string, labels metrics.Labels, v *atomic.Int64) {
		reg.CounterFunc(name, help, labels, func() uint64 { return uint64(v.Load()) })
	}
	ctr("easypapd_jobs_submitted_total", "Jobs admitted (including cache-served).", nil, &m.submitted)
	ctr("easypapd_jobs_completed_total", "Jobs finished successfully.", nil, &m.completed)
	ctr("easypapd_jobs_computed_total", "Jobs that ran a kernel (no cache tier answered).", nil, &m.computed)
	ctr("easypapd_jobs_failed_total", "Jobs that finished with an error.", nil, &m.failed)
	ctr("easypapd_jobs_canceled_total", "Jobs canceled before completion.", nil, &m.canceled)
	ctr("easypapd_jobs_rejected_total", "Submissions rejected by admission control (429).", nil, &m.rejected)
	ctr("easypapd_jobs_recovered_total", "Journaled jobs re-enqueued after a restart.", nil, &m.recovered)
	ctr("easypapd_jobs_interrupted_total", "Journaled jobs marked interrupted after a restart.", nil, &m.interrupted)

	reg.CounterFunc("easypapd_cache_hits_total", "Result-cache hits by tier.",
		metrics.Labels{"tier": "memory"}, func() uint64 { return uint64(m.cache.hits.Load()) })
	reg.CounterFunc("easypapd_cache_misses_total", "Result-cache misses (memory tier).",
		metrics.Labels{"tier": "memory"}, func() uint64 { return uint64(m.cache.misses.Load()) })
	ctr("easypapd_cache_hits_total", "Result-cache hits by tier.", metrics.Labels{"tier": "disk"}, &m.diskHits)
	ctr("easypapd_cache_misses_total", "Result-cache misses (memory tier).", metrics.Labels{"tier": "disk"}, &m.diskMisses)
	ctr("easypapd_cache_hits_total", "Result-cache hits by tier.", metrics.Labels{"tier": "remote"}, &m.remoteHits)

	ctr("easypapd_jobs_coordinated_total", "Sharded jobs this node drove as coordinator (rank 0).", nil, &m.jobsCoordinated)
	ctr("easypapd_shards_executed_total", "Shard ranks of distributed jobs executed on this node.", nil, &m.shardsExecuted)
	ctr("easypapd_halos_sent_total", "Halo boundary-row messages sent by local shard ranks.", nil, &m.halosSent)
	ctr("easypapd_halos_skipped_total", "Halo edges skipped because the frontier proved them quiet.", nil, &m.halosSkipped)

	// Frame-streaming series: the broadcast hub's shared counters (the
	// same atomics /v1/stats samples). Byte counters are labeled by
	// format so the delta savings is a PromQL one-liner.
	reg.GaugeFunc("easypapd_frame_subscribers", "Frame-stream subscribers currently attached.", nil,
		func() float64 { return float64(m.frameStats.Subscribers.Load()) })
	ctr("easypapd_frames_dropped_keyframe_total", "Slow-subscriber catch-ups that skipped ahead to a keyframe.", nil,
		&m.frameStats.DroppedToKey)
	ctr("easypapd_frame_post_close_drops_total", "Frame publishes dropped because the job's hub was already closed.", nil,
		&m.frameStats.PostCloseDrops)
	ctr("easypapd_frame_bytes_total", "Encoded frame bytes published, by stream format.",
		metrics.Labels{"format": "full"}, &m.frameStats.FullBytes)
	ctr("easypapd_frame_bytes_total", "Encoded frame bytes published, by stream format.",
		metrics.Labels{"format": "delta"}, &m.frameStats.DeltaBytes)

	ctr("easypapd_snapshots_written_total", "Kernel-state checkpoints durably persisted.", nil, &m.snapsWritten)
	ctr("easypapd_snapshots_resumed_total", "Jobs resumed from a stored checkpoint instead of iteration zero.", nil, &m.snapsResumed)

	ctr("easypapd_spills_total", "Results written behind to the disk tier.", nil, &m.spills)
	ctr("easypapd_spill_errors_total", "Disk-tier writes that failed.", nil, &m.spillErrs)
	ctr("easypapd_spill_dropped_total", "Spills dropped because the write-behind queue was full.", nil, &m.spillDrops)

	reg.CounterFunc("easypapd_pool_leases_total", "Scheduler-pool leases by kind.",
		metrics.Labels{"kind": "warm"}, func() uint64 { return uint64(m.pools.warm.Load()) })
	reg.CounterFunc("easypapd_pool_leases_total", "Scheduler-pool leases by kind.",
		metrics.Labels{"kind": "cold"}, func() uint64 { return uint64(m.pools.cold.Load()) })

	reg.GaugeFunc("easypapd_queue_depth", "Jobs waiting for a runner.", nil,
		func() float64 { return float64(len(m.queue)) })
	reg.GaugeFunc("easypapd_queue_capacity", "Admission-control queue bound.", nil,
		func() float64 { return float64(cap(m.queue)) })
	reg.GaugeFunc("easypapd_running_jobs", "Jobs currently executing.", nil,
		func() float64 { return float64(m.running.Load()) })
	reg.GaugeFunc("easypapd_cache_entries", "Entries in the in-memory result cache.", nil,
		func() float64 { return float64(m.cache.len()) })
	reg.GaugeFunc("easypapd_disk_entries", "Entries in the disk cache tier.", nil, func() float64 {
		if m.store == nil {
			return 0
		}
		return float64(m.store.Cache.Len())
	})
	reg.GaugeFunc("easypapd_disk_bytes", "Bytes in the disk cache tier.", nil, func() float64 {
		if m.store == nil {
			return 0
		}
		return float64(m.store.Cache.Bytes())
	})
	reg.GaugeFunc("easypapd_spill_queue_depth", "Results waiting for the write-behind spiller.", nil,
		func() float64 { return float64(len(m.spill)) })
	reg.GaugeFunc("easypapd_uptime_seconds", "Seconds since the manager started.", nil,
		func() float64 { return time.Since(m.start).Seconds() })
	return o
}

// Metrics returns the manager's registry, so the HTTP layer mounts
// GET /metrics and the cluster layer registers its own series.
func (m *Manager) Metrics() *metrics.Registry { return m.obs.reg }

// Spans returns the manager's service-span ring.
func (m *Manager) Spans() *trace.SpanRing { return m.obs.spans }

// SetNodeName labels all subsequently recorded spans with the cluster
// node id, so merged span trees name every node involved. Single-node
// daemons keep the default "local".
func (m *Manager) SetNodeName(name string) { m.nodeName.Store(name) }

// NodeName returns the span node label.
func (m *Manager) NodeName() string {
	if v := m.nodeName.Load(); v != nil {
		return v.(string)
	}
	return "local"
}

// RecordSpan files a service span into the ring, stamping the node name
// (and KindService semantics: wall-clock unix-ns timestamps). The
// cluster layer calls this for proxy/replicate spans.
func (m *Manager) RecordSpan(s trace.Span) {
	if s.Node == "" {
		s.Node = m.NodeName()
	}
	m.obs.spans.Record(s)
}

// span is the manager-internal convenience: record a stage span for a
// job between two wall-clock instants, and feed the matching histogram.
func (m *Manager) span(h *metrics.Histogram, traceID, jobID, stage string, start, end time.Time, err error) {
	d := end.Sub(start).Nanoseconds()
	if h != nil {
		h.Observe(d)
	}
	if traceID == "" {
		return
	}
	s := trace.Span{
		TraceID: traceID, Job: jobID, Node: m.NodeName(), Stage: stage,
		Start: start.UnixNano(), End: end.UnixNano(),
	}
	if err != nil {
		s.Err = err.Error()
	}
	m.obs.spans.Record(s)
}

// TraceIDOf resolves a job id to its trace id: from the live job record
// when the job is still in history, falling back to the span ring.
func (m *Manager) TraceIDOf(id string) string {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok && j.traceID != "" {
		return j.traceID
	}
	return m.obs.spans.TraceIDOf(id)
}

// TraceDoc is the GET /v1/trace/{job} body: every node's service spans
// for one trace id, nested by containment.
type TraceDoc struct {
	TraceID string            `json:"trace_id"`
	Job     string            `json:"job"`
	Nodes   []string          `json:"nodes"`
	Spans   []*trace.SpanNode `json:"spans"`
}

// BuildTraceDoc assembles a TraceDoc from a flat span set.
func BuildTraceDoc(traceID, job string, spans []trace.Span) *TraceDoc {
	seen := make(map[string]bool)
	var nodes []string
	for _, s := range spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			nodes = append(nodes, s.Node)
		}
	}
	return &TraceDoc{TraceID: traceID, Job: job, Nodes: nodes, Spans: trace.NestSpans(spans)}
}

// Trace returns the local span tree for a job id (ErrUnknownJob when the
// job is not in history and no spans mention it).
func (m *Manager) Trace(id string) (*TraceDoc, error) {
	traceID := m.TraceIDOf(id)
	if traceID == "" {
		return nil, ErrUnknownJob
	}
	return BuildTraceDoc(traceID, id, m.obs.spans.ForTrace(traceID)), nil
}

// SpansForTrace returns the local spans recorded for a trace id — the
// per-node half of the cluster's merged trace endpoint.
func (m *Manager) SpansForTrace(traceID string) []trace.Span {
	return m.obs.spans.ForTrace(traceID)
}
