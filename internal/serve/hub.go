package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
)

// FrameHub is a bounded broadcast hub for one job's encoded frame stream.
//
// The run loop publishes records (via hubSink); any number of subscribers
// read them, each through an independent cursor. The hub keeps a bounded
// ring of records — bounded in records and bytes, not stream length — so
// a long-running job cannot pin its whole history in memory. A subscriber
// that falls off the back of the ring (slow or stalled) is skipped
// forward to the latest keyframe and counted, instead of stalling the
// writer or pinning evicted records: per-subscriber backpressure never
// propagates to the compute loop or to other subscribers.
//
// Every record carries its full-frame encoding, and optionally a delta
// encoding (dirty-tile patch, see gfx/delta.go). A subscriber chooses a
// gfx.StreamFormat at Subscribe time: FormatFull readers get the
// golden-pinned EZFRAME stream; FormatDelta readers get EZFRAME keyframes
// with EZDELTA records in between. Delta readers are only handed a
// window's records once synced on one of its keyframes — after a
// drop-to-keyframe they silently skip delta records until the window's
// next keyframe.
type FrameHub struct {
	opts HubOptions

	mu       sync.Mutex
	notify   chan struct{} // closed and replaced on every publish/close
	ring     []hubRecord   // ring[i] has sequence firstSeq+i
	firstSeq uint64
	nextSeq  uint64
	bytes    int64 // sum of encoded sizes in ring
	closed   bool
}

// hubRecord is one published frame record.
type hubRecord struct {
	window string
	key    bool   // independently decodable in a delta stream
	full   []byte // EZFRAME wire bytes
	delta  []byte // EZDELTA wire bytes, nil for keyframes
}

// HubOptions bounds and tunes a FrameHub. The zero value gets defaults.
type HubOptions struct {
	// MaxRecords bounds the ring length (default 1024 — large enough that
	// a short job's full stream stays replayable for late subscribers).
	MaxRecords int
	// MaxBytes bounds the summed encoded size of the ring (default
	// 64 MiB).
	MaxBytes int64
	// KeyframeEvery is the per-window keyframe cadence of the delta
	// encoding: one keyframe every n frames (default 32). The first frame
	// of a window is always a keyframe.
	KeyframeEvery int
	// Stats, when non-nil, receives the hub's counters (shared across
	// hubs: the manager aggregates all jobs into one HubStats).
	Stats *HubStats
}

func (o HubOptions) withDefaults() HubOptions {
	if o.MaxRecords <= 0 {
		o.MaxRecords = 1024
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.KeyframeEvery <= 0 {
		o.KeyframeEvery = 32
	}
	return o
}

// HubStats aggregates frame-hub counters across hubs. All fields are
// atomics sampled by /v1/stats and /metrics.
type HubStats struct {
	Subscribers    atomic.Int64 // currently attached subscribers (gauge)
	DroppedToKey   atomic.Int64 // subscriber catch-ups that skipped records
	PostCloseDrops atomic.Int64 // publishes dropped because the hub was closed
	FullBytes      atomic.Int64 // full-frame encoded bytes published
	DeltaBytes     atomic.Int64 // bytes a delta subscriber receives instead
}

// ErrHubClosed is returned by Publish after Close: the run loop must not
// produce frames readers already saw EOF for.
var ErrHubClosed = errors.New("serve: frame hub closed")

// NewFrameHub returns an empty open hub.
func NewFrameHub(opts HubOptions) *FrameHub {
	return &FrameHub{opts: opts.withDefaults(), notify: make(chan struct{})}
}

// Publish appends one record to the ring, evicting from the front to keep
// the configured bounds, and wakes all subscribers. delta may be nil (the
// record then costs delta readers its full encoding too). Publishing on a
// closed hub drops the record, counts it, and returns ErrHubClosed.
func (h *FrameHub) Publish(window string, key bool, full, delta []byte) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		if s := h.opts.Stats; s != nil {
			s.PostCloseDrops.Add(1)
		}
		return ErrHubClosed
	}
	h.ring = append(h.ring, hubRecord{window: window, key: key, full: full, delta: delta})
	h.nextSeq++
	h.bytes += int64(len(full) + len(delta))
	for (len(h.ring) > h.opts.MaxRecords || h.bytes > h.opts.MaxBytes) && len(h.ring) > 1 {
		ev := h.ring[0]
		h.bytes -= int64(len(ev.full) + len(ev.delta))
		h.ring[0] = hubRecord{}
		h.ring = h.ring[1:]
		h.firstSeq++
	}
	close(h.notify)
	h.notify = make(chan struct{})
	h.mu.Unlock()
	if s := h.opts.Stats; s != nil {
		s.FullBytes.Add(int64(len(full)))
		if delta != nil {
			s.DeltaBytes.Add(int64(len(delta)))
		} else {
			s.DeltaBytes.Add(int64(len(full)))
		}
	}
	return nil
}

// Close marks the stream complete and wakes all subscribers; they drain
// the ring and then see io.EOF. Close is idempotent.
func (h *FrameHub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.notify)
		h.notify = make(chan struct{})
	}
	h.mu.Unlock()
}

// Subscribe attaches a new cursor positioned at the oldest retained
// record. The reader's Read unblocks with ctx.Err() when ctx is canceled
// (a disconnected HTTP client no longer parks a goroutine until job end).
// The caller must Close the reader to release its subscriber slot.
func (h *FrameHub) Subscribe(ctx context.Context, format gfx.StreamFormat) *HubReader {
	if s := h.opts.Stats; s != nil {
		s.Subscribers.Add(1)
	}
	h.mu.Lock()
	seq := h.firstSeq
	h.mu.Unlock()
	return &HubReader{
		h:      h,
		ctx:    ctx,
		format: format,
		seq:    seq,
		synced: make(map[string]bool),
	}
}

// HubReader is one subscriber's cursor. It implements io.ReadCloser;
// Read returns io.EOF only after the hub closed and the cursor drained.
type HubReader struct {
	h      *FrameHub
	ctx    context.Context
	format gfx.StreamFormat
	seq    uint64          // next sequence number to deliver
	synced map[string]bool // delta format: windows synced on a keyframe
	cur    []byte          // undelivered tail of the current record
	err    error           // sticky terminal error
	closed bool
}

// Read implements io.Reader.
func (r *HubReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if len(r.cur) == 0 {
		rec, err := r.next()
		if err != nil {
			r.err = err
			return 0, err
		}
		r.cur = rec
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// next blocks until a deliverable record is available and returns its
// encoding in the subscriber's format.
func (r *HubReader) next() ([]byte, error) {
	h := r.h
	for {
		h.mu.Lock()
		if r.seq < h.firstSeq {
			// Fell off the back of the ring: skip forward to the latest
			// sync point rather than the oldest survivor — a stalled viewer
			// wants "now", not a doomed chase through the backlog.
			r.resyncLocked()
		}
		for r.seq < h.nextSeq {
			rec := &h.ring[r.seq-h.firstSeq]
			r.seq++
			if enc, ok := r.deliverable(rec); ok {
				h.mu.Unlock()
				return enc, nil
			}
		}
		if h.closed {
			h.mu.Unlock()
			return nil, io.EOF
		}
		notify := h.notify
		h.mu.Unlock()
		select {
		case <-notify:
		case <-r.ctx.Done():
			return nil, r.ctx.Err()
		}
	}
}

// resyncLocked repositions a lapped cursor at the newest record that can
// restart its stream (for delta readers, the newest keyframe; for full
// readers, the newest record) and resets delta sync state.
func (r *HubReader) resyncLocked() {
	h := r.h
	if s := h.opts.Stats; s != nil {
		s.DroppedToKey.Add(1)
	}
	target := h.firstSeq
	if r.format == gfx.FormatDelta {
		clear(r.synced)
		for i := len(h.ring) - 1; i >= 0; i-- {
			if h.ring[i].key {
				target = h.firstSeq + uint64(i)
				break
			}
		}
	} else if len(h.ring) > 0 {
		target = h.nextSeq - 1
	}
	r.seq = target
}

// deliverable returns the record's bytes in the reader's format, or false
// when the record must be skipped (a delta for a window not yet synced).
func (r *HubReader) deliverable(rec *hubRecord) ([]byte, bool) {
	if r.format != gfx.FormatDelta {
		return rec.full, true
	}
	if rec.key {
		r.synced[rec.window] = true
		return rec.full, true
	}
	if !r.synced[rec.window] || rec.delta == nil {
		// No delta encoding (e.g. a monitor window frame or an eager
		// kernel's frame): it is only safe to show when synced, and it is
		// its own sync point only if flagged key. Non-key records without a
		// delta carry the full encoding for synced readers.
		if r.synced[rec.window] && rec.delta == nil {
			return rec.full, true
		}
		return nil, false
	}
	return rec.delta, true
}

// Close releases the subscriber slot. Subsequent Reads fail.
func (r *HubReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.err == nil {
		r.err = errors.New("serve: hub reader closed")
	}
	if s := r.h.opts.Stats; s != nil {
		s.Subscribers.Add(-1)
	}
	return nil
}

// hubSink adapts a FrameHub to the run loop's gfx.FrameSink (and
// gfx.DirtySink): it encodes each frame once into its wire records and
// publishes them. For dirty-frame deliveries outside the keyframe cadence
// it additionally encodes the EZDELTA patch, unless the patch would not
// actually be smaller than the keyframe.
//
// The kernel's dirty set is its dispatch frontier — every tile it
// *visited*, i.e. the 3x3 tile neighbourhood of last iteration's changes.
// Most visited tiles end up unchanged, so the sink keeps the previously
// published image per window and narrows the patch to tiles whose pixels
// actually differ (the diff only scans the dispatched tiles, O(active)).
type hubSink struct {
	h *FrameHub

	mu     sync.Mutex // MPI ranks share the sink via core's lockedSink; be safe anyway
	counts map[string]int
	prev   map[string]*img2d.Image // last published frame per window
}

func newHubSink(h *FrameHub) *hubSink {
	return &hubSink{h: h, counts: make(map[string]int), prev: make(map[string]*img2d.Image)}
}

// Frame implements gfx.FrameSink: a full frame with no dirty information
// is always a keyframe.
func (s *hubSink) Frame(window string, iter int, img *img2d.Image) error {
	return s.frame(window, iter, img, nil)
}

// FrameDirty implements gfx.DirtySink.
func (s *hubSink) FrameDirty(window string, iter int, img *img2d.Image, dirty *gfx.TileSet) error {
	return s.frame(window, iter, img, dirty)
}

func (s *hubSink) frame(window string, iter int, img *img2d.Image, dirty *gfx.TileSet) error {
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		return err
	}
	full, err := gfx.EncodeFrameRecord(window, iter, buf.Bytes())
	if err != nil {
		return err
	}

	s.mu.Lock()
	n := s.counts[window]
	s.counts[window]++
	prev := s.prev[window]
	s.prev[window] = img.Clone()
	s.mu.Unlock()

	every := s.h.opts.KeyframeEvery
	key := dirty == nil || prev == nil || n == 0 || n%every == 0
	var delta []byte
	if !key {
		changed := changedTiles(img, prev, dirty)
		payload, err := gfx.EncodeDelta(img, changed)
		if err != nil {
			return err
		}
		rec, err := gfx.EncodeDeltaRecord(window, iter, payload)
		if err != nil {
			return err
		}
		if len(rec) < len(full) {
			delta = rec
		} else {
			key = true // the patch is no cheaper; keyframe instead
		}
	}
	return s.h.Publish(window, key, full, delta)
}

// changedTiles narrows a dispatch frontier to the tiles whose pixels
// actually differ between prev and img. Pixels outside the dispatched
// tiles are unchanged by the frontier no-copy invariant, so the scan
// touches dispatched tiles only.
func changedTiles(img, prev *img2d.Image, dirty *gfx.TileSet) *gfx.TileSet {
	out := &gfx.TileSet{TilesX: dirty.TilesX, TilesY: dirty.TilesY,
		TileW: dirty.TileW, TileH: dirty.TileH}
	for _, t := range dirty.Tiles {
		tx, ty := int(t)%dirty.TilesX, int(t)/dirty.TilesX
		x0, y0 := tx*dirty.TileW, ty*dirty.TileH
	scan:
		for y := y0; y < y0+dirty.TileH; y++ {
			a, b := img.Row(y)[x0:x0+dirty.TileW], prev.Row(y)[x0:x0+dirty.TileW]
			for i := range a {
				if a[i] != b[i] {
					out.Tiles = append(out.Tiles, t)
					break scan
				}
			}
		}
	}
	return out
}

// Close implements gfx.FrameSink. The hub itself is closed by the job's
// terminal path (manager.finish), not by the sink: the sink closing only
// means the run loop stopped rendering.
func (s *hubSink) Close() error { return nil }
