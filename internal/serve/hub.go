package serve

import (
	"io"
	"sync"
)

// frameHub buffers a job's encoded frame stream (gfx stream records) and
// lets any number of late or live subscribers read it from the beginning.
// The run loop writes through it as an io.Writer; HTTP handlers attach a
// reader per request. Jobs are finite and frames are kept for the job's
// lifetime, so the buffer is append-only — a subscriber is just an offset.
type frameHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newFrameHub() *frameHub {
	h := &frameHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Write implements io.Writer for the run's StreamSink.
func (h *frameHub) Write(p []byte) (int, error) {
	h.mu.Lock()
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	h.mu.Unlock()
	return len(p), nil
}

// closeHub marks the stream complete and wakes all subscribers.
func (h *frameHub) closeHub() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// reader returns a new subscriber positioned at the start of the stream.
func (h *frameHub) reader() *hubReader { return &hubReader{h: h} }

// hubReader streams the hub's bytes, blocking until more are written or
// the hub closes. It satisfies io.Reader; Read returns io.EOF only after
// the hub is closed and fully drained.
type hubReader struct {
	h   *frameHub
	off int
}

func (r *hubReader) Read(p []byte) (int, error) {
	h := r.h
	h.mu.Lock()
	defer h.mu.Unlock()
	for r.off >= len(h.buf) && !h.closed {
		h.cond.Wait()
	}
	if r.off >= len(h.buf) {
		return 0, io.EOF
	}
	n := copy(p, h.buf[r.off:])
	r.off += n
	return n, nil
}
