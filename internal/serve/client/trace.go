package client

import (
	"context"
	"fmt"
	"strings"
	"time"

	"easypap/internal/serve"
	"easypap/internal/trace"
)

// Trace fetches the span tree for a job (GET /v1/trace/{id}). Against a
// clustered daemon the answer is the merged cluster-wide tree; a plain
// daemon answers from its local span ring.
func (c *Client) Trace(ctx context.Context, id string) (*serve.TraceDoc, error) {
	var doc serve.TraceDoc
	if err := c.getJSON(ctx, "/v1/trace/"+id, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Trace fetches a job's merged span tree through the first endpoint that
// answers, preferring the client that accepted the submission (cluster
// job ids resolve from any member, but the entry node is the cheapest).
func (m *Multi) Trace(ctx context.Context, id string, preferred *Client) (*serve.TraceDoc, error) {
	cands := m.snapshotClients(m.rr.Add(1))
	if preferred != nil {
		ordered := []*Client{preferred}
		for _, c := range cands {
			if c != preferred {
				ordered = append(ordered, c)
			}
		}
		cands = ordered
	}
	var lastErr error
	for _, c := range cands {
		doc, err := c.Trace(ctx, id)
		if err == nil {
			return doc, nil
		}
		if !transient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: every endpoint failed fetching trace for %s: %w", id, lastErr)
}

// FormatTrace renders a span tree as indented text, one span per line:
//
//	trace 1f6e0a9c…  job n1a2b3c4.j-000017  nodes: n1a2b3c4, n5d6e7f8
//	[n1a2b3c4] admit                               41µs
//	[n1a2b3c4] └ proxy → n5d6e7f8               12.3ms
//	[n5d6e7f8] admit                              1.1ms
//	[n5d6e7f8] └ queue                            310µs
//
// Cross-node causality shows as → edges (Span.Peer), not indentation;
// indentation is same-node containment.
//
// Runs of identical leaf siblings — the sampled per-iteration halo spans
// of a distributed job are the canonical case — collapse into one line
// ("halo ×16" with their summed duration), so a sharded job's trace
// stays a screenful instead of a scroll.
func FormatTrace(doc *serve.TraceDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  job %s  nodes: %s\n",
		doc.TraceID, doc.Job, strings.Join(doc.Nodes, ", "))
	if len(doc.Spans) == 0 {
		b.WriteString("  (no spans recorded)\n")
		return b.String()
	}
	emit := func(s trace.Span, depth, count int, total time.Duration) {
		label := s.Stage
		if s.Peer != "" {
			label += " → " + s.Peer
		}
		if count > 1 {
			label += fmt.Sprintf(" ×%d", count)
		}
		indent := strings.Repeat("  ", depth)
		if depth > 0 {
			indent = strings.Repeat("  ", depth-1) + "└ "
		}
		line := fmt.Sprintf("[%s] %s%s", s.Node, indent, label)
		fmt.Fprintf(&b, "%-44s %10s", line, formatDur(total))
		if s.Err != "" {
			fmt.Fprintf(&b, "  !%s", s.Err)
		}
		b.WriteByte('\n')
	}
	// collapsible marks leaf siblings that may merge into one ×N line:
	// same node, same stage, same peer, no error, no children.
	collapsible := func(n *trace.SpanNode) bool {
		return len(n.Children) == 0 && n.Span.Err == "" && n.Span.Peer == ""
	}
	var walk func(n *trace.SpanNode, depth int)
	walkChildren := func(kids []*trace.SpanNode, depth int) {
		for i := 0; i < len(kids); {
			n := kids[i]
			if collapsible(n) {
				count, total := 0, time.Duration(0)
				j := i
				for ; j < len(kids); j++ {
					k := kids[j]
					if !collapsible(k) || k.Span.Stage != n.Span.Stage || k.Span.Node != n.Span.Node {
						break
					}
					count++
					total += k.Span.Duration()
				}
				if count > 1 {
					emit(n.Span, depth, count, total)
					i = j
					continue
				}
			}
			walk(n, depth)
			i++
		}
	}
	walk = func(n *trace.SpanNode, depth int) {
		emit(n.Span, depth, 1, n.Span.Duration())
		walkChildren(n.Children, depth+1)
	}
	walkChildren(doc.Spans, 0)
	return b.String()
}

// formatDur rounds a duration to three significant-ish digits so columns
// stay narrow (1.234567ms → 1.234ms).
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(time.Nanosecond).String()
	}
	return d.String()
}
