package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"easypap/internal/serve"
	"easypap/internal/trace"
)

// testDoc builds a two-node trace: entry proxies to an owner that
// queues and computes.
func testDoc() *serve.TraceDoc {
	spans := []trace.Span{
		{TraceID: "t1", Job: "j-1", Node: "n-entry", Stage: serve.StageAdmit, Start: 0, End: 100_000},
		{TraceID: "t1", Job: "j-1", Node: "n-entry", Stage: serve.StageProxy, Peer: "n-owner", Start: 10_000, End: 90_000},
		{TraceID: "t1", Job: "j-1", Node: "n-owner", Stage: serve.StageAdmit, Start: 20_000, End: 80_000},
		{TraceID: "t1", Job: "j-1", Node: "n-owner", Stage: serve.StageQueue, Start: 25_000, End: 40_000},
		{TraceID: "t1", Job: "j-1", Node: "n-owner", Stage: serve.StageCompute, Start: 40_000, End: 78_000,
			Err: "kernel exploded"},
	}
	return serve.BuildTraceDoc("t1", "n-owner.j-1", spans)
}

func TestClientTrace(t *testing.T) {
	want := testDoc()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/trace/n-owner.j-1" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer srv.Close()

	doc, err := New(srv.URL).Trace(context.Background(), "n-owner.j-1")
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != "t1" || len(doc.Nodes) != 2 {
		t.Fatalf("decoded doc %+v", doc)
	}
	if _, err := New(srv.URL).Trace(context.Background(), "j-404"); err == nil {
		t.Fatal("unknown job did not error")
	}
}

func TestMultiTraceFailover(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(testDoc())
	}))
	defer good.Close()

	m := NewMulti(dead.URL, good.URL)
	doc, err := m.Trace(context.Background(), "n-owner.j-1", m.clients[0])
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != "t1" {
		t.Fatalf("failover fetched %+v", doc)
	}
}

func TestFormatTrace(t *testing.T) {
	out := FormatTrace(testDoc())
	for _, want := range []string{
		"trace t1",
		"job n-owner.j-1",
		"n-entry, n-owner",
		"proxy → n-owner",
		"└ queue",
		"!kernel exploded",
		"38µs", // the compute span: 78_000 - 40_000 ns
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTrace output missing %q:\n%s", want, out)
		}
	}
	// Containment: queue is indented under the owner's admit span.
	if strings.Index(out, "admit") > strings.Index(out, "└ queue") {
		t.Errorf("child rendered before any parent:\n%s", out)
	}

	empty := FormatTrace(&serve.TraceDoc{TraceID: "t2", Job: "j-9"})
	if !strings.Contains(empty, "no spans") {
		t.Errorf("empty doc rendering: %q", empty)
	}
}
