package client

// Scripted-daemon tests of the client's restart-riding behavior: a job
// that ends "interrupted" (its daemon restarted mid-job without
// re-enqueueing it) must be resubmitted automatically by RunConfig —
// both the single-endpoint Client and the cluster-aware Multi — so
// expt.Sweep studies survive daemon deploys without user intervention.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/serve"
)

// scriptedDaemon fakes the /v1 surface: the first submission is
// accepted then reported interrupted (the restart happened under it);
// the second submission — the client's automatic retry — completes.
type scriptedDaemon struct {
	submits atomic.Int64
	polls   atomic.Int64
}

func (d *scriptedDaemon) handler(t *testing.T) http.Handler {
	result := core.Result{
		Config:     core.Config{Kernel: "mandel", Variant: "seq", Dim: 64},
		WallTime:   42 * time.Millisecond,
		Iterations: 3,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := d.submits.Add(1)
		if n == 1 {
			serve.WriteJSON(w, http.StatusAccepted, serve.JobStatus{
				ID: "j-000001", State: serve.JobQueued,
			})
			return
		}
		serve.WriteJSON(w, http.StatusOK, serve.JobStatus{
			ID: "j-000002", State: serve.JobDone, Cached: true, DiskHit: true,
			Result: &result,
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		d.polls.Add(1)
		serve.WriteJSON(w, http.StatusOK, serve.JobStatus{
			ID: r.PathValue("id"), State: serve.JobInterrupted, Recovered: true,
			Error: "daemon restarted while the job was queued or running",
		})
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteError(w, http.StatusNotFound, errNotClustered)
	})
	return mux
}

var errNotClustered = jsonErr("not clustered")

type jsonErr string

func (e jsonErr) Error() string { return string(e) }

func TestClientResubmitsInterruptedJob(t *testing.T) {
	d := &scriptedDaemon{}
	srv := httptest.NewServer(d.handler(t))
	defer srv.Close()

	c := New(srv.URL)
	c.Poll = time.Millisecond
	res, err := c.RunConfig(core.Config{Kernel: "mandel", Dim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("got result %+v", res)
	}
	if got := d.submits.Load(); got != 2 {
		t.Fatalf("daemon saw %d submissions, want 2 (original + resubmit)", got)
	}
}

func TestMultiResubmitsInterruptedJob(t *testing.T) {
	d := &scriptedDaemon{}
	srv := httptest.NewServer(d.handler(t))
	defer srv.Close()

	m := NewMulti(srv.URL)
	res, err := m.RunConfig(core.Config{Kernel: "mandel", Dim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("got result %+v", res)
	}
	if got := d.submits.Load(); got != 2 {
		t.Fatalf("daemon saw %d submissions, want 2 (original + resubmit)", got)
	}
}

// TestClientGivesUpAfterRepeatedInterrupts pins the retry bound: a
// daemon stuck in a crash loop must surface an error, not hang a sweep.
func TestClientGivesUpAfterRepeatedInterrupts(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := submits.Add(1)
		_ = json.NewDecoder(r.Body).Decode(&struct{}{})
		serve.WriteJSON(w, http.StatusOK, serve.JobStatus{
			ID: "j-00000" + string(rune('0'+n)), State: serve.JobInterrupted,
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL)
	c.Poll = time.Millisecond
	if _, err := c.RunConfig(core.Config{Kernel: "mandel", Dim: 64}); err == nil {
		t.Fatal("crash-looping daemon did not surface an error")
	}
	if got := submits.Load(); got != 3 {
		t.Fatalf("client tried %d times, want exactly 3", got)
	}
}
