// Package client is the Go client for the easypapd compute service
// (internal/serve). Beyond the obvious verb-per-endpoint methods it
// implements the expt.Runner contract (RunConfig), which is how a
// parameter sweep fans its runs out to a daemon instead of executing
// in-process — the first multi-backend path in the repo.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"easypap/internal/core"
	"easypap/internal/gfx"
	"easypap/internal/img2d"
	"easypap/internal/serve"
)

// Client talks to one daemon. The zero HTTP client uses
// http.DefaultClient; Base is e.g. "http://127.0.0.1:8080".
type Client struct {
	Base string
	HTTP *http.Client

	// Poll is the status polling interval of Wait/RunConfig (default
	// 20ms — jobs on a local daemon finish in milliseconds).
	Poll time.Duration
}

// New returns a client for the daemon at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 20 * time.Millisecond
}

// APIError is a non-2xx daemon response: the endpoint is alive and
// answered, it just said no. Failover logic uses the distinction — a
// transport error means "try the next endpoint", a 400 means the config
// is bad everywhere.
type APIError struct {
	StatusCode int    // HTTP status code
	Status     string // HTTP status line, e.g. "404 Not Found"
	Message    string // decoded {"error": ...} body, possibly empty
	// RetryAfter is the server's Retry-After hint (0 when absent) — on a
	// 429 the daemon says when its bounded queue is worth retrying, and
	// the retry paths honor it instead of guessing.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: daemon returned %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("client: daemon returned %s", e.Status)
}

// apiError decodes the {"error": ...} body of a non-2xx response.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	e := &APIError{StatusCode: resp.StatusCode, Status: resp.Status}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(ra); err == nil {
			e.RetryAfter = time.Until(at)
		}
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		e.Message = body.Error
	}
	return e
}

// retryDelay computes the wait before retry attempt a (0-based):
// exponential backoff with full jitter — delay drawn uniformly from
// (0, 25ms<<a], capped at ~1.6s — so a herd of clients bounced by the
// same overloaded daemon spreads out instead of stampeding back in
// phase. A server-provided Retry-After hint (429) takes precedence
// when longer: the daemon knows its queue better than our guess.
func retryDelay(err error, attempt int) time.Duration {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := 25 * time.Millisecond << shift
	d := time.Duration(rand.Int64N(int64(base))) + time.Millisecond
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// sleepRetry waits the retry delay or until ctx expires.
func sleepRetry(ctx context.Context, err error, attempt int) {
	t := time.NewTimer(retryDelay(err, attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// isStatus reports whether err is an APIError with the given code.
func isStatus(err error, code int) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == code
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a job; with frames=true the daemon keeps a live frame
// stream readable via Frames. A cache hit returns an already-done status.
func (c *Client) Submit(ctx context.Context, cfg core.Config, frames bool) (*serve.JobStatus, error) {
	return c.SubmitShards(ctx, cfg, frames, 0)
}

// SubmitShards is Submit with a requested shard count: against a
// clustered daemon, shards > 1 asks for distributed execution of the
// (mpi-variant) job across up to that many nodes. Advisory — a daemon
// that cannot shard runs the job locally. A job that fails with
// ErrorKind "shard_failed" (a shard node died mid-run) should be
// resubmitted unsharded; ShardFailed and RunConfigSharded wrap that
// protocol.
func (c *Client) SubmitShards(ctx context.Context, cfg core.Config, frames bool, shards int) (*serve.JobStatus, error) {
	payload, err := json.Marshal(serve.SubmitRequest{Config: cfg, Frames: frames, Shards: shards})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*serve.JobStatus, error) {
	var st serve.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (*serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (*serve.JobStatus, error) {
	ticker := time.NewTicker(c.poll())
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*serve.Stats, error) {
	var s serve.Stats
	if err := c.getJSON(ctx, "/v1/stats", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Kernels lists the daemon's registered kernels.
func (c *Client) Kernels(ctx context.Context) ([]serve.KernelInfo, error) {
	var ks []serve.KernelInfo
	if err := c.getJSON(ctx, "/v1/kernels", &ks); err != nil {
		return nil, err
	}
	return ks, nil
}

// Frames streams the job's frames, invoking fn for each decoded record
// until the stream ends, fn returns false, or ctx expires.
func (c *Client) Frames(ctx context.Context, id string, fn func(f *gfx.StreamFrame) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/frames", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	for {
		f, err := gfx.ReadFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(f) {
			return nil
		}
	}
}

// FramesDelta streams the job's frames in the bandwidth-saving delta
// format (?format=delta: periodic keyframes plus dirty-tile patch
// records) and reassembles every record into the window's full image
// before invoking fn. The image passed to fn aliases the reassembler's
// per-window state: it is valid until fn returns false or the next
// record of the same window. Semantically equivalent to Frames — same
// windows, same iterations, byte-identical pixels — just cheaper on the
// wire for sparse kernels.
func (c *Client) FramesDelta(ctx context.Context, id string, fn func(window string, iter int, img *img2d.Image) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/jobs/"+id+"/frames?format="+string(gfx.FormatDelta), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", serve.FramesDeltaContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	ra := gfx.NewReassembler()
	for {
		rec, err := gfx.ReadRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		img, err := ra.Apply(rec)
		if err != nil {
			return err
		}
		if !fn(rec.Window, rec.Iter, img) {
			return nil
		}
	}
}

// RunConfig submits cfg, waits for completion, and returns the result —
// the expt.Runner contract. Failed and canceled jobs surface as errors.
// A job that comes back "interrupted" — the daemon restarted mid-job and
// did not re-enqueue it — is resubmitted automatically (with jittered
// backoff between attempts), so a parameter sweep rides through a
// daemon deploy instead of dying with it. A 429 — the daemon's bounded
// queue is full — is retried after the server's Retry-After hint plus
// jitter, bounded separately so a merely busy daemon is not treated
// like a crash-looping one.
func (c *Client) RunConfig(cfg core.Config) (core.Result, error) {
	ctx := context.Background()
	var last *serve.JobStatus
	throttled := 0
	for attempt := 0; attempt < 3; attempt++ {
		st, err := c.Submit(ctx, cfg, false)
		if isStatus(err, http.StatusTooManyRequests) && throttled < 5 {
			sleepRetry(ctx, err, throttled)
			throttled++
			attempt-- // a full queue is not a lost job
			continue
		}
		if err != nil {
			return core.Result{}, err
		}
		if !st.State.Terminal() {
			if st, err = c.Wait(ctx, st.ID); err != nil {
				return core.Result{}, err
			}
		}
		if st.State == serve.JobInterrupted {
			last = st
			sleepRetry(ctx, nil, attempt)
			continue // the daemon restarted under us: resubmit
		}
		if st.State != serve.JobDone || st.Result == nil {
			return core.Result{}, fmt.Errorf("client: job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		return *st.Result, nil
	}
	return core.Result{}, fmt.Errorf("client: job %s interrupted repeatedly: %s", last.ID, last.Error)
}

// ShardFailed reports whether a terminal status is a typed
// shard-execution failure: the distributed run lost a node, and the same
// config is expected to succeed resubmitted unsharded.
func ShardFailed(st *serve.JobStatus) bool {
	return st != nil && st.State == serve.JobFailed && st.ErrorKind == serve.ErrorKindShardFailed
}

// RunConfigSharded submits cfg for distributed execution across shards
// nodes, waits, and returns the terminal status. When the sharded run
// fails with the typed shard-failure kind — a participant died or
// partitioned mid-job — the job is resubmitted unsharded, which cannot
// lose a peer; any other failure is returned as-is. The fallback is
// correct because sharding never changes results (byte-identical by
// construction) or cache keys.
func (c *Client) RunConfigSharded(ctx context.Context, cfg core.Config, shards int) (*serve.JobStatus, error) {
	st, err := c.SubmitShards(ctx, cfg, false, shards)
	if err != nil {
		return nil, err
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	if !ShardFailed(st) {
		return st, nil
	}
	// Typed shard failure: same config, unsharded. The result cache is
	// keyed identically, so nothing about the retry is special.
	st, err = c.Submit(ctx, cfg, false)
	if err != nil {
		return nil, err
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	return st, nil
}
