package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/cluster"
)

// Multi talks to a whole cluster: it accepts multiple daemon endpoints,
// fans submissions across them round-robin, and — once it has fetched
// the ring from any member (GET /v1/cluster) — routes each submission
// straight to the node that owns its config hash, saving the daemon-side
// proxy hop. Endpoints that fail are skipped in favor of the next one,
// so a sweep keeps going when a node dies mid-run.
//
// The routing table is LIVE: the membership the daemons maintain by
// gossip is re-fetched when it goes stale (RingMaxAge) and immediately
// after a failed attempt, so a sweep follows deaths, joins and
// recoveries instead of routing on a boot-time snapshot. Members the
// gossip layer has declared dead are left off the client-side ring.
// Only a definite "not clustered" answer (404 from a plain single-node
// daemon) pins round-robin mode.
//
// Multi implements expt.Runner, which is how expt.Sweep.Remote fans a
// parameter study across the cluster.
type Multi struct {
	rr atomic.Uint64 // round-robin cursor

	mu      sync.RWMutex
	clients []*Client          // the configured endpoints, fixed order
	byID    map[string]*Client // ring node id -> client (after RefreshRing)
	alive   map[string]bool    // ring node id -> last seen alive (not suspect)
	ring    *cluster.Ring

	lastRefresh  atomic.Int64 // unix nanos of the last ring refresh attempt
	notClustered atomic.Bool  // a member answered 404: plain daemon, stay round-robin
}

// RingMaxAge is how stale the client-side ring may get before the next
// submission re-fetches it (time-based refresh; failures refresh
// immediately).
const RingMaxAge = 2 * time.Second

// NewMulti returns a client over the given daemon base URLs. At least
// one endpoint is required for any call to succeed; the ring is fetched
// lazily on first RunConfig (or explicitly via RefreshRing).
func NewMulti(bases ...string) *Multi {
	m := &Multi{byID: make(map[string]*Client)}
	for _, b := range bases {
		m.clients = append(m.clients, New(b))
	}
	return m
}

// Endpoints returns the configured base URLs.
func (m *Multi) Endpoints() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, len(m.clients))
	for i, c := range m.clients {
		out[i] = c.Base
	}
	return out
}

// RefreshRing fetches the membership view from the first endpoint that
// answers and rebuilds the hash-aware routing table. Against a
// single-node daemon (no cluster layer) every endpoint 404s and Multi
// stays in round-robin mode — that is not an error condition worth
// failing a sweep over, so only transport-level failure of every
// endpoint is returned.
func (m *Multi) RefreshRing(ctx context.Context) error {
	m.lastRefresh.Store(time.Now().UnixNano())
	var lastErr error
	for _, c := range m.snapshotClients(m.rr.Add(1)) {
		var mem cluster.Membership
		if err := c.getJSON(ctx, "/v1/cluster", &mem); err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) &&
				(apiErr.StatusCode == http.StatusNotFound || apiErr.StatusCode == http.StatusMethodNotAllowed) {
				m.notClustered.Store(true)
				return nil // alive but not clustered: round-robin mode
			}
			// Anything else (booting 503, transport failure, ...) says
			// nothing about whether the cluster exists — ask the next
			// endpoint rather than settling for hop-paying round-robin.
			lastErr = err
			continue
		}
		// Mirror the server-side ring: alive and suspect members route,
		// dead ones are off it (their entries moved to the successors).
		ids := make([]string, 0, len(mem.Members))
		byID := make(map[string]*Client, len(mem.Members))
		alive := make(map[string]bool, len(mem.Members))
		for _, mi := range mem.Members {
			if mi.State == "dead" {
				continue
			}
			ids = append(ids, mi.ID)
			alive[mi.ID] = mi.Healthy || mi.State == ""
			if c := m.clientFor(mi.URL); c != nil {
				byID[mi.ID] = c
			} else {
				byID[mi.ID] = New(mi.URL) // member we were not configured with
			}
		}
		ring := cluster.NewRing(ids, mem.VirtualNodes)
		m.mu.Lock()
		m.ring, m.byID, m.alive = ring, byID, alive
		m.mu.Unlock()
		return nil
	}
	return lastErr
}

// clientFor finds a configured client by base URL.
func (m *Multi) clientFor(base string) *Client {
	base = strings.TrimRight(base, "/")
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, c := range m.clients {
		if c.Base == base {
			return c
		}
	}
	return nil
}

// snapshotClients returns the configured clients rotated by offset, so
// successive calls spread load without shared state beyond the cursor.
func (m *Multi) snapshotClients(offset uint64) []*Client {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.clients)
	out := make([]*Client, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m.clients[(int(offset)+i)%n])
	}
	return out
}

// candidates orders the endpoints for one submission: the ring owner
// and its failover replicas first (when the ring is known and the
// config hashes), then the remaining configured endpoints round-robin.
func (m *Multi) candidates(cfg core.Config, frames bool) []*Client {
	m.mu.RLock()
	ring := m.ring
	m.mu.RUnlock()

	var out []*Client
	var lagging []*Client // suspect members: still routable, tried last
	seen := make(map[*Client]bool)
	if ring != nil {
		if _, _, key, err := cluster.RouteKey(cfg, frames); err == nil {
			for _, id := range ring.Replicas(key, 0) {
				m.mu.RLock()
				c, ok := m.byID[id], m.alive[id]
				m.mu.RUnlock()
				if c == nil || seen[c] {
					continue
				}
				seen[c] = true
				if ok {
					out = append(out, c)
				} else {
					lagging = append(lagging, c)
				}
			}
			out = append(out, lagging...)
		}
	}
	for _, c := range m.snapshotClients(m.rr.Add(1)) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// transient reports whether an error means "this endpoint is unusable
// right now, try another": transport failures and gateway/overload
// statuses. A 400 is final — the config is bad on every node.
func transient(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return true // transport-level: connection refused, reset, timeout
	}
	switch apiErr.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Submit sends a job to the best endpoint, failing over past dead or
// overloaded ones. It returns the status and the client that accepted
// the submission (subsequent Wait/Frames calls on cluster job ids work
// through any endpoint, but the accepting one is the cheapest).
func (m *Multi) Submit(ctx context.Context, cfg core.Config, frames bool) (*serve.JobStatus, *Client, error) {
	cands := m.candidates(cfg, frames)
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("client: no endpoints configured")
	}
	var lastErr error
	for _, c := range cands {
		st, err := c.Submit(ctx, cfg, frames)
		if err == nil {
			return st, c, nil
		}
		if !transient(err) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("client: every endpoint failed: %w", lastErr)
}

// Wait polls the job to a terminal state, preferring the given client
// and falling back to the other endpoints (cluster job ids route from
// anywhere). A nil preferred starts with round-robin order.
func (m *Multi) Wait(ctx context.Context, id string, preferred *Client) (*serve.JobStatus, error) {
	cands := m.snapshotClients(m.rr.Add(1))
	if preferred != nil {
		ordered := []*Client{preferred}
		for _, c := range cands {
			if c != preferred {
				ordered = append(ordered, c)
			}
		}
		cands = ordered
	}
	var lastErr error
	for _, c := range cands {
		st, err := c.Wait(ctx, id)
		if err == nil {
			return st, nil
		}
		if !transient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: every endpoint failed waiting for %s: %w", id, lastErr)
}

// Stats fetches the cluster-aggregated stats (GET /v1/cluster/stats)
// from the first endpoint that answers.
func (m *Multi) Stats(ctx context.Context) (*cluster.ClusterAggregate, error) {
	var lastErr error
	for _, c := range m.snapshotClients(m.rr.Add(1)) {
		var agg cluster.ClusterAggregate
		if err := c.getJSON(ctx, "/v1/cluster/stats", &agg); err != nil {
			lastErr = err
			continue
		}
		return &agg, nil
	}
	return nil, lastErr
}

// ensureRing keeps the routing table fresh, best-effort: refreshed when
// older than RingMaxAge, skipped entirely once a plain (non-clustered)
// daemon identified itself. Failures are tolerated — a stale ring still
// routes, and the failover paths correct for it.
func (m *Multi) ensureRing() {
	if m.notClustered.Load() {
		return
	}
	if time.Since(time.Unix(0, m.lastRefresh.Load())) < RingMaxAge {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = m.RefreshRing(ctx)
}

// RunConfig submits cfg, waits for completion, and returns the result —
// the expt.Runner contract, cluster-wide. A node dying mid-job surfaces
// as a transient wait failure; the config is then resubmitted, which
// routes past the dead node (both this client and the daemons' own
// replica failover skip it), so a sweep completes as long as any node
// survives. A job ending "interrupted" — its node restarted mid-job
// without re-enqueueing it — is likewise resubmitted: on the second
// pass the restarted node usually answers straight from its warm disk
// cache, so a sweep rides through a rolling deploy.
func (m *Multi) RunConfig(cfg core.Config) (core.Result, error) {
	ctx := context.Background()
	attempts := len(m.snapshotClients(0)) + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		m.ensureRing()
		if a > 0 {
			// A lost or bounced job: back off with jitter (honoring any
			// Retry-After the cluster sent) and re-fetch the ring so the
			// resubmission routes around whatever just failed.
			sleepRetry(ctx, lastErr, a-1)
			refreshCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_ = m.RefreshRing(refreshCtx)
			cancel()
		}
		st, cl, err := m.Submit(ctx, cfg, false)
		if err != nil {
			if a < attempts-1 && transient(err) {
				// Every endpoint refused this round (overload, churn). The
				// next round re-resolves membership and backs off first.
				lastErr = err
				continue
			}
			return core.Result{}, err
		}
		if !st.State.Terminal() {
			st, err = m.Wait(ctx, st.ID, cl)
			if err != nil {
				// The node holding the job is gone; resubmit elsewhere.
				lastErr = err
				continue
			}
		}
		if st.State == serve.JobInterrupted {
			lastErr = fmt.Errorf("client: job %s interrupted by a daemon restart", st.ID)
			continue
		}
		if st.State != serve.JobDone || st.Result == nil {
			return core.Result{}, fmt.Errorf("client: job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		return *st.Result, nil
	}
	return core.Result{}, fmt.Errorf("client: job lost repeatedly: %w", lastErr)
}
