package client

// Retry-path tests: the 429/Retry-After contract between daemon and
// client, the jittered backoff bounds, and Multi's resubmission bound
// (a cluster of crash-looping daemons must fail a sweep loudly, not
// hang it).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
)

// TestWriteSubmitErrorSetsRetryAfter pins the server half of the
// contract: every 429 carries a Retry-After hint.
func TestWriteSubmitErrorSetsRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	serve.WriteSubmitError(rec, serve.ErrQueueFull)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full wrote %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 sent without a Retry-After header")
	}
	// Non-throttle submit errors must NOT carry the header.
	rec = httptest.NewRecorder()
	serve.WriteSubmitError(rec, io.ErrUnexpectedEOF)
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("non-429 submit error carried Retry-After %q", ra)
	}
}

// TestAPIErrorParsesRetryAfter pins the client half: both the
// delta-seconds and HTTP-date forms of Retry-After decode into the
// APIError the retry paths consume.
func TestAPIErrorParsesRetryAfter(t *testing.T) {
	mk := func(ra string) *http.Response {
		resp := &http.Response{
			StatusCode: http.StatusTooManyRequests,
			Status:     "429 Too Many Requests",
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(`{"error":"queue full"}`)),
		}
		resp.Header.Set("Retry-After", ra)
		return resp
	}
	err := apiError(mk("2"))
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("apiError returned %T", err)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", apiErr.RetryAfter)
	}
	if apiErr.Message != "queue full" {
		t.Fatalf("Message = %q", apiErr.Message)
	}
	when := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	apiErr = apiError(mk(when)).(*APIError)
	if apiErr.RetryAfter < 20*time.Second || apiErr.RetryAfter > 30*time.Second {
		t.Fatalf("HTTP-date RetryAfter = %v, want ~30s", apiErr.RetryAfter)
	}
}

// TestRetryDelayBoundsAndPrecedence: jitter stays inside the
// exponential envelope, the growth caps, and a longer server hint
// overrides the guess.
func TestRetryDelayBoundsAndPrecedence(t *testing.T) {
	for attempt, ceil := range []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	} {
		for i := 0; i < 64; i++ {
			if d := retryDelay(nil, attempt); d <= 0 || d > ceil+time.Millisecond {
				t.Fatalf("retryDelay(nil, %d) = %v, want in (0, %v]", attempt, d, ceil)
			}
		}
	}
	// The shift caps: even absurd attempt numbers stay under ~1.6s.
	for i := 0; i < 64; i++ {
		if d := retryDelay(nil, 1000); d > 1600*time.Millisecond+time.Millisecond {
			t.Fatalf("capped retryDelay = %v, want <= ~1.6s", d)
		}
	}
	hint := &APIError{StatusCode: 429, RetryAfter: 3 * time.Second}
	if d := retryDelay(hint, 0); d != 3*time.Second {
		t.Fatalf("retryDelay with 3s hint = %v, want exactly the hint", d)
	}
	// A stale/zero hint falls back to jitter.
	if d := retryDelay(&APIError{StatusCode: 429}, 0); d > 26*time.Millisecond {
		t.Fatalf("zero hint delay = %v, want jitter-sized", d)
	}
}

// TestClientRetriesThrottledSubmit: a daemon whose bounded queue
// rejects twice then admits must cost retries, not a sweep failure —
// and the throttle budget must not consume the interrupted-job budget.
func TestClientRetriesThrottledSubmit(t *testing.T) {
	var submits atomic.Int64
	result := core.Result{
		Config:     core.Config{Kernel: "mandel", Variant: "seq", Dim: 64},
		Iterations: 3,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			serve.WriteError(w, http.StatusTooManyRequests, serve.ErrQueueFull)
			return
		}
		serve.WriteJSON(w, http.StatusOK, serve.JobStatus{
			ID: "j-000001", State: serve.JobDone, Cached: true, Result: &result,
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL)
	c.Poll = time.Millisecond
	res, err := c.RunConfig(core.Config{Kernel: "mandel", Dim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("got result %+v", res)
	}
	if got := submits.Load(); got != 3 {
		t.Fatalf("daemon saw %d submissions, want 3 (two throttled + one admitted)", got)
	}
}

// TestClientGivesUpWhenAlwaysThrottled: the throttle budget is bounded
// — a daemon that 429s forever surfaces an error instead of spinning.
func TestClientGivesUpWhenAlwaysThrottled(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		w.Header().Set("Retry-After", "0")
		serve.WriteError(w, http.StatusTooManyRequests, serve.ErrQueueFull)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL)
	c.Poll = time.Millisecond
	if _, err := c.RunConfig(core.Config{Kernel: "mandel", Dim: 64}); err == nil {
		t.Fatal("permanently throttled daemon did not surface an error")
	}
	if got := submits.Load(); got > 8 {
		t.Fatalf("client hammered a throttling daemon %d times, want a bounded count", got)
	}
}

// TestMultiResubmitBound pins Multi's attempts bound: with every
// endpoint interrupting every job, RunConfig tries len(endpoints)+1
// times in total (one submission lands per attempt) and then fails —
// a rolling-crash cluster cannot hang a sweep.
func TestMultiResubmitBound(t *testing.T) {
	var submits atomic.Int64
	mk := func() *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
			submits.Add(1)
			serve.WriteJSON(w, http.StatusOK, serve.JobStatus{
				ID: "j-000001", State: serve.JobInterrupted,
				Error: "daemon restarted while the job was queued or running",
			})
		})
		mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
			serve.WriteError(w, http.StatusNotFound, errNotClustered)
		})
		return httptest.NewServer(mux)
	}
	srv1, srv2 := mk(), mk()
	defer srv1.Close()
	defer srv2.Close()

	m := NewMulti(srv1.URL, srv2.URL)
	if _, err := m.RunConfig(core.Config{Kernel: "mandel", Dim: 64}); err == nil {
		t.Fatal("interrupt-looping cluster did not surface an error")
	}
	if got := submits.Load(); got != 3 {
		t.Fatalf("cluster saw %d submissions, want exactly 3 (len(endpoints)+1 attempts)", got)
	}
}
