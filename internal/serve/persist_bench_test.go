package serve_test

// The persistence latency ladder: memory hit < disk hit < recompute.
// BENCH_persist.json records these numbers — the disk tier only earns
// its place if a warm-disk restart really is orders of magnitude
// cheaper than recomputing (and barely worse than RAM).

import (
	"context"
	"testing"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/serve"
	"easypap/internal/serve/store"
)

func persistCfg(dim int) core.Config {
	return core.Config{
		Kernel: "mandel", Variant: "seq", Dim: dim, TileW: 16,
		Iterations: 1, Threads: 1,
	}
}

// BenchmarkPersistMemoryHit: identical resubmission served by the
// in-memory LRU (the disk tier is present but never consulted).
func BenchmarkPersistMemoryHit(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	mgr := serve.NewManager(serve.Options{Workers: 1, Store: s})
	defer mgr.Close()
	cfg := persistCfg(64)
	st, err := mgr.Submit(cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Wait(context.Background(), st.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := mgr.Submit(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Cached || st.DiskHit {
			b.Fatalf("expected a memory hit: %+v", st)
		}
	}
}

// BenchmarkPersistDiskHit: a 1-entry memory tier with two configs
// alternating, so every submission misses RAM and is served by the disk
// tier (read + CRC verify + JSON decode + promotion) — the latency a
// freshly restarted daemon pays per warm request.
func BenchmarkPersistDiskHit(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	mgr := serve.NewManager(serve.Options{Workers: 1, CacheCapacity: 1, Store: s})
	defer mgr.Close()
	ctx := context.Background()
	cfgs := []core.Config{persistCfg(64), persistCfg(128)}
	for _, cfg := range cfgs {
		st, err := mgr.Submit(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Wait(ctx, st.ID); err != nil {
			b.Fatal(err)
		}
	}
	// Both entries must be on disk before measuring.
	for mgr.Stats().Spills < 2 {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := mgr.Submit(cfgs[i%2], false)
		if err != nil {
			b.Fatal(err)
		}
		if !st.DiskHit {
			b.Fatalf("expected a disk hit: %+v", st)
		}
	}
}

// BenchmarkPersistRecompute: the cold path both tiers save — every
// submission is a distinct config (seed varies) and runs the kernel.
func BenchmarkPersistRecompute(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	mgr := serve.NewManager(serve.Options{Workers: 1, QueueDepth: 1 << 16, Store: s})
	defer mgr.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := persistCfg(64)
		cfg.Seed = int64(i + 1)
		st, err := mgr.Submit(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if st, err = mgr.Wait(ctx, st.ID); err != nil || st.State != serve.JobDone {
			b.Fatalf("job ended %v: %v", st, err)
		}
	}
}
