package store

// Fuzzing of the on-disk decoders — the concurrent-durability discipline
// (McKenney): recovery code is only trustworthy under adversarial input.
// The decoders face whatever a crash, a partial write, or bit rot left
// in the data directory, so for ANY byte string they must (a) never
// panic, (b) never return a record that fails validation (CRCs are the
// gate — a corrupt record is dropped, not served), and (c) be stable:
// re-encoding what was decoded and decoding again yields the same
// records. Regression inputs live in testdata/fuzz/.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"easypap/internal/core"
)

// flip returns data with single-bit flips, duplications and truncations
// applied according to mutation — deterministic adversarial variants
// driven by the fuzzer's own entropy.
func flip(data []byte, mutation uint32) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	switch mutation % 4 {
	case 1: // flip one bit
		i := int(mutation/4) % len(out)
		out[i] ^= 1 << (mutation % 8)
	case 2: // truncate
		out = out[:int(mutation/4)%(len(out)+1)]
	case 3: // duplicate a slice of itself
		i := int(mutation/4) % len(out)
		out = append(out[:i], append(out[i:], out[i:]...)...)
	}
	return out
}

func FuzzStoreIndexDecode(f *testing.F) {
	valid := encodeIndexRec(IndexRec{Op: opPut, Hash: strings.Repeat("ab", 32), Size: 512, PayloadCRC: 0x1234}) +
		encodeIndexRec(IndexRec{Op: opDel, Hash: strings.Repeat("ab", 32)})
	f.Add([]byte(valid), uint32(0))
	f.Add([]byte(valid), uint32(13)) // bit flip
	f.Add([]byte(valid), uint32(42)) // truncation
	f.Add([]byte(valid), uint32(7))  // duplication
	f.Add([]byte("EZIDX put x 0 0 0\n"), uint32(0))
	f.Add([]byte("EZIDX put "+strings.Repeat("a", 64)+" -1 00000000 00000000\n"), uint32(0))
	f.Add([]byte{}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, mutation uint32) {
		data = flip(data, mutation)
		recs := ReadIndex(bytes.NewReader(data)) // must not panic, whatever the input
		for _, r := range recs {
			// Anything the decoder accepted must satisfy the invariants the
			// cache replay relies on.
			if r.Op != opPut && r.Op != opDel {
				t.Fatalf("decoder surfaced invalid op %q", r.Op)
			}
			if !validToken(r.Hash) || r.Size < 0 || r.Size > maxPayload {
				t.Fatalf("decoder surfaced invalid record %+v", r)
			}
		}
		// Stability: re-encoding the accepted records decodes identically.
		var buf bytes.Buffer
		for _, r := range recs {
			buf.WriteString(encodeIndexRec(r))
		}
		again := ReadIndex(bytes.NewReader(buf.Bytes()))
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("re-encode not stable: %+v vs %+v", recs, again)
		}
	})
}

func FuzzSnapshotDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := EncodeSnapshot(&valid, &Snapshot{
		PrefixHash: strings.Repeat("ef", 32), Iter: 128,
		State: []byte("EZK1\x00\x01kernel-state"),
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes(), uint32(0))
	f.Add(valid.Bytes(), uint32(13)) // bit flip
	f.Add(valid.Bytes(), uint32(42)) // truncation
	f.Add(valid.Bytes(), uint32(7))  // duplication
	f.Add([]byte("EZSNAP1 ab 0 0 00000000\n"), uint32(0))
	f.Add([]byte("EZSNAP1 "+strings.Repeat("a", 64)+" -1 3 zzzzzzzz\nxyz"), uint32(0))
	f.Add([]byte{}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, mutation uint32) {
		data = flip(data, mutation)
		s, err := DecodeSnapshot(bytes.NewReader(data)) // must not panic
		if err != nil {
			return
		}
		// Anything accepted must satisfy the invariants resume relies on:
		// a valid storage key and a positive depth.
		if !validToken(s.PrefixHash) || strings.Contains(s.PrefixHash, snapKeySep) || s.Iter <= 0 {
			t.Fatalf("decoder surfaced invalid snapshot %+v", s)
		}
		if ph, iter, ok := ParseSnapshotKey(SnapshotKey(s.PrefixHash, s.Iter)); !ok || ph != s.PrefixHash || iter != s.Iter {
			t.Fatalf("snapshot key does not round-trip for %+v", s)
		}
		// Stability: re-encoding what was decoded decodes identically.
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, s); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		again, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil || !reflect.DeepEqual(s, again) {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", s, again, err)
		}
	})
}

func FuzzJournalReplay(f *testing.F) {
	cfgJSON := []byte(`{"kernel":"mandel","variant":"seq","dim":64,"schedule":"static","label":"t"}`)
	h := strings.Repeat("cd", 32)
	valid := encodeJournalOpen("j-000001", h, false, cfgJSON) +
		encodeJournalDone("j-000001", "done") +
		encodeJournalOpen("j-000002", h, true, cfgJSON) +
		encodeJournalSnap("j-000002", 64)
	f.Add([]byte(valid), uint32(0))
	f.Add([]byte(valid), uint32(21)) // bit flip
	f.Add([]byte(valid), uint32(66)) // truncation
	f.Add([]byte(valid), uint32(11)) // duplication
	f.Add([]byte(encodeJournalOpen("j-000009", h, false, []byte(`not json`))), uint32(0))
	f.Add([]byte("EZJRN open a b 9 9 zzzzzzzz 00000000\n"), uint32(0))
	f.Add([]byte{}, uint32(0))
	// Resurrection: open/done/open of ONE id must replay as one job
	// (this exact shape once produced a duplicate recovery), including
	// with a trailing hwm-style done for the same id.
	f.Add([]byte(encodeJournalOpen("j-000003", h, false, cfgJSON)+
		encodeJournalDone("j-000003", "done")+
		encodeJournalOpen("j-000003", h, false, cfgJSON)), uint32(0))
	f.Add([]byte(encodeJournalDone("j-000004", "hwm")+
		encodeJournalOpen("j-000004", h, false, cfgJSON)), uint32(0))
	// Post-checkpointing shapes: wrapper payload with a submit time, snap
	// records (including one for a never-opened id, which replay must
	// ignore), and regressing snap depths (only the deepest sticks).
	f.Add([]byte(encodeJournalOpen("j-000005", h, false,
		[]byte(`{"config":`+string(cfgJSON)+`,"submitted":1700000000000000000}`))+
		encodeJournalSnap("j-000005", 100)+
		encodeJournalSnap("j-000005", 50)+
		encodeJournalSnap("j-000777", 9)), uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, mutation uint32) {
		data = flip(data, mutation)
		open := ReplayJournal(bytes.NewReader(data)) // must not panic
		seen := make(map[string]bool)
		for _, r := range open {
			// Replay only surfaces validated open records: recovery must be
			// able to act on every one of them without re-checking.
			if r.Op != "open" || !validToken(r.ID) || !validToken(r.Hash) {
				t.Fatalf("replay surfaced invalid record %+v", r)
			}
			if seen[r.ID] {
				t.Fatalf("replay surfaced duplicate id %q", r.ID)
			}
			seen[r.ID] = true
			// The config decoded from the journal must re-marshal — it is
			// resubmitted to the manager verbatim on recovery.
			if _, err := jsonRoundTrip(r.Config); err != nil {
				t.Fatalf("recovered config does not round-trip: %v", err)
			}
		}
		// Stability: a compacted journal (what openJournal writes at boot)
		// replays to the same open set.
		compacted, err := reencodeJournal(open)
		if err != nil {
			t.Fatalf("reencode: %v", err)
		}
		again := ReplayJournal(bytes.NewReader(compacted))
		if !reflect.DeepEqual(open, again) {
			t.Fatalf("compaction not stable: %+v vs %+v", open, again)
		}
	})
}

// jsonRoundTrip marshals and unmarshals a config, returning the copy.
func jsonRoundTrip(cfg core.Config) (core.Config, error) {
	data, err := json.Marshal(cfg)
	if err != nil {
		return cfg, err
	}
	var out core.Config
	return out, json.Unmarshal(data, &out)
}
