package store

// Concurrency torture for the disk tier: Put/Get/Delete from many
// goroutines over a shrunken byte budget, so eviction, compaction and
// the singleflight read path all run hot while the race detector
// watches (CI runs this under -race -count=2).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheConcurrentChurn(t *testing.T) {
	dir := t.TempDir()
	one := int64(entryFileSize(t, testEntry(hashN(0), 1)))
	s, err := Open(dir, Options{MaxBytes: 8 * one}) // tight: constant eviction
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		workers = 8
		rounds  = 200
		hashes  = 16 // > budget, so puts evict each other
	)
	var wg sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := hashN((w*7 + i) % hashes)
				switch i % 3 {
				case 0:
					if err := s.Cache.Put(testEntry(h, i%hashes)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if e, ok := s.Cache.Get(h); ok {
						// Whatever a concurrent get returns must be internally
						// consistent — CRC-verified, right hash.
						if e.Hash != h {
							t.Errorf("got entry %s for hash %s", e.Hash, h)
							return
						}
						served.Add(1)
					}
				default:
					s.Cache.Delete(h)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Cache.Corrupt() != 0 {
		t.Fatalf("churn produced %d corrupt reads", s.Cache.Corrupt())
	}
	if s.Cache.Bytes() > 8*one {
		t.Fatalf("byte budget violated: %d > %d", s.Cache.Bytes(), 8*one)
	}

	// The directory must replay cleanly after the storm.
	s.Close()
	s2, err := Open(dir, Options{MaxBytes: 8 * one})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < hashes; i++ {
		if e, ok := s2.Cache.Get(hashN(i)); ok && e.Hash != hashN(i) {
			t.Fatalf("post-churn replay served wrong entry")
		}
	}
}

func TestCacheSingleflightSharesOneRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := testEntry(hashN(1), 4)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}

	const readers = 32
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, ok := s.Cache.Get(e.Hash)
			if !ok || got.Hash != e.Hash {
				errs <- fmt.Errorf("singleflight read failed: ok=%v", ok)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h := s.Cache.Hits(); h != readers {
		t.Fatalf("hits=%d, want %d (every waiter counts its hit)", h, readers)
	}
}

func TestJournalConcurrentBeginEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testEntry(hashN(0), 1).Result.Config

	const workers = 8
	const jobs = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				id := fmt.Sprintf("j-%06d", w*jobs+i+1)
				if err := s.Journal.Begin(id, hashN(i), false, cfg, 0); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := s.Journal.End(id, "done"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wantOpen := workers * jobs / 2
	if got := s.Journal.OpenCount(); got != wantOpen {
		t.Fatalf("open=%d, want %d", got, wantOpen)
	}
	s.Close()

	// Replay sees exactly the ended-vs-open split despite interleaving
	// and compactions.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Journal.Recovered()); got != wantOpen {
		t.Fatalf("recovered %d jobs, want %d", got, wantOpen)
	}
}
