package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"easypap/internal/core"
)

// Journal is the write-ahead job log: every admitted job appends an
// open record before it is queued, every terminal transition appends a
// done record. After a crash the open-without-done set is exactly the
// jobs that were queued or running — the manager re-enqueues them (or
// marks them interrupted) under their original ids, so clients polling
// across the restart keep working.
type Journal struct {
	path  string
	fsync bool // sync commit records before returning (Options.Fsync)

	mu        sync.Mutex
	f         *os.File
	open      map[string]JournalRec // id -> last open record without a done
	recovered []JournalRec          // open set found at Open time, in file order
	maxID     int64                 // highest numeric "j-NNNNNN" id ever journaled
	doneSince int                   // done records since the last compaction
}

// openJournal replays (and keeps appending to) the journal at path.
func openJournal(path string, fsync bool) (*Journal, error) {
	j := &Journal{path: path, fsync: fsync, open: make(map[string]JournalRec)}
	if data, err := os.ReadFile(path); err == nil {
		// One decode pass: every record's id feeds the high-water mark,
		// then the shared reduction derives the open set.
		recs := ReadJournal(bytes.NewReader(data))
		for _, rec := range recs {
			j.noteID(rec.ID)
		}
		j.recovered = reduceOpen(recs)
		for _, rec := range j.recovered {
			j.open[rec.ID] = rec
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Start each daemon generation from a compact journal: the id
	// high-water mark, then the recovered open set. The hwm record goes
	// FIRST — it is a done record, and a done following an open for the
	// same id (the highest open job) would erase that job from replay.
	compacted, err := reencodeJournal(j.recovered)
	if err != nil {
		return nil, err
	}
	compacted = append(j.hwmRecord(), compacted...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, compacted, 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	return j, nil
}

// hwmRecord renders the id high-water mark as a done record for the
// highest id ever journaled ("hwm" state, a no-op for the open set but
// seen by noteID on replay). Without it, compaction — which keeps only
// open records — would forget completed jobs' ids, a restarted manager
// would restart its id sequence, and a client still polling a
// pre-restart id could be handed a different submitter's job.
func (j *Journal) hwmRecord() []byte {
	if j.maxID <= 0 {
		return nil
	}
	return []byte(encodeJournalDone(fmt.Sprintf("j-%06d", j.maxID), "hwm"))
}

// noteID tracks the numeric suffix of manager-style job ids so a
// restarted manager resumes its id sequence past every journaled job.
func (j *Journal) noteID(id string) {
	if rest, ok := strings.CutPrefix(id, "j-"); ok {
		if n, err := strconv.ParseInt(rest, 10, 64); err == nil && n > j.maxID {
			j.maxID = n
		}
	}
}

// Recovered returns the jobs that were open when the journal was last
// opened — the recovery work list, in original admission order.
func (j *Journal) Recovered() []JournalRec {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalRec, len(j.recovered))
	copy(out, j.recovered)
	return out
}

// MaxID returns the highest numeric job id ever journaled.
func (j *Journal) MaxID() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxID
}

// OpenCount returns the number of currently open (journaled,
// non-terminal) jobs.
func (j *Journal) OpenCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.open)
}

// Begin journals a job admission. It must be called before the job is
// made runnable — write-ahead, so a crash after Begin recovers the job
// and a crash before it loses nothing but the not-yet-acknowledged
// submission. submitted is the client's original submit time (unix ns;
// 0 = unknown), persisted so a recovered job keeps its queue age.
func (j *Journal) Begin(id, hash string, frames bool, cfg core.Config, submitted int64) error {
	if !validToken(id) || !validToken(hash) {
		return fmt.Errorf("store: invalid journal key id=%q hash=%q", id, hash)
	}
	payload, err := json.Marshal(journalOpenPayload{Config: cfg, Submitted: submitted})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.noteID(id)
	if _, err := j.f.WriteString(encodeJournalOpen(id, hash, frames, payload)); err != nil {
		return err
	}
	if j.fsync {
		// Write-ahead means nothing across a power cut unless the open
		// record is on stable storage before the job becomes runnable.
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.open[id] = JournalRec{Op: "open", ID: id, Hash: hash, Frames: frames, Config: cfg, Submitted: submitted}
	return nil
}

// Snap journals "job id has a usable checkpoint at iteration iter", so
// recovery after a crash resumes the job there instead of from zero. A
// snap for a job without an open record is rejected — it would be
// meaningless on replay.
func (j *Journal) Snap(id string, iter int) error {
	if !validToken(id) || iter <= 0 {
		return fmt.Errorf("store: invalid journal snap id=%q iter=%d", id, iter)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.open[id]
	if !ok {
		return fmt.Errorf("store: journal snap for unopened job %q", id)
	}
	if _, err := j.f.WriteString(encodeJournalSnap(id, iter)); err != nil {
		return err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if iter > rec.SnapIter {
		rec.SnapIter = iter
		j.open[id] = rec
	}
	return nil
}

// End journals a job's terminal state and triggers compaction once done
// records dominate the log.
func (j *Journal) End(id, state string) error {
	if !validToken(id) || !validToken(state) {
		return fmt.Errorf("store: invalid journal end id=%q state=%q", id, state)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.WriteString(encodeJournalDone(id, state)); err != nil {
		return err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	delete(j.open, id)
	j.doneSince++
	if j.doneSince > len(j.open)+64 {
		j.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal with only the open records plus
// the id high-water mark.
func (j *Journal) compactLocked() {
	recs := make([]JournalRec, 0, len(j.open))
	for _, rec := range j.open {
		recs = append(recs, rec)
	}
	data, err := reencodeJournal(recs)
	if err != nil {
		return
	}
	// hwm first: a done record after an open for the same id would
	// erase the highest open job from replay.
	data = append(j.hwmRecord(), data...)
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	j.f.Close()
	j.f = f
	j.doneSince = 0
}

func (j *Journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
