package store

// Golden-file regression for the three on-disk record formats: entry
// files, index records, journal records. A daemon upgrade must be able
// to read the data directory its predecessor wrote — silently drifting
// the encoding would turn every deployed cache cold (and orphan every
// journaled job) on the next release. Mirrors
// internal/gfx/stream_golden_test.go.
//
// Refresh after an *intentional* format change with:
//
//	go test ./internal/serve/store/ -run TestStoreGolden -update
//
// and document the migration story in DESIGN.md §9 when you do.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/store.golden"

// goldenEntry is a fixed, fully deterministic entry: every field that
// could leak environment (hostname label, GOMAXPROCS threads) is pinned.
func goldenEntry() *Entry {
	return &Entry{
		Hash: "00e9c52f7c2fbd637d2f300b2bd93a280e0c293ed0eb536eb7ec4b5bdbabd214",
		Result: core.Result{
			Config: core.Config{
				Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 8, TileH: 8,
				Iterations: 3, Threads: 2, Schedule: sched.DynamicPolicy(4),
				NoDisplay: true, Arg: "zoom", Seed: 42, Label: "golden-host",
			},
			WallTime:   1234567 * time.Nanosecond,
			Iterations: 3,
			Activity: []core.IterActivity{
				{Iter: 1, Active: 64, Total: 64},
				{Iter: 2, Active: 16, Total: 64},
			},
		},
		// Frame payloads are opaque bytes to the store; a literal stream
		// record keeps this golden independent of the PNG encoder (which
		// has its own golden in internal/gfx).
		Frames: []byte("EZFRAME final 3 8\n\x89PNGdata"),
	}
}

// goldenSnapshot is a fixed checkpoint record: the state bytes are
// opaque to the store (the kernel codec owns their meaning), so a
// literal keeps this golden independent of internal/kernels.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		PrefixHash: "22a4b61f8e09cd48a1b5412d4df75c562a3e49101c2d758fd9ed5a7edcdce436",
		Iter:       200,
		State:      []byte("EZK1\x10\x00kernel-state\x00\x01\x02\x03"),
	}
}

// encodeGoldenStore renders the golden bytes: one entry file, one
// snapshot file, an index log (put/put/del), and a journal
// (open/done/open/open/snap), separated by section markers so a diff
// localizes which format drifted.
func encodeGoldenStore(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := goldenEntry()

	buf.WriteString("-- entry --\n")
	if err := EncodeEntry(&buf, e); err != nil {
		t.Fatal(err)
	}

	buf.WriteString("\n-- snapshot --\n")
	if err := EncodeSnapshot(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}

	buf.WriteString("\n-- index --\n")
	other := "11f1d2a35c97bd2697f3001c3ce84b391f1d382fe1fc647fc8fd5c6cdcbce325"
	buf.WriteString(encodeIndexRec(IndexRec{Op: opPut, Hash: e.Hash, Size: 4242, PayloadCRC: 0xdeadbeef}))
	buf.WriteString(encodeIndexRec(IndexRec{Op: opPut, Hash: other, Size: 17, PayloadCRC: 0x00c0ffee}))
	buf.WriteString(encodeIndexRec(IndexRec{Op: opDel, Hash: other}))

	buf.WriteString("-- journal --\n")
	cfgJSON := []byte(`{"kernel":"mandel","variant":"seq","dim":64,"tile_w":8,"tile_h":8,"iterations":3,"threads":2,"schedule":"dynamic,4","no_display":true,"arg":"zoom","seed":42,"label":"golden-host"}`)
	buf.WriteString(encodeJournalOpen("j-000007", e.Hash, false, cfgJSON))
	buf.WriteString(encodeJournalDone("j-000007", "done"))
	buf.WriteString(encodeJournalOpen("j-000008", other, true, cfgJSON))
	// Wrapper payload (carries the original submit time) plus a snap
	// record — the post-checkpointing journal shapes. The bare-config
	// opens above stay: old journals must keep decoding.
	wrapped := []byte(`{"config":` + string(cfgJSON) + `,"submitted":1700000000000000000}`)
	buf.WriteString(encodeJournalOpen("j-000009", e.Hash, false, wrapped))
	buf.WriteString(encodeJournalSnap("j-000009", 200))
	return buf.Bytes()
}

func TestStoreGolden(t *testing.T) {
	got := encodeGoldenStore(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("on-disk store format drifted from %s (%d vs %d bytes) — a new daemon "+
			"could not read an old data dir; re-golden with -update ONLY for an "+
			"intentional, migration-documented format change", goldenPath, len(got), len(want))
	}

	// The golden bytes must also round-trip through the decoders —
	// telling "format drift" apart from "decoder broke".
	sections := strings.Split(string(want), "-- ")
	if len(sections) != 5 {
		t.Fatalf("golden file has %d sections, want 5", len(sections))
	}
	entryBytes := strings.TrimPrefix(sections[1], "entry --\n")
	e, err := DecodeEntry(strings.NewReader(entryBytes))
	if err != nil {
		t.Fatalf("golden entry does not decode: %v", err)
	}
	wantE := goldenEntry()
	if e.Hash != wantE.Hash || !reflect.DeepEqual(e.Result, wantE.Result) || !bytes.Equal(e.Frames, wantE.Frames) {
		t.Fatalf("golden entry decodes to %+v, want %+v", e, wantE)
	}

	snapBytes := strings.TrimPrefix(sections[2], "snapshot --\n")
	s, err := DecodeSnapshot(strings.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("golden snapshot does not decode: %v", err)
	}
	if wantS := goldenSnapshot(); s.PrefixHash != wantS.PrefixHash || s.Iter != wantS.Iter || !bytes.Equal(s.State, wantS.State) {
		t.Fatalf("golden snapshot decodes to %+v, want %+v", s, wantS)
	}

	idx := ReadIndex(strings.NewReader(strings.TrimPrefix(sections[3], "index --\n")))
	if len(idx) != 3 || idx[0].Op != opPut || idx[2].Op != opDel || idx[0].Size != 4242 {
		t.Fatalf("golden index decodes to %+v", idx)
	}

	journalBytes := strings.TrimPrefix(sections[4], "journal --\n")
	jr := ReadJournal(strings.NewReader(journalBytes))
	if len(jr) != 5 || jr[0].Op != "open" || jr[1].Op != "done" || !jr[2].Frames {
		t.Fatalf("golden journal decodes to %+v", jr)
	}
	if jr[0].Config.Kernel != "mandel" || jr[0].Config.Arg != "zoom" {
		t.Fatalf("golden journal config lost fields: %+v", jr[0].Config)
	}
	if jr[3].Submitted != 1700000000000000000 || jr[3].Config.Kernel != "mandel" {
		t.Fatalf("golden wrapper open lost fields: %+v", jr[3])
	}
	if jr[4].Op != "snap" || jr[4].SnapIter != 200 {
		t.Fatalf("golden snap record decodes to %+v", jr[4])
	}
	open := ReplayJournal(strings.NewReader(journalBytes))
	if len(open) != 2 || open[0].ID != "j-000008" || open[1].ID != "j-000009" {
		t.Fatalf("golden journal replay: %+v", open)
	}
	// The snap record's depth is stamped onto its job's open record, and
	// the persisted submit time survives replay.
	if open[1].SnapIter != 200 || open[1].Submitted != 1700000000000000000 {
		t.Fatalf("replay lost checkpoint state: %+v", open[1])
	}
}
