package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"easypap/internal/core"
)

// The three on-disk record formats of the persistence layer. All follow
// the repo's EZFRAME convention — a one-line ASCII header, then exact
// byte-counted payloads — so `head` and `grep` work on every file the
// daemon writes, and a decoder needs no state beyond "read a line, then
// N bytes". Every record carries a CRC-32C so torn writes and bit rot
// are detected, never served.
//
// Entry file (objects/<hh>/<hash>) — one cached computation:
//
//	EZSTORE1 <hash> <resultLen> <framesLen> <payloadCRC>\n
//	<resultLen bytes: JSON core.Result>
//	<framesLen bytes: gfx frame-stream records (EZFRAME ...)>
//
// Index record (cache.idx) — append-only log of the live entry set:
//
//	EZIDX <put|del> <hash> <size> <payloadCRC> <lineCRC>\n
//
// Snapshot file (objects/<hh>/<key>) — one mid-run checkpoint, keyed by
// (Config.PrefixHash, iteration); see SnapshotKey:
//
//	EZSNAP1 <prefixHash> <iter> <stateLen> <payloadCRC>\n
//	<stateLen bytes: kernel StateCodec bytes>
//
// Journal record (journal.log) — write-ahead job log:
//
//	EZJRN open <id> <hash> <frames:0|1> <payloadLen> <payloadCRC> <lineCRC>\n
//	<payloadLen bytes: JSON {"config": core.Config, "submitted": unixNS}>\n
//	EZJRN snap <id> <iter> 0 0 00000000 <lineCRC>\n
//	EZJRN done <id> <state> 0 0 00000000 <lineCRC>\n
//
// The open payload wraps the config with the job's original submit time
// so a recovered job keeps its queue age; a payload that is a bare
// core.Config (the pre-checkpointing form) still decodes, with a zero
// submit time. A snap record marks "this open job has a usable
// checkpoint at iteration <iter>" — recovery resumes there instead of
// from zero. Decoders that predate an op skip its records (unknown ops
// are per-line errors), so new ops degrade to the old behavior.
//
// <payloadCRC> and <lineCRC> are 8 lower-hex digits of CRC-32C. In an
// entry file the payload CRC covers result+frames bytes (in a snapshot
// file the state bytes); in an index
// put record it covers the whole entry file; in a journal open record
// it covers the config JSON. lineCRC covers the header line up to (not
// including) the space before it, so
// a flipped bit anywhere in a header invalidates exactly that record.
// Replay is last-record-wins per key, which makes duplicated records
// (a crash between append and in-memory update, or a retried write)
// harmless. The format is pinned by testdata/store.golden.

const (
	entryMagic   = "EZSTORE1"
	snapMagic    = "EZSNAP1"
	indexMagic   = "EZIDX"
	journalMagic = "EZJRN"

	// maxPayload bounds any single decoded payload (result JSON, config
	// JSON, frame bytes) so a corrupt length field cannot make a decoder
	// attempt a multi-gigabyte allocation.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(parts ...[]byte) uint32 {
	var c uint32
	for _, p := range parts {
		c = crc32.Update(c, crcTable, p)
	}
	return c
}

// validToken reports whether s is safe to embed in a space-separated
// ASCII header: non-empty, printable, no whitespace.
func validToken(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// --- entry files ------------------------------------------------------

// Entry is one cached computation: the performance result plus the
// run's rendered frames in the gfx frame-stream wire format (for cached
// runs, a single "final" EZFRAME record of the finished image; empty
// when the run produced no image).
type Entry struct {
	Hash   string
	Result core.Result
	Frames []byte
}

// EncodeEntry writes the entry-file form of e to w.
func EncodeEntry(w io.Writer, e *Entry) error {
	if !validToken(e.Hash) {
		return fmt.Errorf("store: invalid entry hash %q", e.Hash)
	}
	res, err := json.Marshal(e.Result)
	if err != nil {
		return fmt.Errorf("store: encoding result for %s: %w", e.Hash, err)
	}
	crc := checksum(res, e.Frames)
	if _, err := fmt.Fprintf(w, "%s %s %d %d %08x\n", entryMagic, e.Hash, len(res), len(e.Frames), crc); err != nil {
		return err
	}
	if _, err := w.Write(res); err != nil {
		return err
	}
	_, err = w.Write(e.Frames)
	return err
}

// DecodeEntry parses one entry file, verifying the payload CRC and that
// the payload really is a result. It never panics on corrupt input: any
// truncation, length overflow or checksum mismatch is an error, and the
// caller treats an error as a cache miss.
func DecodeEntry(r io.Reader) (*Entry, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("store: reading entry header: %w", err)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) != 5 || fields[0] != entryMagic {
		return nil, fmt.Errorf("store: malformed entry header %q", line)
	}
	hash := fields[1]
	if !validToken(hash) {
		return nil, fmt.Errorf("store: invalid hash in entry header %q", line)
	}
	resLen, err1 := strconv.Atoi(fields[2])
	frLen, err2 := strconv.Atoi(fields[3])
	wantCRC, err3 := strconv.ParseUint(fields[4], 16, 32)
	if err1 != nil || err2 != nil || err3 != nil ||
		resLen < 0 || frLen < 0 || resLen > maxPayload || frLen > maxPayload {
		return nil, fmt.Errorf("store: malformed entry header %q", line)
	}
	res := make([]byte, resLen)
	if _, err := io.ReadFull(br, res); err != nil {
		return nil, fmt.Errorf("store: truncated entry result: %w", err)
	}
	frames := make([]byte, frLen)
	if _, err := io.ReadFull(br, frames); err != nil {
		return nil, fmt.Errorf("store: truncated entry frames: %w", err)
	}
	if got := checksum(res, frames); uint32(wantCRC) != got {
		return nil, fmt.Errorf("store: entry %s payload CRC mismatch (want %08x, got %08x)", hash, wantCRC, got)
	}
	e := &Entry{Hash: hash, Frames: frames}
	if err := json.Unmarshal(res, &e.Result); err != nil {
		return nil, fmt.Errorf("store: entry %s result does not decode: %w", hash, err)
	}
	return e, nil
}

// --- snapshot files ---------------------------------------------------

// Snapshot is one mid-run checkpoint: the kernel's StateCodec bytes at
// iteration Iter of the configuration trajectory PrefixHash
// (core.Config.PrefixHash — the canonical hash with the iteration count
// excluded, so every run of the same prefix shares the key space).
type Snapshot struct {
	PrefixHash string
	Iter       int
	State      []byte
}

// snapKeySep separates the prefix hash from the iteration in a snapshot
// object key.
const snapKeySep = "-snap-"

// SnapshotKey renders the cache object key of a snapshot: the prefix
// hash plus the zero-padded iteration, sortable within a prefix and
// disjoint from result-entry keys (hex hashes never contain '-').
func SnapshotKey(prefixHash string, iter int) string {
	return fmt.Sprintf("%s%s%08d", prefixHash, snapKeySep, iter)
}

// ParseSnapshotKey splits a snapshot object key back into its prefix
// hash and iteration; ok is false for non-snapshot keys.
func ParseSnapshotKey(key string) (prefixHash string, iter int, ok bool) {
	i := strings.LastIndex(key, snapKeySep)
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(key[i+len(snapKeySep):])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return key[:i], n, true
}

// IsSnapshotKey reports whether a cache object key names a snapshot.
func IsSnapshotKey(key string) bool {
	_, _, ok := ParseSnapshotKey(key)
	return ok
}

// EncodeSnapshot writes the snapshot-file form of s to w.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	if !validToken(s.PrefixHash) || strings.Contains(s.PrefixHash, snapKeySep) {
		return fmt.Errorf("store: invalid snapshot prefix hash %q", s.PrefixHash)
	}
	if s.Iter <= 0 {
		return fmt.Errorf("store: invalid snapshot iteration %d", s.Iter)
	}
	if _, err := fmt.Fprintf(w, "%s %s %d %d %08x\n", snapMagic, s.PrefixHash, s.Iter, len(s.State), checksum(s.State)); err != nil {
		return err
	}
	_, err := w.Write(s.State)
	return err
}

// DecodeSnapshot parses one snapshot file, verifying the payload CRC.
// Like DecodeEntry it never panics on corrupt input: truncation, length
// overflow and checksum mismatch are errors the caller treats as a
// missing checkpoint.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot header: %w", err)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) != 5 || fields[0] != snapMagic {
		return nil, fmt.Errorf("store: malformed snapshot header %q", line)
	}
	s := &Snapshot{PrefixHash: fields[1]}
	if !validToken(s.PrefixHash) || strings.Contains(s.PrefixHash, snapKeySep) {
		return nil, fmt.Errorf("store: invalid prefix hash in snapshot header %q", line)
	}
	iter, err1 := strconv.Atoi(fields[2])
	stLen, err2 := strconv.Atoi(fields[3])
	wantCRC, err3 := strconv.ParseUint(fields[4], 16, 32)
	if err1 != nil || err2 != nil || err3 != nil ||
		iter <= 0 || stLen < 0 || stLen > maxPayload {
		return nil, fmt.Errorf("store: malformed snapshot header %q", line)
	}
	s.Iter = iter
	s.State = make([]byte, stLen)
	if _, err := io.ReadFull(br, s.State); err != nil {
		return nil, fmt.Errorf("store: truncated snapshot state: %w", err)
	}
	if got := checksum(s.State); uint32(wantCRC) != got {
		return nil, fmt.Errorf("store: snapshot %s@%d payload CRC mismatch (want %08x, got %08x)",
			s.PrefixHash, s.Iter, wantCRC, got)
	}
	return s, nil
}

// --- index records ----------------------------------------------------

// indexOp is the operation of one index record.
type indexOp string

const (
	opPut indexOp = "put"
	opDel indexOp = "del"
)

// IndexRec is one decoded record of the cache index log.
type IndexRec struct {
	Op         indexOp
	Hash       string
	Size       int64  // total entry-file size in bytes (0 for del)
	PayloadCRC uint32 // CRC of the entry payload (0 for del)
}

// appendLineCRC seals a header line: the line CRC over everything
// written so far, then newline.
func appendLineCRC(head string) string {
	return fmt.Sprintf("%s %08x\n", head, checksum([]byte(head)))
}

// encodeIndexRec renders one index record line.
func encodeIndexRec(rec IndexRec) string {
	head := fmt.Sprintf("%s %s %s %d %08x", indexMagic, rec.Op, rec.Hash, rec.Size, rec.PayloadCRC)
	return appendLineCRC(head)
}

// decodeIndexLine parses one index line (without trailing newline).
func decodeIndexLine(line string) (IndexRec, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return IndexRec{}, fmt.Errorf("store: malformed index record %q", line)
	}
	wantCRC, err := strconv.ParseUint(line[i+1:], 16, 32)
	if err != nil || len(line[i+1:]) != 8 || uint32(wantCRC) != checksum([]byte(line[:i])) {
		return IndexRec{}, fmt.Errorf("store: index record CRC mismatch %q", line)
	}
	fields := strings.Fields(line[:i])
	if len(fields) != 5 || fields[0] != indexMagic {
		return IndexRec{}, fmt.Errorf("store: malformed index record %q", line)
	}
	rec := IndexRec{Op: indexOp(fields[1]), Hash: fields[2]}
	if rec.Op != opPut && rec.Op != opDel {
		return IndexRec{}, fmt.Errorf("store: unknown index op %q", fields[1])
	}
	if !validToken(rec.Hash) {
		return IndexRec{}, fmt.Errorf("store: invalid hash in index record %q", line)
	}
	size, err1 := strconv.ParseInt(fields[3], 10, 64)
	pcrc, err2 := strconv.ParseUint(fields[4], 16, 32)
	if err1 != nil || err2 != nil || size < 0 || size > maxPayload {
		return IndexRec{}, fmt.Errorf("store: malformed index record %q", line)
	}
	rec.Size, rec.PayloadCRC = size, uint32(pcrc)
	return rec, nil
}

// ReadIndex decodes an index log. Corrupt records are skipped (a record
// is self-contained on one line, so the decoder resynchronizes at the
// next newline); a torn final record — the normal state after a crash
// mid-append — is silently dropped. The valid records are returned in
// file order; it is the caller's job to apply last-record-wins.
func ReadIndex(r io.Reader) []IndexRec {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxPayload)
	var recs []IndexRec
	for sc.Scan() {
		rec, err := decodeIndexLine(sc.Text())
		if err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// --- journal records --------------------------------------------------

// JournalRec is one decoded record of the job journal.
type JournalRec struct {
	Op        string // "open", "snap" or "done"
	ID        string
	Hash      string      // open only
	Frames    bool        // open only
	Config    core.Config // open only
	Submitted int64       // open only: original submit time, unix ns (0 = unknown)
	SnapIter  int         // snap records; stamped onto open records by reduceOpen
	State     string      // done only: the terminal JobState
}

// journalOpenPayload is the JSON payload of an open record: the config
// wrapped with the original submit time, so a recovered job does not
// lose its queue age to the restart. Bare core.Config payloads (the
// pre-checkpointing form) are still accepted on read.
type journalOpenPayload struct {
	Config    core.Config `json:"config"`
	Submitted int64       `json:"submitted,omitempty"`
}

// encodeJournalOpen renders a job-admitted record: header line plus the
// payload JSON on its own line (json.Marshal emits no raw newlines, so
// the journal stays line-oriented and a decoder can resynchronize after
// corruption).
func encodeJournalOpen(id, hash string, frames bool, payloadJSON []byte) string {
	fr := 0
	if frames {
		fr = 1
	}
	head := fmt.Sprintf("%s open %s %s %d %d %08x", journalMagic, id, hash, fr, len(payloadJSON), checksum(payloadJSON))
	return appendLineCRC(head) + string(payloadJSON) + "\n"
}

// encodeJournalSnap renders a checkpoint-taken record: job id has a
// usable snapshot at the given iteration.
func encodeJournalSnap(id string, iter int) string {
	head := fmt.Sprintf("%s snap %s %d 0 0 00000000", journalMagic, id, iter)
	return appendLineCRC(head)
}

// encodeJournalDone renders a job-terminal record.
func encodeJournalDone(id, state string) string {
	head := fmt.Sprintf("%s done %s %s 0 0 00000000", journalMagic, id, state)
	return appendLineCRC(head)
}

// decodeJournalHeader parses one journal header line. For open records
// the payload length is returned so the caller can consume the next
// line as the config JSON.
func decodeJournalHeader(line string) (rec JournalRec, cfgLen int, payloadCRC uint32, err error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return rec, 0, 0, fmt.Errorf("store: malformed journal record %q", line)
	}
	wantCRC, perr := strconv.ParseUint(line[i+1:], 16, 32)
	if perr != nil || len(line[i+1:]) != 8 || uint32(wantCRC) != checksum([]byte(line[:i])) {
		return rec, 0, 0, fmt.Errorf("store: journal record CRC mismatch %q", line)
	}
	fields := strings.Fields(line[:i])
	if len(fields) != 7 || fields[0] != journalMagic {
		return rec, 0, 0, fmt.Errorf("store: malformed journal record %q", line)
	}
	rec.Op, rec.ID = fields[1], fields[2]
	if !validToken(rec.ID) {
		return rec, 0, 0, fmt.Errorf("store: invalid job id in journal record %q", line)
	}
	switch rec.Op {
	case "open":
		rec.Hash = fields[3]
		if !validToken(rec.Hash) {
			return rec, 0, 0, fmt.Errorf("store: invalid hash in journal record %q", line)
		}
		fr, err1 := strconv.Atoi(fields[4])
		n, err2 := strconv.Atoi(fields[5])
		pcrc, err3 := strconv.ParseUint(fields[6], 16, 32)
		if err1 != nil || err2 != nil || err3 != nil || fr < 0 || fr > 1 || n < 0 || n > maxPayload {
			return rec, 0, 0, fmt.Errorf("store: malformed journal record %q", line)
		}
		rec.Frames = fr == 1
		return rec, n, uint32(pcrc), nil
	case "snap":
		iter, err := strconv.Atoi(fields[3])
		if err != nil || iter <= 0 {
			return rec, 0, 0, fmt.Errorf("store: malformed journal record %q", line)
		}
		rec.SnapIter = iter
		return rec, 0, 0, nil
	case "done":
		rec.State = fields[3]
		if !validToken(rec.State) {
			return rec, 0, 0, fmt.Errorf("store: invalid state in journal record %q", line)
		}
		return rec, 0, 0, nil
	default:
		return rec, 0, 0, fmt.Errorf("store: unknown journal op %q", rec.Op)
	}
}

// ReadJournal decodes a journal log in file order. Like ReadIndex it
// skips corrupt records and tolerates a torn tail, never panicking; an
// open header whose config payload fails its CRC (or does not decode as
// a config) invalidates just that record.
func ReadJournal(r io.Reader) []JournalRec {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxPayload)
	var recs []JournalRec
	for sc.Scan() {
		rec, cfgLen, payloadCRC, err := decodeJournalHeader(sc.Text())
		if err != nil {
			continue
		}
		if rec.Op == "open" {
			if !sc.Scan() {
				break // torn tail: header landed, payload did not
			}
			payload := sc.Bytes()
			if len(payload) != cfgLen || checksum(payload) != payloadCRC {
				continue
			}
			// A payload carrying a "config" key is the wrapper form
			// ({"config":..., "submitted":...}); without one it is the
			// legacy bare-config form, which reads with a zero submit
			// time. Detection is structural (key presence), so the
			// decode-encode-decode cycle of compaction is a fixed point.
			var probe struct {
				Config    json.RawMessage `json:"config"`
				Submitted int64           `json:"submitted"`
			}
			if json.Unmarshal(payload, &probe) != nil {
				continue
			}
			if probe.Config != nil {
				if json.Unmarshal(probe.Config, &rec.Config) != nil {
					continue
				}
				rec.Submitted = probe.Submitted
			} else if json.Unmarshal(payload, &rec.Config) != nil {
				continue
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// ReplayJournal reduces a journal log to the set of jobs that were
// admitted but never reached a terminal state — the jobs a restarted
// daemon must recover. Last-record-wins per id: duplicated opens
// overwrite, a done for an unknown id is a no-op.
func ReplayJournal(r io.Reader) []JournalRec {
	return reduceOpen(ReadJournal(r))
}

// reduceOpen applies the replay semantics (last record wins per id) to
// decoded records, returning the open set in admission order. The ONE
// implementation of this reduction — openJournal recovery and the
// fuzz/golden oracles must not be allowed to diverge.
func reduceOpen(recs []JournalRec) []JournalRec {
	open := make(map[string]JournalRec)
	var order []string
	seen := make(map[string]bool) // ids ever appended to order — an id
	// resurrected by open/done/open must not enter order twice, or the
	// job would be recovered (and re-run) twice.
	for _, rec := range recs {
		switch rec.Op {
		case "open":
			if !seen[rec.ID] {
				seen[rec.ID] = true
				order = append(order, rec.ID)
			}
			open[rec.ID] = rec
		case "snap":
			// Deepest checkpoint wins; a snap for a job that is not open
			// (already done, or never admitted) marks nothing.
			if cur, ok := open[rec.ID]; ok && rec.SnapIter > cur.SnapIter {
				cur.SnapIter = rec.SnapIter
				open[rec.ID] = cur
			}
		case "done":
			delete(open, rec.ID)
		}
	}
	out := make([]JournalRec, 0, len(open))
	for _, id := range order {
		if rec, ok := open[id]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// reencodeJournal renders the compacted journal: the open records, each
// followed by its deepest-checkpoint snap record when one exists — so
// compaction loses neither the submit time nor the resume point.
func reencodeJournal(open []JournalRec) ([]byte, error) {
	var buf bytes.Buffer
	for _, rec := range open {
		payload, err := json.Marshal(journalOpenPayload{Config: rec.Config, Submitted: rec.Submitted})
		if err != nil {
			return nil, err
		}
		buf.WriteString(encodeJournalOpen(rec.ID, rec.Hash, rec.Frames, payload))
		if rec.SnapIter > 0 {
			buf.WriteString(encodeJournalSnap(rec.ID, rec.SnapIter))
		}
	}
	return buf.Bytes(), nil
}
