// Package store is the persistence layer under easypapd (internal/serve):
// a disk-backed, content-addressed result cache and a write-ahead job
// journal sharing one data directory. It exists so a daemon restart — a
// deploy, a crash, an OOM kill — costs a disk read per previously
// computed config instead of a recompute, and so the parameter sweeps
// that were in flight are resumed instead of silently lost (the PaPaS
// requirement: long-lived studies must survive the infrastructure).
//
// Layout of a data directory:
//
//	<dir>/objects/<hh>/<hash>  entry files (EZSTORE1 records)
//	<dir>/cache.idx            append-only CRC'd index of the entry set
//	<dir>/journal.log          append-only CRC'd write-ahead job log
//
// Every record format is ASCII-headed, CRC-32C checked, and replayable
// after arbitrary truncation (see format.go; pinned by
// testdata/store.golden and fuzzed by FuzzStoreIndexDecode /
// FuzzJournalReplay). Durability is crash-consistent, not power-fail
// proof: appends are not fsynced — a SIGKILL loses nothing (the bytes
// are in the page cache), a power cut may lose the tail, and CRC replay
// makes either case a clean prefix, never a corrupt serve.
package store

import (
	"os"
	"path/filepath"
)

// DefaultMaxBytes is the disk-cache budget when Options.MaxBytes is 0
// (256 MiB — thousands of entries at typical result+frame sizes).
const DefaultMaxBytes = 256 << 20

// Options tunes a Store.
type Options struct {
	// MaxBytes bounds the disk cache in bytes (DefaultMaxBytes if 0;
	// negative means unbounded).
	MaxBytes int64
	// Fsync upgrades durability from crash-consistent to power-fail
	// safe: entry files are synced before the rename that publishes
	// them, and journal/index commit records are synced before the call
	// that wrote them returns. The on-disk formats are unchanged —
	// fsync only narrows the window in which a power cut (not a mere
	// SIGKILL) can lose the tail. Costs one fsync per journaled
	// transition and per spilled entry; off by default.
	Fsync bool
}

// Store bundles the two durable structures of one data directory.
type Store struct {
	dir     string
	Cache   *Cache
	Journal *Journal
}

// Open opens (creating if needed) the data directory and recovers both
// structures: the cache index and journal are replayed, compacted, and
// left open for appending.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.MaxBytes < 0 {
		opts.MaxBytes = 0 // unbounded
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cache, err := openCache(dir, opts.MaxBytes, opts.Fsync)
	if err != nil {
		return nil, err
	}
	journal, err := openJournal(filepath.Join(dir, "journal.log"), opts.Fsync)
	if err != nil {
		cache.close()
		return nil, err
	}
	return &Store{dir: dir, Cache: cache, Journal: journal}, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the file handles. Entries already written stay valid;
// Close is not what makes them durable (rename and CRC replay are).
func (s *Store) Close() error {
	err1 := s.Cache.close()
	err2 := s.Journal.close()
	if err1 != nil {
		return err1
	}
	return err2
}
