package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"easypap/internal/core"
)

// testEntry builds a deterministic entry for hash h. The Label is fixed
// so encodings do not depend on the host name.
func testEntry(h string, n int) *Entry {
	return &Entry{
		Hash: h,
		Result: core.Result{
			Config:     core.Config{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 8, TileH: 8, Iterations: n, Threads: 1, Label: "test"},
			WallTime:   time.Duration(n) * time.Millisecond,
			Iterations: n,
		},
		Frames: []byte(fmt.Sprintf("EZFRAME final %d 4\nPNG%d", n, n%10)),
	}
}

func hashN(n int) string { return fmt.Sprintf("%064x", n) }

func TestEntryRoundTrip(t *testing.T) {
	e := testEntry(hashN(7), 3)
	var buf bytes.Buffer
	if err := EncodeEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != e.Hash || !reflect.DeepEqual(got.Result, e.Result) || !bytes.Equal(got.Frames, e.Frames) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}

	// Any single flipped bit in the payload must be rejected by the CRC.
	raw := buf.Bytes()
	headerEnd := bytes.IndexByte(raw, '\n') + 1
	for _, off := range []int{headerEnd, headerEnd + 5, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := DecodeEntry(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at offset %d not detected", off)
		}
	}
	// Truncation at every boundary must error, never panic.
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := DecodeEntry(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCachePutGetEvict(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e := testEntry(hashN(1), 5)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Cache.Get(e.Hash)
	if !ok || !reflect.DeepEqual(got.Result, e.Result) || !bytes.Equal(got.Frames, e.Frames) {
		t.Fatalf("get after put: ok=%v got=%+v", ok, got)
	}
	if _, ok := s.Cache.Get(hashN(99)); ok {
		t.Fatal("phantom hit")
	}
	if h, m := s.Cache.Hits(), s.Cache.Misses(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}

	// Byte-budget eviction: reopen tight and stuff it.
	s.Close()
	one := int64(entryFileSize(t, e))
	s2, err := Open(dir, Options{MaxBytes: 3 * one})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 2; i <= 6; i++ {
		if err := s2.Cache.Put(testEntry(hashN(i), 5)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s2.Cache.Len(); n != 3 {
		t.Fatalf("len=%d after eviction, want 3", n)
	}
	if b := s2.Cache.Bytes(); b != 3*one {
		t.Fatalf("bytes=%d, want %d", b, 3*one)
	}
	// The most recent three survive.
	for i := 4; i <= 6; i++ {
		if _, ok := s2.Cache.Get(hashN(i)); !ok {
			t.Fatalf("entry %d evicted, want newest retained", i)
		}
	}
	for i := 1; i <= 3; i++ {
		if _, ok := s2.Cache.Get(hashN(i)); ok {
			t.Fatalf("entry %d survived past budget", i)
		}
	}
}

func entryFileSize(t *testing.T, e *Entry) int {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

func TestCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]*Entry)
	for i := 0; i < 5; i++ {
		e := testEntry(hashN(10+i), i+1)
		want[e.Hash] = e
		if err := s.Cache.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Cache.Len(); n != 5 {
		t.Fatalf("recovered %d entries, want 5", n)
	}
	for h, e := range want {
		got, ok := s2.Cache.Get(h)
		if !ok {
			t.Fatalf("entry %s lost across reopen", h)
		}
		if !reflect.DeepEqual(got.Result, e.Result) || !bytes.Equal(got.Frames, e.Frames) {
			t.Fatalf("entry %s changed across reopen", h)
		}
	}
}

// TestCacheReopenAfterChurnHistory pins the put/del/put replay bug
// (found in review): an entry spilled, evicted and re-spilled between
// compactions must replay as exactly ONE live entry — the naive
// first-occurrence replay double-inserted it, double-counting bytes and
// orphaning a list element, which could drive evictLocked into an
// infinite loop holding the cache mutex.
func TestCacheReopenAfterChurnHistory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(hashN(1), 2)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}
	s.Cache.Delete(e.Hash)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}
	// A second entry re-put (refresh) must replay at its LAST position:
	// after put(old)/put(e2)/put(old refresh), "old" is the most recent.
	old := testEntry(hashN(2), 3)
	if err := s.Cache.Put(old); err != nil {
		t.Fatal(err)
	}
	e3 := testEntry(hashN(3), 4)
	if err := s.Cache.Put(e3); err != nil {
		t.Fatal(err)
	}
	if err := s.Cache.Put(old); err != nil { // refresh
		t.Fatal(err)
	}
	wantBytes := s.Cache.Bytes()
	s.Close()

	s2, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Cache.Len(); n != 3 {
		t.Fatalf("replayed %d entries, want 3 (put/del/put must not double-insert)", n)
	}
	if b := s2.Cache.Bytes(); b != wantBytes {
		t.Fatalf("replayed bytes=%d, want %d", b, wantBytes)
	}
	// Shrink the budget so exactly one entry must go: the eviction victim
	// must be the LRU one (e3), not the refreshed "old".
	s2.Close()
	s3, err := Open(dir, Options{MaxBytes: wantBytes - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if err := s3.Cache.Put(testEntry(hashN(4), 5)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Cache.Get(old.Hash); !ok {
		t.Fatal("refreshed entry evicted — replay lost its recency")
	}
}

func TestOpenSweepsOrphanObjects(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(hashN(1), 2)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Fabricate what a crash between rename and index append leaves: an
	// object file (and a stale temp file) the index knows nothing about.
	orphan := testEntry(hashN(2), 3)
	var buf bytes.Buffer
	if err := EncodeEntry(&buf, orphan); err != nil {
		t.Fatal(err)
	}
	orphanPath := filepath.Join(dir, "objects", orphan.Hash[:2], orphan.Hash)
	if err := os.MkdirAll(filepath.Dir(orphanPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphanPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpPath := filepath.Join(dir, "objects", orphan.Hash[:2], ".tmp-"+orphan.Hash+"-123")
	if err := os.WriteFile(tmpPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Fatal("unindexed object file not swept at open")
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept at open")
	}
	if _, ok := s2.Cache.Get(e.Hash); !ok {
		t.Fatal("sweep removed a live, indexed entry")
	}
}

func TestCacheRejectsCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := testEntry(hashN(3), 2)
	if err := s.Cache.Put(e); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit behind the store's back.
	path := s.Cache.objectPath(e.Hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cache.Get(e.Hash); ok {
		t.Fatal("corrupt entry served")
	}
	if s.Cache.Corrupt() != 1 {
		t.Fatalf("corrupt counter = %d, want 1", s.Cache.Corrupt())
	}
	// The corrupt entry was dropped entirely.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object file not removed")
	}
	if s.Cache.Len() != 0 {
		t.Fatal("corrupt entry still indexed")
	}
}

func TestIndexTornTailAndCorruptLines(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(encodeIndexRec(IndexRec{Op: opPut, Hash: hashN(1), Size: 100, PayloadCRC: 7}))
	buf.WriteString(encodeIndexRec(IndexRec{Op: opPut, Hash: hashN(2), Size: 200, PayloadCRC: 8}))
	buf.WriteString("EZIDX put garbage not-a-number xx yy\n") // corrupt middle line
	buf.WriteString(encodeIndexRec(IndexRec{Op: opDel, Hash: hashN(1)}))
	full := buf.String()
	torn := full[:len(full)-9] // tear the final record

	recs := ReadIndex(strings.NewReader(torn))
	if len(recs) != 2 {
		t.Fatalf("decoded %d records from torn log, want 2 (the del is torn, the garbage skipped)", len(recs))
	}
	recs = ReadIndex(strings.NewReader(full))
	if len(recs) != 3 || recs[2].Op != opDel {
		t.Fatalf("decoded %v from full log", recs)
	}
}

func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Kernel: "mandel", Dim: 64, Iterations: 3, Threads: 1, Label: "test"}
	if err := s.Journal.Begin("j-000001", hashN(1), false, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Begin("j-000002", hashN(2), true, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Begin("j-000003", hashN(3), false, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.End("j-000002", "done"); err != nil {
		t.Fatal(err)
	}
	s.Close() // simulated crash: j-000001 and j-000003 never finished

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Journal.Recovered()
	if len(rec) != 2 || rec[0].ID != "j-000001" || rec[1].ID != "j-000003" {
		t.Fatalf("recovered %+v, want j-000001 and j-000003 in order", rec)
	}
	if rec[0].Hash != hashN(1) || rec[0].Frames || rec[0].Config.Kernel != "mandel" {
		t.Fatalf("recovered record lost fields: %+v", rec[0])
	}
	if got := s2.Journal.MaxID(); got != 3 {
		t.Fatalf("MaxID=%d, want 3", got)
	}
	// Recovery compacted: the journal now holds exactly the open set
	// plus the id high-water-mark record.
	data, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ReadJournal(bytes.NewReader(data))); n != 3 {
		t.Fatalf("journal holds %d records after compaction, want 3 (2 open + hwm)", n)
	}
}

// TestJournalMaxIDSurvivesCompaction pins the id-reuse bug (found in
// review): compaction keeps only open records, so without the
// high-water-mark record a restart after all jobs completed would
// restart the id sequence — and a client still polling a pre-restart id
// could be handed a different submitter's job.
func TestJournalMaxIDSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Kernel: "mandel", Dim: 64, Label: "test"}
	for i := 1; i <= 100; i++ {
		id := fmt.Sprintf("j-%06d", i)
		if err := s.Journal.Begin(id, hashN(i), false, cfg, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Journal.End(id, "done"); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // every job done; compaction has certainly run

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.Journal.Recovered()) != 0 {
		t.Fatal("nothing should be open")
	}
	if got := s2.Journal.MaxID(); got != 100 {
		t.Fatalf("MaxID=%d after restart, want 100 — ids would be reused", got)
	}
}

func TestJournalTornTail(t *testing.T) {
	cfg := core.Config{Kernel: "mandel", Dim: 64, Label: "test"}
	cfgJSON := []byte(`{"kernel":"mandel","dim":64,"schedule":"static","label":"test"}`)
	var buf bytes.Buffer
	buf.WriteString(encodeJournalOpen("j-000001", hashN(1), false, cfgJSON))
	buf.WriteString(encodeJournalDone("j-000001", "done"))
	buf.WriteString(encodeJournalOpen("j-000002", hashN(2), false, cfgJSON))
	full := buf.String()

	for cut := 0; cut <= len(full); cut++ {
		recs := ReplayJournal(strings.NewReader(full[:cut]))
		for _, r := range recs {
			if r.ID != "j-000001" && r.ID != "j-000002" {
				t.Fatalf("cut %d: phantom job %q", cut, r.ID)
			}
		}
		if cut == len(full) {
			if len(recs) != 1 || recs[0].ID != "j-000002" {
				t.Fatalf("full replay: %+v", recs)
			}
		}
	}
	_ = cfg
}

// TestJournalResurrectedJobRecoversOnce pins two interacting replay
// bugs (found when the cluster bounce test tripped them together): an
// open/done/open history — a job id re-admitted after completing, which
// crash recovery itself produces — must replay as exactly ONE open job,
// and the high-water-mark record written by compaction must not erase
// the open job that happens to hold the highest id.
func TestJournalResurrectedJobRecoversOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Kernel: "mandel", Dim: 64, Label: "test"}
	if err := s.Journal.Begin("j-000001", hashN(1), false, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.End("j-000001", "done"); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal.Begin("j-000001", hashN(1), false, cfg, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Two generations: the first rewrites the journal with its hwm
	// record (j-000001 is BOTH the open job and the id high-water mark),
	// the second must still see exactly one open job.
	for gen := 0; gen < 2; gen++ {
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec := s2.Journal.Recovered()
		if len(rec) != 1 || rec[0].ID != "j-000001" {
			t.Fatalf("gen %d recovered %+v, want exactly one j-000001", gen, rec)
		}
		if got := s2.Journal.MaxID(); got != 1 {
			t.Fatalf("gen %d MaxID=%d, want 1", gen, got)
		}
		s2.Close()
	}
}

func TestJournalDuplicateOpenLastWins(t *testing.T) {
	cfgA := []byte(`{"kernel":"mandel","dim":64,"schedule":"static"}`)
	cfgB := []byte(`{"kernel":"mandel","dim":128,"schedule":"static"}`)
	var buf bytes.Buffer
	buf.WriteString(encodeJournalOpen("j-000001", hashN(1), false, cfgA))
	buf.WriteString(encodeJournalOpen("j-000001", hashN(2), false, cfgB))
	recs := ReplayJournal(strings.NewReader(buf.String()))
	if len(recs) != 1 || recs[0].Hash != hashN(2) || recs[0].Config.Dim != 128 {
		t.Fatalf("duplicate open: %+v, want last record to win", recs)
	}
}

func TestCompactionBoundsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Churn one hash far past the compaction threshold.
	for i := 0; i < 500; i++ {
		if err := s.Cache.Put(testEntry(hashN(i%3), 1)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "cache.idx"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ReadIndex(bytes.NewReader(data))); n > 200 {
		t.Fatalf("index grew to %d records despite compaction", n)
	}
	if s.Cache.Len() != 3 {
		t.Fatalf("live entries = %d, want 3", s.Cache.Len())
	}
}
