package store

import (
	"bytes"
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Cache is the disk tier of the daemon's two-tier result cache: entry
// files content-addressed by config hash under objects/, plus an
// append-only CRC'd index (cache.idx) that makes boot O(live entries)
// instead of a directory walk. It survives SIGKILL by construction —
// entry files are written to a temp name and renamed into place, index
// records are self-checking, and replay tolerates a torn tail — so a
// restarted daemon serves yesterday's results without recomputing them.
//
// Eviction is LRU by byte budget. Reads are deduplicated per hash
// (singleflight): a thundering herd of identical submissions costs one
// disk read, everyone else blocks on it.
type Cache struct {
	dir      string // objects root
	maxBytes int64
	fsync    bool // sync object files and index commits (Options.Fsync)

	mu      sync.Mutex
	idx     *os.File // append handle on cache.idx
	idxPath string
	entries map[string]*list.Element // hash -> element whose Value is *diskEntry
	order   *list.List               // front = most recently used
	bytes   int64
	stale   int // index records superseded since the last compaction

	flight map[string]*flightCall // in-progress disk reads, per hash

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64 // entries rejected by CRC/decode and dropped
}

type diskEntry struct {
	hash string
	size int64
}

// flightCall is one in-flight disk read shared by concurrent getters.
type flightCall struct {
	done chan struct{}
	e    *Entry
	ok   bool
}

// openCache opens (or initializes) the disk cache under dir, replaying
// the index. Entries whose file has vanished are dropped.
func openCache(dir string, maxBytes int64, fsync bool) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	c := &Cache{
		dir:      filepath.Join(dir, "objects"),
		maxBytes: maxBytes,
		fsync:    fsync,
		idxPath:  filepath.Join(dir, "cache.idx"),
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		flight:   make(map[string]*flightCall),
	}
	if data, err := os.ReadFile(c.idxPath); err == nil {
		recs := ReadIndex(bytes.NewReader(data))
		// Last record wins per hash — a put/del/put history (spill, evict,
		// re-spill between compactions) must replay as exactly ONE live
		// entry, positioned by its LAST put: later records are more recent
		// activity, so replaying in last-occurrence order seeds the LRU
		// with the log's tail at the front.
		live := make(map[string]IndexRec, len(recs))
		lastPos := make(map[string]int, len(recs))
		for i, rec := range recs {
			switch rec.Op {
			case opPut:
				live[rec.Hash] = rec
				lastPos[rec.Hash] = i
			case opDel:
				delete(live, rec.Hash)
				delete(lastPos, rec.Hash)
			}
		}
		hashes := make([]string, 0, len(live))
		for h := range live {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(a, b int) bool { return lastPos[hashes[a]] < lastPos[hashes[b]] })
		for _, h := range hashes {
			rec := live[h]
			if fi, err := os.Stat(c.objectPath(h)); err != nil || fi.Size() != rec.Size {
				continue // vanished or resized behind our back: not trustworthy
			}
			c.entries[h] = c.order.PushFront(&diskEntry{hash: h, size: rec.Size})
			c.bytes += rec.Size
		}
		c.stale = len(recs) - c.order.Len()
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	c.sweepOrphans()
	idx, err := os.OpenFile(c.idxPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.idx = idx
	// A recovered index usually carries dead weight; start clean.
	c.mu.Lock()
	c.maybeCompactLocked()
	c.mu.Unlock()
	return c, nil
}

// sweepOrphans removes object files the index does not reference: a
// crash between the object rename and the index append (or a torn
// index tail) leaves files no replay can see — without this sweep they
// would be invisible to the byte budget and accumulate forever. Also
// clears abandoned .tmp- files from interrupted Puts. Runs once at
// open, before any concurrent access.
func (c *Cache) sweepOrphans() {
	prefixes, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		sub := filepath.Join(c.dir, p.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, f := range files {
			if _, ok := c.entries[f.Name()]; !ok {
				os.Remove(filepath.Join(sub, f.Name()))
			}
		}
	}
}

func (c *Cache) objectPath(hash string) string {
	prefix := hash
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(c.dir, prefix, hash)
}

// Get returns the entry stored for hash, verifying its CRC. A corrupt
// or vanished entry is dropped and reported as a miss — the store never
// serves bytes it cannot vouch for. Concurrent gets of the same hash
// share one disk read. Snapshot keys are a plain miss here: their
// objects are EZSNAP1 records, which GetSnapshot decodes (letting them
// reach DecodeEntry would misdiagnose every one as corruption and
// delete it).
func (c *Cache) Get(hash string) (*Entry, bool) {
	if IsSnapshotKey(hash) {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[hash]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if f, inflight := c.flight[hash]; inflight {
		c.mu.Unlock()
		<-f.done
		if f.ok {
			c.hits.Add(1)
		} else {
			c.misses.Add(1)
		}
		return f.e, f.ok
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[hash] = f
	c.order.MoveToFront(el)
	c.mu.Unlock()

	e, err := c.readObject(hash)
	switch {
	case err == nil:
		f.e, f.ok = e, true
	case os.IsNotExist(err):
		// Not corruption: a concurrent eviction (or delete) won the race
		// between our index lookup and the read. Plain miss.
	default:
		c.corrupt.Add(1)
		c.Delete(hash)
	}

	c.mu.Lock()
	delete(c.flight, hash)
	c.mu.Unlock()
	close(f.done)
	if f.ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return f.e, f.ok
}

func (c *Cache) readObject(hash string) (*Entry, error) {
	rf, err := os.Open(c.objectPath(hash))
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	e, err := DecodeEntry(rf)
	if err != nil {
		return nil, err
	}
	if e.Hash != hash {
		return nil, fmt.Errorf("store: object %s contains entry for %s", hash, e.Hash)
	}
	return e, nil
}

// Put stores an entry, evicting least-recently-used entries beyond the
// byte budget. The object file lands via temp-file + rename so a crash
// mid-write can never leave a half-entry under its final name.
func (c *Cache) Put(e *Entry) error {
	if !validToken(e.Hash) {
		return fmt.Errorf("store: invalid entry hash %q", e.Hash)
	}
	if IsSnapshotKey(e.Hash) {
		return fmt.Errorf("store: entry hash %q collides with the snapshot key space", e.Hash)
	}
	var buf bytes.Buffer
	if err := EncodeEntry(&buf, e); err != nil {
		return err
	}
	return c.putObject(e.Hash, buf.Bytes())
}

// PutSnapshot stores a checkpoint under its (prefix-hash, iter) key. It
// shares the entry cache's objects directory, index log and byte budget
// — a snapshot is just another content-addressed object, except that
// eviction sacrifices snapshots (shallowest first) before any result.
func (c *Cache) PutSnapshot(s *Snapshot) error {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, s); err != nil {
		return err
	}
	return c.putObject(SnapshotKey(s.PrefixHash, s.Iter), buf.Bytes())
}

// putObject is the shared landing path of Put and PutSnapshot: encoded
// record bytes under a key, written temp-file + rename, appended to the
// index, accounted against the byte budget.
func (c *Cache) putObject(key string, data []byte) error {
	if !validToken(key) {
		return fmt.Errorf("store: invalid object key %q", key)
	}
	size := int64(len(data))
	if size > maxPayload {
		// The index decoder rejects sizes beyond maxPayload; storing a
		// bigger entry (possible with an unbounded budget) would replay
		// as dead and be swept at the next boot — refuse it up front.
		return fmt.Errorf("store: entry %s (%d bytes) exceeds the on-disk record limit (%d)", key, size, int64(maxPayload))
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return fmt.Errorf("store: entry %s (%d bytes) exceeds the cache budget (%d)", key, size, c.maxBytes)
	}

	path := c.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if c.fsync {
		// Sync before the rename publishes the entry: a power cut after
		// Put returns must not leave an empty (or torn) file under the
		// final name. Without fsync the rename itself is crash-safe but
		// the data may still be page-cache-only.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	rec := IndexRec{Op: opPut, Hash: key, Size: size, PayloadCRC: checksum(data)}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Content-addressed: same hash, same bytes. Refresh recency and
		// byte accounting (the rewrite may differ only if the entry was
		// built by an older encoder).
		c.bytes += size - el.Value.(*diskEntry).size
		el.Value.(*diskEntry).size = size
		c.order.MoveToFront(el)
		c.stale++
	} else {
		c.entries[key] = c.order.PushFront(&diskEntry{hash: key, size: size})
		c.bytes += size
	}
	if _, err := c.idx.WriteString(encodeIndexRec(rec)); err != nil {
		return err
	}
	if c.fsync {
		if err := c.idx.Sync(); err != nil {
			return err
		}
	}
	c.evictLocked()
	c.maybeCompactLocked()
	return nil
}

// GetSnapshot returns the checkpoint stored for (prefixHash, iter),
// verifying its CRC. Corrupt or mismatched snapshots are dropped and
// reported as missing, like Get. No singleflight: snapshot reads happen
// once per resumed job, not per thundering herd.
func (c *Cache) GetSnapshot(prefixHash string, iter int) (*Snapshot, bool) {
	key := SnapshotKey(prefixHash, iter)
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.mu.Unlock()

	rf, err := os.Open(c.objectPath(key))
	if err != nil {
		c.misses.Add(1) // concurrent eviction won the race: plain miss
		return nil, false
	}
	s, err := DecodeSnapshot(rf)
	rf.Close()
	if err != nil || s.PrefixHash != prefixHash || s.Iter != iter {
		c.corrupt.Add(1)
		c.Delete(key)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return s, true
}

// DeepestSnapshot returns the deepest stored checkpoint of prefixHash
// at or below maxIter — the best resume point for a run of maxIter
// iterations. Corrupt candidates are dropped and the next-deepest is
// tried, so one bad object degrades the resume, never fails it.
func (c *Cache) DeepestSnapshot(prefixHash string, maxIter int) (*Snapshot, bool) {
	c.mu.Lock()
	var iters []int
	for key := range c.entries {
		if p, iter, ok := ParseSnapshotKey(key); ok && p == prefixHash && iter <= maxIter {
			iters = append(iters, iter)
		}
	}
	c.mu.Unlock()
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	for _, iter := range iters {
		if s, ok := c.GetSnapshot(prefixHash, iter); ok {
			return s, true
		}
	}
	return nil, false
}

// GetWire returns the raw encoded object bytes for a key — entry or
// snapshot, whichever kind the key names — after verifying they decode.
// This is the cluster replication read path: peers exchange wire bytes
// as-is, and the magic line tells the receiver which decoder to apply.
func (c *Cache) GetWire(key string) ([]byte, bool) {
	if IsSnapshotKey(key) {
		prefixHash, iter, _ := ParseSnapshotKey(key)
		s, ok := c.GetSnapshot(prefixHash, iter)
		if !ok {
			return nil, false
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, s); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	}
	e, ok := c.Get(key)
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	if err := EncodeEntry(&buf, e); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// Delete removes an entry (used for corrupt objects and tests).
func (c *Cache) Delete(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deleteLocked(hash)
	c.maybeCompactLocked()
}

func (c *Cache) deleteLocked(hash string) {
	el, ok := c.entries[hash]
	if !ok {
		return
	}
	c.bytes -= el.Value.(*diskEntry).size
	c.order.Remove(el)
	delete(c.entries, hash)
	os.Remove(c.objectPath(hash))
	_, _ = c.idx.WriteString(encodeIndexRec(IndexRec{Op: opDel, Hash: hash}))
	if c.fsync {
		_ = c.idx.Sync()
	}
	c.stale += 2 // the del record plus the put it killed
}

// evictLocked drops entries until under budget. Snapshots go first,
// shallowest iteration first — a shallow checkpoint saves the least
// recompute, and results are never sacrificed while a rebuildable
// checkpoint remains. Only when no snapshots are left does plain LRU
// take over.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		if key, ok := c.shallowestSnapLocked(); ok {
			c.deleteLocked(key)
			continue
		}
		last := c.order.Back()
		c.deleteLocked(last.Value.(*diskEntry).hash)
	}
}

// shallowestSnapLocked finds the stored snapshot with the lowest
// iteration across all prefixes — the eviction policy's first victim.
func (c *Cache) shallowestSnapLocked() (string, bool) {
	best, bestIter := "", -1
	for key := range c.entries {
		if _, iter, ok := ParseSnapshotKey(key); ok && (bestIter < 0 || iter < bestIter) {
			best, bestIter = key, iter
		}
	}
	return best, bestIter >= 0
}

// maybeCompactLocked rewrites the index once dead records dominate it:
// live entries in LRU order (oldest first, so replay reconstructs the
// same recency), written to a temp file and renamed over cache.idx.
func (c *Cache) maybeCompactLocked() {
	if c.stale <= c.order.Len()+64 {
		return
	}
	var buf bytes.Buffer
	for el := c.order.Back(); el != nil; el = el.Prev() {
		de := el.Value.(*diskEntry)
		buf.WriteString(encodeIndexRec(IndexRec{Op: opPut, Hash: de.hash, Size: de.size}))
	}
	tmp := c.idxPath + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return // keep appending to the old index; compaction is advisory
	}
	if err := os.Rename(tmp, c.idxPath); err != nil {
		os.Remove(tmp)
		return
	}
	idx, err := os.OpenFile(c.idxPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	c.idx.Close()
	c.idx = idx
	c.stale = 0
}

// Hashes returns the hashes of every live entry, most recently used
// first — the work list of the cluster rebalancer, which re-homes
// entries after a ring change (content addressing makes each transfer
// self-validating: the key is the checksum of what it names).
func (c *Cache) Hashes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*diskEntry).hash)
	}
	return out
}

// Len returns the number of live disk entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the total size of live entry files.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Hits, Misses and Corrupt expose the read counters.
func (c *Cache) Hits() int64    { return c.hits.Load() }
func (c *Cache) Misses() int64  { return c.misses.Load() }
func (c *Cache) Corrupt() int64 { return c.corrupt.Load() }

func (c *Cache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Close()
}
