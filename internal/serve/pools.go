package serve

import (
	"sync"
	"sync/atomic"

	"easypap/internal/sched"
)

// poolSet is the warm-pool registry: instead of every job building and
// tearing down its own sched.Pool (goroutine spawns, first-dispatch page
// faults), completed jobs return their pool here and the next job with
// the same thread count leases it back warm. Pools are keyed by worker
// count because a lease must match the job's Threads exactly
// (core.RunWith enforces it).
type poolSet struct {
	mu      sync.Mutex
	idle    map[int][]*sched.Pool // worker count -> idle pools
	maxIdle int                   // per worker count; beyond it pools are closed
	closed  bool

	warm atomic.Int64 // leases satisfied from the warm set
	cold atomic.Int64 // leases that had to build a pool
}

func newPoolSet(maxIdle int) *poolSet {
	if maxIdle < 0 {
		maxIdle = 0
	}
	return &poolSet{idle: make(map[int][]*sched.Pool), maxIdle: maxIdle}
}

// lease returns a pool with exactly `threads` workers, warm if one is
// available.
func (ps *poolSet) lease(threads int) *sched.Pool {
	ps.mu.Lock()
	if q := ps.idle[threads]; len(q) > 0 {
		p := q[len(q)-1]
		ps.idle[threads] = q[:len(q)-1]
		ps.mu.Unlock()
		ps.warm.Add(1)
		return p
	}
	ps.mu.Unlock()
	ps.cold.Add(1)
	return sched.NewPool(threads)
}

// release returns a pool to the warm set after resetting it; pools that
// fail the reset, exceed the idle capacity, or arrive after close are
// closed instead.
func (ps *poolSet) release(p *sched.Pool) {
	if err := p.Reset(); err != nil {
		p.Close()
		return
	}
	ps.mu.Lock()
	if !ps.closed && len(ps.idle[p.Workers()]) < ps.maxIdle {
		ps.idle[p.Workers()] = append(ps.idle[p.Workers()], p)
		ps.mu.Unlock()
		return
	}
	ps.mu.Unlock()
	p.Close()
}

// idleCount returns how many pools are currently parked warm.
func (ps *poolSet) idleCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, q := range ps.idle {
		n += len(q)
	}
	return n
}

// close shuts down every idle pool and refuses future releases.
func (ps *poolSet) close() {
	ps.mu.Lock()
	pools := make([]*sched.Pool, 0)
	for _, q := range ps.idle {
		pools = append(pools, q...)
	}
	ps.idle = make(map[int][]*sched.Pool)
	ps.closed = true
	ps.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
