package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Canonical returns the canonical textual form of the configuration: the
// config is normalized first, so two configs that normalize identically
// canonicalize identically (e.g. TileW=0 and TileW=32 on a 1024 image).
//
// Only the fields that determine *what is computed* participate —
// kernel, variant, geometry, iteration count, execution resources and the
// kernel inputs. Presentation and instrumentation fields (Label, output
// directories, tracing, monitoring, display mode) are excluded: they
// change what is recorded about a run, never its result. This is the key
// of the daemon's result cache (internal/serve), so widening it would
// silently turn cache hits into misses and narrowing it would serve wrong
// results.
func (c Config) Canonical() (string, error) {
	n, err := c.Normalize()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"kernel=%s variant=%s dim=%d tile=%dx%d iters=%d threads=%d sched=%s ranks=%d arg=%q seed=%d",
		n.Kernel, n.Variant, n.Dim, n.TileW, n.TileH, n.Iterations,
		n.Threads, n.Schedule, n.MPIRanks, n.Arg, n.Seed), nil
}

// Hash returns the hex SHA-256 of the canonical form — a stable identity
// for "this exact computation" suitable as a cache key or a job
// deduplication handle.
func (c Config) Hash() (string, error) {
	s, err := c.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalPrefix returns the canonical form with the iteration count
// removed: the identity of the *trajectory* a config computes rather
// than of one stopping point on it. Two configs that differ only in
// Iterations share every computed iteration, so they share this string —
// it is the basis of the snapshot key space (a checkpoint taken at
// iteration k of one run is a valid resume point for any deeper run of
// the same prefix).
func (c Config) CanonicalPrefix() (string, error) {
	n, err := c.Normalize()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"kernel=%s variant=%s dim=%d tile=%dx%d threads=%d sched=%s ranks=%d arg=%q seed=%d",
		n.Kernel, n.Variant, n.Dim, n.TileW, n.TileH,
		n.Threads, n.Schedule, n.MPIRanks, n.Arg, n.Seed), nil
}

// PrefixHash returns the hex SHA-256 of the canonical prefix form — the
// iteration-independent identity under which snapshots are stored. The
// snapshot key is the pair (PrefixHash, iter).
func (c Config) PrefixHash() (string, error) {
	s, err := c.CanonicalPrefix()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// HashPoint maps a Config.Hash value onto the uint64 key space used by
// consistent-hash routing (internal/serve/cluster): the first 64 bits of
// the SHA-256, which are uniformly distributed over the ring. Non-hash
// inputs (short or non-hex strings) fall back to hashing the raw string,
// so the mapping is total — every job routes somewhere deterministic.
func HashPoint(hash string) uint64 {
	if len(hash) >= 16 {
		if v, err := strconv.ParseUint(hash[:16], 16, 64); err == nil {
			return v
		}
	}
	sum := sha256.Sum256([]byte(hash))
	return binary.BigEndian.Uint64(sum[:8])
}
