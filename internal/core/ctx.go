package core

import (
	"context"
	"sync/atomic"
	"time"

	"easypap/internal/img2d"
	"easypap/internal/monitor"
	"easypap/internal/mpi"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

// Ctx is the execution context handed to kernel functions: the image
// buffers (cur_img / next_img), the worker pool, the tile decomposition,
// and the instrumentation entry points (monitoring_start_tile /
// monitoring_end_tile). Under MPI it also carries the communicator and the
// rank's row band.
type Ctx struct {
	Cfg  Config
	Buf  *img2d.Buffers
	Pool *sched.Pool
	Grid sched.TileGrid

	// Comm is non-nil when the variant runs under --mpirun; Band is this
	// rank's horizontal slab of the image.
	Comm *mpi.Comm
	Band mpi.Band

	mon     *monitor.Monitor
	rec     *trace.Recorder
	instr   bool // mon != nil || rec != nil, precomputed for the hot path
	curIter atomic.Int32
	iters   int // completed iterations (run loop bookkeeping)
	priv    any
	goCtx   context.Context // run cancellation (never nil inside a run)

	activity   []IterActivity     // per-iteration frontier sizes (lazy kernels)
	onActivity func(IterActivity) // live observer (RunOptions.OnActivity)

	// Dirty-tile capture for delta frames: when the display path wants
	// them (wantDirty), ReportActivity copies the reported active set into
	// dirtyTiles — the caller's slice is only valid until the frontier's
	// next Advance, but refreshDisplay runs after the swap.
	wantDirty  bool
	dirtyTiles []int32 // copy of the latest reported active set (reused)
	dirtyIter  int     // iteration dirtyTiles belongs to
	dirtyOK    bool    // a tile list was reported for dirtyIter

	halosSent    int64                                             // boundary messages this rank sent
	halosSkipped int64                                             // quiet edges this rank skipped
	haloBytes    int64                                             // boundary payload bytes sent
	onHalo       func(sent, skipped, bytes int64, d time.Duration) // live observer (RunOptions.OnHalo)
}

// IterActivity is one iteration's tile-frontier size, as reported by lazy
// kernel variants through ReportActivity: how many of the Total owned
// tiles were dispatched. The per-run series (Result.Activity) is the
// job's "frontier collapse" curve a serving client can watch.
type IterActivity struct {
	Iter   int `json:"iter"`
	Active int `json:"active"`
	Total  int `json:"total"`
}

// Cur returns the current (read) image — the cur_img macro.
func (ctx *Ctx) Cur() *img2d.Image { return ctx.Buf.Cur() }

// Next returns the next (write) image — the next_img macro.
func (ctx *Ctx) Next() *img2d.Image { return ctx.Buf.Next() }

// Swap exchanges the images — EASYPAP's swap_images().
func (ctx *Ctx) Swap() { ctx.Buf.Swap() }

// Dim returns the image side length — the DIM global of C kernels.
func (ctx *Ctx) Dim() int { return ctx.Cfg.Dim }

// SetPriv stores kernel-private state (zoom coordinates, board structures,
// ...) for the duration of the run.
func (ctx *Ctx) SetPriv(v any) { ctx.priv = v }

// Priv returns the kernel-private state stored by SetPriv.
func (ctx *Ctx) Priv() any { return ctx.priv }

// Iter returns the current 1-based iteration number.
func (ctx *Ctx) Iter() int { return int(ctx.curIter.Load()) }

// StartTile opens an instrumented tile span for the worker —
// monitoring_start_tile(who). It reduces to one branch when neither
// monitoring nor tracing is active.
func (ctx *Ctx) StartTile(worker int) {
	if !ctx.instr {
		return
	}
	if ctx.mon != nil {
		ctx.mon.StartTile(worker)
	}
	if ctx.rec != nil {
		ctx.rec.StartTile(worker)
	}
}

// EndTile closes the span with the computed rectangle —
// monitoring_end_tile(x, y, w, h, who).
func (ctx *Ctx) EndTile(x, y, w, h, worker int) {
	if !ctx.instr {
		return
	}
	if ctx.mon != nil {
		ctx.mon.EndTile(x, y, w, h, worker)
	}
	if ctx.rec != nil {
		ctx.rec.EndTile(x, y, w, h, worker, int(ctx.curIter.Load()))
	}
}

// DoTile runs body bracketed by StartTile/EndTile — the do_tile pattern of
// the paper's Fig. 2 with the instrumentation already in place. Hot loops
// prefer calling StartTile/EndTile directly around straight-line code: that
// avoids materializing a closure per tile. DoTile remains for call sites
// where the closure is already at hand.
func (ctx *Ctx) DoTile(x, y, w, h, worker int, body func()) {
	if !ctx.instr {
		body()
		return
	}
	ctx.StartTile(worker)
	body()
	ctx.EndTile(x, y, w, h, worker)
}

// ReportActivity records the tile frontier a lazy kernel dispatches this
// iteration: active of total owned tiles, with the active tile indices
// (tiles may be nil when the caller tracks counts only). The series lands
// in Result.Activity, feeds the monitor's frontier heat map, and fires the
// run's live activity observer — the plumbing that lets easypapd clients
// watch a frontier collapse. Call it once per iteration, before or after
// the dispatch; eager variants simply never call it.
func (ctx *Ctx) ReportActivity(active, total int, tiles []int32) {
	a := IterActivity{Iter: ctx.Iter(), Active: active, Total: total}
	ctx.activity = append(ctx.activity, a)
	if ctx.mon != nil {
		ctx.mon.RecordActivity(active, total, tiles, ctx.Grid.TilesX, ctx.Grid.TilesY)
	}
	if ctx.onActivity != nil {
		ctx.onActivity(a)
	}
	if ctx.wantDirty {
		ctx.dirtyIter = a.Iter
		ctx.dirtyOK = tiles != nil
		ctx.dirtyTiles = append(ctx.dirtyTiles[:0], tiles...)
	}
}

// Activity returns the per-iteration frontier series reported so far (nil
// for kernels that never report).
func (ctx *Ctx) Activity() []IterActivity { return ctx.activity }

// ReportHalo records one boundary-exchange round of a distributed kernel:
// how many halo messages this rank sent, how many quiet edges the
// frontier-skip rule elided, the payload bytes shipped, and the wall time
// the protocol took. Totals land in Result.HalosSent/HalosSkipped and the
// live observer (RunOptions.OnHalo) feeds a serving shard's per-node
// counters and stage histograms. mpi.Halo calls it once per exchange when
// wired as its OnStep observer.
func (ctx *Ctx) ReportHalo(sent, skipped, bytes int64, d time.Duration) {
	ctx.halosSent += sent
	ctx.halosSkipped += skipped
	ctx.haloBytes += bytes
	if ctx.onHalo != nil {
		ctx.onHalo(sent, skipped, bytes, d)
	}
}

// AddWork accumulates per-task performance-counter units into the
// worker's open tile/task span (no-op without an active tracer). Kernels
// report hardware-independent work units — escape iterations, touched
// pixels — standing in for the PAPI counters of the paper's future work.
func (ctx *Ctx) AddWork(worker int, units int64) {
	if ctx.rec != nil {
		ctx.rec.AddWork(worker, units)
	}
}

// StartTask opens an instrumented task span (traced as KindTask so
// EASYVIEW distinguishes dependent tasks from plain tiles).
func (ctx *Ctx) StartTask(worker int) {
	if !ctx.instr {
		return
	}
	if ctx.mon != nil {
		ctx.mon.StartTile(worker)
	}
	if ctx.rec != nil {
		ctx.rec.StartSpan(worker, trace.KindTask)
	}
}

// EndTask closes a task span with the computed rectangle.
func (ctx *Ctx) EndTask(x, y, w, h, worker int) {
	ctx.EndTile(x, y, w, h, worker)
}

// ForIterations is the kernel-side iteration loop: it brackets every
// iteration for the monitor and the tracer and honours early convergence.
// body returns false to stop iterating (steady state); ForIterations
// returns the number of iterations actually executed.
//
// A typical variant reads:
//
//	func mandelOmpTiled(ctx *core.Ctx, nbIter int) int {
//	    return ctx.ForIterations(nbIter, func(it int) bool {
//	        ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, doTile)
//	        zoom()
//	        return true
//	    })
//	}
func (ctx *Ctx) ForIterations(nbIter int, body func(it int) bool) int {
	done := 0
	for it := 1; it <= nbIter; it++ {
		// Cancellation is honored at iteration boundaries: the construct in
		// flight finishes (workers join at its implicit barrier), so the
		// pool is idle and reusable the moment the run returns.
		if ctx.goCtx != nil && ctx.goCtx.Err() != nil {
			break
		}
		iter := ctx.iters + it
		ctx.curIter.Store(int32(iter))
		if ctx.mon != nil {
			ctx.mon.StartIteration(iter)
		}
		cont := body(it)
		if ctx.mon != nil {
			ctx.mon.EndIteration()
		}
		done = it
		if !cont {
			break
		}
	}
	return done
}

// Monitor exposes the per-iteration statistics collected so far (nil when
// monitoring is off). Figure benchmarks use it to examine loads and tile
// assignments.
func (ctx *Ctx) Monitor() *monitor.Monitor { return ctx.mon }

// Recorder exposes the trace recorder (nil when tracing is off).
func (ctx *Ctx) Recorder() *trace.Recorder { return ctx.rec }

// RecordTaskEvent lets the task engine log a span with explicit timing
// (used by taskdep observers).
func (ctx *Ctx) RecordTaskEvent(e trace.Event) {
	if ctx.rec != nil {
		e.Iter = ctx.curIter.Load()
		ctx.rec.RecordEvent(e)
	}
}

// TraceNow returns the tracer-relative timestamp, or 0 with no tracer.
func (ctx *Ctx) TraceNow() int64 {
	if ctx.rec == nil {
		return 0
	}
	return ctx.rec.Now()
}

// Context returns the run's cancellation context. Kernels with long
// single iterations may poll it to abort early; ForIterations already
// checks it at every iteration boundary. It is context.Background() for
// runs started without RunContext.
func (ctx *Ctx) Context() context.Context {
	if ctx.goCtx == nil {
		return context.Background()
	}
	return ctx.goCtx
}

// Rank returns the MPI rank (0 when not distributed).
func (ctx *Ctx) Rank() int {
	if ctx.Comm == nil {
		return 0
	}
	return ctx.Comm.Rank()
}

// IsMaster reports whether this is the displaying process (rank 0, or the
// only process).
func (ctx *Ctx) IsMaster() bool { return ctx.Rank() == 0 }
