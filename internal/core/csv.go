package core

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Performance-mode results are appended to a CSV file together with every
// execution and configuration parameter (paper §II-C), so that experiment
// scripts can accumulate data across runs and easyplot can filter and group
// them later.

// CSVHeader lists the result columns in order. "time_us" is the completion
// time in microseconds (EASYPAP's refTime unit, visible in the Fig. 6
// caption: refTime=669009).
var CSVHeader = []string{
	"machine", "kernel", "variant", "dim", "tilew", "tileh",
	"threads", "schedule", "ranks", "iterations", "arg", "time_us",
}

// CSVRecord renders the result as one CSV row matching CSVHeader.
func (r Result) CSVRecord() []string {
	return []string{
		r.Config.Label,
		r.Config.Kernel,
		r.Config.Variant,
		strconv.Itoa(r.Config.Dim),
		strconv.Itoa(r.Config.TileW),
		strconv.Itoa(r.Config.TileH),
		strconv.Itoa(r.Config.Threads),
		r.Config.Schedule.String(),
		strconv.Itoa(r.Config.MPIRanks),
		strconv.Itoa(r.Iterations),
		r.Config.Arg,
		strconv.FormatInt(r.WallTime.Microseconds(), 10),
	}
}

// AppendCSV appends the result to the CSV file at path, writing the header
// first when the file does not exist yet. Parent directories are created.
func AppendCSV(path string, r Result) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	_, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if fresh {
		if err := w.Write(CSVHeader); err != nil {
			return fmt.Errorf("core: writing CSV header: %w", err)
		}
	}
	if err := w.Write(r.CSVRecord()); err != nil {
		return fmt.Errorf("core: writing CSV row: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("core: flushing CSV: %w", err)
	}
	return f.Close()
}
