package core

// StateCodec serializes a kernel's private mid-run state — the working
// grid plus, for lazy variants, the tilegrid frontier bitsets — so a run
// can be checkpointed at an iteration boundary and resumed later without
// recomputing the prefix. Kernels opt in by setting Kernel.Codec; a nil
// codec means the kernel cannot be snapshotted and the serving layer
// falls back to whole-run recompute.
//
// The contract is exact-state round-tripping at an iteration boundary:
// for any ctx that has completed k iterations, DecodeState(ctx2,
// EncodeState(ctx)) into a freshly Init'ed ctx2 of the same Config must
// leave ctx2 in a state from which computing the remaining N-k
// iterations produces a byte-identical final image, an identical
// convergence point, and (for lazy variants) an identical active-tile
// series — pinned by the resume-equivalence battery in
// internal/kernels. The encoding is kernel-private bytes; versioning and
// integrity live in the EZSNAP1 envelope (internal/serve/store), not
// here.
type StateCodec interface {
	// EncodeState captures the kernel state after a completed iteration.
	// It must not retain or mutate ctx.
	EncodeState(ctx *Ctx) ([]byte, error)
	// DecodeState restores a previously encoded state into a ctx on
	// which Kernel.Init has already run (so allocation and geometry are
	// in place). It must reject byte slices that do not match the ctx
	// geometry rather than restoring a torn state.
	DecodeState(ctx *Ctx, data []byte) error
}
