package core

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easypap/internal/img2d"
	"easypap/internal/sched"
)

// registerTestKernel installs a tiny gradient kernel used by the core
// tests. Registration is global, so it happens once.
var testKernelOnce = func() bool {
	Register(&Kernel{
		Name:        "testgrad",
		Description: "test gradient kernel",
		Init: func(ctx *Ctx) error {
			ctx.SetPriv(new(int))
			return nil
		},
		Variants: map[string]ComputeFunc{
			"seq": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(it int) bool {
					n := ctx.Priv().(*int)
					*n++
					shade := uint8(*n * 10 % 256)
					ctx.Cur().Fill(img2d.RGB(shade, shade, shade))
					return true
				})
			},
			"omp_tiled": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(it int) bool {
					n := ctx.Priv().(*int)
					*n++
					shade := uint8(*n * 10 % 256)
					im := ctx.Cur()
					ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
						ctx.DoTile(x, y, w, h, worker, func() {
							im.FillRect(x, y, w, h, img2d.RGB(shade, shade, shade))
						})
					})
					return true
				})
			},
			"converge2": func(ctx *Ctx, nbIter int) int {
				// Converges after 2 iterations.
				return ctx.ForIterations(nbIter, func(it int) bool {
					return it < 2
				})
			},
		},
		DefaultVariant: "seq",
	})
	return true
}()

func TestRegistryLookup(t *testing.T) {
	_ = testKernelOnce
	k, err := Lookup("testgrad")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "testgrad" || k.DefaultVariant != "seq" {
		t.Errorf("kernel = %+v", k)
	}
	if _, err := Lookup("no-such-kernel"); err == nil {
		t.Error("Lookup of unknown kernel succeeded")
	}
	names := KernelNames()
	found := false
	for _, n := range names {
		if n == "testgrad" {
			found = true
		}
	}
	if !found {
		t.Errorf("KernelNames() = %v misses testgrad", names)
	}
	vn := k.VariantNames()
	if len(vn) != 3 || vn[0] != "converge2" {
		t.Errorf("VariantNames = %v", vn)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, k *Kernel) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(k)
	}
	mustPanic("empty name", &Kernel{})
	mustPanic("no variants", &Kernel{Name: "x"})
	mustPanic("bad default", &Kernel{Name: "x", Variants: map[string]ComputeFunc{"a": nil}, DefaultVariant: "b"})
	mustPanic("duplicate", &Kernel{Name: "testgrad", Variants: map[string]ComputeFunc{"seq": nil}})
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg, err := Config{Kernel: "testgrad"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Variant != "seq" {
		t.Errorf("variant = %q", cfg.Variant)
	}
	if cfg.Dim != 1024 || cfg.TileW != 32 || cfg.TileH != 32 {
		t.Errorf("geometry = %d/%dx%d", cfg.Dim, cfg.TileW, cfg.TileH)
	}
	if cfg.Iterations != 1 || cfg.Threads <= 0 || cfg.MPIRanks != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Label == "" {
		t.Error("label not defaulted")
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	cases := []Config{
		{},                                       // no kernel
		{Kernel: "nope"},                         // unknown kernel
		{Kernel: "testgrad", Variant: "nope"},    // unknown variant
		{Kernel: "testgrad", Dim: -5},            // bad dim
		{Kernel: "testgrad", Dim: 100, TileW: 7}, // non-dividing tile
		{Kernel: "testgrad", Iterations: -1},     // bad iterations
		{Kernel: "testgrad", MPIRanks: 2},        // mpirun without mpi variant
		{Kernel: "testgrad", FrameEvery: -1},     // bad frames
	}
	for i, c := range cases {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("case %d (%+v): Normalize succeeded", i, c)
		}
	}
}

func TestRunSeqBasic(t *testing.T) {
	out, err := Run(Config{Kernel: "testgrad", Dim: 64, Iterations: 5, NoDisplay: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 5 {
		t.Errorf("iterations = %d", out.Iterations)
	}
	if out.WallTime <= 0 {
		t.Error("no wall time measured")
	}
	if out.Final == nil || out.Final.Dim() != 64 {
		t.Error("final image missing")
	}
	// 5 iterations: shade = 50.
	if got := out.Final.Get(0, 0); got != img2d.RGB(50, 50, 50) {
		t.Errorf("final pixel = %#x", got)
	}
	if !strings.Contains(out.Result.String(), "5 iterations completed in") {
		t.Errorf("report: %s", out.Result.String())
	}
}

func TestRunParallelMatchesSeq(t *testing.T) {
	seq, err := Run(Config{Kernel: "testgrad", Dim: 64, Iterations: 3, NoDisplay: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Config{Kernel: "testgrad", Variant: "omp_tiled", Dim: 64,
		Iterations: 3, NoDisplay: true, Threads: 4, Schedule: sched.DynamicPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Final.Equal(par.Final) {
		t.Error("omp_tiled output differs from seq")
	}
}

func TestRunEarlyConvergence(t *testing.T) {
	out, err := Run(Config{Kernel: "testgrad", Variant: "converge2", Dim: 64,
		Iterations: 50, NoDisplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 2 {
		t.Errorf("iterations = %d, want 2 (early convergence)", out.Iterations)
	}
}

func TestRunWithMonitoring(t *testing.T) {
	out, err := Run(Config{Kernel: "testgrad", Variant: "omp_tiled", Dim: 64,
		Iterations: 4, NoDisplay: true, Monitoring: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Monitors) != 1 || out.Monitors[0] == nil {
		t.Fatal("no monitor collected")
	}
	iters := out.Monitors[0].Iterations()
	if len(iters) != 4 {
		t.Fatalf("monitored %d iterations, want 4", len(iters))
	}
	if len(iters[0].Tiles) != 4 { // 64/32 = 2x2 tiles
		t.Errorf("iteration 1 recorded %d tiles, want 4", len(iters[0].Tiles))
	}
}

func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.evt")
	out, err := Run(Config{Kernel: "testgrad", Variant: "omp_tiled", Dim: 64,
		Iterations: 3, NoDisplay: true, TracePath: path, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace collected")
	}
	if out.Trace.Iterations() != 3 {
		t.Errorf("trace iterations = %d", out.Trace.Iterations())
	}
	if len(out.Trace.Events) != 3*4 {
		t.Errorf("trace has %d events, want 12", len(out.Trace.Events))
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("trace file not saved: %v", err)
	}
	if out.Trace.Meta.Kernel != "testgrad" || out.Trace.Meta.Variant != "omp_tiled" {
		t.Errorf("trace meta = %+v", out.Trace.Meta)
	}
}

func TestRunDisplayModeWritesFrames(t *testing.T) {
	dir := t.TempDir()
	_, err := Run(Config{Kernel: "testgrad", Dim: 64, Iterations: 3,
		OutputDir: dir, Monitoring: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"main_0001.png", "main_0003.png", "tiling_0001.png", "activity_0001.png"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing frame %s", f)
		}
	}
}

func TestCSVAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "perf.csv")
	res := Result{Config: Config{
		Label: "m1", Kernel: "mandel", Variant: "omp_tiled", Dim: 512,
		TileW: 16, TileH: 16, Threads: 8, Schedule: sched.DynamicPolicy(2),
		MPIRanks: 1, Arg: "",
	}, WallTime: 1234567890, Iterations: 10}
	if err := AppendCSV(path, res); err != nil {
		t.Fatal(err)
	}
	if err := AppendCSV(path, res); err != nil { // second append: no new header
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "machine" || rows[0][len(rows[0])-1] != "time_us" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "mandel" || rows[1][7] != "dynamic,2" || rows[1][11] != "1234567" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestCtxAccessors(t *testing.T) {
	out, err := Run(Config{Kernel: "testgrad", Dim: 64, Iterations: 1, NoDisplay: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = out
}

func TestDefaultTile(t *testing.T) {
	cases := map[int]int{1024: 32, 512: 32, 64: 32, 48: 16, 10: 2, 7: 1}
	for dim, want := range cases {
		if got := defaultTile(dim); got != want {
			t.Errorf("defaultTile(%d) = %d, want %d", dim, got, want)
		}
	}
}
