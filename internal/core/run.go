package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
	"easypap/internal/monitor"
	"easypap/internal/mpi"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

// RunOutput bundles everything a run produces: the performance result plus
// the artifacts the analysis tools consume.
type RunOutput struct {
	Result
	// Final is the master's final image.
	Final *img2d.Image
	// Monitors holds one monitor per rank (index = rank) when monitoring
	// was active, nil otherwise.
	Monitors []*monitor.Monitor
	// Trace is the merged multi-rank trace when tracing was active.
	Trace *trace.Trace
}

// Run executes a configured kernel to completion: it normalizes the
// configuration, spins up the worker pool (and the MPI world if requested),
// drives the iteration loop, and returns the collected output. It is the
// programmatic equivalent of invoking the easypap binary. Run is
// RunContext with a background context.
func Run(cfg Config) (*RunOutput, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is canceled, the iteration
// loop stops at the next iteration boundary (and any in-flight mpi.Recv
// wakes up immediately), the run returns an error wrapping ctx.Err(), and
// the worker pool is left reusable. This is what lets a serving frontend
// abort a long job without tearing the process down.
func RunContext(ctx context.Context, cfg Config) (*RunOutput, error) {
	return RunWith(ctx, cfg, RunOptions{})
}

// RunOptions customizes how a run executes without changing what it
// computes. The zero value reproduces Run's behavior exactly.
type RunOptions struct {
	// Pool, when non-nil, is the worker pool the run executes on instead
	// of building (and tearing down) its own. The caller retains ownership
	// and must Close it; its worker count must match the normalized
	// Threads. Leasing a warm pool across runs removes pool construction
	// from the per-job cost (see internal/serve). Incompatible with
	// MPIRanks > 1, where every rank owns a private pool.
	Pool *sched.Pool

	// Sink, when non-nil, receives the rendered frames instead of the
	// sink derived from the configuration (PNG sequences or Null). The
	// caller retains ownership and must Close it. Setting a sink forces
	// the per-iteration display path even without an OutputDir, which is
	// how the daemon streams frames for jobs that request them.
	Sink gfx.FrameSink

	// RecvTimeout overrides the MPI receive watchdog for distributed runs
	// (zero keeps mpi.DefaultRecvTimeout). A serving frontend sets a tight
	// bound so a wedged student program fails its job quickly instead of
	// holding a worker for the default 10 s.
	RecvTimeout time.Duration

	// OnActivity, when non-nil, observes every IterActivity a lazy kernel
	// reports, live — the hook easypapd uses to expose a running job's
	// frontier size in its status JSON. Called from the computing
	// goroutine (rank 0 only under MPI); keep it cheap and do not block.
	OnActivity func(IterActivity)

	// Comm, when non-nil, runs exactly one rank of an externally built
	// communicator group instead of spawning an in-process world: this is
	// how a cluster shard executes its band of a distributed job (the
	// other ranks live on other nodes, behind an mpi.NetWorld). The
	// variant must be MPI-aware; Config.MPIRanks is ignored. Rank 0 is
	// the master (it produces the final image); a leased Pool is allowed
	// because only this one rank runs here.
	Comm *mpi.Comm

	// OnHalo, when non-nil, observes every boundary exchange a
	// distributed kernel reports (sent/skipped/bytes deltas plus the
	// exchange's wall time), live, from the computing goroutine of every
	// local rank. A serving shard wires its per-node halo counters and
	// stage histogram here.
	OnHalo func(sent, skipped, bytes int64, d time.Duration)

	// Resume, when non-nil, restores a checkpoint before computing: the
	// kernel is Init'ed as usual, then its Codec decodes Resume.State and
	// the iteration counter starts at Resume.Iter, so only the remaining
	// Iterations-Iter iterations are computed. Requires a kernel with a
	// StateCodec and a single-process run (no Comm, MPIRanks <= 1) — the
	// snapshot captures whole-grid state, which one rank of a band
	// decomposition cannot consume.
	Resume *ResumeState

	// SnapshotEvery, when positive (and OnSnapshot is set, the kernel
	// has a Codec, and the run is single-process), checkpoints the
	// kernel state at every iteration whose absolute index is a multiple
	// of this value. Boundaries are absolute, so a run resumed from
	// iteration 300 with SnapshotEvery=200 snapshots at 400, 600, ... —
	// keeping the (prefix, iter) key space aligned across resumes.
	SnapshotEvery int

	// OnSnapshot receives each encoded checkpoint, called from the
	// computing goroutine between iterations — hand the bytes off (the
	// daemon enqueues them on its write-behind spiller) rather than
	// blocking the run on I/O. A final iteration landing on the cadence
	// IS snapshotted: the finished entry caches only the image, and the
	// end-state snapshot is what lets a deeper run of the same prefix
	// (a sweep's next step) resume without recomputing anything.
	OnSnapshot func(iter int, state []byte)
}

// ResumeState is a decoded checkpoint to restore before computing: the
// kernel-private bytes produced by a StateCodec at iteration Iter of the
// same configuration prefix (Config.PrefixHash).
type ResumeState struct {
	Iter  int
	State []byte
}

// RunWith is RunContext with explicit execution options.
func RunWith(ctx context.Context, cfg Config, opts RunOptions) (*RunOutput, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	k, err := Lookup(cfg.Kernel)
	if err != nil {
		return nil, err
	}
	compute := k.Variants[cfg.Variant]

	sink := opts.Sink
	if sink == nil {
		s, err := makeSink(cfg)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		sink = s
	}

	if opts.Resume != nil && (opts.Comm != nil || cfg.MPIRanks > 1) {
		return nil, fmt.Errorf("core: resume requires a single-process run (a band rank cannot restore whole-grid state)")
	}

	if opts.Comm != nil {
		// One rank of an external (distributed) world: the caller owns the
		// world's lifecycle and failure handling; this process only
		// computes its band. Checkpointing is single-process only, so the
		// ckpt options are dropped here.
		out := &RunOutput{}
		if err := runRank(ctx, cfg, k, compute, sink, opts.Pool, opts.Sink != nil, opts.OnActivity, opts.OnHalo, opts.Comm, ckpt{}, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if cfg.MPIRanks > 1 {
		if opts.Pool != nil {
			return nil, fmt.Errorf("core: a leased pool cannot serve %d MPI ranks (each rank owns a private pool)", cfg.MPIRanks)
		}
		return runMPI(ctx, cfg, k, compute, sink, opts)
	}
	ck := ckpt{resume: opts.Resume, every: opts.SnapshotEvery, onSnapshot: opts.OnSnapshot, codec: k.Codec}
	out := &RunOutput{}
	if err := runRank(ctx, cfg, k, compute, sink, opts.Pool, opts.Sink != nil, opts.OnActivity, opts.OnHalo, nil, ck, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ckpt bundles runRank's checkpointing inputs: the state to restore (if
// any), the snapshot cadence, and the kernel's codec. The zero value
// means no checkpointing — the exact pre-checkpointing behavior.
type ckpt struct {
	resume     *ResumeState
	every      int
	onSnapshot func(iter int, state []byte)
	codec      StateCodec
}

// active reports whether periodic snapshots should be taken.
func (c ckpt) active() bool {
	return c.every > 0 && c.onSnapshot != nil && c.codec != nil
}

// makeSink builds the display sink: performance mode discards frames, the
// default mode writes PNG sequences under OutputDir.
func makeSink(cfg Config) (gfx.FrameSink, error) {
	if cfg.NoDisplay || cfg.OutputDir == "" {
		return gfx.Null{}, nil
	}
	return gfx.NewPNGSink(cfg.OutputDir, cfg.FrameEvery)
}

// runMPI runs one rank group per simulated process. Rank 0 is the master:
// it owns the display (and, with --debug M, every rank additionally
// renders its own monitoring windows, as in the paper's Fig. 13).
func runMPI(ctx context.Context, cfg Config, k *Kernel, compute ComputeFunc, sink gfx.FrameSink, opts RunOptions) (*RunOutput, error) {
	out := &RunOutput{Monitors: make([]*monitor.Monitor, cfg.MPIRanks)}
	var sinkMu sync.Mutex
	lockedSink := &lockedSink{inner: sink, mu: &sinkMu}
	perRankTraces := make([]*trace.Trace, cfg.MPIRanks)
	perRankActivity := make([][]IterActivity, cfg.MPIRanks)

	perRankHalos := make([][3]int64, cfg.MPIRanks)
	err := mpi.RunContext(ctx, cfg.MPIRanks, mpi.Config{RecvTimeout: opts.RecvTimeout}, func(comm *mpi.Comm) error {
		rankOut := &RunOutput{}
		if err := runRank(ctx, cfg, k, compute, lockedSink, nil, opts.Sink != nil, opts.OnActivity, opts.OnHalo, comm, ckpt{}, rankOut); err != nil {
			return err
		}
		out.Monitors[comm.Rank()] = rankMonitor(rankOut)
		perRankTraces[comm.Rank()] = rankOut.Trace
		perRankActivity[comm.Rank()] = rankOut.Result.Activity
		perRankHalos[comm.Rank()] = [3]int64{rankOut.Result.HalosSent, rankOut.Result.HalosSkipped, rankOut.Result.HaloBytes}
		if comm.Rank() == 0 {
			out.Result = rankOut.Result
			out.Final = rankOut.Final
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Trace = mergeTraces(perRankTraces)
	out.Result.Activity = mergeActivity(perRankActivity)
	out.Result.HalosSent, out.Result.HalosSkipped, out.Result.HaloBytes = 0, 0, 0
	for _, h := range perRankHalos {
		out.Result.HalosSent += h[0]
		out.Result.HalosSkipped += h[1]
		out.Result.HaloBytes += h[2]
	}
	if !monitorsPresent(out.Monitors) {
		out.Monitors = nil
	}
	return out, nil
}

func rankMonitor(ro *RunOutput) *monitor.Monitor {
	if len(ro.Monitors) == 1 {
		return ro.Monitors[0]
	}
	return nil
}

func monitorsPresent(ms []*monitor.Monitor) bool {
	for _, m := range ms {
		if m != nil {
			return true
		}
	}
	return false
}

// mergeActivity sums per-rank frontier series element-wise: ranks report
// their own band's activity in lockstep (the convergence vote is
// collective), so entry i of every rank describes the same iteration and
// the sums are whole-grid counts. Nil if no rank reported.
func mergeActivity(perRank [][]IterActivity) []IterActivity {
	var merged []IterActivity
	for _, series := range perRank {
		for i, a := range series {
			if i == len(merged) {
				merged = append(merged, a)
				continue
			}
			merged[i].Active += a.Active
			merged[i].Total += a.Total
		}
	}
	return merged
}

// mergeTraces concatenates per-rank traces into one (nil if none traced).
func mergeTraces(traces []*trace.Trace) *trace.Trace {
	var merged *trace.Trace
	for _, t := range traces {
		if t == nil {
			continue
		}
		if merged == nil {
			cp := *t
			merged = &cp
			continue
		}
		merged.Events = append(merged.Events, t.Events...)
	}
	if merged != nil {
		merged.Meta.Ranks = len(traces)
	}
	return merged
}

// lockedSink serializes frame writes from concurrent ranks.
type lockedSink struct {
	inner gfx.FrameSink
	mu    *sync.Mutex
}

func (s *lockedSink) Frame(w string, iter int, img *img2d.Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Frame(w, iter, img)
}

func (s *lockedSink) Close() error { return nil } // owner closes the inner sink

// runRank executes the kernel on one rank (or locally when comm is nil)
// and fills out. A non-nil pool is a lease: the caller owns its lifecycle
// and runRank only borrows it for the duration of the run.
func runRank(goCtx context.Context, cfg Config, k *Kernel, compute ComputeFunc, sink gfx.FrameSink, pool *sched.Pool, forceDisplay bool, onActivity func(IterActivity), onHalo func(int64, int64, int64, time.Duration), comm *mpi.Comm, ck ckpt, out *RunOutput) error {
	if pool == nil {
		pool = sched.NewPool(cfg.Threads)
		defer pool.Close()
	} else if pool.Workers() != cfg.Threads {
		return fmt.Errorf("core: leased pool has %d workers, config wants %d threads",
			pool.Workers(), cfg.Threads)
	}
	grid, err := sched.NewTileGrid(cfg.Dim, cfg.TileW, cfg.TileH)
	if err != nil {
		return err
	}

	ctx := &Ctx{
		Cfg:   cfg,
		Buf:   img2d.NewBuffers(cfg.Dim),
		Pool:  pool,
		Grid:  grid,
		Comm:  comm,
		goCtx: goCtx,
	}
	rank := 0
	if comm == nil || comm.Rank() == 0 {
		ctx.onActivity = onActivity
	}
	ctx.onHalo = onHalo
	if comm != nil {
		rank = comm.Rank()
		// Tile-aligned bands: every band boundary falls on a tile-row
		// boundary, so the frontier's Restrict covers each band exactly and
		// rank counts that do not divide the row count still work (the tile
		// rows split unevenly instead of the pixel rows splitting off-tile).
		ctx.Band = mpi.BandForTiles(cfg.Dim, cfg.TileH, comm.Size(), rank)
	} else {
		ctx.Band = mpi.Band{Lo: 0, Hi: cfg.Dim, Dim: cfg.Dim}
	}

	if cfg.Monitoring || cfg.HeatMode {
		ctx.mon = monitor.New(cfg.Threads, cfg.Dim)
		ctx.mon.SetRank(rank)
	}
	if cfg.TracePath != "" {
		ctx.rec = trace.NewRecorder(trace.Meta{
			Kernel: cfg.Kernel, Variant: cfg.Variant, Dim: cfg.Dim,
			TileW: cfg.TileW, TileH: cfg.TileH, Threads: cfg.Threads,
			Ranks: cfg.MPIRanks, Iterations: cfg.Iterations,
			Schedule: cfg.Schedule.String(), Label: cfg.Label,
		})
		ctx.rec.SetRank(rank)
	}
	ctx.instr = ctx.mon != nil || ctx.rec != nil

	if k.Init != nil {
		if err := k.Init(ctx); err != nil {
			return fmt.Errorf("core: initializing kernel %s: %w", cfg.Kernel, err)
		}
	}

	resumedFrom := 0
	if ck.resume != nil {
		if ck.codec == nil {
			return fmt.Errorf("core: kernel %s has no state codec to resume from", cfg.Kernel)
		}
		if ck.resume.Iter <= 0 || ck.resume.Iter >= cfg.Iterations {
			return fmt.Errorf("core: resume iteration %d outside (0, %d)", ck.resume.Iter, cfg.Iterations)
		}
		if err := ck.codec.DecodeState(ctx, ck.resume.State); err != nil {
			return fmt.Errorf("core: restoring kernel %s checkpoint at iteration %d: %w", cfg.Kernel, ck.resume.Iter, err)
		}
		resumedFrom = ck.resume.Iter
		ctx.iters = resumedFrom
	}

	displaying := forceDisplay || (!cfg.NoDisplay && cfg.OutputDir != "")
	// Dirty-tile capture feeds delta frames. Single-process runs only: under
	// MPI the master's gathered image spans every band while its frontier
	// covers just its own, so the reported set would not bound the changes.
	if displaying && comm == nil {
		if _, ok := sink.(gfx.DirtySink); ok {
			ctx.wantDirty = true
		}
	}
	// snapshot checkpoints the state after the iteration whose absolute
	// index is ctx.iters, when that index falls on a cadence boundary.
	// The final iteration is skipped: its value is the finished result.
	snapshot := func() error {
		if !ck.active() || ctx.iters <= resumedFrom || ctx.iters%ck.every != 0 {
			return nil
		}
		state, err := ck.codec.EncodeState(ctx)
		if err != nil {
			return fmt.Errorf("core: snapshotting kernel %s at iteration %d: %w", cfg.Kernel, ctx.iters, err)
		}
		ck.onSnapshot(ctx.iters, state)
		return nil
	}

	start := time.Now()
	total := 0
	remaining := cfg.Iterations - resumedFrom
	if displaying {
		// Display mode: the framework regains control after every
		// iteration to refresh the windows, exactly like the interactive
		// SDL loop. Frames are numbered by absolute iteration, so a
		// resumed job's stream picks up where the checkpoint left off.
		for total < remaining && goCtx.Err() == nil {
			n := compute(ctx, 1)
			if n < 1 {
				break // converged
			}
			ctx.iters += n
			total += n
			if err := refreshDisplay(ctx, k, sink, ctx.iters); err != nil {
				return err
			}
			if err := snapshot(); err != nil {
				return err
			}
		}
	} else if ck.active() {
		// Performance mode with checkpointing: compute in chunks ending on
		// absolute cadence boundaries, snapshotting between chunks. A
		// chunk that comes back short means convergence (or cancellation,
		// caught below) — no snapshot then; the finished entry covers it.
		for total < remaining && goCtx.Err() == nil {
			chunk := ck.every - ctx.iters%ck.every
			if rem := remaining - total; chunk > rem {
				chunk = rem
			}
			n := compute(ctx, chunk)
			ctx.iters += n
			total += n
			if n < chunk {
				break // converged (or canceled at an iteration boundary)
			}
			if err := snapshot(); err != nil {
				return err
			}
		}
	} else {
		// Performance mode: one bulk call; ForIterations inside the kernel
		// still brackets iterations for the monitor and the tracer (and
		// checks goCtx at every iteration boundary).
		total = compute(ctx, remaining)
		ctx.iters += total
	}
	wall := time.Since(start)

	// A canceled run returns promptly with the context's error instead of a
	// truncated result: the caller (e.g. the daemon's job runner) must be
	// able to distinguish "converged early" from "aborted". The pool is
	// idle at this point — a leased pool stays reusable.
	if err := goCtx.Err(); err != nil {
		return fmt.Errorf("core: run canceled after %d iterations (%v): %w", total, wall, err)
	}

	// Final refresh so out.Final reflects the last iteration even in
	// performance mode.
	if k.Refresh != nil {
		k.Refresh(ctx)
	}

	// Iterations reports the absolute depth reached (prefix + computed),
	// so a resumed result is interchangeable with a cold run's; the
	// computed share is recoverable as Iterations - ResumedFrom.
	out.Result = Result{Config: cfg, WallTime: wall, Iterations: resumedFrom + total,
		ResumedFrom: resumedFrom, Activity: ctx.activity,
		HalosSent: ctx.halosSent, HalosSkipped: ctx.halosSkipped, HaloBytes: ctx.haloBytes}
	if ctx.IsMaster() {
		out.Final = ctx.Cur().Clone()
		out.Result.Checksum = imageChecksum(out.Final)
	}
	if ctx.mon != nil {
		out.Monitors = []*monitor.Monitor{ctx.mon}
	}
	if ctx.rec != nil {
		tr := ctx.rec.Trace()
		out.Trace = tr
		// Local runs save immediately; MPI runs merge at the caller and
		// the master saves.
		if comm == nil {
			if err := tr.Save(cfg.TracePath); err != nil {
				return err
			}
		}
	}
	return nil
}

// imageChecksum computes the hex SHA-256 of an image's pixels
// (little-endian), the Result.Checksum byte-identity probe.
func imageChecksum(im *img2d.Image) string {
	h := sha256.New()
	var buf [4]byte
	for _, p := range im.Pixels() {
		binary.LittleEndian.PutUint32(buf[:], p)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// refreshDisplay pushes the main window frame (master only) plus the
// monitoring windows; with --debug M every rank renders its own windows.
func refreshDisplay(ctx *Ctx, k *Kernel, sink gfx.FrameSink, iter int) error {
	if k.Refresh != nil {
		k.Refresh(ctx)
	}
	rank := ctx.Rank()
	showAll := false
	for _, f := range ctx.Cfg.Debug {
		if f == 'M' {
			showAll = true
		}
	}
	if ctx.IsMaster() {
		// When the kernel reported its active tile set for exactly this
		// iteration and the sink understands dirty frames, hand it the set:
		// the frontier's no-copy invariant guarantees every pixel outside
		// those tiles is unchanged since the previous frame.
		ds, haveDirty := sink.(gfx.DirtySink)
		if haveDirty && ctx.wantDirty && ctx.dirtyOK && ctx.dirtyIter == iter {
			set := &gfx.TileSet{
				TilesX: ctx.Grid.TilesX, TilesY: ctx.Grid.TilesY,
				TileW: ctx.Grid.TileW, TileH: ctx.Grid.TileH,
				Tiles: ctx.dirtyTiles,
			}
			if err := ds.FrameDirty("main", iter, ctx.Cur(), set); err != nil {
				return err
			}
		} else if err := sink.Frame("main", iter, ctx.Cur()); err != nil {
			return err
		}
	}
	if ctx.mon == nil {
		return nil
	}
	if !ctx.IsMaster() && !showAll {
		return nil
	}
	suffix := ""
	if showAll && ctx.Comm != nil {
		suffix = fmt.Sprintf("-rank%d", rank)
	}
	iters := ctx.mon.Iterations()
	if len(iters) == 0 {
		return nil
	}
	last := iters[len(iters)-1]
	var tiling *img2d.Image
	if ctx.Cfg.HeatMode {
		tiling = monitor.HeatImage(last, ctx.Cfg.Dim, 512)
	} else {
		tiling = monitor.TilingImage(last, ctx.Cfg.Dim, 512)
	}
	if err := sink.Frame("tiling"+suffix, iter, tiling); err != nil {
		return err
	}
	activity := monitor.ActivityImage(last, ctx.mon.IdlenessHistory(), 512)
	if err := sink.Frame("activity"+suffix, iter, activity); err != nil {
		return err
	}
	// Lazy kernels additionally get the frontier heat map: cumulative
	// tile-activity residency, the window where a collapsing frontier is
	// visible at a glance.
	if frontier := monitor.FrontierImage(ctx.mon, 512); frontier != nil {
		return sink.Frame("frontier"+suffix, iter, frontier)
	}
	return nil
}
