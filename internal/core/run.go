package core

import (
	"fmt"
	"sync"
	"time"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
	"easypap/internal/monitor"
	"easypap/internal/mpi"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

// RunOutput bundles everything a run produces: the performance result plus
// the artifacts the analysis tools consume.
type RunOutput struct {
	Result
	// Final is the master's final image.
	Final *img2d.Image
	// Monitors holds one monitor per rank (index = rank) when monitoring
	// was active, nil otherwise.
	Monitors []*monitor.Monitor
	// Trace is the merged multi-rank trace when tracing was active.
	Trace *trace.Trace
}

// Run executes a configured kernel to completion: it normalizes the
// configuration, spins up the worker pool (and the MPI world if requested),
// drives the iteration loop, and returns the collected output. It is the
// programmatic equivalent of invoking the easypap binary.
func Run(cfg Config) (*RunOutput, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	k, err := Lookup(cfg.Kernel)
	if err != nil {
		return nil, err
	}
	compute := k.Variants[cfg.Variant]

	sink, err := makeSink(cfg)
	if err != nil {
		return nil, err
	}
	defer sink.Close()

	if cfg.MPIRanks > 1 {
		return runMPI(cfg, k, compute, sink)
	}
	out := &RunOutput{}
	if err := runRank(cfg, k, compute, sink, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// makeSink builds the display sink: performance mode discards frames, the
// default mode writes PNG sequences under OutputDir.
func makeSink(cfg Config) (gfx.FrameSink, error) {
	if cfg.NoDisplay || cfg.OutputDir == "" {
		return gfx.Null{}, nil
	}
	return gfx.NewPNGSink(cfg.OutputDir, cfg.FrameEvery)
}

// runMPI runs one rank group per simulated process. Rank 0 is the master:
// it owns the display (and, with --debug M, every rank additionally
// renders its own monitoring windows, as in the paper's Fig. 13).
func runMPI(cfg Config, k *Kernel, compute ComputeFunc, sink gfx.FrameSink) (*RunOutput, error) {
	out := &RunOutput{Monitors: make([]*monitor.Monitor, cfg.MPIRanks)}
	var sinkMu sync.Mutex
	lockedSink := &lockedSink{inner: sink, mu: &sinkMu}
	perRankTraces := make([]*trace.Trace, cfg.MPIRanks)

	err := mpi.Run(cfg.MPIRanks, func(comm *mpi.Comm) error {
		rankOut := &RunOutput{}
		if err := runRank(cfg, k, compute, lockedSink, comm, rankOut); err != nil {
			return err
		}
		out.Monitors[comm.Rank()] = rankMonitor(rankOut)
		perRankTraces[comm.Rank()] = rankOut.Trace
		if comm.Rank() == 0 {
			out.Result = rankOut.Result
			out.Final = rankOut.Final
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Trace = mergeTraces(perRankTraces)
	if !monitorsPresent(out.Monitors) {
		out.Monitors = nil
	}
	return out, nil
}

func rankMonitor(ro *RunOutput) *monitor.Monitor {
	if len(ro.Monitors) == 1 {
		return ro.Monitors[0]
	}
	return nil
}

func monitorsPresent(ms []*monitor.Monitor) bool {
	for _, m := range ms {
		if m != nil {
			return true
		}
	}
	return false
}

// mergeTraces concatenates per-rank traces into one (nil if none traced).
func mergeTraces(traces []*trace.Trace) *trace.Trace {
	var merged *trace.Trace
	for _, t := range traces {
		if t == nil {
			continue
		}
		if merged == nil {
			cp := *t
			merged = &cp
			continue
		}
		merged.Events = append(merged.Events, t.Events...)
	}
	if merged != nil {
		merged.Meta.Ranks = len(traces)
	}
	return merged
}

// lockedSink serializes frame writes from concurrent ranks.
type lockedSink struct {
	inner gfx.FrameSink
	mu    *sync.Mutex
}

func (s *lockedSink) Frame(w string, iter int, img *img2d.Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Frame(w, iter, img)
}

func (s *lockedSink) Close() error { return nil } // owner closes the inner sink

// runRank executes the kernel on one rank (or locally when comm is nil)
// and fills out.
func runRank(cfg Config, k *Kernel, compute ComputeFunc, sink gfx.FrameSink, comm *mpi.Comm, out *RunOutput) error {
	pool := sched.NewPool(cfg.Threads)
	defer pool.Close()
	grid, err := sched.NewTileGrid(cfg.Dim, cfg.TileW, cfg.TileH)
	if err != nil {
		return err
	}

	ctx := &Ctx{
		Cfg:  cfg,
		Buf:  img2d.NewBuffers(cfg.Dim),
		Pool: pool,
		Grid: grid,
		Comm: comm,
	}
	rank := 0
	if comm != nil {
		rank = comm.Rank()
		ctx.Band = mpi.BandFor(cfg.Dim, comm.Size(), rank)
	} else {
		ctx.Band = mpi.Band{Lo: 0, Hi: cfg.Dim, Dim: cfg.Dim}
	}

	if cfg.Monitoring || cfg.HeatMode {
		ctx.mon = monitor.New(cfg.Threads, cfg.Dim)
		ctx.mon.SetRank(rank)
	}
	if cfg.TracePath != "" {
		ctx.rec = trace.NewRecorder(trace.Meta{
			Kernel: cfg.Kernel, Variant: cfg.Variant, Dim: cfg.Dim,
			TileW: cfg.TileW, TileH: cfg.TileH, Threads: cfg.Threads,
			Ranks: cfg.MPIRanks, Iterations: cfg.Iterations,
			Schedule: cfg.Schedule.String(), Label: cfg.Label,
		})
		ctx.rec.SetRank(rank)
	}
	ctx.instr = ctx.mon != nil || ctx.rec != nil

	if k.Init != nil {
		if err := k.Init(ctx); err != nil {
			return fmt.Errorf("core: initializing kernel %s: %w", cfg.Kernel, err)
		}
	}

	displaying := !cfg.NoDisplay && cfg.OutputDir != ""
	start := time.Now()
	total := 0
	if displaying {
		// Display mode: the framework regains control after every
		// iteration to refresh the windows, exactly like the interactive
		// SDL loop.
		for total < cfg.Iterations {
			n := compute(ctx, 1)
			if n < 1 {
				break // converged
			}
			ctx.iters += n
			total += n
			if err := refreshDisplay(ctx, k, sink, total); err != nil {
				return err
			}
		}
	} else {
		// Performance mode: one bulk call; ForIterations inside the kernel
		// still brackets iterations for the monitor and the tracer.
		total = compute(ctx, cfg.Iterations)
		ctx.iters += total
	}
	wall := time.Since(start)

	// Final refresh so out.Final reflects the last iteration even in
	// performance mode.
	if k.Refresh != nil {
		k.Refresh(ctx)
	}

	out.Result = Result{Config: cfg, WallTime: wall, Iterations: total}
	if ctx.IsMaster() {
		out.Final = ctx.Cur().Clone()
	}
	if ctx.mon != nil {
		out.Monitors = []*monitor.Monitor{ctx.mon}
	}
	if ctx.rec != nil {
		tr := ctx.rec.Trace()
		out.Trace = tr
		// Local runs save immediately; MPI runs merge at the caller and
		// the master saves.
		if comm == nil {
			if err := tr.Save(cfg.TracePath); err != nil {
				return err
			}
		}
	}
	return nil
}

// refreshDisplay pushes the main window frame (master only) plus the
// monitoring windows; with --debug M every rank renders its own windows.
func refreshDisplay(ctx *Ctx, k *Kernel, sink gfx.FrameSink, iter int) error {
	if k.Refresh != nil {
		k.Refresh(ctx)
	}
	rank := ctx.Rank()
	showAll := false
	for _, f := range ctx.Cfg.Debug {
		if f == 'M' {
			showAll = true
		}
	}
	if ctx.IsMaster() {
		if err := sink.Frame("main", iter, ctx.Cur()); err != nil {
			return err
		}
	}
	if ctx.mon == nil {
		return nil
	}
	if !ctx.IsMaster() && !showAll {
		return nil
	}
	suffix := ""
	if showAll && ctx.Comm != nil {
		suffix = fmt.Sprintf("-rank%d", rank)
	}
	iters := ctx.mon.Iterations()
	if len(iters) == 0 {
		return nil
	}
	last := iters[len(iters)-1]
	var tiling *img2d.Image
	if ctx.Cfg.HeatMode {
		tiling = monitor.HeatImage(last, ctx.Cfg.Dim, 512)
	} else {
		tiling = monitor.TilingImage(last, ctx.Cfg.Dim, 512)
	}
	if err := sink.Frame("tiling"+suffix, iter, tiling); err != nil {
		return err
	}
	activity := monitor.ActivityImage(last, ctx.mon.IdlenessHistory(), 512)
	return sink.Frame("activity"+suffix, iter, activity)
}
