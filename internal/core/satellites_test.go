package core

import (
	"strings"
	"testing"
)

// registerTestKernel adds a throwaway kernel for registry tests.
func registerTestKernel(t *testing.T, name string) {
	t.Helper()
	Register(&Kernel{
		Name:     name,
		Variants: map[string]ComputeFunc{"seq": func(*Ctx, int) int { return 0 }},
	})
}

func TestLookupSuggestsNearestKernel(t *testing.T) {
	registerTestKernel(t, "zebra-kernel")
	_, err := Lookup("zebra-kernal")
	if err == nil {
		t.Fatal("unknown kernel accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `did you mean "zebra-kernel"?`) {
		t.Errorf("no nearest-match suggestion in %q", msg)
	}
	if !strings.Contains(msg, "registered:") {
		t.Errorf("no kernel listing in %q", msg)
	}
}

func TestLookupNoSuggestionForGibberish(t *testing.T) {
	_, err := Lookup("qqqqqqqqqqqqqqqqqqqq")
	if err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("implausible suggestion offered: %q", err.Error())
	}
}

func TestNormalizeSuggestsNearestVariant(t *testing.T) {
	registerTestKernel(t, "varitest")
	_, err := Config{Kernel: "varitest", Variant: "sqe", Dim: 64}.Normalize()
	if err == nil {
		t.Fatal("unknown variant accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "seq"?`) {
		t.Errorf("no variant suggestion in %q", err.Error())
	}
}

// TestNormalizeRejectsNonDividingTiles: tile sizes that would truncate
// the tile grid are rejected with actionable divisor suggestions, never
// silently accepted.
func TestNormalizeRejectsNonDividingTiles(t *testing.T) {
	registerTestKernel(t, "tiletest")
	_, err := Config{Kernel: "tiletest", Dim: 100, TileW: 48, TileH: 10}.Normalize()
	if err == nil {
		t.Fatal("non-dividing tile width accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "tile width 48") || !strings.Contains(msg, "100") {
		t.Errorf("unhelpful divisibility error: %q", msg)
	}
	// Nearest divisors of 100 around 48 are 25 and 50.
	if !strings.Contains(msg, "25") || !strings.Contains(msg, "50") {
		t.Errorf("no divisor suggestions in %q", msg)
	}

	// Height is checked too.
	_, err = Config{Kernel: "tiletest", Dim: 100, TileW: 10, TileH: 7}.Normalize()
	if err == nil || !strings.Contains(err.Error(), "tile height 7") {
		t.Fatalf("non-dividing tile height not rejected: %v", err)
	}

	// Dividing sizes still pass.
	cfg, err := Config{Kernel: "tiletest", Dim: 100, TileW: 10, TileH: 20}.Normalize()
	if err != nil {
		t.Fatalf("valid tiling rejected: %v", err)
	}
	if cfg.TileW != 10 || cfg.TileH != 20 {
		t.Fatalf("tiling mangled: %dx%d", cfg.TileW, cfg.TileH)
	}
}

func TestKernelListShape(t *testing.T) {
	infos := KernelList()
	if len(infos) == 0 {
		t.Fatal("empty kernel list")
	}
	byName := make(map[string]KernelInfo, len(infos))
	for i, info := range infos {
		byName[info.Name] = info
		if i > 0 && infos[i-1].Name >= info.Name {
			t.Errorf("kernel list not sorted: %q before %q", infos[i-1].Name, info.Name)
		}
		if info.DefaultVariant == "" || len(info.Variants) == 0 {
			t.Errorf("kernel %q missing default variant or variants", info.Name)
		}
	}
	// The predefined kernels live in internal/kernels (not imported by
	// this test binary); the listing of the full registry is covered by
	// the easypap --list-json test. Here: a registered kernel appears.
	registerTestKernel(t, "listtest")
	found := false
	for _, info := range KernelList() {
		if info.Name == "listtest" {
			found = true
			if info.DefaultVariant != "seq" {
				t.Errorf("listtest default variant = %q, want seq", info.DefaultVariant)
			}
		}
	}
	if !found {
		t.Error("registered kernel missing from KernelList")
	}
}
