package core

import (
	"os"
	"path/filepath"
	"testing"

	"easypap/internal/img2d"
	"easypap/internal/trace"
)

// testMPIKernelOnce registers an MPI-capable test kernel: each rank fills
// its band with a rank-specific shade, tile by tile, with instrumentation.
var testMPIKernelOnce = func() bool {
	Register(&Kernel{
		Name:        "testband",
		Description: "MPI band-fill test kernel",
		Init: func(ctx *Ctx) error {
			return nil
		},
		Refresh: func(ctx *Ctx) {
			// Gather bands at the master so the displayed image is
			// complete, mirroring real MPI kernels.
			if ctx.Comm == nil {
				return
			}
			band := ctx.Band
			pixels := make([]uint32, band.Rows()*ctx.Dim())
			for y := band.Lo; y < band.Hi; y++ {
				row := ctx.Cur().Row(y)
				copy(pixels[(y-band.Lo)*ctx.Dim():], row)
			}
			full, err := ctx.Comm.GatherBands(0, band, pixels)
			if err != nil || full == nil {
				return
			}
			copy(ctx.Cur().Pixels(), full)
		},
		Variants: map[string]ComputeFunc{
			"seq": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(int) bool {
					ctx.Cur().Fill(img2d.RGB(1, 2, 3))
					return true
				})
			},
			"mpi": func(ctx *Ctx, nbIter int) int {
				band := ctx.Band
				shade := img2d.RGB(uint8(10+ctx.Rank()*50), 0, 0)
				return ctx.ForIterations(nbIter, func(int) bool {
					rows := band.Rows()
					ctx.Pool.ParallelFor(rows, ctx.Cfg.Schedule, func(r, worker int) {
						y := band.Lo + r
						ctx.StartTile(worker)
						row := ctx.Cur().Row(y)
						for x := range row {
							row[x] = shade
						}
						ctx.AddWork(worker, int64(len(row)))
						ctx.EndTile(0, y, ctx.Dim(), 1, worker)
					})
					return true
				})
			},
		},
		DefaultVariant: "seq",
	})
	return true
}()

func TestMPIRunBasics(t *testing.T) {
	_ = testMPIKernelOnce
	out, err := Run(Config{Kernel: "testband", Variant: "mpi", Dim: 64,
		TileW: 16, TileH: 16, Iterations: 2, NoDisplay: true,
		Threads: 2, MPIRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 2 {
		t.Errorf("iterations = %d", out.Iterations)
	}
	// Master's final image carries both ranks' shades after Refresh.
	top := out.Final.Get(0, 0)
	bottom := out.Final.Get(63, 0)
	if img2d.R(top) != 10 || img2d.R(bottom) != 60 {
		t.Errorf("band shades = %d / %d, want 10 / 60", img2d.R(top), img2d.R(bottom))
	}
}

func TestMPIVariantDefaultsToTwoRanks(t *testing.T) {
	cfg, err := Config{Kernel: "testband", Variant: "mpi"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MPIRanks != 2 {
		t.Errorf("MPIRanks = %d, want the easypap default of 2", cfg.MPIRanks)
	}
}

func TestMPIRunCollectsPerRankMonitors(t *testing.T) {
	out, err := Run(Config{Kernel: "testband", Variant: "mpi", Dim: 64,
		TileW: 16, TileH: 16, Iterations: 3, NoDisplay: true,
		Threads: 2, MPIRanks: 2, Monitoring: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Monitors) != 2 {
		t.Fatalf("monitors = %d, want one per rank", len(out.Monitors))
	}
	for rank, mon := range out.Monitors {
		if mon == nil {
			t.Fatalf("rank %d monitor missing", rank)
		}
		iters := mon.Iterations()
		if len(iters) != 3 {
			t.Errorf("rank %d monitored %d iterations", rank, len(iters))
		}
		// Each rank computed 32 row-tiles per iteration (64 rows / 2).
		if got := len(iters[0].Tiles); got != 32 {
			t.Errorf("rank %d recorded %d tiles, want 32", rank, got)
		}
		for _, tile := range iters[0].Tiles {
			if tile.Rank != rank {
				t.Fatalf("tile labeled rank %d on rank %d's monitor", tile.Rank, rank)
			}
		}
	}
}

func TestMPIRunMergesTraces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mpi.evt")
	out, err := Run(Config{Kernel: "testband", Variant: "mpi", Dim: 64,
		TileW: 16, TileH: 16, Iterations: 2, NoDisplay: true,
		Threads: 2, MPIRanks: 2, TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no merged trace")
	}
	// 64 rows x 2 iterations across both ranks.
	if len(out.Trace.Events) != 128 {
		t.Errorf("merged trace has %d events, want 128", len(out.Trace.Events))
	}
	ranksSeen := map[int16]bool{}
	for _, e := range out.Trace.Events {
		ranksSeen[e.Rank] = true
	}
	if !ranksSeen[0] || !ranksSeen[1] {
		t.Errorf("merged trace ranks: %v", ranksSeen)
	}
	if out.Trace.Meta.Ranks != 2 {
		t.Errorf("merged meta ranks = %d", out.Trace.Meta.Ranks)
	}
	// Work counters survive the merge.
	if ws := trace.Work(out.Trace.Events); ws.TotalWork != 128*64 {
		t.Errorf("merged work = %d, want %d", ws.TotalWork, 128*64)
	}
}

func TestMPIDebugModeWritesPerRankWindows(t *testing.T) {
	dir := t.TempDir()
	_, err := Run(Config{Kernel: "testband", Variant: "mpi", Dim: 64,
		TileW: 16, TileH: 16, Iterations: 2, OutputDir: dir,
		Threads: 2, MPIRanks: 2, Monitoring: true, Debug: "M"})
	if err != nil {
		t.Fatal(err)
	}
	// Master writes the main window; with --debug M every rank writes its
	// own monitoring windows (the Fig. 13 setup).
	for _, f := range []string{
		"main_0001.png",
		"tiling-rank0_0001.png", "activity-rank0_0001.png",
		"tiling-rank1_0001.png", "activity-rank1_0001.png",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing window frame %s", f)
		}
	}
}

func TestMPIWithoutDebugOnlyMasterWindows(t *testing.T) {
	dir := t.TempDir()
	_, err := Run(Config{Kernel: "testband", Variant: "mpi", Dim: 64,
		TileW: 16, TileH: 16, Iterations: 1, OutputDir: dir,
		Threads: 2, MPIRanks: 2, Monitoring: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tiling_0001.png")); err != nil {
		t.Error("master tiling window missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "tiling-rank1_0001.png")); err == nil {
		t.Error("non-master window written without --debug M")
	}
}

func TestCtxInstrumentationHelpers(t *testing.T) {
	// TraceNow and RecordTaskEvent on a traced run; both no-ops without a
	// recorder are covered implicitly by other tests.
	path := filepath.Join(t.TempDir(), "t.evt")
	Register(&Kernel{
		Name: "testctx",
		Init: func(ctx *Ctx) error { return nil },
		Variants: map[string]ComputeFunc{
			"seq": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(int) bool {
					start := ctx.TraceNow()
					ctx.StartTask(0)
					ctx.EndTask(0, 0, 8, 8, 0)
					ctx.RecordTaskEvent(trace.Event{
						CPU: 0, Kind: trace.KindOther, Start: start, End: ctx.TraceNow(),
					})
					return true
				})
			},
		},
	})
	out, err := Run(Config{Kernel: "testctx", Dim: 64, TileW: 16, TileH: 16,
		Iterations: 1, NoDisplay: true, TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trace.Events) != 2 {
		t.Fatalf("events = %d, want task + other", len(out.Trace.Events))
	}
	kinds := map[trace.EventKind]int{}
	for _, e := range out.Trace.Events {
		kinds[e.Kind]++
	}
	if kinds[trace.KindTask] != 1 || kinds[trace.KindOther] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}
