package core

import (
	"fmt"
	"sort"
	"sync"
)

// ComputeFunc is one variant of a kernel: it computes up to nbIter
// iterations and returns how many it actually performed. Returning fewer
// than nbIter signals convergence (the lazy Game of Life stops when the
// whole board is steady); the run loop then terminates early.
type ComputeFunc func(ctx *Ctx, nbIter int) int

// Kernel is a named 2D computation with one or more variants — the unit
// students work on. Init draws the initial image (and allocates any
// kernel-private state via Ctx.SetPriv); Refresh, if non-nil, updates the
// current image from private data structures before a frame is displayed
// (kernels with custom data structures only touch the image when a
// graphical refresh is needed, as §III-D requires).
type Kernel struct {
	Name           string
	Description    string
	Init           func(ctx *Ctx) error
	Refresh        func(ctx *Ctx)
	Variants       map[string]ComputeFunc
	DefaultVariant string

	// Codec, when non-nil, serializes the kernel's mid-run state for
	// iteration-prefix checkpointing (see StateCodec). Kernels without a
	// codec simply never produce or consume snapshots.
	Codec StateCodec
}

// VariantNames returns the kernel's variant names, sorted.
func (k *Kernel) VariantNames() []string {
	names := make([]string, 0, len(k.Variants))
	for n := range k.Variants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]*Kernel)
)

// Register adds a kernel to the global registry (kernels self-register in
// their package init). It panics on duplicate or malformed registrations:
// those are programming errors caught at startup.
func Register(k *Kernel) {
	if k.Name == "" {
		panic("core: kernel with empty name")
	}
	if len(k.Variants) == 0 {
		panic(fmt.Sprintf("core: kernel %q has no variants", k.Name))
	}
	if k.DefaultVariant == "" {
		if _, ok := k.Variants["seq"]; ok {
			k.DefaultVariant = "seq"
		} else {
			k.DefaultVariant = k.VariantNames()[0]
		}
	}
	if _, ok := k.Variants[k.DefaultVariant]; !ok {
		panic(fmt.Sprintf("core: kernel %q default variant %q not registered", k.Name, k.DefaultVariant))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[k.Name]; dup {
		panic(fmt.Sprintf("core: kernel %q registered twice", k.Name))
	}
	registry[k.Name] = k
}

// Lookup finds a registered kernel by name. The not-found error lists the
// registered kernels and, when the name looks like a typo, the nearest
// match — so `easypap --kernel mandle` tells the student about "mandel"
// instead of leaving them to diff strings by eye.
func Lookup(name string) (*Kernel, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown kernel %q%s (registered: %v)",
			name, didYouMean(name, kernelNamesLocked()), kernelNamesLocked())
	}
	return k, nil
}

// didYouMean returns a " (did you mean ...?)" fragment naming the
// candidate closest to name, or "" when nothing is plausibly close
// (edit distance greater than half the name's length).
func didYouMean(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf(" — did you mean %q?", best)
}

// editDistance is the Damerau-Levenshtein (optimal string alignment)
// distance between two short names: insertions, deletions, substitutions
// and adjacent transpositions all cost 1 — "sqe" is one typo away from
// "seq", not two.
func editDistance(a, b string) int {
	prev2 := make([]int, len(b)+1)
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				d = min(d, prev2[j-2]+1)
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(b)]
}

// KernelNames lists all registered kernels, sorted.
func KernelNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return kernelNamesLocked()
}

func kernelNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KernelInfo is the machine-readable description of one registered kernel
// — the shared shape of `easypap --list-json` and the daemon's GET
// /v1/kernels, so CLI and service clients parse one format.
type KernelInfo struct {
	Name           string   `json:"name"`
	Description    string   `json:"description,omitempty"`
	DefaultVariant string   `json:"default_variant"`
	Variants       []string `json:"variants"`
}

// KernelList returns the registry as KernelInfo records, sorted by name.
func KernelList() []KernelInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]KernelInfo, 0, len(registry))
	for _, name := range kernelNamesLocked() {
		k := registry[name]
		infos = append(infos, KernelInfo{
			Name:           k.Name,
			Description:    k.Description,
			DefaultVariant: k.DefaultVariant,
			Variants:       k.VariantNames(),
		})
	}
	return infos
}
