package core

import (
	"fmt"
	"sort"
	"sync"
)

// ComputeFunc is one variant of a kernel: it computes up to nbIter
// iterations and returns how many it actually performed. Returning fewer
// than nbIter signals convergence (the lazy Game of Life stops when the
// whole board is steady); the run loop then terminates early.
type ComputeFunc func(ctx *Ctx, nbIter int) int

// Kernel is a named 2D computation with one or more variants — the unit
// students work on. Init draws the initial image (and allocates any
// kernel-private state via Ctx.SetPriv); Refresh, if non-nil, updates the
// current image from private data structures before a frame is displayed
// (kernels with custom data structures only touch the image when a
// graphical refresh is needed, as §III-D requires).
type Kernel struct {
	Name           string
	Description    string
	Init           func(ctx *Ctx) error
	Refresh        func(ctx *Ctx)
	Variants       map[string]ComputeFunc
	DefaultVariant string
}

// VariantNames returns the kernel's variant names, sorted.
func (k *Kernel) VariantNames() []string {
	names := make([]string, 0, len(k.Variants))
	for n := range k.Variants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]*Kernel)
)

// Register adds a kernel to the global registry (kernels self-register in
// their package init). It panics on duplicate or malformed registrations:
// those are programming errors caught at startup.
func Register(k *Kernel) {
	if k.Name == "" {
		panic("core: kernel with empty name")
	}
	if len(k.Variants) == 0 {
		panic(fmt.Sprintf("core: kernel %q has no variants", k.Name))
	}
	if k.DefaultVariant == "" {
		if _, ok := k.Variants["seq"]; ok {
			k.DefaultVariant = "seq"
		} else {
			k.DefaultVariant = k.VariantNames()[0]
		}
	}
	if _, ok := k.Variants[k.DefaultVariant]; !ok {
		panic(fmt.Sprintf("core: kernel %q default variant %q not registered", k.Name, k.DefaultVariant))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[k.Name]; dup {
		panic(fmt.Sprintf("core: kernel %q registered twice", k.Name))
	}
	registry[k.Name] = k
}

// Lookup finds a registered kernel by name.
func Lookup(name string) (*Kernel, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown kernel %q (have %v)", name, kernelNamesLocked())
	}
	return k, nil
}

// KernelNames lists all registered kernels, sorted.
func KernelNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return kernelNamesLocked()
}

func kernelNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
