package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"easypap/internal/sched"
)

// testslow iterates forever at ~1ms per iteration — a controlled stand-in
// for a long mandel job in cancellation tests.
var testSlowOnce = func() bool {
	Register(&Kernel{
		Name:        "testslow",
		Description: "1ms-per-iteration kernel for cancellation tests",
		Variants: map[string]ComputeFunc{
			"seq": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(it int) bool {
					time.Sleep(time.Millisecond)
					return true
				})
			},
			// Communication-free mpi variant: exists so tests can reach the
			// distributed code paths without a real exchange pattern.
			"mpi": func(ctx *Ctx, nbIter int) int {
				return ctx.ForIterations(nbIter, func(it int) bool {
					time.Sleep(time.Millisecond)
					return true
				})
			},
		},
		DefaultVariant: "seq",
	})
	return true
}()

func TestRunContextCancelMidIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		err error
		at  time.Time
	}
	done := make(chan res, 1)
	go func() {
		_, err := RunContext(ctx, Config{
			Kernel: "testslow", Dim: 64, Iterations: 100000, NoDisplay: true, Threads: 1,
		})
		done <- res{err, time.Now()}
	}()

	time.Sleep(20 * time.Millisecond) // let it get a few iterations in
	canceledAt := time.Now()
	cancel()

	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("canceled run returned no error")
		}
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", r.err)
		}
		if lat := r.at.Sub(canceledAt); lat > 100*time.Millisecond {
			t.Errorf("run took %v to honor cancellation, want < 100ms", lat)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled run did not return")
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, Config{
		Kernel: "testslow", Dim: 64, Iterations: 100000, NoDisplay: true, Threads: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("pre-canceled run took %v", el)
	}
}

// A leased pool must survive a canceled run: the next job reuses it.
func TestLeasedPoolReusableAfterCancel(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunWith(ctx, Config{
			Kernel: "testslow", Dim: 64, Iterations: 100000, NoDisplay: true, Threads: 2,
		}, RunOptions{Pool: pool})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: %v", err)
	}

	if err := pool.Reset(); err != nil {
		t.Fatalf("pool not resettable after canceled run: %v", err)
	}

	out, err := RunWith(context.Background(), Config{
		Kernel: "testgrad", Variant: "omp_tiled", Dim: 128, TileW: 32,
		Iterations: 3, NoDisplay: true, Threads: 2,
	}, RunOptions{Pool: pool})
	if err != nil {
		t.Fatalf("pool unusable after canceled lease: %v", err)
	}
	if out.Iterations != 3 {
		t.Errorf("second run computed %d iterations, want 3", out.Iterations)
	}
}

func TestRunWithPoolThreadMismatch(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	_, err := RunWith(context.Background(), Config{
		Kernel: "testgrad", Dim: 64, Iterations: 1, NoDisplay: true, Threads: 3,
	}, RunOptions{Pool: pool})
	if err == nil {
		t.Fatal("expected an error leasing a 2-worker pool for 3 threads")
	}
}

func TestRunWithPoolRejectedForMPI(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	_, err := RunWith(context.Background(), Config{
		Kernel: "testslow", Dim: 64, Iterations: 1, NoDisplay: true,
		Threads: 2, MPIRanks: 2, Variant: "mpi",
	}, RunOptions{Pool: pool})
	if err == nil {
		t.Fatal("expected an error leasing a pool for an MPI run")
	}
}

// Cancellation must reach distributed runs too: every rank stops at its
// next iteration boundary.
func TestRunContextCancelMPI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, Config{
			Kernel: "testslow", Variant: "mpi", Dim: 64, Iterations: 100000,
			NoDisplay: true, Threads: 1, MPIRanks: 2,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled MPI run did not return")
	}
}
