package core

import (
	"strings"
	"testing"

	"easypap/internal/sched"
)

// Two configs that normalize identically must canonicalize (and hash)
// identically: the zero-value defaults and their explicit spellings are
// the same computation.
func TestHashNormalizationEquivalence(t *testing.T) {
	implicit := Config{Kernel: "testgrad"}
	n, err := implicit.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	explicit := Config{
		Kernel: "testgrad", Variant: "seq", Dim: 1024,
		TileW: 32, TileH: 32, Iterations: 1, Threads: n.Threads,
	}

	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		c1, _ := implicit.Canonical()
		c2, _ := explicit.Canonical()
		t.Errorf("defaulted and explicit configs hash differently:\n  %s\n  %s", c1, c2)
	}
}

// Label (and other presentation fields) must not participate: they change
// what is recorded about a run, never its result.
func TestHashIgnoresPresentationFields(t *testing.T) {
	base := Config{Kernel: "testgrad", Dim: 256}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for name, variant := range map[string]Config{
		"label":      {Kernel: "testgrad", Dim: 256, Label: "bench-box"},
		"no-display": {Kernel: "testgrad", Dim: 256, NoDisplay: true},
		"monitoring": {Kernel: "testgrad", Dim: 256, Monitoring: true},
		"trace":      {Kernel: "testgrad", Dim: 256, TracePath: "/tmp/t.evt"},
	} {
		h, err := variant.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != h0 {
			t.Errorf("%s changed the hash but does not change the computation", name)
		}
	}
}

// Differing grain, schedule or variant select different computations and
// must hash differently.
func TestHashSeparatesComputeParameters(t *testing.T) {
	base := Config{Kernel: "testgrad", Dim: 256, TileW: 32, Iterations: 4}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"base": h0}
	for name, variant := range map[string]Config{
		"grain":      {Kernel: "testgrad", Dim: 256, TileW: 16, Iterations: 4},
		"schedule":   {Kernel: "testgrad", Dim: 256, TileW: 32, Iterations: 4, Schedule: sched.DynamicPolicy(2)},
		"variant":    {Kernel: "testgrad", Variant: "omp_tiled", Dim: 256, TileW: 32, Iterations: 4},
		"iterations": {Kernel: "testgrad", Dim: 256, TileW: 32, Iterations: 5},
		"dim":        {Kernel: "testgrad", Dim: 512, TileW: 32, Iterations: 4},
	} {
		h, err := variant.Hash()
		if err != nil {
			t.Fatal(err)
		}
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("%s and %s hash identically but select different computations", name, prev)
			}
		}
		seen[name] = h
	}
}

func TestHashInvalidConfig(t *testing.T) {
	if _, err := (Config{Kernel: "no-such-kernel"}).Hash(); err == nil {
		t.Error("expected an error hashing an unknown kernel")
	}
	if _, err := (Config{}).Hash(); err == nil {
		t.Error("expected an error hashing an empty config")
	}
}

func TestCanonicalIsHumanReadable(t *testing.T) {
	c, err := Config{Kernel: "testgrad", Dim: 256}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernel=testgrad", "dim=256", "sched=static"} {
		if !strings.Contains(c, want) {
			t.Errorf("canonical form %q missing %q", c, want)
		}
	}
}
