package core

// FuzzConfigCanonicalHash guards the identity the whole serving and
// cluster stack hangs off of: Config.Canonical/Hash is the result-cache
// key of every daemon and the consistent-hash routing key of cluster
// mode, so
//
//   - canonicalization must be idempotent (normalizing a normalized
//     config changes nothing — otherwise a proxied submission would
//     re-normalize on the owner and land under a different key),
//   - the hash must depend only on the computation, not on how the
//     config was spelled (JSON field order, explicit vs defaulted
//     values),
//   - distinct canonical configs must never collide in the corpus (a
//     collision would silently serve one computation's cached result
//     for another).

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"easypap/internal/sched"
)

// fuzzPolicies is the schedule axis the fuzzer indexes into (free-form
// policy strings rarely parse; indexing keeps the corpus productive).
var fuzzPolicies = []sched.Policy{
	sched.StaticPolicy,
	sched.GuidedPolicy,
	sched.DynamicPolicy(1),
	sched.DynamicPolicy(4),
	sched.DynamicPolicy(16),
}

// hashCorpus records canonical -> hash across every fuzz execution in
// this process, the collision oracle.
var hashCorpus sync.Map // hash -> canonical

func FuzzConfigCanonicalHash(f *testing.F) {
	variants := []string{"", "seq", "omp_tiled", "converge2"}
	f.Add(uint8(0), 0, 0, 0, 0, 0, uint8(0), "", int64(0))
	f.Add(uint8(1), 1024, 32, 32, 10, 4, uint8(1), "random", int64(42))
	f.Add(uint8(2), 256, 16, 8, 3, 2, uint8(3), "glider", int64(-7))
	f.Add(uint8(3), 64, 0, 0, 1, 1, uint8(4), "x", int64(1<<40))
	f.Fuzz(func(t *testing.T, variantIdx uint8, dim, tileW, tileH, iters, threads int, polIdx uint8, arg string, seed int64) {
		cfg := Config{
			Kernel:     "testgrad",
			Variant:    variants[int(variantIdx)%len(variants)],
			Dim:        dim,
			TileW:      tileW,
			TileH:      tileH,
			Iterations: iters,
			Threads:    threads,
			Schedule:   fuzzPolicies[int(polIdx)%len(fuzzPolicies)],
			Arg:        arg,
			Seed:       seed,
		}
		n, err := cfg.Normalize()
		if err != nil {
			// Invalid geometry etc. — the only contract is that Canonical
			// and Hash reject it too instead of keying garbage.
			if _, cerr := cfg.Canonical(); cerr == nil {
				t.Fatalf("Normalize rejected %+v but Canonical accepted it", cfg)
			}
			if _, herr := cfg.Hash(); herr == nil {
				t.Fatalf("Normalize rejected %+v but Hash accepted it", cfg)
			}
			return
		}

		// Idempotence: normalizing a normalized config is the identity,
		// canonically. (The daemon normalizes on submit; the owner it
		// proxies to normalizes again.)
		n2, err := n.Normalize()
		if err != nil {
			t.Fatalf("re-normalizing valid config failed: %v", err)
		}
		c1, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("Canonical(%+v): %v", cfg, err)
		}
		cn, err := n.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		cn2, err := n2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if c1 != cn || cn != cn2 {
			t.Fatalf("canonicalization not idempotent:\n  raw:    %s\n  norm:   %s\n  norm^2: %s", c1, cn, cn2)
		}

		h, err := cfg.Hash()
		if err != nil {
			t.Fatal(err)
		}

		// Field-order stability: the same config decoded from JSON with
		// keys in reverse order must hash identically — the wire form of
		// a submission must never influence its cache key.
		var reordered Config
		if err := json.Unmarshal(reverseKeys(t, n), &reordered); err != nil {
			t.Fatalf("decoding reordered JSON: %v", err)
		}
		rh, err := reordered.Hash()
		if err != nil {
			t.Fatalf("hashing reordered config: %v", err)
		}
		if rh != h {
			rc, _ := reordered.Canonical()
			t.Fatalf("JSON field order changed the hash:\n  %s\n  %s", c1, rc)
		}

		// HashPoint is total and stable on valid hashes.
		if HashPoint(h) != HashPoint(h) {
			t.Fatal("HashPoint not deterministic")
		}

		// Collision oracle over everything this process has hashed:
		// same hash must always mean same canonical form.
		if prev, loaded := hashCorpus.LoadOrStore(h, c1); loaded && prev.(string) != c1 {
			t.Fatalf("hash collision:\n  %s\n  %s\n  both -> %s", prev, c1, h)
		}
	})
}

// reverseKeys re-encodes cfg's JSON object with keys in reverse sorted
// order. Go's decoder is order-independent by design; this pins the
// property the cluster relies on, so a future hand-rolled fast path
// cannot quietly break it.
func reverseKeys(t *testing.T, cfg Config) []byte {
	t.Helper()
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(blob, &fields); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(keys)))
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", k, fields[k])
	}
	b.WriteByte('}')
	return []byte(b.String())
}
