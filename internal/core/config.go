// Package core is the EASYPAP framework itself — the paper's contribution.
// It ties the substrates together: kernels and their variants are
// registered in a global registry; a Config (mirroring the easypap command
// line) selects what to run; Run drives the iteration loop, bracketing each
// iteration for the monitor and the tracer, feeding frames to the display
// sink, and producing the performance-mode measurements that end up in the
// CSV files easyplot consumes.
package core

import (
	"fmt"
	"os"
	"runtime"
	"time"
	"unicode/utf8"

	"easypap/internal/sched"
)

// Config selects and parameterizes a run. Zero fields take the same
// defaults the easypap binary applies (see Normalize). The JSON form is
// the wire format of the easypapd submission API (internal/serve);
// sched.Policy marshals as its OMP_SCHEDULE string, so a submission reads
// e.g. {"kernel":"mandel","dim":512,"schedule":"dynamic,4"}.
type Config struct {
	Kernel  string `json:"kernel"`            // --kernel
	Variant string `json:"variant,omitempty"` // --variant
	Dim     int    `json:"dim,omitempty"`     // --size (images are square, like EASYPAP)
	TileW   int    `json:"tile_w,omitempty"`  // --tile-width (or --tile-size / --grain for square tiles)
	TileH   int    `json:"tile_h,omitempty"`  // --tile-height

	Iterations int          `json:"iterations,omitempty"` // --iterations
	Threads    int          `json:"threads,omitempty"`    // OMP_NUM_THREADS analogue (--threads)
	Schedule   sched.Policy `json:"schedule"`             // OMP_SCHEDULE analogue (--schedule)

	Monitoring bool   `json:"monitoring,omitempty"` // --monitoring: per-iteration activity + tiling stats
	HeatMode   bool   `json:"heat_mode,omitempty"`  // --heat-map: tiling window colors by task duration
	TracePath  string `json:"trace_path,omitempty"` // --trace[=path]: record an execution trace
	NoDisplay  bool   `json:"no_display,omitempty"` // --no-display: performance mode

	OutputDir  string `json:"output_dir,omitempty"`  // --output-dir: where frames and windows are written
	FrameEvery int    `json:"frame_every,omitempty"` // --frames n: keep one frame every n iterations

	MPIRanks int    `json:"mpi_ranks,omitempty"` // --mpirun "-np N": number of simulated MPI processes
	Debug    string `json:"debug,omitempty"`     // --debug flags; 'M' shows windows of every MPI process

	Arg  string `json:"arg,omitempty"`  // free-form kernel argument (e.g. life pattern name)
	Seed int64  `json:"seed,omitempty"` // deterministic seed for randomized kernels

	// Label tags the run in CSV output (defaults to the host name).
	Label string `json:"label,omitempty"`
}

// Normalize fills defaults and validates the configuration against the
// selected kernel. It returns a copy; the receiver is unchanged.
func (c Config) Normalize() (Config, error) {
	if c.Kernel == "" {
		return c, fmt.Errorf("core: no kernel selected")
	}
	k, err := Lookup(c.Kernel)
	if err != nil {
		return c, err
	}
	if c.Variant == "" {
		c.Variant = k.DefaultVariant
	}
	if _, ok := k.Variants[c.Variant]; !ok {
		return c, fmt.Errorf("core: kernel %q has no variant %q%s (registered: %v)",
			c.Kernel, c.Variant, didYouMean(c.Variant, k.VariantNames()), k.VariantNames())
	}
	if c.Dim == 0 {
		c.Dim = 1024
	}
	if c.Dim <= 0 {
		return c, fmt.Errorf("core: invalid --size %d", c.Dim)
	}
	if c.TileW == 0 {
		c.TileW = defaultTile(c.Dim)
	}
	if c.TileH == 0 {
		c.TileH = c.TileW
	}
	// sched.NewTileGrid is the authority on valid decompositions (tile
	// sizes must divide the image: a truncated grid would silently drop
	// the board's right/bottom fringe in every tiled kernel). On the
	// divisibility failure, swap in an actionable error naming the
	// offending dimension and the nearest sizes that do divide.
	if _, err := sched.NewTileGrid(c.Dim, c.TileW, c.TileH); err != nil {
		if c.TileW > 0 && c.Dim%c.TileW != 0 {
			return c, tileDividesError(c.Dim, "tile width", c.TileW)
		}
		if c.TileH > 0 && c.Dim%c.TileH != 0 {
			return c, tileDividesError(c.Dim, "tile height", c.TileH)
		}
		return c, err
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.Iterations < 0 {
		return c, fmt.Errorf("core: invalid --iterations %d", c.Iterations)
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MPIRanks <= 0 {
		c.MPIRanks = 1
	}
	if c.MPIRanks > 1 && !isMPIVariant(c.Variant) {
		return c, fmt.Errorf("core: --mpirun requires an mpi variant, not %q", c.Variant)
	}
	if isMPIVariant(c.Variant) && c.MPIRanks == 1 {
		c.MPIRanks = 2 // mirror easypap: mpi variants default to 2 processes
	}
	if c.FrameEvery < 0 {
		return c, fmt.Errorf("core: invalid --frames %d", c.FrameEvery)
	}
	// Arg participates in the canonical hash and travels as JSON, which
	// replaces invalid UTF-8 with U+FFFD — a config that cannot round-trip
	// the wire unchanged would hash differently on the client and on the
	// daemon, splitting its cache entry across cluster nodes. Reject it
	// here instead (found by FuzzConfigCanonicalHash).
	if !utf8.ValidString(c.Arg) {
		return c, fmt.Errorf("core: kernel argument is not valid UTF-8")
	}
	if c.Label == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "unknown-host"
		}
		c.Label = host
	}
	return c, nil
}

// tileDividesError builds the non-dividing-tile rejection, suggesting
// the nearest divisors of the image size. Only called when dim%tile != 0.
func tileDividesError(dim int, what string, tile int) error {
	below, above := 0, 0
	for t := tile - 1; t >= 1; t-- {
		if dim%t == 0 {
			below = t
			break
		}
	}
	for t := tile + 1; t <= dim; t++ {
		if dim%t == 0 {
			above = t
			break
		}
	}
	suggest := ""
	switch {
	case below > 0 && above > 0:
		suggest = fmt.Sprintf(" (nearest dividing sizes: %d or %d)", below, above)
	case below > 0:
		suggest = fmt.Sprintf(" (nearest dividing size: %d)", below)
	case above > 0:
		suggest = fmt.Sprintf(" (nearest dividing size: %d)", above)
	}
	return fmt.Errorf("core: %s %d does not divide image size %d — the tile grid would silently drop the board's fringe%s",
		what, tile, dim, suggest)
}

// defaultTile mirrors EASYPAP's default decomposition: 32x32 tiles for
// images at least 512 wide, otherwise the largest power-of-two divisor up
// to 32.
func defaultTile(dim int) int {
	for t := 32; t > 1; t /= 2 {
		if dim%t == 0 {
			return t
		}
	}
	return 1
}

// isMPIVariant reports whether a variant name designates a distributed
// variant (EASYPAP convention: the name starts with "mpi").
func isMPIVariant(v string) bool {
	return len(v) >= 3 && v[:3] == "mpi"
}

// Result is what a run reports: the performance-mode wall clock plus
// everything the analysis tools consume. WallTime marshals as
// nanoseconds, like time.Duration everywhere else.
type Result struct {
	Config     Config        `json:"config"`
	WallTime   time.Duration `json:"wall_ns"`
	Iterations int           `json:"iterations"` // total iterations reached (lazy kernels may stop early)

	// ResumedFrom is the iteration this run was restored to from a
	// checkpoint before computing; 0 for cold runs (and omitted, so cold
	// results serialize exactly as before checkpointing existed). The
	// iterations actually computed by this run are
	// Iterations - ResumedFrom.
	ResumedFrom int `json:"resumed_from,omitempty"`

	// Activity is the per-iteration tile-frontier series reported by lazy
	// kernel variants (nil for eager variants): the job's frontier-collapse
	// curve. Under MPI the per-rank band series are summed into whole-grid
	// counts (ranks iterate in lockstep).
	Activity []IterActivity `json:"activity,omitempty"`

	// Halo counters of distributed runs, summed across ranks: boundary
	// messages actually sent, quiet edges the frontier-skip rule elided,
	// and boundary payload bytes. Zero for local runs. Counters carry no
	// omitempty so a zero is visible as a zero.
	HalosSent    int64 `json:"halos_sent"`
	HalosSkipped int64 `json:"halos_skipped"`
	HaloBytes    int64 `json:"halo_bytes"`

	// Checksum is the hex SHA-256 of the final image's pixels — a cheap
	// byte-identity probe letting clients assert that two runs of a
	// config (e.g. sharded vs single-node) produced the same picture
	// without streaming frames. Empty on non-master ranks.
	Checksum string `json:"checksum,omitempty"`
}

// String renders the performance-mode report line, e.g.
// "50 iterations completed in 579 ms" (paper §II-C).
func (r Result) String() string {
	return fmt.Sprintf("%d iterations completed in %d ms",
		r.Iterations, r.WallTime.Milliseconds())
}
