package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// collectActive runs ParallelForActive and returns how many times each
// tile rectangle was visited, keyed by tile index.
func collectActive(t *testing.T, p *Pool, g TileGrid, active []int32, pol Policy) map[int]int {
	t.Helper()
	var mu sync.Mutex
	seen := make(map[int]int)
	p.ParallelForActive(g, active, pol, func(x, y, w, h, worker int) {
		if w != g.TileW || h != g.TileH {
			t.Errorf("tile at (%d,%d) has size %dx%d, want %dx%d", x, y, w, h, g.TileW, g.TileH)
		}
		mu.Lock()
		seen[g.TileAt(x, y)]++
		mu.Unlock()
	})
	return seen
}

var sparsePolicies = []Policy{
	StaticPolicy,
	{Kind: StaticChunk, Chunk: 2},
	DynamicPolicy(1),
	GuidedPolicy,
	NonmonotonicPolicy,
}

// TestParallelForActiveEmptyFrontier: an empty list is a no-op (and must
// not wake the team or dispatch a zero-trip construct).
func TestParallelForActiveEmptyFrontier(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(64, 8, 8)
	for _, pol := range sparsePolicies {
		called := atomic.Int32{}
		p.ParallelForActive(g, nil, pol, func(x, y, w, h, worker int) { called.Add(1) })
		p.ParallelForActive(g, []int32{}, pol, func(x, y, w, h, worker int) { called.Add(1) })
		if called.Load() != 0 {
			t.Fatalf("%v: empty frontier dispatched %d tiles", pol, called.Load())
		}
	}
}

// TestParallelForActiveSingleTile: a one-tile frontier visits exactly that
// tile under every policy.
func TestParallelForActiveSingleTile(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(64, 8, 8)
	for _, pol := range sparsePolicies {
		seen := collectActive(t, p, g, []int32{27}, pol)
		if len(seen) != 1 || seen[27] != 1 {
			t.Fatalf("%v: single-tile frontier visited %v, want tile 27 once", pol, seen)
		}
	}
}

// TestParallelForActiveFullGrid: a full-grid frontier covers every tile
// exactly once, matching ParallelForTiles coverage.
func TestParallelForActiveFullGrid(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(64, 8, 8)
	full := make([]int32, g.Tiles())
	for i := range full {
		full[i] = int32(i)
	}
	for _, pol := range sparsePolicies {
		seen := collectActive(t, p, g, full, pol)
		if len(seen) != g.Tiles() {
			t.Fatalf("%v: covered %d tiles, want %d", pol, len(seen), g.Tiles())
		}
		for tile, n := range seen {
			if n != 1 {
				t.Fatalf("%v: tile %d visited %d times", pol, tile, n)
			}
		}
	}
}

// TestParallelForActiveSparseSubset: an arbitrary sparse subset visits
// exactly the listed tiles, once each.
func TestParallelForActiveSparseSubset(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(128, 8, 8) // 256 tiles
	active := []int32{0, 1, 17, 64, 65, 66, 129, 255}
	for _, pol := range sparsePolicies {
		seen := collectActive(t, p, g, active, pol)
		if len(seen) != len(active) {
			t.Fatalf("%v: covered %d tiles, want %d (%v)", pol, len(seen), len(active), seen)
		}
		for _, tile := range active {
			if seen[int(tile)] != 1 {
				t.Fatalf("%v: tile %d visited %d times", pol, tile, seen[int(tile)])
			}
		}
	}
}

// TestParallelForActiveSingleWorkerInline: a 1-worker pool executes the
// frontier inline with no handoff.
func TestParallelForActiveSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := MustTileGrid(32, 8, 8)
	seen := collectActive(t, p, g, []int32{3, 7, 11}, DynamicPolicy(1))
	if len(seen) != 3 {
		t.Fatalf("inline dispatch covered %v", seen)
	}
}

// BenchmarkLazyDispatch measures sparse dispatch of a small frontier on a
// warm pool — the steady-state cost ParallelForActive adds per iteration.
// Must report 0 allocs/op: the descriptor, adapters and list are all
// pre-allocated (BENCH_lazy.json's zero-steady-state-allocation claim).
func BenchmarkLazyDispatch(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(1024, 32, 32) // 1024 tiles
	active := make([]int32, 16)     // ~1.6% of the grid active
	for i := range active {
		active[i] = int32(i * 61)
	}
	var sink atomic.Int64
	body := func(x, y, w, h, worker int) { sink.Add(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelForActive(g, active, DynamicPolicy(4), body)
	}
}

// BenchmarkLazyDispatchVsDense contrasts sparse dispatch of a 16-tile
// frontier with dense full-grid dispatch over the same 1024-tile grid —
// the cost-proportional-to-active-tiles claim.
func BenchmarkLazyDispatchVsDense(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	g := MustTileGrid(1024, 32, 32)
	var sink atomic.Int64
	body := func(x, y, w, h, worker int) { sink.Add(1) }
	active := make([]int32, 16)
	for i := range active {
		active[i] = int32(i * 61)
	}
	b.Run("sparse16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ParallelForActive(g, active, DynamicPolicy(4), body)
		}
	})
	b.Run("dense1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ParallelForTiles(g, DynamicPolicy(4), body)
		}
	})
}
