// Package sched is the OpenMP-like parallel loop runtime that EASYPAP
// kernels run on. It provides a pool of persistent workers (the "threads"),
// parallel-for loops over 1D index spaces and collapsed 2D tile grids, and
// the four loop scheduling policies the paper studies (Fig. 4):
//
//	static                 — contiguous, evenly sized per-worker blocks
//	static,k               — round-robin chunks of k iterations
//	dynamic,k              — workers opportunistically grab chunks of k
//	guided[,k]             — geometrically decreasing chunks (min k)
//	nonmonotonic:dynamic   — static initial distribution + work stealing
//
// The semantics mirror the OpenMP specification closely enough that the
// assignment patterns students observe in EASYPAP's tiling window (paper
// Figs. 3, 4, 8) are reproduced: static yields contiguous color blocks,
// dynamic yields opportunistic interleavings that turn cyclic on uniform
// work, guided yields shrinking runs, and nonmonotonic starts static and
// re-balances by stealing.
//
// Teams (the analogue of "#pragma omp parallel" regions) expose barriers,
// single-execution blocks and worksharing loops for kernels that manage the
// iteration structure themselves (e.g. the MPI+OpenMP Game of Life).
package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// PolicyKind enumerates the supported loop scheduling strategies.
type PolicyKind int

const (
	// Static divides the index space into one contiguous block per worker
	// (OpenMP "schedule(static)" without a chunk size).
	Static PolicyKind = iota
	// StaticChunk deals chunks of fixed size round-robin to workers
	// (OpenMP "schedule(static, k)").
	StaticChunk
	// Dynamic lets idle workers grab the next chunk of fixed size
	// (OpenMP "schedule(dynamic, k)").
	Dynamic
	// Guided lets idle workers grab geometrically decreasing chunks, never
	// smaller than the chunk size (OpenMP "schedule(guided, k)").
	Guided
	// Nonmonotonic distributes chunks statically first and lets idle
	// workers steal from the back of other workers' queues, following the
	// "static steal" implementation of OpenMP 5's
	// "schedule(nonmonotonic:dynamic)" that the paper demonstrates.
	Nonmonotonic
)

// String returns the OpenMP-style name of the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case Static:
		return "static"
	case StaticChunk:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Nonmonotonic:
		return "nonmonotonic:dynamic"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is a scheduling policy: a kind plus an optional chunk size.
// The zero value is schedule(static).
type Policy struct {
	Kind  PolicyKind
	Chunk int // chunk size; 0 means the policy's default
}

// Convenience constructors mirroring OMP_SCHEDULE strings.
var (
	// StaticPolicy is schedule(static).
	StaticPolicy = Policy{Kind: Static}
	// GuidedPolicy is schedule(guided).
	GuidedPolicy = Policy{Kind: Guided}
	// NonmonotonicPolicy is schedule(nonmonotonic:dynamic).
	NonmonotonicPolicy = Policy{Kind: Nonmonotonic}
)

// DynamicPolicy returns schedule(dynamic, k).
func DynamicPolicy(k int) Policy { return Policy{Kind: Dynamic, Chunk: k} }

// StaticChunkPolicy returns schedule(static, k).
func StaticChunkPolicy(k int) Policy { return Policy{Kind: StaticChunk, Chunk: k} }

// chunkOrDefault returns the effective chunk size (at least 1).
func (p Policy) chunkOrDefault() int {
	if p.Chunk <= 0 {
		return 1
	}
	return p.Chunk
}

// String formats the policy in OMP_SCHEDULE syntax, e.g. "dynamic,2".
func (p Policy) String() string {
	if p.Chunk > 0 && p.Kind != Static {
		return fmt.Sprintf("%s,%d", p.Kind, p.Chunk)
	}
	if p.Kind == StaticChunk && p.Chunk > 0 {
		return fmt.Sprintf("static,%d", p.Chunk)
	}
	return p.Kind.String()
}

// ParsePolicy parses an OMP_SCHEDULE-style string: "static", "static,8",
// "dynamic", "dynamic,2", "guided", "guided,4", "nonmonotonic:dynamic",
// "nonmonotonic:dynamic,2". The empty string parses as static.
func ParsePolicy(s string) (Policy, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return StaticPolicy, nil
	}
	name, chunkStr, hasChunk := strings.Cut(s, ",")
	chunk := 0
	if hasChunk {
		v, err := strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || v <= 0 {
			return Policy{}, fmt.Errorf("sched: invalid chunk size %q in schedule %q", chunkStr, s)
		}
		chunk = v
	}
	switch strings.TrimSpace(name) {
	case "static":
		if chunk > 0 {
			return Policy{Kind: StaticChunk, Chunk: chunk}, nil
		}
		return Policy{Kind: Static}, nil
	case "dynamic", "monotonic:dynamic":
		return Policy{Kind: Dynamic, Chunk: chunk}, nil
	case "guided":
		return Policy{Kind: Guided, Chunk: chunk}, nil
	case "nonmonotonic:dynamic", "nonmonotonic", "steal":
		return Policy{Kind: Nonmonotonic, Chunk: chunk}, nil
	default:
		return Policy{}, fmt.Errorf("sched: unknown schedule %q", s)
	}
}

// MustParsePolicy is ParsePolicy that panics on error; for tests and
// compile-time-constant schedules.
func MustParsePolicy(s string) Policy {
	p, err := ParsePolicy(s)
	if err != nil {
		panic(err)
	}
	return p
}
