package sched

// Sparse dispatch: the worksharing entry point behind the lazy tile-activity
// engine (internal/tilegrid). Where ParallelForTiles iterates the full dense
// tile grid, ParallelForActive iterates a compacted list of active tile
// indices, so an iteration's cost is proportional to the frontier size, not
// the grid size — the platform-level form of the paper's §III-D lazy
// evaluation. The list rides through the same epoch-broadcast descriptor,
// steal queues and policies as every other construct, and the pre-allocated
// adapter keeps a warm-pool dispatch at zero heap allocations.

// ParallelForActive executes body for every tile listed in active (indices
// into g, in list order) using the given scheduling policy, blocking until
// all of them complete. Scheduling policies see the *list positions* as the
// iteration space: schedule(static) splits the active list — not the grid —
// evenly, so load balance degrades gracefully as the frontier collapses.
// An empty list returns immediately without waking the team.
//
// The caller must not mutate active until the call returns; a
// tilegrid.Frontier's Active() slice is valid by construction.
func (p *Pool) ParallelForActive(g TileGrid, active []int32, pol Policy, body TileBody) {
	if len(active) == 0 {
		return
	}
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.loop.tile = body
	p.loop.grid = g
	p.loop.active = active
	p.forRangesLocked(len(active), pol, p.activeAdapter)
}
