package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed team of persistent worker goroutines, the analogue of the
// OpenMP thread team EASYPAP kernels run on. Worker ranks are stable for
// the lifetime of the pool, which is what lets the monitoring windows and
// EASYVIEW assign each "CPU" a consistent color across iterations.
//
// Dispatch is epoch-based (DESIGN.md §2): workers park on a condition
// variable keyed by an epoch counter; publishing a worksharing construct
// stores its descriptor in the pool, bumps the epoch and broadcasts. The
// descriptor, the per-worker steal queues and the element/tile adapters are
// all pre-allocated, so a ParallelFor on a warm pool performs zero heap
// allocations and zero channel operations — the dispatch overhead the
// paper's scheduling comparisons (Fig. 4) must not drown in.
//
// The dispatching goroutine is team member 0, exactly as the master thread
// is thread 0 of an OpenMP team: a pool of n workers runs n-1 background
// goroutines, and a single-worker pool executes constructs inline with no
// handoff at all.
//
// A Pool must be created with NewPool and released with Close. All methods
// are safe for concurrent use by multiple goroutines, but a single
// ParallelFor runs to completion before another starts (they serialize on
// an internal mutex), matching the implicit barrier at the end of an OpenMP
// worksharing construct.
type Pool struct {
	workers int

	mu      sync.Mutex // guards epoch, active, closing
	workCnd *sync.Cond // workers wait here for a new epoch
	doneCnd *sync.Cond // the dispatcher waits here for completion
	epoch   uint64     // bumped once per dispatched construct
	active  int        // workers still executing the current construct
	closing bool
	closed  bool
	wg      sync.WaitGroup // tracks live workers for Close

	loopMu sync.Mutex // serializes worksharing constructs

	// loop is the descriptor of the in-flight construct. It lives in the
	// pool (not per call) so dispatch never allocates; the epoch handoff
	// under mu publishes it to the workers.
	loop loopDesc

	// queues are the per-worker steal queues for nonmonotonic scheduling,
	// reused (including their chunk backing arrays) across loops.
	queues []chunkQueue

	// elemAdapter, tileAdapter and activeAdapter are allocated once in
	// NewPool so that ParallelFor, ParallelForTiles and ParallelForActive
	// need no per-call closure: the element/tile body travels through the
	// descriptor instead.
	elemAdapter   RangeBody
	tileAdapter   RangeBody
	activeAdapter RangeBody
}

// loopDesc describes one worksharing construct (or bare parallel region).
// Exactly one of region/body is active per epoch.
type loopDesc struct {
	kind   PolicyKind
	n      int
	chunk  int
	body   RangeBody        // worksharing constructs
	region func(worker int) // Run/Team regions
	elem   Body             // ParallelFor element body (via elemAdapter)
	tile   TileBody         // ParallelForTiles body (via tileAdapter)
	active []int32          // ParallelForActive tile list (via activeAdapter)
	grid   TileGrid
	cursor atomic.Int64 // dynamic fetch-add / guided CAS cursor
	remain atomic.Int64 // nonmonotonic outstanding iterations
}

// NewPool creates a pool of n persistent workers. If n <= 0, the pool uses
// runtime.GOMAXPROCS(0) workers, the same default OpenMP applies when
// OMP_NUM_THREADS is unset.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		queues:  make([]chunkQueue, n),
	}
	p.workCnd = sync.NewCond(&p.mu)
	p.doneCnd = sync.NewCond(&p.mu)
	p.elemAdapter = func(lo, hi, worker int) {
		body := p.loop.elem
		for i := lo; i < hi; i++ {
			body(i, worker)
		}
	}
	p.tileAdapter = func(lo, hi, worker int) {
		body, g := p.loop.tile, p.loop.grid
		for tile := lo; tile < hi; tile++ {
			x, y, w, h := g.Coords(tile)
			body(x, y, w, h, worker)
		}
	}
	p.activeAdapter = func(lo, hi, worker int) {
		body, g, list := p.loop.tile, p.loop.grid, p.loop.active
		for i := lo; i < hi; i++ {
			x, y, w, h := g.Coords(int(list[i]))
			body(x, y, w, h, worker)
		}
	}
	p.wg.Add(n - 1)
	for w := 1; w < n; w++ {
		go p.workerLoop(w)
	}
	return p
}

// workerLoop parks until the epoch advances, executes the published
// construct, and reports completion. The last finisher wakes the
// dispatcher.
func (p *Pool) workerLoop(rank int) {
	defer p.wg.Done()
	var seen uint64
	for {
		p.mu.Lock()
		for p.epoch == seen && !p.closing {
			p.workCnd.Wait()
		}
		if p.epoch == seen { // closing with no new work
			p.mu.Unlock()
			return
		}
		seen = p.epoch
		p.mu.Unlock()

		p.execute(rank)

		p.mu.Lock()
		p.active--
		if p.active == 0 {
			p.doneCnd.Signal()
		}
		p.mu.Unlock()
	}
}

// dispatch publishes the descriptor already stored in p.loop to the team,
// executes member 0's share on the calling goroutine, and blocks until the
// background members finished too. Callers must hold loopMu.
func (p *Pool) dispatch() {
	if p.closed {
		// The old channel dispatch panicked ("send on closed channel") on
		// use-after-Close; keep that failure loud instead of deadlocking
		// on a join that no worker will ever signal.
		panic("sched: construct dispatched on a closed Pool")
	}
	if p.workers == 1 {
		// clearLoop in a defer so a panicking body cannot leak a stale
		// descriptor into the next construct.
		defer p.clearLoop()
		p.execute(0)
		return
	}

	p.mu.Lock()
	p.active = p.workers - 1
	p.epoch++
	p.workCnd.Broadcast()
	p.mu.Unlock()
	if p.loop.sharedWork() {
		// Give the woken members a scheduling chance before member 0
		// starts consuming shared work: without this, a caller on a
		// saturated (or single-CPU) machine can drain a dynamic cursor or
		// steal every queue before the others ever run, destroying the
		// owner-locality the policies are supposed to exhibit. Static
		// shares are untouchable by member 0, so they skip the yield.
		runtime.Gosched()
	}

	// Join in a defer: even when the body panics on member 0 (the
	// caller), the background members must finish the construct before
	// the descriptor is cleared or the panic unwinds into code that
	// could dispatch again — otherwise a late-waking worker would read a
	// nil body, and a recovered caller would overlap two constructs.
	// Loop constructs always terminate on the background members, so the
	// join is safe there and the panic is re-raised after it. A *region*
	// (Run/Team) is different: members 1..n-1 may be blocked at a
	// barrier member 0 will never reach, so the team cannot be joined —
	// fail as loudly as the old channel dispatch did (which crashed the
	// process from a worker goroutine) instead of deadlocking silently.
	defer func() {
		r := recover()
		if r != nil && p.loop.region != nil {
			go func() {
				panic(fmt.Sprintf("sched: parallel region panicked on member 0 "+
					"with the team possibly blocked at a barrier: %v", r))
			}()
			select {} // unreachable: the goroutine above kills the process
		}
		p.mu.Lock()
		for p.active != 0 {
			p.doneCnd.Wait()
		}
		p.mu.Unlock()
		p.clearLoop()
		if r != nil {
			panic(r)
		}
	}()

	p.execute(0)
}

// clearLoop drops the descriptor references so a retained pool does not
// pin kernel state and a stale construct can never leak into the next.
func (p *Pool) clearLoop() {
	p.loop.body = nil
	p.loop.region = nil
	p.loop.elem = nil
	p.loop.tile = nil
	p.loop.active = nil
}

// sharedWork reports whether member 0 could consume other members' share
// of the current construct (shared cursor, steal queues, or an arbitrary
// region body such as the task engine's ready queue).
func (d *loopDesc) sharedWork() bool {
	return d.region != nil || d.kind == Dynamic || d.kind == Guided || d.kind == Nonmonotonic
}

// execute runs this worker's share of the current construct.
func (p *Pool) execute(w int) {
	d := &p.loop
	if d.region != nil {
		d.region(w)
		return
	}
	runShare(w, p.workers, d.n, d.kind, d.chunk, &d.cursor, p.queues, &d.remain, d.body)
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Reset prepares the pool for reuse by a new lease holder (see
// internal/serve's warm-pool set): it waits for any in-flight construct to
// finish, drops every descriptor and steal-queue reference so the pool
// pins no state from the previous job, and verifies the team is idle.
// It returns an error if the pool has been closed, or if a worker is
// somehow still active after the construct lock was acquired — both mean
// the pool must not be handed to another job.
func (p *Pool) Reset() error {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	if p.closed {
		return fmt.Errorf("sched: Reset on a closed Pool")
	}
	p.mu.Lock()
	active := p.active
	p.mu.Unlock()
	if active != 0 {
		return fmt.Errorf("sched: Reset with %d workers still executing a construct", active)
	}
	p.clearLoop()
	for i := range p.queues {
		p.queues[i].chunks = p.queues[i].chunks[:0]
		p.queues[i].ht.Store(0)
	}
	return nil
}

// Close shuts the workers down and waits for them to exit. The pool must
// not be used afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.mu.Lock()
	p.closing = true
	p.workCnd.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Run executes fn once on every worker concurrently (the analogue of a bare
// "#pragma omp parallel" region) and waits for all of them — the implicit
// join at the end of the parallel region.
func (p *Pool) Run(fn func(worker int)) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.runLocked(fn)
}

// runLocked dispatches fn to every worker without taking loopMu; callers
// must hold it.
func (p *Pool) runLocked(fn func(worker int)) {
	p.loop.region = fn
	p.dispatch()
}

// Barrier is a reusable cyclic barrier for n participants, the analogue of
// "#pragma omp barrier" inside a parallel region.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for n participants; n must be positive.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("sched: barrier size %d", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases them
// all and resets for the next phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
