package sched

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed team of persistent worker goroutines, the analogue of the
// OpenMP thread team EASYPAP kernels run on. Worker ranks are stable for
// the lifetime of the pool, which is what lets the monitoring windows and
// EASYVIEW assign each "CPU" a consistent color across iterations.
//
// A Pool must be created with NewPool and released with Close. All methods
// are safe for concurrent use by multiple goroutines, but a single
// ParallelFor runs to completion before another starts (they serialize on
// an internal mutex), matching the implicit barrier at the end of an OpenMP
// worksharing construct.
type Pool struct {
	workers int
	jobs    []chan func(worker int)
	wg      sync.WaitGroup // tracks live workers for Close
	loopMu  sync.Mutex     // serializes worksharing constructs
	closed  bool
	mu      sync.Mutex // guards closed
}

// NewPool creates a pool of n persistent workers. If n <= 0, the pool uses
// runtime.GOMAXPROCS(0) workers, the same default OpenMP applies when
// OMP_NUM_THREADS is unset.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		jobs:    make([]chan func(worker int), n),
	}
	for w := 0; w < n; w++ {
		p.jobs[w] = make(chan func(worker int), 1)
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	return p
}

func (p *Pool) workerLoop(rank int) {
	defer p.wg.Done()
	for fn := range p.jobs[rank] {
		fn(rank)
	}
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the workers down and waits for them to exit. The pool must
// not be used afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.jobs {
		close(ch)
	}
	p.wg.Wait()
}

// Run executes fn once on every worker concurrently (the analogue of a bare
// "#pragma omp parallel" region) and waits for all of them — the implicit
// join at the end of the parallel region.
func (p *Pool) Run(fn func(worker int)) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.run(fn)
}

// run dispatches fn to every worker without taking loopMu; callers must
// hold it.
func (p *Pool) run(fn func(worker int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs[w] <- func(rank int) {
			defer wg.Done()
			fn(rank)
		}
	}
	wg.Wait()
}

// Barrier is a reusable cyclic barrier for n participants, the analogue of
// "#pragma omp barrier" inside a parallel region.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for n participants; n must be positive.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("sched: barrier size %d", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases them
// all and resets for the next phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
