package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewTileGridValidation(t *testing.T) {
	cases := []struct {
		dim, tw, th int
		ok          bool
	}{
		{64, 8, 8, true},
		{64, 16, 8, true},
		{64, 64, 64, true},
		{64, 1, 1, true},
		{0, 8, 8, false},
		{-4, 8, 8, false},
		{64, 0, 8, false},
		{64, 8, -1, false},
		{64, 7, 8, false}, // 7 does not divide 64
		{64, 8, 48, false},
	}
	for _, c := range cases {
		_, err := NewTileGrid(c.dim, c.tw, c.th)
		if (err == nil) != c.ok {
			t.Errorf("NewTileGrid(%d,%d,%d) error=%v, want ok=%v", c.dim, c.tw, c.th, err, c.ok)
		}
	}
}

func TestMustTileGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTileGrid did not panic")
		}
	}()
	MustTileGrid(10, 3, 3)
}

func TestTileGridGeometry(t *testing.T) {
	g := MustTileGrid(64, 16, 8)
	if g.TilesX != 4 || g.TilesY != 8 {
		t.Fatalf("grid = %dx%d tiles, want 4x8", g.TilesX, g.TilesY)
	}
	if g.Tiles() != 32 {
		t.Fatalf("Tiles() = %d, want 32", g.Tiles())
	}
	// Tile 0 is top-left; numbering is row-major.
	if x, y, w, h := g.Coords(0); x != 0 || y != 0 || w != 16 || h != 8 {
		t.Errorf("Coords(0) = (%d,%d,%d,%d)", x, y, w, h)
	}
	if x, y, _, _ := g.Coords(1); x != 16 || y != 0 {
		t.Errorf("Coords(1) = (%d,%d), want (16,0)", x, y)
	}
	if x, y, _, _ := g.Coords(4); x != 0 || y != 8 {
		t.Errorf("Coords(4) = (%d,%d), want (0,8)", x, y)
	}
	if x, y, _, _ := g.Coords(31); x != 48 || y != 56 {
		t.Errorf("Coords(31) = (%d,%d), want (48,56)", x, y)
	}
}

// Property: Coords and TileAt are inverses; TileXY is consistent.
func TestQuickTileRoundTrip(t *testing.T) {
	g := MustTileGrid(128, 16, 8)
	f := func(raw uint16) bool {
		tile := int(raw) % g.Tiles()
		x, y, w, h := g.Coords(tile)
		tx, ty := g.TileXY(tile)
		if tx != x/16 || ty != y/8 {
			return false
		}
		// Every pixel of the tile maps back to the tile.
		return g.TileAt(x, y) == tile &&
			g.TileAt(x+w-1, y+h-1) == tile &&
			g.TileAt(x+w/2, y+h/2) == tile
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsBorder(t *testing.T) {
	g := MustTileGrid(64, 8, 8) // 8x8 tiles
	borders, inner := 0, 0
	for tile := 0; tile < g.Tiles(); tile++ {
		if g.IsBorder(tile) {
			borders++
		} else {
			inner++
		}
	}
	if borders != 28 || inner != 36 { // 8x8 ring = 28, interior 6x6 = 36
		t.Errorf("borders=%d inner=%d, want 28/36", borders, inner)
	}
	if !g.IsBorder(0) || !g.IsBorder(7) || !g.IsBorder(56) || !g.IsBorder(63) {
		t.Error("corner tiles not flagged as border")
	}
	if g.IsBorder(9) { // (1,1)
		t.Error("inner tile flagged as border")
	}
}

func TestParallelForTilesCoversImage(t *testing.T) {
	g := MustTileGrid(64, 8, 16)
	pool := NewPool(4)
	defer pool.Close()
	for _, pol := range allPolicies() {
		covered := make([]atomic.Int32, 64*64)
		pool.ParallelForTiles(g, pol, func(x, y, w, h, worker int) {
			if w != 8 || h != 16 {
				t.Errorf("tile size (%d,%d), want (8,16)", w, h)
			}
			for yy := y; yy < y+h; yy++ {
				for xx := x; xx < x+w; xx++ {
					covered[yy*64+xx].Add(1)
				}
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("pol %v: pixel (%d,%d) covered %d times",
					pol, i%64, i/64, covered[i].Load())
			}
		}
	}
}

func TestSingleTileGrid(t *testing.T) {
	g := MustTileGrid(32, 32, 32)
	if g.Tiles() != 1 {
		t.Fatalf("Tiles = %d", g.Tiles())
	}
	if !g.IsBorder(0) {
		t.Error("the unique tile must count as border")
	}
}
