package sched

import (
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"", StaticPolicy, false},
		{"static", Policy{Kind: Static}, false},
		{"STATIC", Policy{Kind: Static}, false},
		{"static,8", Policy{Kind: StaticChunk, Chunk: 8}, false},
		{"dynamic", Policy{Kind: Dynamic}, false},
		{"dynamic,2", Policy{Kind: Dynamic, Chunk: 2}, false},
		{"monotonic:dynamic,4", Policy{Kind: Dynamic, Chunk: 4}, false},
		{"guided", Policy{Kind: Guided}, false},
		{"guided,4", Policy{Kind: Guided, Chunk: 4}, false},
		{"nonmonotonic:dynamic", Policy{Kind: Nonmonotonic}, false},
		{"nonmonotonic:dynamic,2", Policy{Kind: Nonmonotonic, Chunk: 2}, false},
		{"nonmonotonic", Policy{Kind: Nonmonotonic}, false},
		{"steal", Policy{Kind: Nonmonotonic}, false},
		{" dynamic , 2 ", Policy{Kind: Dynamic, Chunk: 2}, false},
		{"bogus", Policy{}, true},
		{"dynamic,0", Policy{}, true},
		{"dynamic,-3", Policy{}, true},
		{"dynamic,x", Policy{}, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePolicy(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := []struct {
		pol  Policy
		want string
	}{
		{StaticPolicy, "static"},
		{StaticChunkPolicy(4), "static,4"},
		{DynamicPolicy(2), "dynamic,2"},
		{Policy{Kind: Dynamic}, "dynamic"},
		{GuidedPolicy, "guided"},
		{Policy{Kind: Guided, Chunk: 4}, "guided,4"},
		{NonmonotonicPolicy, "nonmonotonic:dynamic"},
	}
	for _, c := range cases {
		if got := c.pol.String(); got != c.want {
			t.Errorf("(%+v).String() = %q, want %q", c.pol, got, c.want)
		}
	}
}

func TestPolicyStringParseRoundTrip(t *testing.T) {
	pols := []Policy{
		StaticPolicy, StaticChunkPolicy(16), DynamicPolicy(1), DynamicPolicy(8),
		GuidedPolicy, {Kind: Guided, Chunk: 2}, NonmonotonicPolicy,
		{Kind: Nonmonotonic, Chunk: 4},
	}
	for _, p := range pols {
		back, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("round trip of %v: %v", p, err)
			continue
		}
		if back != p {
			t.Errorf("round trip of %v gave %v", p, back)
		}
	}
}

func TestMustParsePolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePolicy did not panic on bad input")
		}
	}()
	MustParsePolicy("not-a-schedule")
}
