package sched

import (
	"runtime"
	"sync/atomic"
)

// Body is the per-iteration function of a parallel loop. It receives the
// iteration index and the rank of the worker executing it (the value a C
// kernel would obtain from omp_get_thread_num()).
type Body func(i, worker int)

// RangeBody is the per-chunk function of a parallel loop over ranges:
// it processes the half-open interval [lo, hi).
type RangeBody func(lo, hi, worker int)

// ParallelFor executes body for every index in [0, n) using the given
// scheduling policy, blocking until all iterations complete (the implicit
// barrier of "#pragma omp for"). The element body is carried through the
// pool's pre-allocated adapter, so the call allocates nothing on a warm
// pool.
func (p *Pool) ParallelFor(n int, pol Policy, body Body) {
	if n <= 0 {
		return
	}
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.loop.elem = body
	p.forRangesLocked(n, pol, p.elemAdapter)
}

// ParallelForRanges executes body over chunks of [0, n) according to the
// scheduling policy. Chunk boundaries follow the policy exactly, so a body
// observing its (lo, hi) arguments sees the same chunking an OpenMP runtime
// would produce.
func (p *Pool) ParallelForRanges(n int, pol Policy, body RangeBody) {
	if n <= 0 {
		return
	}
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.forRangesLocked(n, pol, body)
}

// forRangesLocked fills the pool's loop descriptor and dispatches it.
// Callers must hold loopMu.
func (p *Pool) forRangesLocked(n int, pol Policy, body RangeBody) {
	d := &p.loop
	d.kind = pol.Kind // unknown kinds fall back to static in runShare
	d.n = n
	d.chunk = pol.chunkOrDefault()
	d.body = body
	d.cursor.Store(0)
	if d.kind == Nonmonotonic {
		for w := 0; w < p.workers; w++ {
			lo, hi := staticBlock(n, p.workers, w)
			p.queues[w].reset(lo, hi, d.chunk)
		}
		d.remain.Store(int64(n))
	}
	p.dispatch()
}

// staticBlock returns worker w's contiguous block [lo, hi) of [0, n) under
// schedule(static): blocks differ in size by at most one, lower ranks get
// the larger blocks, like mainstream OpenMP runtimes.
func staticBlock(n, workers, w int) (lo, hi int) {
	base := n / workers
	rem := n % workers
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return
}

// guidedGrant returns the number of iterations one grab acquires under
// schedule(guided, minChunk) when remaining iterations are left:
// ceil(remaining / workers), never below minChunk (except when fewer than
// minChunk iterations remain). Successive grants therefore decrease
// geometrically, the behaviour Fig. 4d visualizes.
func guidedGrant(remaining, workers, minChunk int) int {
	size := (remaining + workers - 1) / workers
	if size < minChunk {
		size = minChunk
	}
	if size > remaining {
		size = remaining
	}
	return size
}

// maxStealAttempts bounds how many times a thief that keeps losing steal
// races rescans the queues before giving up. Losing a race means another
// worker acquired the chunk, so abandoning the hunt never strands work —
// every queued chunk is drained by its owner or the winning thief.
const maxStealAttempts = 8

// runShare executes member w's share of a worksharing loop over [0, n)
// for a team of the given size. It is the single copy of the five
// scheduling protocols, shared by pool-level loops (Pool.execute) and
// team-level loops (TeamCtx.executeLoop): cursor backs the dynamic
// fetch-add and guided CAS grants, queues/remain back nonmonotonic
// stealing. chunk is the policy's effective chunk (minimum grant for
// guided).
func runShare(w, size, n int, kind PolicyKind, chunk int, cursor *atomic.Int64,
	queues []chunkQueue, remain *atomic.Int64, body RangeBody) {
	switch kind {
	case StaticChunk:
		for lo := w * chunk; lo < n; lo += size * chunk {
			body(lo, min(lo+chunk, n), w)
		}
	case Dynamic:
		for {
			lo := int(cursor.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			body(lo, min(lo+chunk, n), w)
		}
	case Guided:
		for {
			cur := cursor.Load()
			if cur >= int64(n) {
				return
			}
			grant := int64(guidedGrant(n-int(cur), size, chunk))
			if cursor.CompareAndSwap(cur, cur+grant) {
				body(int(cur), int(cur+grant), w)
			}
		}
	case Nonmonotonic:
		own := &queues[w]
		for remain.Load() > 0 {
			c, ok := own.take()
			if !ok {
				c, ok = stealFromQueues(queues, w)
				if !ok {
					if !anyClaimable(queues) {
						// Every queue is empty: the remaining iterations
						// are in flight on other members. Nothing left
						// to acquire, so this member retires.
						return
					}
					// Queues still hold work; the thief only lost its
					// bounded ration of steal races. Back off with a
					// yield and re-enter the hunt — retiring here would
					// drain the loop tail with fewer members than
					// available, the imbalance nonmonotonic exists to fix.
					runtime.Gosched()
					continue
				}
			}
			body(c.lo, c.hi, w)
			remain.Add(int64(c.lo - c.hi))
		}
	default: // Static
		lo, hi := staticBlock(n, size, w)
		if lo < hi {
			body(lo, hi, w)
		}
	}
}

// indexChunk is a half-open range of loop indices [lo, hi).
type indexChunk struct{ lo, hi int }

// chunkQueue is the lock-free owner-front/thief-back work queue behind
// nonmonotonic scheduling, in the spirit of the Chase-Lev deque but
// simplified for a pre-populated chunk array: the head (owner side) and
// tail (thief side) indices are packed into one 64-bit word, so take and
// steal are single-CAS operations on the same word and can never both
// claim the last chunk. The chunk array is immutable during a loop and its
// backing storage is reused across loops, so steady-state operation
// allocates nothing.
type chunkQueue struct {
	chunks []indexChunk
	ht     atomic.Uint64 // head in the high 32 bits, tail (exclusive) low
	_      [32]byte      // keep neighbouring queues off this cache line
}

func packHT(head, tail int) uint64 { return uint64(head)<<32 | uint64(uint32(tail)) }

func unpackHT(v uint64) (head, tail int) { return int(v >> 32), int(uint32(v)) }

// reset re-splits [lo, hi) into chunks of the given size, reusing the
// backing array from previous loops.
func (q *chunkQueue) reset(lo, hi, chunk int) {
	q.chunks = q.chunks[:0]
	for c := lo; c < hi; c += chunk {
		q.chunks = append(q.chunks, indexChunk{c, min(c+chunk, hi)})
	}
	q.ht.Store(packHT(0, len(q.chunks)))
}

// size returns how many chunks are currently claimable.
func (q *chunkQueue) size() int {
	head, tail := unpackHT(q.ht.Load())
	if tail <= head {
		return 0
	}
	return tail - head
}

// take claims the chunk at the front (owner side): the owner consumes its
// static share in order, preserving locality.
func (q *chunkQueue) take() (indexChunk, bool) {
	for {
		v := q.ht.Load()
		head, tail := unpackHT(v)
		if head >= tail {
			return indexChunk{}, false
		}
		if q.ht.CompareAndSwap(v, packHT(head+1, tail)) {
			return q.chunks[head], true
		}
	}
}

// steal claims the chunk at the back (thief side): thieves take the work
// farthest from the owner's progress.
func (q *chunkQueue) steal() (indexChunk, bool) {
	for {
		v := q.ht.Load()
		head, tail := unpackHT(v)
		if head >= tail {
			return indexChunk{}, false
		}
		if q.ht.CompareAndSwap(v, packHT(head, tail-1)) {
			return q.chunks[tail-1], true
		}
	}
}
