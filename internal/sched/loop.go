package sched

import (
	"sync"
	"sync/atomic"
)

// Body is the per-iteration function of a parallel loop. It receives the
// iteration index and the rank of the worker executing it (the value a C
// kernel would obtain from omp_get_thread_num()).
type Body func(i, worker int)

// RangeBody is the per-chunk function of a parallel loop over ranges:
// it processes the half-open interval [lo, hi).
type RangeBody func(lo, hi, worker int)

// ParallelFor executes body for every index in [0, n) using the given
// scheduling policy, blocking until all iterations complete (the implicit
// barrier of "#pragma omp for").
func (p *Pool) ParallelFor(n int, pol Policy, body Body) {
	p.ParallelForRanges(n, pol, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			body(i, worker)
		}
	})
}

// ParallelForRanges executes body over chunks of [0, n) according to the
// scheduling policy. Chunk boundaries follow the policy exactly, so a body
// observing its (lo, hi) arguments sees the same chunking an OpenMP runtime
// would produce.
func (p *Pool) ParallelForRanges(n int, pol Policy, body RangeBody) {
	if n <= 0 {
		return
	}
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	switch pol.Kind {
	case Static:
		p.runStatic(n, body)
	case StaticChunk:
		p.runStaticChunk(n, pol.chunkOrDefault(), body)
	case Dynamic:
		p.runDynamic(n, pol.chunkOrDefault(), body)
	case Guided:
		p.runGuided(n, pol.chunkOrDefault(), body)
	case Nonmonotonic:
		p.runNonmonotonic(n, pol.chunkOrDefault(), body)
	default:
		p.runStatic(n, body)
	}
}

// staticBlock returns worker w's contiguous block [lo, hi) of [0, n) under
// schedule(static): blocks differ in size by at most one, lower ranks get
// the larger blocks, like mainstream OpenMP runtimes.
func staticBlock(n, workers, w int) (lo, hi int) {
	base := n / workers
	rem := n % workers
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return
}

func (p *Pool) runStatic(n int, body RangeBody) {
	p.run(func(w int) {
		lo, hi := staticBlock(n, p.workers, w)
		if lo < hi {
			body(lo, hi, w)
		}
	})
}

func (p *Pool) runStaticChunk(n, chunk int, body RangeBody) {
	p.run(func(w int) {
		for lo := w * chunk; lo < n; lo += p.workers * chunk {
			hi := min(lo+chunk, n)
			body(lo, hi, w)
		}
	})
}

func (p *Pool) runDynamic(n, chunk int, body RangeBody) {
	var next atomic.Int64
	p.run(func(w int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			body(lo, min(lo+chunk, n), w)
		}
	})
}

// guidedGrant returns the number of iterations one grab acquires under
// schedule(guided, minChunk) when remaining iterations are left:
// ceil(remaining / workers), never below minChunk (except when fewer than
// minChunk iterations remain). Successive grants therefore decrease
// geometrically, the behaviour Fig. 4d visualizes.
func guidedGrant(remaining, workers, minChunk int) int {
	size := (remaining + workers - 1) / workers
	if size < minChunk {
		size = minChunk
	}
	if size > remaining {
		size = remaining
	}
	return size
}

// runGuided implements schedule(guided, k) using guidedGrant under a shared
// cursor.
func (p *Pool) runGuided(n, minChunk int, body RangeBody) {
	var mu sync.Mutex
	next := 0
	p.run(func(w int) {
		for {
			mu.Lock()
			if next >= n {
				mu.Unlock()
				return
			}
			size := guidedGrant(n-next, p.workers, minChunk)
			lo := next
			next += size
			mu.Unlock()
			body(lo, lo+size, w)
		}
	})
}

// runNonmonotonic implements the "static steal" strategy behind OpenMP 5's
// schedule(nonmonotonic:dynamic): every worker starts with its static
// contiguous block, split into chunks; a worker exhausting its own queue
// steals chunks from the back of the most loaded victim. Fig. 4c of the
// paper shows the resulting pattern: static at first, corrected by stealing
// wherever load imbalance appears.
func (p *Pool) runNonmonotonic(n, chunk int, body RangeBody) {
	queues := make([]*chunkDeque, p.workers)
	for w := 0; w < p.workers; w++ {
		lo, hi := staticBlock(n, p.workers, w)
		queues[w] = newChunkDeque(lo, hi, chunk)
	}
	var remaining atomic.Int64
	remaining.Store(int64(n))
	p.run(func(w int) {
		own := queues[w]
		for remaining.Load() > 0 {
			c, ok := own.popFront()
			if !ok {
				// Own queue drained: steal from the back of the
				// fullest victim queue.
				c, ok = stealFrom(queues, w)
				if !ok {
					// Nothing visible to steal. Other workers may
					// still be finishing their last chunks; there is
					// no more work to acquire either way.
					return
				}
			}
			body(c.lo, c.hi, w)
			remaining.Add(int64(c.lo - c.hi))
		}
	})
}

// stealFrom scans all queues except thief's own and steals one chunk from
// the back of the longest queue. It returns ok=false when every queue is
// empty.
func stealFrom(queues []*chunkDeque, thief int) (chunk indexChunk, ok bool) {
	for {
		victim, best := -1, 0
		for v, q := range queues {
			if v == thief {
				continue
			}
			if l := q.len(); l > best {
				victim, best = v, l
			}
		}
		if victim < 0 {
			return indexChunk{}, false
		}
		if c, got := queues[victim].popBack(); got {
			return c, true
		}
		// Lost the race on that victim; rescan.
	}
}

// indexChunk is a half-open range of loop indices [lo, hi).
type indexChunk struct{ lo, hi int }

// chunkDeque is a mutex-protected deque of chunks. The owner pops from the
// front (preserving its static order, which keeps locality); thieves pop
// from the back (taking the work farthest from the owner's progress).
type chunkDeque struct {
	mu     sync.Mutex
	chunks []indexChunk
	head   int
}

// newChunkDeque pre-splits [lo, hi) into chunks of the given size.
func newChunkDeque(lo, hi, chunk int) *chunkDeque {
	d := &chunkDeque{}
	for c := lo; c < hi; c += chunk {
		d.chunks = append(d.chunks, indexChunk{c, min(c+chunk, hi)})
	}
	return d
}

func (d *chunkDeque) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chunks) - d.head
}

func (d *chunkDeque) popFront() (indexChunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.chunks) {
		return indexChunk{}, false
	}
	c := d.chunks[d.head]
	d.head++
	return c, true
}

func (d *chunkDeque) popBack() (indexChunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.chunks) {
		return indexChunk{}, false
	}
	c := d.chunks[len(d.chunks)-1]
	d.chunks = d.chunks[:len(d.chunks)-1]
	return c, true
}
