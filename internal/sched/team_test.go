package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestTeamRankAndSize(t *testing.T) {
	pool := NewPool(5)
	defer pool.Close()
	var seen [5]atomic.Int32
	pool.Team(func(tc *TeamCtx) {
		if tc.Size() != 5 {
			t.Errorf("Size() = %d, want 5", tc.Size())
		}
		seen[tc.Rank()].Add(1)
	})
	for r := range seen {
		if seen[r].Load() != 1 {
			t.Errorf("rank %d entered team %d times", r, seen[r].Load())
		}
	}
}

func TestTeamForMatchesParallelFor(t *testing.T) {
	const n = 333
	pool := NewPool(4)
	defer pool.Close()
	for _, pol := range allPolicies() {
		counts := make([]atomic.Int32, n)
		pool.Team(func(tc *TeamCtx) {
			tc.For(n, pol, func(i, w int) {
				if w != tc.Rank() {
					t.Errorf("body worker %d != team rank %d", w, tc.Rank())
				}
				counts[i].Add(1)
			})
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("pol %v: index %d executed %d times", pol, i, counts[i].Load())
			}
		}
	}
}

func TestTeamMultipleLoopsPerRegion(t *testing.T) {
	// The paper's Fig. 2 pattern: one parallel region, a worksharing loop
	// per iteration, with a single block between loops.
	const iters, n = 10, 64
	pool := NewPool(4)
	defer pool.Close()
	var total atomic.Int32
	var singles atomic.Int32
	pool.Team(func(tc *TeamCtx) {
		for it := 0; it < iters; it++ {
			tc.For(n, DynamicPolicy(4), func(i, w int) { total.Add(1) })
			tc.Single(func() { singles.Add(1) })
		}
	})
	if total.Load() != iters*n {
		t.Errorf("total iterations = %d, want %d", total.Load(), iters*n)
	}
	if singles.Load() != iters {
		t.Errorf("single executed %d times, want %d", singles.Load(), iters)
	}
}

func TestTeamSingleRunsExactlyOnce(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	for round := 0; round < 20; round++ {
		var runs atomic.Int32
		pool.Team(func(tc *TeamCtx) {
			tc.Single(func() { runs.Add(1) })
		})
		if runs.Load() != 1 {
			t.Fatalf("round %d: single ran %d times", round, runs.Load())
		}
	}
}

func TestTeamSingleActsAsBarrier(t *testing.T) {
	// Work done before Single by any member must be visible after it.
	pool := NewPool(4)
	defer pool.Close()
	var before [4]int32
	var missed atomic.Int32
	pool.Team(func(tc *TeamCtx) {
		if tc.Rank() == 2 {
			time.Sleep(5 * time.Millisecond)
		}
		atomic.StoreInt32(&before[tc.Rank()], 1)
		tc.Single(func() {})
		for r := range before {
			if atomic.LoadInt32(&before[r]) == 0 {
				missed.Add(1)
			}
		}
	})
	if missed.Load() != 0 {
		t.Error("Single did not act as a barrier")
	}
}

func TestTeamCriticalMutualExclusion(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	inside := atomic.Int32{}
	violations := atomic.Int32{}
	counter := 0
	pool.Team(func(tc *TeamCtx) {
		for k := 0; k < 100; k++ {
			tc.Critical(func() {
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				counter++ // unsynchronized on purpose: Critical protects it
				inside.Add(-1)
			})
		}
	})
	if violations.Load() != 0 {
		t.Errorf("%d mutual exclusion violations", violations.Load())
	}
	if counter != 800 {
		t.Errorf("counter = %d, want 800", counter)
	}
}

func TestTeamBarrierOrdering(t *testing.T) {
	pool := NewPool(6)
	defer pool.Close()
	var stage atomic.Int32
	var bad atomic.Int32
	pool.Team(func(tc *TeamCtx) {
		stage.Add(1)
		tc.Barrier()
		if stage.Load() != 6 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Error("barrier released members before all arrived")
	}
}

func TestTeamForTilesCoverage(t *testing.T) {
	g := MustTileGrid(64, 8, 8)
	pool := NewPool(4)
	defer pool.Close()
	covered := make([]atomic.Int32, 64*64)
	pool.Team(func(tc *TeamCtx) {
		tc.ForTiles(g, NonmonotonicPolicy, func(x, y, w, h, _ int) {
			for yy := y; yy < y+h; yy++ {
				for xx := x; xx < x+w; xx++ {
					covered[yy*64+xx].Add(1)
				}
			}
		})
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("pixel %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestTeamNestedIterationLoops(t *testing.T) {
	// Stress: many iterations of alternating worksharing loop kinds inside
	// one region, as a real multi-phase kernel would do.
	pool := NewPool(3)
	defer pool.Close()
	var total atomic.Int64
	pool.Team(func(tc *TeamCtx) {
		for it := 0; it < 25; it++ {
			pol := allPolicies()[it%len(allPolicies())]
			tc.For(50, pol, func(i, w int) { total.Add(1) })
		}
	})
	if total.Load() != 25*50 {
		t.Errorf("total = %d, want %d", total.Load(), 25*50)
	}
}

func TestTeamForEmptyLoop(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ran := atomic.Int32{}
	pool.Team(func(tc *TeamCtx) {
		tc.For(0, DynamicPolicy(2), func(i, w int) { ran.Add(1) })
		tc.For(3, StaticPolicy, func(i, w int) { ran.Add(1) })
	})
	if ran.Load() != 3 {
		t.Errorf("ran = %d, want 3", ran.Load())
	}
}
