package sched

import (
	"sync"
	"sync/atomic"
)

// Team gives a kernel full control over a parallel region, the analogue of
// writing the iteration loop inside "#pragma omp parallel" as the paper's
// Fig. 2 does: every worker runs the same function, synchronizes on
// barriers, shares worksharing loops, and elects one worker for single
// blocks (the "#pragma omp single" wrapping zoom()).
//
// Usage:
//
//	pool.Team(func(tc *TeamCtx) {
//	    for it := 0; it < iters; it++ {
//	        tc.ForTiles(grid, pol, doTile)  // worksharing + implicit barrier
//	        tc.Single(func() { zoom() })    // one worker runs, others wait
//	    }
//	})
type TeamCtx struct {
	rank    int
	size    int
	barrier *Barrier
	shared  *teamShared
}

type teamShared struct {
	mu            sync.Mutex
	curLoop       *loopState
	singleClaimed bool
	critMu        sync.Mutex
}

// loopState is the descriptor of the in-flight worksharing loop.
type loopState struct {
	n      int
	pol    Policy
	next   atomic.Int64 // dynamic/guided cursor (guided uses mu below)
	mu     sync.Mutex
	gNext  int
	queues []*chunkDeque
	remain atomic.Int64
}

// Team runs fn once per worker as a cooperating team and waits for all of
// them to return.
func (p *Pool) Team(fn func(tc *TeamCtx)) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	shared := &teamShared{}
	barrier := NewBarrier(p.workers)
	p.run(func(rank int) {
		fn(&TeamCtx{rank: rank, size: p.workers, barrier: barrier, shared: shared})
	})
}

// Rank returns the caller's worker rank (omp_get_thread_num()).
func (tc *TeamCtx) Rank() int { return tc.rank }

// Size returns the team size (omp_get_num_threads()).
func (tc *TeamCtx) Size() int { return tc.size }

// Barrier blocks until every team member reaches it.
func (tc *TeamCtx) Barrier() { tc.barrier.Wait() }

// Single executes fn on exactly one team member (whichever claims the
// phase first) and makes every member wait until fn completed — "#pragma
// omp single" with its implicit barrier.
func (tc *TeamCtx) Single(fn func()) {
	tc.barrier.Wait() // all members have finished prior work
	tc.shared.mu.Lock()
	elected := !tc.shared.singleClaimed
	if elected {
		tc.shared.singleClaimed = true
	}
	tc.shared.mu.Unlock()
	if elected {
		fn()
	}
	tc.barrier.Wait()
	if elected {
		// Reset before this member reaches any later barrier, so the next
		// Single phase starts unclaimed; no other member can pass a
		// subsequent first barrier until this member arrives there, which
		// happens after the reset.
		tc.shared.mu.Lock()
		tc.shared.singleClaimed = false
		tc.shared.mu.Unlock()
	}
}

// Critical executes fn under the team-wide mutual exclusion lock —
// "#pragma omp critical".
func (tc *TeamCtx) Critical(fn func()) {
	tc.shared.critMu.Lock()
	defer tc.shared.critMu.Unlock()
	fn()
}

// For is a worksharing loop inside the team: the index space [0, n) is
// distributed across team members according to pol, with an implicit
// barrier at the end. Every member must call For with identical arguments.
func (tc *TeamCtx) For(n int, pol Policy, body Body) {
	tc.ForRanges(n, pol, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			body(i, worker)
		}
	})
}

// ForTiles is the collapse(2) tiled variant of For.
func (tc *TeamCtx) ForTiles(g TileGrid, pol Policy, body TileBody) {
	tc.ForRanges(g.Tiles(), pol, func(lo, hi, worker int) {
		for tile := lo; tile < hi; tile++ {
			x, y, w, h := g.Coords(tile)
			body(x, y, w, h, worker)
		}
	})
}

// ForRanges distributes chunks of [0, n) across the team per pol.
func (tc *TeamCtx) ForRanges(n int, pol Policy, body RangeBody) {
	// Set-up phase: one member allocates the loop descriptor.
	tc.barrier.Wait()
	tc.shared.mu.Lock()
	if tc.shared.curLoop == nil {
		st := &loopState{n: n, pol: pol}
		if pol.Kind == Nonmonotonic {
			st.queues = make([]*chunkDeque, tc.size)
			for w := 0; w < tc.size; w++ {
				lo, hi := staticBlock(n, tc.size, w)
				st.queues[w] = newChunkDeque(lo, hi, pol.chunkOrDefault())
			}
			st.remain.Store(int64(n))
		}
		tc.shared.curLoop = st
	}
	st := tc.shared.curLoop
	tc.shared.mu.Unlock()
	tc.barrier.Wait()

	if n > 0 {
		tc.executeLoop(st, body)
	}

	// Tear-down: wait for all, then one member clears the descriptor.
	tc.barrier.Wait()
	tc.shared.mu.Lock()
	tc.shared.curLoop = nil
	tc.shared.mu.Unlock()
	tc.barrier.Wait()
}

func (tc *TeamCtx) executeLoop(st *loopState, body RangeBody) {
	w := tc.rank
	switch st.pol.Kind {
	case Static:
		lo, hi := staticBlock(st.n, tc.size, w)
		if lo < hi {
			body(lo, hi, w)
		}
	case StaticChunk:
		chunk := st.pol.chunkOrDefault()
		for lo := w * chunk; lo < st.n; lo += tc.size * chunk {
			body(lo, min(lo+chunk, st.n), w)
		}
	case Dynamic:
		chunk := st.pol.chunkOrDefault()
		for {
			lo := int(st.next.Add(int64(chunk))) - chunk
			if lo >= st.n {
				return
			}
			body(lo, min(lo+chunk, st.n), w)
		}
	case Guided:
		minChunk := st.pol.chunkOrDefault()
		for {
			st.mu.Lock()
			if st.gNext >= st.n {
				st.mu.Unlock()
				return
			}
			size := guidedGrant(st.n-st.gNext, tc.size, minChunk)
			lo := st.gNext
			st.gNext += size
			st.mu.Unlock()
			body(lo, lo+size, w)
		}
	case Nonmonotonic:
		own := st.queues[w]
		for st.remain.Load() > 0 {
			c, ok := own.popFront()
			if !ok {
				c, ok = stealFrom(st.queues, w)
				if !ok {
					return
				}
			}
			body(c.lo, c.hi, w)
			st.remain.Add(int64(c.lo - c.hi))
		}
	}
}
