package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Team gives a kernel full control over a parallel region, the analogue of
// writing the iteration loop inside "#pragma omp parallel" as the paper's
// Fig. 2 does: every worker runs the same function, synchronizes on
// barriers, shares worksharing loops, and elects one worker for single
// blocks (the "#pragma omp single" wrapping zoom()).
//
// Usage:
//
//	pool.Team(func(tc *TeamCtx) {
//	    for it := 0; it < iters; it++ {
//	        tc.ForTiles(grid, pol, doTile)  // worksharing + implicit barrier
//	        tc.Single(func() { zoom() })    // one worker runs, others wait
//	    }
//	})
type TeamCtx struct {
	rank    int
	size    int
	barrier *Barrier
	shared  *teamShared
}

type teamShared struct {
	mu            sync.Mutex
	curLoop       *loopState
	singleClaimed bool
	critMu        sync.Mutex
}

// loopState is the descriptor of the in-flight worksharing loop. Dynamic
// and guided loops share the atomic cursor (fetch-add and CAS grants
// respectively); nonmonotonic loops use per-member lock-free chunk queues,
// the same protocol as the pool-level loops.
type loopState struct {
	n      int
	pol    Policy
	next   atomic.Int64 // dynamic fetch-add / guided CAS cursor
	queues []chunkQueue
	remain atomic.Int64
}

// Team runs fn once per worker as a cooperating team and waits for all of
// them to return.
func (p *Pool) Team(fn func(tc *TeamCtx)) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	shared := &teamShared{}
	barrier := NewBarrier(p.workers)
	p.runLocked(func(rank int) {
		fn(&TeamCtx{rank: rank, size: p.workers, barrier: barrier, shared: shared})
	})
}

// Rank returns the caller's worker rank (omp_get_thread_num()).
func (tc *TeamCtx) Rank() int { return tc.rank }

// Size returns the team size (omp_get_num_threads()).
func (tc *TeamCtx) Size() int { return tc.size }

// Barrier blocks until every team member reaches it.
func (tc *TeamCtx) Barrier() { tc.barrier.Wait() }

// Single executes fn on exactly one team member (whichever claims the
// phase first) and makes every member wait until fn completed — "#pragma
// omp single" with its implicit barrier.
func (tc *TeamCtx) Single(fn func()) {
	tc.barrier.Wait() // all members have finished prior work
	tc.shared.mu.Lock()
	elected := !tc.shared.singleClaimed
	if elected {
		tc.shared.singleClaimed = true
	}
	tc.shared.mu.Unlock()
	if elected {
		fn()
	}
	tc.barrier.Wait()
	if elected {
		// Reset before this member reaches any later barrier, so the next
		// Single phase starts unclaimed; no other member can pass a
		// subsequent first barrier until this member arrives there, which
		// happens after the reset.
		tc.shared.mu.Lock()
		tc.shared.singleClaimed = false
		tc.shared.mu.Unlock()
	}
}

// Critical executes fn under the team-wide mutual exclusion lock —
// "#pragma omp critical".
func (tc *TeamCtx) Critical(fn func()) {
	tc.shared.critMu.Lock()
	defer tc.shared.critMu.Unlock()
	fn()
}

// For is a worksharing loop inside the team: the index space [0, n) is
// distributed across team members according to pol, with an implicit
// barrier at the end. Every member must call For with identical arguments.
func (tc *TeamCtx) For(n int, pol Policy, body Body) {
	tc.ForRanges(n, pol, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			body(i, worker)
		}
	})
}

// ForTiles is the collapse(2) tiled variant of For.
func (tc *TeamCtx) ForTiles(g TileGrid, pol Policy, body TileBody) {
	tc.ForRanges(g.Tiles(), pol, func(lo, hi, worker int) {
		for tile := lo; tile < hi; tile++ {
			x, y, w, h := g.Coords(tile)
			body(x, y, w, h, worker)
		}
	})
}

// ForRanges distributes chunks of [0, n) across the team per pol.
func (tc *TeamCtx) ForRanges(n int, pol Policy, body RangeBody) {
	// Set-up phase: one member allocates the loop descriptor.
	tc.barrier.Wait()
	tc.shared.mu.Lock()
	if tc.shared.curLoop == nil {
		st := &loopState{n: n, pol: pol}
		if pol.Kind == Nonmonotonic {
			st.queues = make([]chunkQueue, tc.size)
			for w := 0; w < tc.size; w++ {
				lo, hi := staticBlock(n, tc.size, w)
				st.queues[w].reset(lo, hi, pol.chunkOrDefault())
			}
			st.remain.Store(int64(n))
		}
		tc.shared.curLoop = st
	}
	st := tc.shared.curLoop
	tc.shared.mu.Unlock()
	tc.barrier.Wait()

	if n > 0 {
		tc.executeLoop(st, body)
	}

	// Tear-down: wait for all, then one member clears the descriptor.
	tc.barrier.Wait()
	tc.shared.mu.Lock()
	tc.shared.curLoop = nil
	tc.shared.mu.Unlock()
	tc.barrier.Wait()
}

func (tc *TeamCtx) executeLoop(st *loopState, body RangeBody) {
	runShare(tc.rank, tc.size, st.n, st.pol.Kind, st.pol.chunkOrDefault(),
		&st.next, st.queues, &st.remain, body)
}

// stealFromQueues scans all queues except the thief's own and steals one
// chunk from the back of the longest one. It returns ok=false when every
// queue looks empty, or after maxStealAttempts lost races (previously this
// rescanned unboundedly, spinning while queues drained concurrently). A
// lost race means another worker acquired the chunk, so giving up never
// strands work: every queued chunk is drained by its owner or the winning
// thief.
func stealFromQueues(queues []chunkQueue, thief int) (indexChunk, bool) {
	yielded := false
	for attempt := 0; ; attempt++ {
		victim, best := -1, 0
		for v := range queues {
			if v == thief {
				continue
			}
			if l := queues[v].size(); l > best {
				victim, best = v, l
			}
		}
		if victim < 0 {
			return indexChunk{}, false
		}
		if !yielded {
			// Yield once before raiding a live queue: on an oversubscribed
			// (or single-CPU) machine the owner may simply not have run
			// yet, and the paper's Fig. 4c pattern — static first, stealing
			// only where imbalance appears — depends on owners getting
			// first crack at their own blocks. A loop ending with all
			// queues empty never reaches this and retires yield-free.
			yielded = true
			runtime.Gosched()
			continue // rescan: the owner may have drained it meanwhile
		}
		if c, ok := queues[victim].steal(); ok {
			return c, true
		}
		if attempt >= maxStealAttempts {
			return indexChunk{}, false
		}
		runtime.Gosched() // lost the race; let the winners drain
	}
}

// anyClaimable reports whether any queue still holds unclaimed chunks.
func anyClaimable(queues []chunkQueue) bool {
	for v := range queues {
		if queues[v].size() > 0 {
			return true
		}
	}
	return false
}
