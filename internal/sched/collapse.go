package sched

import "fmt"

// TileGrid describes the decomposition of a DIM x DIM image into rectangular
// tiles, the unit of work EASYPAP kernels schedule ("collapse(2)" over the
// tile rows and columns in the paper's Fig. 2). Tiles are numbered row-major
// — tile 0 is the top-left tile, matching the iteration order of the
// collapsed C loops — so schedule(static) produces the contiguous horizontal
// bands visible in Fig. 4a.
type TileGrid struct {
	Dim        int // image side length in pixels
	TileW      int // tile width in pixels
	TileH      int // tile height in pixels
	TilesX     int // number of tile columns
	TilesY     int // number of tile rows
	totalTiles int
}

// NewTileGrid validates and builds a tile decomposition. The image side
// must be divisible by both tile dimensions — the same constraint EASYPAP
// enforces at startup — so every tile is full-size.
func NewTileGrid(dim, tileW, tileH int) (TileGrid, error) {
	if dim <= 0 {
		return TileGrid{}, fmt.Errorf("sched: image dim %d must be positive", dim)
	}
	if tileW <= 0 || tileH <= 0 {
		return TileGrid{}, fmt.Errorf("sched: tile size %dx%d must be positive", tileW, tileH)
	}
	if dim%tileW != 0 || dim%tileH != 0 {
		return TileGrid{}, fmt.Errorf("sched: tile size %dx%d does not divide image dim %d", tileW, tileH, dim)
	}
	g := TileGrid{
		Dim:    dim,
		TileW:  tileW,
		TileH:  tileH,
		TilesX: dim / tileW,
		TilesY: dim / tileH,
	}
	g.totalTiles = g.TilesX * g.TilesY
	return g, nil
}

// MustTileGrid is NewTileGrid that panics on error, for tests and fixed
// configurations.
func MustTileGrid(dim, tileW, tileH int) TileGrid {
	g, err := NewTileGrid(dim, tileW, tileH)
	if err != nil {
		panic(err)
	}
	return g
}

// Tiles returns the total number of tiles (the collapsed loop trip count).
func (g TileGrid) Tiles() int { return g.totalTiles }

// Coords maps a tile index to the pixel rectangle (x, y, w, h) it covers.
func (g TileGrid) Coords(tile int) (x, y, w, h int) {
	ty := tile / g.TilesX
	tx := tile % g.TilesX
	return tx * g.TileW, ty * g.TileH, g.TileW, g.TileH
}

// TileAt returns the index of the tile containing pixel (x, y).
func (g TileGrid) TileAt(x, y int) int {
	return (y/g.TileH)*g.TilesX + x/g.TileW
}

// TileXY returns the tile-grid coordinates (column, row) of a tile index.
func (g TileGrid) TileXY(tile int) (tx, ty int) {
	return tile % g.TilesX, tile / g.TilesX
}

// IsBorder reports whether the tile touches the image boundary — the tiles
// that need conditional neighbour tests in stencil kernels (paper §III-B).
func (g TileGrid) IsBorder(tile int) bool {
	tx, ty := g.TileXY(tile)
	return tx == 0 || ty == 0 || tx == g.TilesX-1 || ty == g.TilesY-1
}

// TileBody is the per-tile function of a tiled parallel loop: it processes
// the pixel rectangle (x, y, w, h) on the given worker — the do_tile
// function of the paper's Fig. 2.
type TileBody func(x, y, w, h, worker int)

// ParallelForTiles runs body over every tile of the grid using the given
// scheduling policy, equivalent to the paper's
//
//	#pragma omp for collapse(2) schedule(...)
//	for (y = 0; y < DIM; y += TILE_H)
//	  for (x = 0; x < DIM; x += TILE_W)
//	    do_tile(x, y, TILE_W, TILE_H, omp_get_thread_num());
//
// The tile body rides through the pool's pre-allocated tile adapter, so
// the call allocates nothing on a warm pool.
func (p *Pool) ParallelForTiles(g TileGrid, pol Policy, body TileBody) {
	n := g.Tiles()
	if n <= 0 {
		return
	}
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	p.loop.tile = body
	p.loop.grid = g
	p.forRangesLocked(n, pol, p.tileAdapter)
}
