package sched

// Ablation benchmarks for the scheduling design choices DESIGN.md calls
// out: chunk size under dynamic scheduling, steal granularity under
// nonmonotonic, and the cost of the worksharing machinery itself, under
// both uniform and skewed per-iteration work.

import (
	"fmt"
	"testing"
)

// skewedWork makes the last quarter of the index space 16x more expensive
// — the mandel-like imbalance profile.
func skewedWork(n int) func(i int) {
	heavy := n * 3 / 4
	return func(i int) {
		units := 200
		if i >= heavy {
			units = 3200
		}
		s := 0
		for k := 0; k < units; k++ {
			s += k ^ (k << 1)
		}
		spinSink.Store(int64(s))
	}
}

func BenchmarkAblationDynamicChunk(b *testing.B) {
	const n = 4096
	pool := NewPool(0)
	defer pool.Close()
	work := skewedWork(n)
	for _, chunk := range []int{1, 2, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(n, DynamicPolicy(chunk), func(i, _ int) { work(i) })
			}
		})
	}
}

func BenchmarkAblationStealChunk(b *testing.B) {
	const n = 4096
	pool := NewPool(0)
	defer pool.Close()
	work := skewedWork(n)
	for _, chunk := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(n, Policy{Kind: Nonmonotonic, Chunk: chunk},
					func(i, _ int) { work(i) })
			}
		})
	}
}

func BenchmarkAblationPolicyUnderSkew(b *testing.B) {
	const n = 4096
	pool := NewPool(0)
	defer pool.Close()
	work := skewedWork(n)
	for _, pol := range []Policy{
		StaticPolicy, StaticChunkPolicy(16), DynamicPolicy(4),
		GuidedPolicy, NonmonotonicPolicy,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(n, pol, func(i, _ int) { work(i) })
			}
		})
	}
}

func BenchmarkAblationPolicyUniform(b *testing.B) {
	const n = 4096
	pool := NewPool(0)
	defer pool.Close()
	for _, pol := range []Policy{
		StaticPolicy, DynamicPolicy(4), GuidedPolicy, NonmonotonicPolicy,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(n, pol, func(i, _ int) { spin(200) })
			}
		})
	}
}

// BenchmarkAblationTeamVsForkJoin compares the Team-based iteration
// structure (one parallel region spanning iterations, as in the paper's
// Fig. 2) with per-iteration fork-join loops.
func BenchmarkAblationTeamVsForkJoin(b *testing.B) {
	const n, iters = 1024, 8
	pool := NewPool(0)
	defer pool.Close()
	b.Run("fork-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for it := 0; it < iters; it++ {
				pool.ParallelFor(n, DynamicPolicy(4), func(i, _ int) { spin(100) })
			}
		}
	})
	b.Run("team", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool.Team(func(tc *TeamCtx) {
				for it := 0; it < iters; it++ {
					tc.For(n, DynamicPolicy(4), func(i, _ int) { spin(100) })
				}
			})
		}
	})
}
