package sched

// Tests and benchmarks for the epoch-broadcast dispatch core: the
// zero-allocation contract, the staticBlock regression table, and
// race-detector stress over concurrent ParallelFor callers and steal
// storms (run with -race; see DESIGN.md §2-§3).

import (
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkDispatchOverhead measures the pure cost of publishing a
// worksharing construct to a warm team: an empty RangeBody, so nothing but
// the dispatch machinery is on the clock. The acceptance bar for the
// epoch-broadcast refactor is 0 allocs/op (the old channel dispatch paid a
// closure, a channel send per worker and a WaitGroup per loop; see
// BENCH_sched.json for the recorded before/after).
func BenchmarkDispatchOverhead(b *testing.B) {
	pool := NewPool(0)
	defer pool.Close()
	nop := func(lo, hi, worker int) {}
	for _, bc := range []struct {
		name string
		pol  Policy
	}{
		{"static", StaticPolicy},
		{"dynamic", DynamicPolicy(64)},
		{"guided", GuidedPolicy},
		{"nonmonotonic", Policy{Kind: Nonmonotonic, Chunk: 64}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			// Warm the pool so steal-queue backing arrays reach steady
			// state before allocations are counted.
			pool.ParallelForRanges(4096, bc.pol, nop)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.ParallelForRanges(4096, bc.pol, nop)
			}
		})
	}
}

// BenchmarkDispatchOverheadElem is the ParallelFor (per-element) twin: the
// element body rides through the pool's pre-allocated adapter, so it must
// be allocation-free as well.
func BenchmarkDispatchOverheadElem(b *testing.B) {
	pool := NewPool(0)
	defer pool.Close()
	nop := func(i, worker int) {}
	pool.ParallelFor(64, StaticPolicy, nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.ParallelFor(64, StaticPolicy, nop)
	}
}

// TestDispatchNoAllocs pins the zero-allocation contract in a regular test
// so CI catches regressions without running benchmarks.
func TestDispatchNoAllocs(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	nop := func(lo, hi, worker int) {}
	for _, pol := range []Policy{
		StaticPolicy, StaticChunkPolicy(8), DynamicPolicy(16),
		GuidedPolicy, {Kind: Nonmonotonic, Chunk: 16},
	} {
		pool.ParallelForRanges(1024, pol, nop) // warm queues
		avg := testing.AllocsPerRun(20, func() {
			pool.ParallelForRanges(1024, pol, nop)
		})
		if avg != 0 {
			t.Errorf("%v: %.1f allocs per ParallelForRanges, want 0", pol, avg)
		}
	}
	elem := func(i, worker int) {}
	pool.ParallelFor(64, StaticPolicy, elem)
	if avg := testing.AllocsPerRun(20, func() {
		pool.ParallelFor(64, StaticPolicy, elem)
	}); avg != 0 {
		t.Errorf("ParallelFor: %.1f allocs per call, want 0", avg)
	}
	g := MustTileGrid(64, 8, 8)
	tile := func(x, y, w, h, worker int) {}
	pool.ParallelForTiles(g, DynamicPolicy(2), tile)
	if avg := testing.AllocsPerRun(20, func() {
		pool.ParallelForTiles(g, DynamicPolicy(2), tile)
	}); avg != 0 {
		t.Errorf("ParallelForTiles: %.1f allocs per call, want 0", avg)
	}
	active := []int32{0, 3, 17, 42, 63}
	pool.ParallelForActive(g, active, DynamicPolicy(2), tile)
	if avg := testing.AllocsPerRun(20, func() {
		pool.ParallelForActive(g, active, DynamicPolicy(2), tile)
	}); avg != 0 {
		t.Errorf("ParallelForActive: %.1f allocs per call, want 0", avg)
	}
}

// TestDispatchAfterBodyPanic: a construct whose body panics on member 0
// (the caller) must not poison the next construct with a stale
// descriptor.
func TestDispatchAfterBodyPanic(t *testing.T) {
	pool := NewPool(1) // single worker: the panicking body runs on the caller
	defer pool.Close()
	func() {
		defer func() { recover() }()
		pool.Run(func(worker int) { panic("boom") })
	}()
	ran := false
	pool.ParallelFor(4, StaticPolicy, func(i, w int) { ran = true })
	if !ran {
		t.Error("loop body did not run after a panicking region")
	}
}

// TestDispatchAfterBodyPanicMultiWorker: with background members in
// flight, a member-0 panic must still join the construct before
// unwinding, so a recovered caller sees a quiescent pool and the next
// construct runs cleanly (no overlap, no stale descriptor).
func TestDispatchAfterBodyPanicMultiWorker(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for round := 0; round < 10; round++ {
		var before atomic.Int32
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("member-0 panic did not propagate to the caller")
				}
			}()
			pool.ParallelFor(64, StaticPolicy, func(i, w int) {
				if w == 0 {
					panic("boom on member 0")
				}
				before.Add(1)
			})
		}()
		var count atomic.Int32
		pool.ParallelFor(64, StaticPolicy, func(i, w int) { count.Add(1) })
		if count.Load() != 64 {
			t.Fatalf("round %d: %d iterations after recovered panic, want 64", round, count.Load())
		}
	}
}

// TestTeamRegionPanicCrashesLoudly: a member-0 panic inside a
// barrier-using region cannot be joined (the other members may be blocked
// at a barrier member 0 will never reach), so it must crash the process
// with a diagnostic — the old channel dispatch's behaviour — rather than
// deadlock silently. Exercised in a subprocess since the crash is fatal.
func TestTeamRegionPanicCrashesLoudly(t *testing.T) {
	if os.Getenv("SCHED_CRASH_HELPER") == "1" {
		pool := NewPool(4)
		defer pool.Close()
		pool.Team(func(tc *TeamCtx) {
			if tc.Rank() == 0 {
				panic("boom on member 0")
			}
			tc.Barrier()
		})
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestTeamRegionPanicCrashesLoudly$")
	cmd.Env = append(os.Environ(), "SCHED_CRASH_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("subprocess did not crash; output:\n%s", out)
	}
	if !strings.Contains(string(out), "parallel region panicked on member 0") {
		t.Fatalf("crash lacks the region-panic diagnostic; output:\n%s", out)
	}
}

// TestUseAfterClosePanics: dispatching on a closed pool must fail loudly
// (the channel-based pool panicked on "send on closed channel"; the epoch
// pool must not silently deadlock instead).
func TestUseAfterClosePanics(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	defer func() {
		if recover() == nil {
			t.Error("ParallelFor on a closed pool did not panic")
		}
	}()
	pool.ParallelFor(8, StaticPolicy, func(i, w int) {})
}

// TestStaticBlockRegression pins the exact chunk boundaries of
// schedule(static) against a golden table: the dispatch refactor must not
// move a single boundary, or every Fig. 4a-style visualization (and any
// kernel relying on block/rank affinity) silently changes.
func TestStaticBlockRegression(t *testing.T) {
	cases := []struct {
		n, workers int
		want       []indexChunk
	}{
		{10, 3, []indexChunk{{0, 4}, {4, 7}, {7, 10}}},
		{12, 4, []indexChunk{{0, 3}, {3, 6}, {6, 9}, {9, 12}}},
		{7, 4, []indexChunk{{0, 2}, {2, 4}, {4, 6}, {6, 7}}},
		{3, 4, []indexChunk{{0, 1}, {1, 2}, {2, 3}, {3, 3}}},
		{0, 2, []indexChunk{{0, 0}, {0, 0}}},
		{1, 1, []indexChunk{{0, 1}}},
		{4096, 8, []indexChunk{{0, 512}, {512, 1024}, {1024, 1536}, {1536, 2048},
			{2048, 2560}, {2560, 3072}, {3072, 3584}, {3584, 4096}}},
	}
	for _, c := range cases {
		for w, want := range c.want {
			lo, hi := staticBlock(c.n, c.workers, w)
			if lo != want.lo || hi != want.hi {
				t.Errorf("staticBlock(%d, %d, %d) = [%d, %d), want [%d, %d)",
					c.n, c.workers, w, lo, hi, want.lo, want.hi)
			}
		}
	}
}

// TestConcurrentParallelFor hammers one pool from many goroutines issuing
// loops under every policy concurrently. Constructs must serialize (the
// OpenMP worksharing rule) and every loop must still execute each index
// exactly once. Primarily a race-detector workload.
func TestConcurrentParallelFor(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	const goroutines = 8
	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pols := allPolicies()
			for r := 0; r < rounds; r++ {
				n := 50 + (g*13+r*7)%200
				var count atomic.Int64
				pool.ParallelFor(n, pols[(g+r)%len(pols)], func(i, w int) {
					count.Add(1)
				})
				if got := count.Load(); got != int64(n) {
					t.Errorf("goroutine %d round %d: %d iterations ran, want %d", g, r, got, n)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStealStorm drives the lock-free chunk queues as hard as possible:
// chunk size 1 so every index is a separate steal target, and a body so
// cheap that thieves constantly collide with owners and each other. The
// exactly-once invariant must hold under the storm.
func TestStealStorm(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	const n = 5000
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for r := 0; r < rounds; r++ {
		counts := make([]atomic.Int32, n)
		pool.ParallelFor(n, Policy{Kind: Nonmonotonic, Chunk: 1}, func(i, w int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("round %d: index %d executed %d times", r, i, c)
			}
		}
	}
}

// TestChunkQueueConcurrentTakeSteal verifies the packed head/tail CAS
// protocol directly: an owner taking from the front races thieves stealing
// from the back, and every chunk must be delivered to exactly one of them.
func TestChunkQueueConcurrentTakeSteal(t *testing.T) {
	const chunks = 2000
	const thieves = 4
	var q chunkQueue
	q.reset(0, chunks, 1)
	got := make([]atomic.Int32, chunks)
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() { // owner
		defer wg.Done()
		for {
			c, ok := q.take()
			if !ok {
				return
			}
			got[c.lo].Add(1)
		}
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			for {
				c, ok := q.steal()
				if !ok {
					return
				}
				got[c.lo].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range got {
		if c := got[i].Load(); c != 1 {
			t.Fatalf("chunk %d delivered %d times", i, c)
		}
	}
}

// TestGuidedCASMatchesGrantSequence checks that the CAS-based guided loop
// hands out exactly the grant sequence the mutex version produced: sizes
// decrease geometrically from ceil(n/workers) down to the minimum chunk
// and cover the space exactly (single worker, so the sequence is
// deterministic).
func TestGuidedCASMatchesGrantSequence(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	const n, minChunk = 4096, 2
	var sizes []int
	pool.ParallelForRanges(n, Policy{Kind: Guided, Chunk: minChunk}, func(lo, hi, _ int) {
		sizes = append(sizes, hi-lo)
	})
	want := n
	for i, s := range sizes {
		if g := guidedGrant(want, 1, minChunk); s != g {
			t.Fatalf("grant %d = %d, want %d", i, s, g)
		}
		want -= s
	}
	if want != 0 {
		t.Fatalf("grants left %d iterations uncovered", want)
	}
}
