package sched

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the policy as its OMP_SCHEDULE string ("dynamic,4"),
// the form users type on the command line and in easypapd submissions.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts the OMP_SCHEDULE string form, or the legacy
// {"Kind":k,"Chunk":n} object form for round-tripping structures encoded
// before the string form existed.
func (p *Policy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := ParsePolicy(s)
		if err != nil {
			return err
		}
		*p = parsed
		return nil
	}
	var obj struct {
		Kind  PolicyKind
		Chunk int
	}
	if err := json.Unmarshal(b, &obj); err != nil {
		return fmt.Errorf("sched: policy must be an OMP_SCHEDULE string or {Kind,Chunk} object: %w", err)
	}
	*p = Policy{Kind: obj.Kind, Chunk: obj.Chunk}
	return nil
}
