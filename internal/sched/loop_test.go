package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// allPolicies returns one representative of every scheduling strategy.
func allPolicies() []Policy {
	return []Policy{
		StaticPolicy,
		StaticChunkPolicy(3),
		DynamicPolicy(1),
		DynamicPolicy(4),
		GuidedPolicy,
		{Kind: Guided, Chunk: 2},
		NonmonotonicPolicy,
		{Kind: Nonmonotonic, Chunk: 2},
	}
}

// TestExactPartition is the fundamental scheduling invariant: every policy
// must execute every iteration exactly once, for a grid of loop sizes and
// worker counts.
func TestExactPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8} {
		pool := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, pol := range allPolicies() {
				counts := make([]atomic.Int32, max(n, 1))
				pool.ParallelFor(n, pol, func(i, worker int) {
					if worker < 0 || worker >= workers {
						t.Errorf("worker rank %d out of range [0,%d)", worker, workers)
					}
					counts[i].Add(1)
				})
				for i := 0; i < n; i++ {
					if c := counts[i].Load(); c != 1 {
						t.Errorf("workers=%d n=%d pol=%v: index %d executed %d times",
							workers, n, pol, i, c)
					}
				}
			}
		}
		pool.Close()
	}
}

// TestQuickPartitionProperty drives the same invariant through testing/quick
// with arbitrary sizes and chunk values.
func TestQuickPartitionProperty(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(nRaw uint16, chunkRaw uint8, kindRaw uint8) bool {
		n := int(nRaw % 500)
		chunk := int(chunkRaw%16) + 1
		kinds := []PolicyKind{Static, StaticChunk, Dynamic, Guided, Nonmonotonic}
		pol := Policy{Kind: kinds[int(kindRaw)%len(kinds)], Chunk: chunk}
		counts := make([]atomic.Int32, max(n, 1))
		pool.ParallelFor(n, pol, func(i, _ int) { counts[i].Add(1) })
		for i := 0; i < n; i++ {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStaticBlockProperties(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw % 2000)
		workers := int(wRaw%16) + 1
		prevHi := 0
		minSz, maxSz := n+1, -1
		for w := 0; w < workers; w++ {
			lo, hi := staticBlock(n, workers, w)
			if lo != prevHi { // blocks must tile [0,n) contiguously in rank order
				return false
			}
			prevHi = hi
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if prevHi != n {
			return false
		}
		return maxSz-minSz <= 1 // even distribution
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStaticAssignmentIsContiguous checks the Fig. 4a pattern: under
// schedule(static) each worker receives one contiguous range.
func TestStaticAssignmentIsContiguous(t *testing.T) {
	const n, workers = 96, 6
	pool := NewPool(workers)
	defer pool.Close()
	owner := make([]int32, n)
	pool.ParallelFor(n, StaticPolicy, func(i, w int) {
		atomic.StoreInt32(&owner[i], int32(w))
	})
	// Owner sequence must be non-decreasing (contiguous blocks by rank).
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("static assignment not contiguous: owner[%d]=%d < owner[%d]=%d",
				i, owner[i], i-1, owner[i-1])
		}
	}
	// And every worker must own an equal share.
	counts := make(map[int32]int)
	for _, w := range owner {
		counts[w]++
	}
	for w, c := range counts {
		if c != n/workers {
			t.Errorf("worker %d owns %d iterations, want %d", w, c, n/workers)
		}
	}
}

// TestStaticChunkIsRoundRobin checks schedule(static,k) assignment:
// iteration i belongs to worker (i/k) mod workers, deterministically.
func TestStaticChunkIsRoundRobin(t *testing.T) {
	const n, workers, k = 100, 4, 3
	pool := NewPool(workers)
	defer pool.Close()
	owner := make([]int32, n)
	pool.ParallelFor(n, StaticChunkPolicy(k), func(i, w int) {
		atomic.StoreInt32(&owner[i], int32(w))
	})
	for i := 0; i < n; i++ {
		want := int32(i / k % workers)
		if owner[i] != want {
			t.Fatalf("static,%d: owner[%d] = %d, want %d", k, i, owner[i], want)
		}
	}
}

// TestDynamicChunking verifies dynamic,k hands out aligned chunks of k.
func TestDynamicChunking(t *testing.T) {
	const n, k = 103, 4
	pool := NewPool(3)
	defer pool.Close()
	var mu sync.Mutex
	var chunks []indexChunk
	pool.ParallelForRanges(n, DynamicPolicy(k), func(lo, hi, _ int) {
		mu.Lock()
		chunks = append(chunks, indexChunk{lo, hi})
		mu.Unlock()
	})
	seen := make([]bool, n)
	for _, c := range chunks {
		if c.lo%k != 0 {
			t.Errorf("chunk %v not aligned to %d", c, k)
		}
		if c.hi-c.lo > k {
			t.Errorf("chunk %v larger than %d", c, k)
		}
		for i := c.lo; i < c.hi; i++ {
			if seen[i] {
				t.Fatalf("index %d covered twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never covered", i)
		}
	}
}

// TestGuidedGrantSequence checks the guided grant math deterministically:
// grants decrease geometrically down to the minimum chunk and cover exactly
// the whole index space — the behaviour Fig. 4d of the paper visualizes.
func TestGuidedGrantSequence(t *testing.T) {
	const n, workers, minChunk = 4096, 4, 2
	remaining := n
	var sizes []int
	for remaining > 0 {
		s := guidedGrant(remaining, workers, minChunk)
		sizes = append(sizes, s)
		remaining -= s
	}
	if sizes[0] != 1024 { // ceil(4096/4)
		t.Errorf("first grant = %d, want 1024", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("grants increased at %d: %v", i, sizes)
		}
	}
	if last := sizes[len(sizes)-1]; last > minChunk {
		t.Errorf("final grant = %d, want <= %d", last, minChunk)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Errorf("grants cover %d, want %d", total, n)
	}
	// Tail grants (except the final remainder) respect the minimum chunk.
	for i, s := range sizes[:len(sizes)-1] {
		if s < minChunk {
			t.Errorf("grant %d = %d below min chunk %d", i, s, minChunk)
		}
	}
}

// TestGuidedSingleWorkerDegenerate: with one worker, guided conformantly
// grabs everything in a single chunk (ceil(n/1) = n).
func TestGuidedSingleWorkerDegenerate(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	var sizes []int
	pool.ParallelForRanges(128, Policy{Kind: Guided, Chunk: 2}, func(lo, hi, _ int) {
		sizes = append(sizes, hi-lo)
	})
	if len(sizes) != 1 || sizes[0] != 128 {
		t.Errorf("single-worker guided chunks = %v, want [128]", sizes)
	}
}

// TestGuidedParallelCoverage verifies the concurrent guided loop covers the
// space exactly and that the largest grant equals ceil(n/workers).
func TestGuidedParallelCoverage(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var mu sync.Mutex
	maxGrant, total := 0, 0
	pool.ParallelForRanges(4096, GuidedPolicy, func(lo, hi, _ int) {
		mu.Lock()
		if hi-lo > maxGrant {
			maxGrant = hi - lo
		}
		total += hi - lo
		mu.Unlock()
	})
	if total != 4096 {
		t.Errorf("guided covered %d iterations, want 4096", total)
	}
	if maxGrant != 1024 {
		t.Errorf("largest guided grant = %d, want 1024", maxGrant)
	}
}

// TestNonmonotonicStealsUnderImbalance builds the paper's Fig. 3/4c
// situation: one worker's static share is vastly more expensive, so other
// workers must steal from it. We then verify (a) exact coverage and (b)
// that at least one iteration of the overloaded share ran on a different
// worker.
func TestNonmonotonicStealsUnderImbalance(t *testing.T) {
	const n, workers = 64, 4
	pool := NewPool(workers)
	defer pool.Close()
	owner := make([]int32, n)
	heavyLo, heavyHi := staticBlock(n, workers, 0)
	pool.ParallelFor(n, NonmonotonicPolicy, func(i, w int) {
		atomic.StoreInt32(&owner[i], int32(w)+1) // +1 so 0 means "never ran"
		if i >= heavyLo && i < heavyHi {
			time.Sleep(2 * time.Millisecond) // worker 0's block is heavy
		}
	})
	stolen := 0
	for i := heavyLo; i < heavyHi; i++ {
		if owner[i] == 0 {
			t.Fatalf("index %d never executed", i)
		}
		if owner[i] != 1 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Error("no stealing happened despite heavy imbalance on worker 0's block")
	}
}

// spinSink defeats dead-code elimination in spin loops.
var spinSink atomic.Int64

// spin burns a deterministic amount of CPU so every loop iteration has the
// same, non-zero cost.
func spin(units int) {
	s := int64(0)
	for i := 0; i < units; i++ {
		s += int64(i ^ (i << 3))
	}
	spinSink.Store(s)
}

// TestNonmonotonicStartsStatic verifies the "static first" half of the
// policy: with uniform per-iteration cost, the bulk of the iterations stay
// on their static owner (stealing only trims the tail). A zero-cost body
// would let the first-started worker devour every queue, so each iteration
// spins for a few microseconds.
func TestNonmonotonicStartsStatic(t *testing.T) {
	const n, workers = 400, 4
	pool := NewPool(workers)
	defer pool.Close()
	matches := 0
	var mu sync.Mutex
	pool.ParallelFor(n, NonmonotonicPolicy, func(i, w int) {
		spin(20000)
		lo, hi := staticBlock(n, workers, w)
		if i >= lo && i < hi {
			mu.Lock()
			matches++
			mu.Unlock()
		}
	})
	// Some stealing can occur near the end even under uniform load; require
	// a clear majority on the static owner.
	if matches < n/2 {
		t.Errorf("only %d/%d iterations ran on their static owner", matches, n)
	}
}

func TestParallelForRangesChunkBounds(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, pol := range allPolicies() {
		var bad atomic.Int32
		pool.ParallelForRanges(97, pol, func(lo, hi, _ int) {
			if lo < 0 || hi > 97 || lo >= hi {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Errorf("%v produced %d invalid chunks", pol, bad.Load())
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	for _, pol := range allPolicies() {
		ran := atomic.Int32{}
		pool.ParallelFor(0, pol, func(i, w int) { ran.Add(1) })
		if ran.Load() != 0 {
			t.Errorf("%v ran %d iterations for n=0", pol, ran.Load())
		}
		pool.ParallelFor(1, pol, func(i, w int) { ran.Add(1) })
		if ran.Load() != 1 {
			t.Errorf("%v ran %d iterations for n=1", pol, ran.Load())
		}
	}
}

func TestPoolDefaultsAndClose(t *testing.T) {
	p := NewPool(0)
	if p.Workers() <= 0 {
		t.Error("default pool has no workers")
	}
	p.Close()
	p.Close() // idempotent

	p2 := NewPool(3)
	if p2.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", p2.Workers())
	}
	p2.Close()
}

func TestPoolRunRanks(t *testing.T) {
	pool := NewPool(6)
	defer pool.Close()
	seen := make([]atomic.Int32, 6)
	pool.Run(func(w int) { seen[w].Add(1) })
	for w := range seen {
		if seen[w].Load() != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, seen[w].Load())
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	const n, rounds = 5, 50
	b := NewBarrier(n)
	var count atomic.Int32
	var bad atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				count.Add(1)
				b.Wait()
				// After the barrier every member of round r has
				// incremented and none of round r+1 has.
				if got := count.Load(); got != int32((r+1)*n) {
					bad.Add(1)
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d barrier phase violations", bad.Load())
	}
}

func TestBarrierPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestChunkQueue(t *testing.T) {
	var q chunkQueue
	q.reset(0, 10, 3)
	if got := q.size(); got != 4 {
		t.Fatalf("size = %d, want 4 chunks", got)
	}
	front, ok := q.take()
	if !ok || front != (indexChunk{0, 3}) {
		t.Errorf("take = %v %v", front, ok)
	}
	back, ok := q.steal()
	if !ok || back != (indexChunk{9, 10}) {
		t.Errorf("steal = %v %v", back, ok)
	}
	if q.size() != 2 {
		t.Errorf("size after pops = %d, want 2", q.size())
	}
	q.take()
	q.take()
	if _, ok := q.take(); ok {
		t.Error("take on empty queue succeeded")
	}
	if _, ok := q.steal(); ok {
		t.Error("steal on empty queue succeeded")
	}
}

func TestChunkQueueEmptyRange(t *testing.T) {
	var q chunkQueue
	q.reset(5, 5, 2)
	if q.size() != 0 {
		t.Errorf("empty range queue has size %d", q.size())
	}
}

// TestChunkQueueReuseNoGrowth verifies the zero-allocation contract of the
// steal queues: resetting to a same-or-smaller chunk count must reuse the
// backing array.
func TestChunkQueueReuseNoGrowth(t *testing.T) {
	var q chunkQueue
	q.reset(0, 1000, 4)
	base := cap(q.chunks)
	for round := 0; round < 10; round++ {
		q.reset(0, 1000, 4)
		for {
			if _, ok := q.take(); !ok {
				break
			}
		}
		if cap(q.chunks) != base {
			t.Fatalf("round %d: backing array reallocated (cap %d -> %d)",
				round, base, cap(q.chunks))
		}
	}
}

func BenchmarkParallelForStatic(b *testing.B) {
	pool := NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool.ParallelFor(4096, StaticPolicy, func(_, _ int) {})
	}
}

func BenchmarkParallelForDynamic(b *testing.B) {
	pool := NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool.ParallelFor(4096, DynamicPolicy(16), func(_, _ int) {})
	}
}

func BenchmarkParallelForNonmonotonic(b *testing.B) {
	pool := NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool.ParallelFor(4096, NonmonotonicPolicy, func(_, _ int) {})
	}
}
