package metrics

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", Labels{"kind": "sweep"})
	g := r.Gauge("queue_depth", "Depth.", nil)
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	out := render(r)
	for _, want := range []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		`jobs_total{kind="sweep"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSampledFuncs(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("sampled_total", "Sampled.", nil, func() uint64 { return n })
	r.GaugeFunc("sampled_gauge", "Sampled.", Labels{"x": "y"}, func() float64 { return 1.5 })
	n = 42
	out := render(r)
	if !strings.Contains(out, "sampled_total 42") {
		t.Errorf("CounterFunc not sampled at scrape:\n%s", out)
	}
	if !strings.Contains(out, `sampled_gauge{x="y"} 1.5`) {
		t.Errorf("GaugeFunc missing:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramExp("lat_ns", "Latency.", nil, 8, 12) // bounds 256..4096 + Inf
	// One observation per decisive region.
	h.Observe(0)    // < 256
	h.Observe(255)  // < 256
	h.Observe(256)  // < 512
	h.Observe(5000) // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 0+255+256+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	out := render(r)
	for _, want := range []string{
		`lat_ns_bucket{le="256"} 2`,
		`lat_ns_bucket{le="512"} 3`,
		`lat_ns_bucket{le="1024"} 3`,
		`lat_ns_bucket{le="4096"} 3`,
		`lat_ns_bucket{le="+Inf"} 4`,
		"lat_ns_sum 5511",
		"lat_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBucketInvariant pins the bucket-selection rule: every
// observation v lands in the first bucket whose bound exceeds it —
// v < 1<<(minExp+i) — so cumulative counts are honest "le" semantics.
func TestHistogramBucketInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "Latency.", nil)
	for _, v := range []int64{0, 1, 255, 256, 257, 1023, 1 << 20, 1<<34 + 1, 1 << 40} {
		h.Observe(v)
		idx := bits.Len64(uint64(v)) - h.minExp
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
		if idx < len(h.buckets)-1 {
			bound := int64(1) << (h.minExp + idx)
			if v >= bound {
				t.Errorf("v=%d filed under bound %d (le violated)", v, bound)
			}
		}
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
}

func TestHistogramLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("stage_ns", "Stage latency.", Labels{"stage": "compute"})
	b := r.Histogram("stage_ns", "Stage latency.", Labels{"stage": "queue"})
	a.Observe(1000)
	b.Observe(2000)
	out := render(r)
	if n := strings.Count(out, "# TYPE stage_ns histogram"); n != 1 {
		t.Errorf("family TYPE line appears %d times, want 1:\n%s", n, out)
	}
	if !strings.Contains(out, `stage_ns_count{stage="compute"} 1`) ||
		!strings.Contains(out, `stage_ns_count{stage="queue"} 1`) {
		t.Errorf("labeled histograms not rendered independently:\n%s", out)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "Latency.", nil)
	c := r.Counter("n_total", "N.", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("histogram lost observations: %d != %d", h.Count(), workers*per)
	}
	if c.Value() != workers*per {
		t.Fatalf("counter lost increments: %d != %d", c.Value(), workers*per)
	}
}

// BenchmarkHistogramObserve pins the hot-path cost of one observation —
// the number the tentpole's "~ns on the dispatch hot path" claim rests
// on (recorded in BENCH_obs.json).
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "Latency.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkCounterInc is the counter twin.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
