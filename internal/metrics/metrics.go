// Package metrics is a zero-dependency, hot-path-safe metrics registry
// for the easypapd service tier: atomic counters, gauges, and lock-free
// fixed-bucket histograms, exposed in the Prometheus text exposition
// format (GET /metrics).
//
// The paper's thesis (§II-D) is that parallel performance is understood
// by measuring it; internal/trace applies that to kernels, this package
// applies it to the service stack built on top. The design constraint is
// the same as the scheduling core's: observation must be cheap enough to
// live on hot paths. A Counter.Add or Gauge.Set is one uncontended
// atomic add/store; a Histogram.Observe is a bits.Len64 (one LZCNT) to
// pick the power-of-two bucket plus two atomic adds (bucket and sum) —
// a few nanoseconds, no locks, no allocations, no time formatting.
// Everything expensive (bucket cumulation, text rendering, sampled
// GaugeFunc callbacks) happens at scrape time.
//
// Registries are instances, not process globals: each Manager owns one,
// so in-process multi-node tests (and the cluster harness) do not share
// counters.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key=value pairs attached to a metric at
// registration (e.g. {"stage": "compute"}). They are rendered sorted,
// so the exposition text is deterministic.
type Labels map[string]string

// metric is anything the registry can render.
type metric interface {
	write(w io.Writer, name, labels string)
	typeName() string
}

// entry is one registered metric under a family name.
type entry struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	m      metric
}

// Registry holds registered metrics and renders them. Registration is
// synchronized; observation paths never touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	families []string          // family names in registration order
	help     map[string]string // family -> help text
	entries  map[string][]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{help: make(map[string]string), entries: make(map[string][]entry)}
}

// register files a metric under its family, keeping registration order.
func (r *Registry) register(name, help string, labels Labels, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.help[name]; !ok {
		r.families = append(r.families, name)
		r.help[name] = help
	}
	r.entries[name] = append(r.entries[name], entry{name: name, help: help, labels: renderLabels(labels), m: m})
}

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	families := append([]string(nil), r.families...)
	byFamily := make(map[string][]entry, len(families))
	for _, f := range families {
		byFamily[f] = append([]entry(nil), r.entries[f]...)
	}
	help := make(map[string]string, len(families))
	for f, h := range r.help {
		help[f] = h
	}
	r.mu.Unlock()

	for _, f := range families {
		es := byFamily[f]
		if len(es) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f, help[f])
		fmt.Fprintf(w, "# TYPE %s %s\n", f, es[0].m.typeName())
		for _, e := range es {
			e.m.write(w, e.name, e.labels)
		}
	}
}

// Handler returns an http.Handler serving the exposition text — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// --- counter ---------------------------------------------------------

// Counter is a monotonically increasing value. Add is one atomic add.
type Counter struct {
	v atomic.Uint64
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, labels, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) typeName() string { return "counter" }
func (c *Counter) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, float64(c.v.Load()))
}

// CounterFunc exposes an externally maintained monotone value (an
// existing atomic the service already keeps) without double-counting:
// the function is sampled at scrape time only.
type CounterFunc struct {
	fn func() uint64
}

// CounterFunc registers a sampled counter.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, help, labels, &CounterFunc{fn: fn})
}

func (c *CounterFunc) typeName() string { return "counter" }
func (c *CounterFunc) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, float64(c.fn()))
}

// --- gauge -----------------------------------------------------------

// Gauge is a value that can go up and down. Set/Add are one atomic op.
type Gauge struct {
	v atomic.Int64
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, labels, g)
	return g
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) typeName() string { return "gauge" }
func (g *Gauge) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, float64(g.v.Load()))
}

// GaugeFunc exposes a sampled gauge: the callback runs at scrape time,
// so values the service already tracks (queue depth, ring version, disk
// bytes) cost nothing between scrapes.
type GaugeFunc struct {
	fn func() float64
}

// GaugeFunc registers a sampled gauge.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, labels, &GaugeFunc{fn: fn})
}

func (g *GaugeFunc) typeName() string { return "gauge" }
func (g *GaugeFunc) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, g.fn())
}

// --- histogram -------------------------------------------------------

// Histogram bucket layout: power-of-two bounds. Bucket i counts
// observations v with v < 1<<(minExp+i); the last implicit bucket is
// +Inf. Power-of-two bounds make bucket selection branch-free —
// bits.Len64 is the whole computation — and cover nanosecond latencies
// from 256 ns to ~17 s with 27 buckets.
const (
	// DefaultMinExp is the lowest bucket bound exponent: 1<<8 = 256 ns.
	DefaultMinExp = 8
	// DefaultMaxExp is the highest finite bound exponent: 1<<34 ≈ 17.2 s.
	DefaultMaxExp = 34
)

// Histogram is a lock-free fixed-bucket histogram. Observe performs one
// bits.Len64 and two atomic adds (bucket count and sum); cumulative
// bucket counts — and the total count, which equals the +Inf cumulative
// count — are derived at scrape time.
type Histogram struct {
	minExp  int
	buckets []atomic.Uint64 // buckets[i]: minExp+i bound; last is +Inf
	sum     atomic.Uint64
}

// Histogram registers a histogram with default nanosecond-latency
// bounds (256 ns .. ~17 s, powers of two).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.HistogramExp(name, help, labels, DefaultMinExp, DefaultMaxExp)
}

// HistogramExp registers a histogram with bounds 1<<minExp .. 1<<maxExp.
func (r *Registry) HistogramExp(name, help string, labels Labels, minExp, maxExp int) *Histogram {
	if minExp < 0 || maxExp <= minExp || maxExp > 62 {
		panic(fmt.Sprintf("metrics: invalid histogram exponents [%d, %d]", minExp, maxExp))
	}
	h := &Histogram{
		minExp:  minExp,
		buckets: make([]atomic.Uint64, maxExp-minExp+2), // finite bounds + Inf
	}
	r.register(name, help, labels, h)
	return h
}

// Observe records one value (typically nanoseconds). Negative values
// clamp to zero. The hot path: one bits.Len64, two atomic adds.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// bits.Len64(v) is the exponent of the smallest power of two > v
	// (for v>0): v < 1<<Len64(v). Clamp into the bucket range.
	idx := bits.Len64(uint64(v)) - h.minExp
	if idx < 0 {
		idx = 0
	} else if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

func (h *Histogram) typeName() string { return "histogram" }
func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		var le string
		if i == len(h.buckets)-1 {
			le = `le="+Inf"`
		} else {
			le = fmt.Sprintf(`le="%d"`, uint64(1)<<(h.minExp+i))
		}
		l := le
		if labels != "" {
			l = labels + "," + le
		}
		writeSample(w, name+"_bucket", l, float64(cum))
	}
	writeSample(w, name+"_sum", labels, float64(h.sum.Load()))
	writeSample(w, name+"_count", labels, float64(cum))
}

// writeSample renders one "name{labels} value" line.
func writeSample(w io.Writer, name, labels string, v float64) {
	if labels != "" {
		name = name + "{" + labels + "}"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		fmt.Fprintf(w, "%s %d\n", name, int64(v))
		return
	}
	fmt.Fprintf(w, "%s %g\n", name, v)
}
