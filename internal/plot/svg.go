package plot

// SVG rendering of Graphs: multi-panel line charts with axes, ticks,
// legends and the constants banner — the visual equivalent of Fig. 6.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// svgPalette cycles through distinguishable line colors.
var svgPalette = []string{
	"#e6194b", "#3cb44b", "#4363d8", "#f58231",
	"#911eb4", "#42d4f4", "#f032e6", "#9a6324",
}

// RenderSVG draws the graph as a standalone SVG document. Panels are laid
// out side by side (as in Fig. 6), sharing the y range.
func (g *Graph) RenderSVG(width, height int) string {
	if width <= 0 {
		width = 520 * max(len(g.Panels), 1)
	}
	if height <= 0 {
		height = 420
	}
	nPanels := max(len(g.Panels), 1)
	panelW := width / nPanels
	const marginL, marginR, marginT, marginB = 56, 16, 56, 46

	// Global ranges across panels so curves are comparable.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, p := range g.Panels {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				minX = math.Min(minX, pt.X)
				maxX = math.Max(maxX, pt.X)
				maxY = math.Max(maxY, pt.Y)
			}
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.08 // headroom

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Constants banner.
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="11" fill="#444">%s</text>`+"\n",
		8, escape(g.ConstantsLine()))

	for pi, panel := range g.Panels {
		x0 := pi*panelW + marginL
		x1 := (pi+1)*panelW - marginR
		y0 := marginT
		y1 := height - marginB
		plotW := float64(x1 - x0)
		plotH := float64(y1 - y0)
		sx := func(x float64) float64 { return float64(x0) + (x-minX)/(maxX-minX)*plotW }
		sy := func(y float64) float64 { return float64(y1) - y/maxY*plotH }

		// Panel title.
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" fill="#222" text-anchor="middle">%s</text>`+"\n",
			(x0+x1)/2, y0-10, escape(panel.Title))
		// Axes.
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", x0, y1, x1, y1)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", x0, y0, x0, y1)
		// Y ticks and gridlines (5 divisions).
		for i := 0; i <= 5; i++ {
			yv := maxY * float64(i) / 5
			fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
				x0, sy(yv), x1, sy(yv))
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" fill="#555" text-anchor="end">%.1f</text>`+"\n",
				x0-4, sy(yv)+3, yv)
		}
		// X ticks at each distinct point of the first series.
		ticks := map[float64]bool{}
		for _, s := range panel.Series {
			for _, pt := range s.Points {
				ticks[pt.X] = true
			}
		}
		for x := range ticks {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="#555" text-anchor="middle">%g</text>`+"\n",
				sx(x), y1+14, x)
		}
		// Axis labels.
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#333" text-anchor="middle">%s</text>`+"\n",
			(x0+x1)/2, height-8, escape(g.XLabel))
		if pi == 0 {
			fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" fill="#333" transform="rotate(-90 14 %d)">%s</text>`+"\n",
				(y0+y1)/2, (y0+y1)/2, escape(g.YLabel))
		}

		// Curves with point markers.
		for si, s := range panel.Series {
			color := svgPalette[si%len(svgPalette)]
			var path strings.Builder
			for i, pt := range s.Points {
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx(pt.X), sy(pt.Y))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.TrimSpace(path.String()), color)
			for _, pt := range s.Points {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"><title>%s: (%g, %.2f)</title></circle>`+"\n",
					sx(pt.X), sy(pt.Y), color, escape(s.Name), pt.X, pt.Y)
			}
			// Legend entry (top-left of the panel).
			ly := y0 + 14 + si*15
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
				x0+6, ly-4, x0+26, ly-4, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`+"\n",
				x0+30, ly, escape(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SaveSVG writes the rendered graph to path, creating directories.
func (g *Graph) SaveSVG(path string, width, height int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	return os.WriteFile(path, []byte(g.RenderSVG(width, height)), 0o644)
}

// ASCII renders the graph as fixed-width text charts, one block per panel
// — handy in terminals and test logs.
func (g *Graph) ASCII(width, height int) string {
	if width <= 0 {
		width = 68
	}
	if height <= 0 {
		height = 16
	}
	var b strings.Builder
	b.WriteString(g.ConstantsLine() + "\n")
	for _, panel := range g.Panels {
		if panel.Title != "" {
			fmt.Fprintf(&b, "-- %s --\n", panel.Title)
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		maxY := 0.0
		for _, s := range panel.Series {
			for _, pt := range s.Points {
				minX = math.Min(minX, pt.X)
				maxX = math.Max(maxX, pt.X)
				maxY = math.Max(maxY, pt.Y)
			}
		}
		if math.IsInf(minX, 1) || maxY == 0 {
			b.WriteString("(no data)\n")
			continue
		}
		if maxX == minX {
			maxX = minX + 1
		}
		grid := make([][]byte, height)
		for i := range grid {
			grid[i] = []byte(strings.Repeat(" ", width))
		}
		for si, s := range panel.Series {
			marker := byte('a' + si%26)
			for _, pt := range s.Points {
				cx := int((pt.X - minX) / (maxX - minX) * float64(width-1))
				cy := height - 1 - int(pt.Y/maxY*float64(height-1))
				if cy >= 0 && cy < height && cx >= 0 && cx < width {
					grid[cy][cx] = marker
				}
			}
		}
		for _, line := range grid {
			b.WriteString(string(line) + "\n")
		}
		for si, s := range panel.Series {
			fmt.Fprintf(&b, "  %c = %s\n", byte('a'+si%26), s.Name)
		}
	}
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
