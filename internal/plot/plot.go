// Package plot is the easyplot equivalent (paper §II-C, Fig. 6): it loads
// the CSV files produced in performance mode, filters and groups them, and
// renders speedup or time curves as SVG.
//
// The key feature carried over from easyplot is the automatically generated
// legend: after filtering, columns holding a single value are set aside and
// listed above the graph ("Parameters: machine=... dim=1024 kernel=mandel
// ..."), and the series names are built from the remaining varying columns
// — guaranteeing that "experiments conducted in different conditions will
// not silently be incorporated in the same graph".
package plot

import (
	"encoding/csv"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one CSV row: column name -> value.
type Record map[string]string

// Table is a loaded result set.
type Table struct {
	Columns []string
	Rows    []Record
}

// Load reads a CSV file with a header row.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("plot: %w", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("plot: reading %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("plot: %s is empty", path)
	}
	t := &Table{Columns: rows[0]}
	for _, raw := range rows[1:] {
		if len(raw) != len(t.Columns) {
			return nil, fmt.Errorf("plot: %s has a row with %d fields, want %d", path, len(raw), len(t.Columns))
		}
		rec := make(Record, len(raw))
		for i, col := range t.Columns {
			rec[col] = raw[i]
		}
		t.Rows = append(t.Rows, rec)
	}
	return t, nil
}

// Filter returns the rows matching every key=value constraint.
func (t *Table) Filter(constraints map[string]string) *Table {
	out := &Table{Columns: t.Columns}
	for _, r := range t.Rows {
		ok := true
		for k, v := range constraints {
			if r[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// ConstantColumns returns the columns that hold a single value across all
// rows (excluding the measurement column time_us), with that value — the
// parameters listed above the graph.
func (t *Table) ConstantColumns() map[string]string {
	consts := make(map[string]string)
	if len(t.Rows) == 0 {
		return consts
	}
	for _, col := range t.Columns {
		if col == "time_us" {
			continue
		}
		v := t.Rows[0][col]
		same := true
		for _, r := range t.Rows[1:] {
			if r[col] != v {
				same = false
				break
			}
		}
		if same {
			consts[col] = v
		}
	}
	return consts
}

// VaryingColumns returns the non-constant, non-measurement columns.
func (t *Table) VaryingColumns() []string {
	consts := t.ConstantColumns()
	var out []string
	for _, col := range t.Columns {
		if col == "time_us" {
			continue
		}
		if _, isConst := consts[col]; !isConst {
			out = append(out, col)
		}
	}
	return out
}

// TimeUS returns the row's measurement in microseconds.
func (r Record) TimeUS() (int64, error) {
	v, err := strconv.ParseInt(r["time_us"], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("plot: bad time_us %q", r["time_us"])
	}
	return v, nil
}

// Point is one aggregated (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Panel is one sub-graph (Fig. 6 shows two: grain=16 and grain=32).
type Panel struct {
	Title  string
	Series []Series
}

// Graph is a complete figure: shared constants, one or more panels.
type Graph struct {
	Constants map[string]string
	Panels    []Panel
	YLabel    string
	XLabel    string
}

// Options configures Build.
type Options struct {
	// XCol is the numeric x-axis column (e.g. "threads").
	XCol string
	// PanelCol, when set, splits the figure into one panel per value
	// (easyplot --col, e.g. "tilew" for the grain panels of Fig. 6).
	PanelCol string
	// Speedup computes y = RefTimeUS / time instead of raw time.
	Speedup bool
	// RefTimeUS is the sequential reference time. When zero and Speedup is
	// set, the reference is taken from the rows whose variant is "seq"
	// (minimum time), mirroring easyplot's refTime discovery.
	RefTimeUS int64
}

// Build aggregates the table into a Graph: rows are grouped per panel and
// per legend (the varying columns except XCol and PanelCol); repeated runs
// at the same x collapse to their minimum time.
func Build(t *Table, opt Options) (*Graph, error) {
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("plot: no rows to plot")
	}
	if opt.XCol == "" {
		return nil, fmt.Errorf("plot: no x column selected")
	}
	refTime := opt.RefTimeUS
	working := t
	if opt.Speedup && refTime == 0 {
		var err error
		refTime, err = seqReference(t)
		if err != nil {
			return nil, err
		}
		// The seq rows are the reference, not a curve.
		working = excludeVariant(t, "seq")
	}

	consts := working.ConstantColumns()
	varying := working.VaryingColumns()
	var legendCols []string
	for _, c := range varying {
		if c != opt.XCol && c != opt.PanelCol {
			legendCols = append(legendCols, c)
		}
	}

	g := &Graph{Constants: consts, XLabel: opt.XCol, YLabel: "time (ms)"}
	if opt.Speedup {
		g.YLabel = "speedup"
		g.Constants["refTime"] = strconv.FormatInt(refTime, 10)
	}

	// panel -> legend -> x -> min time
	type cell struct{ best int64 }
	data := make(map[string]map[string]map[float64]*cell)
	for _, r := range working.Rows {
		x, err := strconv.ParseFloat(r[opt.XCol], 64)
		if err != nil {
			return nil, fmt.Errorf("plot: non-numeric %s value %q", opt.XCol, r[opt.XCol])
		}
		tUS, err := r.TimeUS()
		if err != nil {
			return nil, err
		}
		panel := ""
		if opt.PanelCol != "" {
			panel = fmt.Sprintf("%s = %s", opt.PanelCol, r[opt.PanelCol])
		}
		var legendParts []string
		for _, c := range legendCols {
			legendParts = append(legendParts, fmt.Sprintf("%s=%s", c, r[c]))
		}
		legend := strings.Join(legendParts, " ")
		if legend == "" {
			legend = "time"
		}
		if data[panel] == nil {
			data[panel] = make(map[string]map[float64]*cell)
		}
		if data[panel][legend] == nil {
			data[panel][legend] = make(map[float64]*cell)
		}
		if c := data[panel][legend][x]; c == nil || tUS < c.best {
			data[panel][legend][x] = &cell{best: tUS}
		}
	}

	panelNames := sortedKeys(data)
	for _, pn := range panelNames {
		panel := Panel{Title: pn}
		for _, legend := range sortedKeys(data[pn]) {
			s := Series{Name: legend}
			xs := make([]float64, 0, len(data[pn][legend]))
			for x := range data[pn][legend] {
				xs = append(xs, x)
			}
			sort.Float64s(xs)
			for _, x := range xs {
				tUS := data[pn][legend][x].best
				y := float64(tUS) / 1000 // ms
				if opt.Speedup {
					y = float64(refTime) / float64(tUS)
				}
				s.Points = append(s.Points, Point{X: x, Y: y})
			}
			panel.Series = append(panel.Series, s)
		}
		g.Panels = append(g.Panels, panel)
	}
	return g, nil
}

// seqReference finds the minimum time of the "seq" variant rows.
func seqReference(t *Table) (int64, error) {
	var best int64 = -1
	for _, r := range t.Rows {
		if r["variant"] != "seq" {
			continue
		}
		tUS, err := r.TimeUS()
		if err != nil {
			return 0, err
		}
		if best < 0 || tUS < best {
			best = tUS
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("plot: no seq rows to derive refTime from; pass RefTimeUS explicitly")
	}
	return best, nil
}

func excludeVariant(t *Table, variant string) *Table {
	out := &Table{Columns: t.Columns}
	for _, r := range t.Rows {
		if r["variant"] != variant {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ConstantsLine renders the parameters banner shown above the graph, e.g.
// "Parameters : machine=6-core dim=1024 kernel=mandel variant=omp_tiled".
func (g *Graph) ConstantsLine() string {
	parts := make([]string, 0, len(g.Constants))
	for _, k := range sortedKeys(g.Constants) {
		parts = append(parts, fmt.Sprintf("%s=%s", k, g.Constants[k]))
	}
	return "Parameters : " + strings.Join(parts, " ")
}
