package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCSV drops a small result file shaped like core.AppendCSV output.
func writeCSV(t *testing.T, rows ...string) string {
	t.Helper()
	header := "machine,kernel,variant,dim,tilew,tileh,threads,schedule,ranks,iterations,arg,time_us"
	path := filepath.Join(t.TempDir(), "perf.csv")
	content := header + "\n" + strings.Join(rows, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleCSV(t *testing.T) string {
	return writeCSV(t,
		"m,mandel,seq,1024,16,16,1,static,1,10,,600000",
		"m,mandel,omp_tiled,1024,16,16,2,static,1,10,,320000",
		"m,mandel,omp_tiled,1024,16,16,2,static,1,10,,310000", // repeat run
		"m,mandel,omp_tiled,1024,16,16,4,static,1,10,,170000",
		`m,mandel,omp_tiled,1024,16,16,2,"dynamic,2",1,10,,300000`,
		`m,mandel,omp_tiled,1024,16,16,4,"dynamic,2",1,10,,150000`,
		"m,mandel,omp_tiled,1024,32,32,2,static,1,10,,330000",
		"m,mandel,omp_tiled,1024,32,32,4,static,1,10,,180000",
	)
}

func TestLoad(t *testing.T) {
	tab, err := Load(sampleCSV(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0]["variant"] != "seq" || tab.Rows[0]["time_us"] != "600000" {
		t.Errorf("row 0 = %v", tab.Rows[0])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	os.WriteFile(empty, nil, 0o644)
	if _, err := Load(empty); err == nil {
		t.Error("empty file accepted")
	}
}

func TestFilter(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	got := tab.Filter(map[string]string{"variant": "omp_tiled", "tilew": "16"})
	if len(got.Rows) != 5 {
		t.Errorf("filtered rows = %d, want 5", len(got.Rows))
	}
	none := tab.Filter(map[string]string{"kernel": "nope"})
	if len(none.Rows) != 0 {
		t.Error("bogus filter matched rows")
	}
}

func TestConstantAndVaryingColumns(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	sub := tab.Filter(map[string]string{"variant": "omp_tiled", "tilew": "16"})
	consts := sub.ConstantColumns()
	if consts["kernel"] != "mandel" || consts["dim"] != "1024" {
		t.Errorf("constants = %v", consts)
	}
	if _, isConst := consts["threads"]; isConst {
		t.Error("threads wrongly constant")
	}
	varying := sub.VaryingColumns()
	joined := strings.Join(varying, ",")
	if !strings.Contains(joined, "threads") || !strings.Contains(joined, "schedule") {
		t.Errorf("varying = %v", varying)
	}
	if strings.Contains(joined, "time_us") {
		t.Error("time_us is not a parameter column")
	}
}

func TestBuildSpeedupGraph(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	sub := tab.Filter(map[string]string{"kernel": "mandel"})
	g, err := Build(sub, Options{XCol: "threads", PanelCol: "tilew", Speedup: true})
	if err != nil {
		t.Fatal(err)
	}
	// refTime from the seq row.
	if g.Constants["refTime"] != "600000" {
		t.Errorf("refTime = %s", g.Constants["refTime"])
	}
	if len(g.Panels) != 2 {
		t.Fatalf("panels = %d, want 2 (tilew 16 and 32)", len(g.Panels))
	}
	// Panel "tilew = 16" has two series (static, dynamic,2).
	p16 := g.Panels[0]
	if !strings.Contains(p16.Title, "16") {
		p16 = g.Panels[1]
	}
	if len(p16.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(p16.Series))
	}
	// Speedup at threads=4 with dynamic: 600000/150000 = 4.
	for _, s := range p16.Series {
		if strings.Contains(s.Name, "dynamic") {
			last := s.Points[len(s.Points)-1]
			if last.X != 4 || last.Y != 4.0 {
				t.Errorf("dynamic speedup at 4 threads = %+v", last)
			}
		}
		if strings.Contains(s.Name, "static") {
			// Repeat runs collapse to the min (310000): 600000/310000.
			first := s.Points[0]
			if first.X != 2 || first.Y < 1.9 || first.Y > 1.94 {
				t.Errorf("static speedup at 2 threads = %+v", first)
			}
		}
	}
	if g.YLabel != "speedup" {
		t.Errorf("ylabel = %s", g.YLabel)
	}
}

func TestBuildTimeGraph(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	sub := tab.Filter(map[string]string{"variant": "omp_tiled", "tilew": "16", "schedule": "static"})
	g, err := Build(sub, Options{XCol: "threads"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Panels) != 1 || len(g.Panels[0].Series) != 1 {
		t.Fatalf("graph shape: %d panels", len(g.Panels))
	}
	pts := g.Panels[0].Series[0].Points
	if pts[0].X != 2 || pts[0].Y != 310 { // min(320000,310000) us -> ms
		t.Errorf("time point = %+v", pts[0])
	}
	if g.YLabel != "time (ms)" {
		t.Errorf("ylabel = %s", g.YLabel)
	}
}

func TestBuildErrors(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	if _, err := Build(&Table{Columns: tab.Columns}, Options{XCol: "threads"}); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := Build(tab, Options{}); err == nil {
		t.Error("missing XCol accepted")
	}
	if _, err := Build(tab, Options{XCol: "variant"}); err == nil {
		t.Error("non-numeric x column accepted")
	}
	noSeq := tab.Filter(map[string]string{"variant": "omp_tiled"})
	if _, err := Build(noSeq, Options{XCol: "threads", Speedup: true}); err == nil {
		t.Error("speedup without seq reference accepted")
	}
	// Explicit RefTimeUS fixes it.
	if _, err := Build(noSeq, Options{XCol: "threads", Speedup: true, RefTimeUS: 500000}); err != nil {
		t.Errorf("explicit refTime rejected: %v", err)
	}
}

func TestConstantsLine(t *testing.T) {
	g := &Graph{Constants: map[string]string{"dim": "1024", "kernel": "mandel"}}
	line := g.ConstantsLine()
	if line != "Parameters : dim=1024 kernel=mandel" {
		t.Errorf("line = %q", line)
	}
}

func TestRenderSVG(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	g, err := Build(tab.Filter(map[string]string{"kernel": "mandel"}),
		Options{XCol: "threads", PanelCol: "tilew", Speedup: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := g.RenderSVG(0, 0)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("not SVG")
	}
	for _, want := range []string{"Parameters :", "tilew = 16", "tilew = 32", "speedup", "<path", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	path := filepath.Join(t.TempDir(), "g", "fig6.svg")
	if err := g.SaveSVG(path, 1040, 420); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Error(err)
	}
}

func TestASCIIChart(t *testing.T) {
	tab, _ := Load(sampleCSV(t))
	g, err := Build(tab.Filter(map[string]string{"tilew": "16"}),
		Options{XCol: "threads", Speedup: true})
	if err != nil {
		t.Fatal(err)
	}
	art := g.ASCII(40, 10)
	if !strings.Contains(art, "a = ") {
		t.Errorf("ascii chart missing legend:\n%s", art)
	}
	lines := strings.Split(art, "\n")
	if len(lines) < 10 {
		t.Error("ascii chart too short")
	}
}

func TestEmptyPanelASCII(t *testing.T) {
	g := &Graph{Constants: map[string]string{}, Panels: []Panel{{Title: "empty"}}}
	if !strings.Contains(g.ASCII(20, 5), "(no data)") {
		t.Error("empty panel not handled")
	}
}
