// Package img2d provides the 2D image substrate underlying every EASYPAP
// kernel: square RGBA pixel buffers, the cur/next double-buffer pair that
// stencil kernels swap between iterations, color helpers, thumbnails, and
// PNG/PPM encoding.
//
// In the original C framework pixels live in an SDL surface and are accessed
// through the cur_img(y, x) macro. Here an Image is a flat []uint32 slice
// (one RGBA word per pixel, R in the high byte, A in the low byte, matching
// EASYPAP's representation) with explicit accessors. All hot-path accessors
// are tiny and inline-friendly; kernels that need raw speed can use Row to
// obtain a row slice and index it directly.
package img2d

import (
	"fmt"
)

// Pixel is one RGBA pixel packed as 0xRRGGBBAA, the layout used by EASYPAP.
type Pixel = uint32

// Image is a square DIM x DIM pixel buffer.
//
// The zero value is not usable; create images with New. Image values are
// cheap headers over a shared pixel slice: Clone for a deep copy.
type Image struct {
	dim int
	pix []Pixel
}

// New returns a dim x dim image with all pixels zero (transparent black).
// It panics if dim is not positive: image geometry is a programming error,
// not a runtime condition.
func New(dim int) *Image {
	if dim <= 0 {
		panic(fmt.Sprintf("img2d: invalid dimension %d", dim))
	}
	return &Image{dim: dim, pix: make([]Pixel, dim*dim)}
}

// FromPixels wraps an existing pixel slice of length dim*dim. The image
// aliases the slice; mutations are visible both ways.
func FromPixels(dim int, pix []Pixel) (*Image, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("img2d: invalid dimension %d", dim)
	}
	if len(pix) != dim*dim {
		return nil, fmt.Errorf("img2d: pixel slice has length %d, want %d", len(pix), dim*dim)
	}
	return &Image{dim: dim, pix: pix}, nil
}

// Dim returns the side length of the (square) image.
func (im *Image) Dim() int { return im.dim }

// Len returns the total number of pixels (Dim squared).
func (im *Image) Len() int { return len(im.pix) }

// Get returns the pixel at row y, column x.
func (im *Image) Get(y, x int) Pixel { return im.pix[y*im.dim+x] }

// Set writes the pixel at row y, column x.
func (im *Image) Set(y, x int, p Pixel) { im.pix[y*im.dim+x] = p }

// Row returns the y-th row as a slice aliasing the image storage.
// This is the fast path for inner loops: bounds checks happen once.
func (im *Image) Row(y int) []Pixel { return im.pix[y*im.dim : (y+1)*im.dim] }

// Pixels returns the whole backing slice in row-major order.
func (im *Image) Pixels() []Pixel { return im.pix }

// Fill sets every pixel to p.
func (im *Image) Fill(p Pixel) {
	for i := range im.pix {
		im.pix[i] = p
	}
}

// FillRect sets every pixel of the rectangle (x, y, w, h) to p. The
// rectangle is clipped against the image bounds.
func (im *Image) FillRect(x, y, w, h int, p Pixel) {
	x0, y0, x1, y1 := clipRect(im.dim, x, y, w, h)
	for r := y0; r < y1; r++ {
		row := im.Row(r)
		for c := x0; c < x1; c++ {
			row[c] = p
		}
	}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	cp := New(im.dim)
	copy(cp.pix, im.pix)
	return cp
}

// CopyFrom copies src's pixels into im. Both images must have the same
// dimension.
func (im *Image) CopyFrom(src *Image) error {
	if src.dim != im.dim {
		return fmt.Errorf("img2d: dimension mismatch %d != %d", src.dim, im.dim)
	}
	copy(im.pix, src.pix)
	return nil
}

// Equal reports whether two images have identical dimensions and pixels.
func (im *Image) Equal(other *Image) bool {
	if im.dim != other.dim {
		return false
	}
	for i, p := range im.pix {
		if other.pix[i] != p {
			return false
		}
	}
	return true
}

// DiffCount returns the number of differing pixels between two same-size
// images, or -1 when the dimensions differ. It is the primitive behind
// "did my parallel variant produce the same output as seq".
func (im *Image) DiffCount(other *Image) int {
	if im.dim != other.dim {
		return -1
	}
	n := 0
	for i, p := range im.pix {
		if other.pix[i] != p {
			n++
		}
	}
	return n
}

// Thumbnail returns a size x size downscaled copy using box averaging on
// each channel. EASYVIEW displays such reduced views next to Gantt charts so
// tasks can be linked to the data they touched. size must be positive and
// not larger than Dim.
func (im *Image) Thumbnail(size int) (*Image, error) {
	if size <= 0 || size > im.dim {
		return nil, fmt.Errorf("img2d: invalid thumbnail size %d for dim %d", size, im.dim)
	}
	th := New(size)
	// Each thumbnail pixel averages a block of source pixels.
	for ty := 0; ty < size; ty++ {
		sy0, sy1 := ty*im.dim/size, (ty+1)*im.dim/size
		if sy1 == sy0 {
			sy1 = sy0 + 1
		}
		for tx := 0; tx < size; tx++ {
			sx0, sx1 := tx*im.dim/size, (tx+1)*im.dim/size
			if sx1 == sx0 {
				sx1 = sx0 + 1
			}
			var r, g, b, a, n uint64
			for sy := sy0; sy < sy1; sy++ {
				row := im.Row(sy)
				for sx := sx0; sx < sx1; sx++ {
					p := row[sx]
					r += uint64(p >> 24)
					g += uint64(p >> 16 & 0xff)
					b += uint64(p >> 8 & 0xff)
					a += uint64(p & 0xff)
					n++
				}
			}
			th.Set(ty, tx, RGBA(uint8(r/n), uint8(g/n), uint8(b/n), uint8(a/n)))
		}
	}
	return th, nil
}

// clipRect clips (x, y, w, h) against a dim x dim square and returns the
// half-open pixel bounds [x0,x1) x [y0,y1).
func clipRect(dim, x, y, w, h int) (x0, y0, x1, y1 int) {
	x0, y0 = max(x, 0), max(y, 0)
	x1, y1 = min(x+w, dim), min(y+h, dim)
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	return
}

// Buffers is the cur/next image pair used by stencil kernels (blur, life,
// sandpile, cc): reads come from Cur, writes go to Next, and Swap exchanges
// them between iterations — mirroring EASYPAP's cur_img/next_img macros and
// the swap_images() helper.
type Buffers struct {
	cur, next *Image
}

// NewBuffers allocates a pair of dim x dim images.
func NewBuffers(dim int) *Buffers {
	return &Buffers{cur: New(dim), next: New(dim)}
}

// Cur returns the current (read) image.
func (b *Buffers) Cur() *Image { return b.cur }

// Next returns the next (write) image.
func (b *Buffers) Next() *Image { return b.next }

// Swap exchanges the current and next images.
func (b *Buffers) Swap() { b.cur, b.next = b.next, b.cur }

// Dim returns the image side length.
func (b *Buffers) Dim() int { return b.cur.dim }
