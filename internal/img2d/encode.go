package img2d

// Encoding of images to standard formats. EASYPAP displays frames through
// SDL; this port materializes them as PNG or PPM files instead (see
// DESIGN.md §1), which keeps the per-iteration refresh path identical while
// remaining usable on headless machines.

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"path/filepath"
)

// ToNRGBA converts the image into a standard library image.NRGBA, sharing
// no storage.
func (im *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.dim, im.dim))
	for y := 0; y < im.dim; y++ {
		row := im.Row(y)
		for x, p := range row {
			r, g, b, a := Channels(p)
			out.SetNRGBA(x, y, color.NRGBA{R: r, G: g, B: b, A: a})
		}
	}
	return out
}

// FromNRGBA converts a standard library NRGBA image into an Image. The
// input must be square.
func FromNRGBA(src *image.NRGBA) (*Image, error) {
	b := src.Bounds()
	if b.Dx() != b.Dy() {
		return nil, fmt.Errorf("img2d: image is %dx%d, want square", b.Dx(), b.Dy())
	}
	im := New(b.Dx())
	for y := 0; y < im.dim; y++ {
		for x := 0; x < im.dim; x++ {
			c := src.NRGBAAt(b.Min.X+x, b.Min.Y+y)
			im.Set(y, x, RGBA(c.R, c.G, c.B, c.A))
		}
	}
	return im, nil
}

// EncodePNG writes the image as PNG.
func (im *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, im.ToNRGBA())
}

// SavePNG writes the image to path as PNG, creating parent directories.
func (im *Image) SavePNG(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("img2d: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("img2d: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := im.EncodePNG(bw); err != nil {
		return fmt.Errorf("img2d: encoding %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("img2d: %w", err)
	}
	return f.Close()
}

// DecodePNG reads a square PNG stream into an Image.
func DecodePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("img2d: decoding png: %w", err)
	}
	b := src.Bounds()
	if b.Dx() != b.Dy() {
		return nil, fmt.Errorf("img2d: image is %dx%d, want square", b.Dx(), b.Dy())
	}
	im := New(b.Dx())
	for y := 0; y < im.dim; y++ {
		for x := 0; x < im.dim; x++ {
			r, g, bl, a := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			im.Set(y, x, RGBA(uint8(r>>8), uint8(g>>8), uint8(bl>>8), uint8(a>>8)))
		}
	}
	return im, nil
}

// LoadPNG reads a square PNG file into an Image.
func LoadPNG(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("img2d: %w", err)
	}
	defer f.Close()
	im, err := DecodePNG(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err) // err already carries the img2d prefix
	}
	return im, nil
}

// EncodePPM writes the image as a binary PPM (P6), ignoring alpha. PPM is
// handy for quick inspection with no decoder dependencies.
func (im *Image) EncodePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.dim, im.dim); err != nil {
		return err
	}
	buf := make([]byte, 3*im.dim)
	for y := 0; y < im.dim; y++ {
		row := im.Row(y)
		for x, p := range row {
			buf[3*x] = R(p)
			buf[3*x+1] = G(p)
			buf[3*x+2] = B(p)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SavePPM writes the image to path as binary PPM, creating parent
// directories.
func (im *Image) SavePPM(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("img2d: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("img2d: %w", err)
	}
	defer f.Close()
	if err := im.EncodePPM(f); err != nil {
		return fmt.Errorf("img2d: encoding %s: %w", path, err)
	}
	return f.Close()
}

// ASCII renders a coarse character-art preview of the image, one character
// per thumbnail cell, darkest to brightest. It is the terminal stand-in for
// the SDL window when even PNG output is unwanted (e.g. in tests and logs).
func (im *Image) ASCII(cols int) string {
	if cols <= 0 {
		cols = 64
	}
	if cols > im.dim {
		cols = im.dim
	}
	th, err := im.Thumbnail(cols)
	if err != nil {
		return ""
	}
	const ramp = " .:-=+*#%@"
	out := make([]byte, 0, cols*(cols/2+1))
	// Terminal cells are roughly twice as tall as wide: sample every other
	// row so the preview keeps the image's aspect ratio.
	for y := 0; y < cols; y += 2 {
		row := th.Row(y)
		for _, p := range row {
			idx := int(Brightness(p)) * (len(ramp) - 1) / 255
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}
