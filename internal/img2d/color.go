package img2d

// Color helpers shared by kernels and by the monitoring/trace renderers.
// EASYPAP packs pixels as 0xRRGGBBAA; all helpers below use that layout.

// RGBA packs four channel bytes into a Pixel (0xRRGGBBAA).
func RGBA(r, g, b, a uint8) Pixel {
	return Pixel(r)<<24 | Pixel(g)<<16 | Pixel(b)<<8 | Pixel(a)
}

// RGB packs an opaque pixel (alpha 255).
func RGB(r, g, b uint8) Pixel { return RGBA(r, g, b, 0xff) }

// Channels unpacks a pixel into its four channel bytes.
func Channels(p Pixel) (r, g, b, a uint8) {
	return uint8(p >> 24), uint8(p >> 16), uint8(p >> 8), uint8(p)
}

// R, G, B and A extract a single channel.
func R(p Pixel) uint8 { return uint8(p >> 24) }
func G(p Pixel) uint8 { return uint8(p >> 16) }
func B(p Pixel) uint8 { return uint8(p >> 8) }
func A(p Pixel) uint8 { return uint8(p) }

// Named colors used throughout the framework (monitoring windows, demo
// kernels, MPI debug overlays).
const (
	Black       Pixel = 0x000000ff
	White       Pixel = 0xffffffff
	Red         Pixel = 0xff0000ff
	Green       Pixel = 0x00ff00ff
	Blue        Pixel = 0x0000ffff
	Yellow      Pixel = 0xffff00ff
	Cyan        Pixel = 0x00ffffff
	Magenta     Pixel = 0xff00ffff
	Transparent Pixel = 0x00000000
)

// HSV converts hue (degrees, any float), saturation and value in [0,1] to an
// opaque pixel. It is the palette primitive behind the mandel and spin
// kernels.
func HSV(h, s, v float64) Pixel {
	h = h - float64(int(h/360))*360
	if h < 0 {
		h += 360
	}
	c := v * s
	hp := h / 60
	x := c * (1 - abs(mod2(hp)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := v - c
	return RGB(clamp8(r+m), clamp8(g+m), clamp8(b+m))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// mod2 returns x modulo 2 for non-negative x.
func mod2(x float64) float64 { return x - 2*float64(int(x/2)) }

func clamp8(x float64) uint8 {
	v := int(x*255 + 0.5)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// HeatColor maps a normalized intensity t in [0,1] to a black-body style
// ramp (black → red → yellow → white). It drives the tiling window's
// "heat map" mode where the brightness of a tile reflects the duration of
// the corresponding task (paper Fig. 9).
func HeatColor(t float64) Pixel {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	switch {
	case t < 1.0/3:
		return RGB(clamp8(3*t), 0, 0)
	case t < 2.0/3:
		return RGB(255, clamp8(3*t-1), 0)
	default:
		return RGB(255, 255, clamp8(3*t-2))
	}
}

// CPUColor returns the distinct color assigned to a CPU/thread rank. The
// same palette is used by the Activity Monitor, the Tiling window and the
// EASYVIEW Gantt chart, so that a thread keeps a consistent color across all
// views — a property the paper calls out explicitly.
func CPUColor(rank int) Pixel {
	palette := [...]Pixel{
		0xe6194bff, // red
		0x3cb44bff, // green
		0xffe119ff, // yellow
		0x4363d8ff, // blue
		0xf58231ff, // orange
		0x911eb4ff, // purple
		0x42d4f4ff, // cyan
		0xf032e6ff, // magenta
		0xbfef45ff, // lime
		0xfabed4ff, // pink
		0x469990ff, // teal
		0xdcbeffff, // lavender
		0x9a6324ff, // brown
		0xfffac8ff, // beige
		0x800000ff, // maroon
		0xaaffc3ff, // mint
	}
	if rank < 0 {
		rank = -rank
	}
	base := palette[rank%len(palette)]
	// Beyond the base palette, darken successive rounds so ranks stay
	// distinguishable on machines with many hardware threads.
	round := rank / len(palette)
	if round == 0 {
		return base
	}
	r, g, b, a := Channels(base)
	shade := func(c uint8) uint8 {
		v := int(c) - 45*round
		if v < 30 {
			v = 30
		}
		return uint8(v)
	}
	return RGBA(shade(r), shade(g), shade(b), a)
}

// Scale linearly interpolates between two pixels channel by channel;
// t in [0,1], 0 returning a and 1 returning b.
func Scale(a, b Pixel, t float64) Pixel {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	ar, ag, ab, aa := Channels(a)
	br, bg, bb, ba := Channels(b)
	lerp := func(x, y uint8) uint8 {
		return uint8(float64(x) + (float64(y)-float64(x))*t + 0.5)
	}
	return RGBA(lerp(ar, br), lerp(ag, bg), lerp(ab, bb), lerp(aa, ba))
}

// Brightness returns the perceived luminance of a pixel in [0,255],
// using the Rec. 601 weights.
func Brightness(p Pixel) uint8 {
	r, g, b, _ := Channels(p)
	return uint8((299*int(r) + 587*int(g) + 114*int(b)) / 1000)
}
