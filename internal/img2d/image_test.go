package img2d

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	for _, dim := range []int{1, 2, 16, 100, 512} {
		im := New(dim)
		if im.Dim() != dim {
			t.Errorf("Dim() = %d, want %d", im.Dim(), dim)
		}
		if im.Len() != dim*dim {
			t.Errorf("Len() = %d, want %d", im.Len(), dim*dim)
		}
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, dim := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", dim)
				}
			}()
			New(dim)
		}()
	}
}

func TestFromPixels(t *testing.T) {
	pix := make([]Pixel, 16)
	im, err := FromPixels(4, pix)
	if err != nil {
		t.Fatal(err)
	}
	im.Set(2, 3, Red)
	if pix[2*4+3] != Red {
		t.Error("FromPixels does not alias the input slice")
	}
	if _, err := FromPixels(4, make([]Pixel, 15)); err == nil {
		t.Error("FromPixels accepted a short slice")
	}
	if _, err := FromPixels(0, nil); err == nil {
		t.Error("FromPixels accepted dim 0")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	im := New(8)
	rng := rand.New(rand.NewSource(1))
	want := make(map[[2]int]Pixel)
	for i := 0; i < 100; i++ {
		y, x := rng.Intn(8), rng.Intn(8)
		p := Pixel(rng.Uint32())
		im.Set(y, x, p)
		want[[2]int{y, x}] = p
	}
	for k, p := range want {
		if got := im.Get(k[0], k[1]); got != p {
			t.Errorf("Get(%d,%d) = %#x, want %#x", k[0], k[1], got, p)
		}
	}
}

func TestRowAliases(t *testing.T) {
	im := New(4)
	row := im.Row(2)
	row[1] = Green
	if im.Get(2, 1) != Green {
		t.Error("Row does not alias image storage")
	}
	if len(row) != 4 {
		t.Errorf("Row length = %d, want 4", len(row))
	}
}

func TestFillAndFillRect(t *testing.T) {
	im := New(8)
	im.Fill(Blue)
	for i, p := range im.Pixels() {
		if p != Blue {
			t.Fatalf("pixel %d = %#x after Fill", i, p)
		}
	}
	im.FillRect(2, 3, 4, 2, Red)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			inside := x >= 2 && x < 6 && y >= 3 && y < 5
			want := Blue
			if inside {
				want = Red
			}
			if im.Get(y, x) != want {
				t.Errorf("(%d,%d) = %#x, want %#x", y, x, im.Get(y, x), want)
			}
		}
	}
}

func TestFillRectClipping(t *testing.T) {
	im := New(4)
	// Entirely outside, negative origin, overflowing: none may panic.
	im.FillRect(-10, -10, 5, 5, Magenta) // fully off-image: no effect
	im.FillRect(-2, -2, 3, 3, Red)       // clips to [0,1)x[0,1)
	im.FillRect(3, 3, 100, 100, Green)
	im.FillRect(10, 10, 5, 5, Blue)
	im.FillRect(2, 2, -1, -1, Yellow)
	if im.Get(1, 1) != 0 {
		t.Error("fully off-image fill leaked into the image")
	}
	if im.Get(0, 0) != Red {
		t.Error("clipped top-left fill missing")
	}
	if im.Get(3, 3) != Green {
		t.Error("clipped bottom-right fill missing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := New(4)
	im.Fill(Red)
	cp := im.Clone()
	cp.Set(0, 0, Green)
	if im.Get(0, 0) != Red {
		t.Error("Clone shares storage with original")
	}
	if !im.Equal(im.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(4), New(4)
	a.Fill(Cyan)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("CopyFrom did not copy pixels")
	}
	if err := b.CopyFrom(New(5)); err == nil {
		t.Error("CopyFrom accepted mismatched dimensions")
	}
}

func TestEqualAndDiffCount(t *testing.T) {
	a, b := New(3), New(3)
	if !a.Equal(b) {
		t.Error("fresh images not equal")
	}
	if n := a.DiffCount(b); n != 0 {
		t.Errorf("DiffCount = %d, want 0", n)
	}
	b.Set(1, 1, Red)
	b.Set(2, 2, Green)
	if a.Equal(b) {
		t.Error("different images reported equal")
	}
	if n := a.DiffCount(b); n != 2 {
		t.Errorf("DiffCount = %d, want 2", n)
	}
	if n := a.DiffCount(New(5)); n != -1 {
		t.Errorf("DiffCount across sizes = %d, want -1", n)
	}
}

func TestThumbnailUniform(t *testing.T) {
	im := New(64)
	im.Fill(RGB(100, 150, 200))
	th, err := im.Thumbnail(8)
	if err != nil {
		t.Fatal(err)
	}
	if th.Dim() != 8 {
		t.Fatalf("thumbnail dim = %d", th.Dim())
	}
	for _, p := range th.Pixels() {
		if p != RGB(100, 150, 200) {
			t.Fatalf("uniform thumbnail pixel = %#x", p)
		}
	}
}

func TestThumbnailAveraging(t *testing.T) {
	// Left half black, right half white: a 2-wide thumbnail must keep the
	// split; each half averages to its own color.
	im := New(8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			im.Set(y, x, White)
		}
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 4; x++ {
			im.Set(y, x, Black)
		}
	}
	th, err := im.Thumbnail(2)
	if err != nil {
		t.Fatal(err)
	}
	if B(th.Get(0, 0)) > 10 || B(th.Get(0, 1)) < 245 {
		t.Errorf("thumbnail halves not preserved: %#x %#x", th.Get(0, 0), th.Get(0, 1))
	}
}

func TestThumbnailErrors(t *testing.T) {
	im := New(4)
	if _, err := im.Thumbnail(0); err == nil {
		t.Error("Thumbnail(0) accepted")
	}
	if _, err := im.Thumbnail(5); err == nil {
		t.Error("Thumbnail larger than image accepted")
	}
}

func TestBuffersSwap(t *testing.T) {
	b := NewBuffers(4)
	if b.Dim() != 4 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	b.Cur().Fill(Red)
	b.Next().Fill(Green)
	cur, next := b.Cur(), b.Next()
	b.Swap()
	if b.Cur() != next || b.Next() != cur {
		t.Error("Swap did not exchange buffers")
	}
	b.Swap()
	if b.Cur() != cur || b.Next() != next {
		t.Error("double Swap is not identity")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	im := New(16)
	rng := rand.New(rand.NewSource(7))
	for i := range im.Pixels() {
		im.Pixels()[i] = RGB(uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
	}
	path := filepath.Join(t.TempDir(), "sub", "img.png")
	if err := im.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(back) {
		t.Error("PNG round trip altered pixels")
	}
}

func TestNRGBARoundTrip(t *testing.T) {
	im := New(8)
	im.Fill(RGBA(1, 2, 3, 200))
	back, err := FromNRGBA(im.ToNRGBA())
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(back) {
		t.Error("NRGBA round trip altered pixels")
	}
}

func TestPPMEncoding(t *testing.T) {
	im := New(2)
	im.Set(0, 0, RGB(1, 2, 3))
	im.Set(0, 1, RGB(4, 5, 6))
	im.Set(1, 0, RGB(7, 8, 9))
	im.Set(1, 1, RGB(10, 11, 12))
	var buf bytes.Buffer
	if err := im.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "P6\n2 2\n255\n" + string([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	if buf.String() != want {
		t.Errorf("PPM = %q, want %q", buf.String(), want)
	}
}

func TestSavePPM(t *testing.T) {
	im := New(4)
	im.Fill(Red)
	path := filepath.Join(t.TempDir(), "d", "f.ppm")
	if err := im.SavePPM(path); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIDimensions(t *testing.T) {
	im := New(64)
	im.Fill(White)
	s := im.ASCII(16)
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 8 {
		t.Errorf("ASCII preview has %d lines, want 8", lines)
	}
	if im.ASCII(0) == "" {
		t.Error("ASCII with default cols returned empty string")
	}
}

func TestLoadPNGErrors(t *testing.T) {
	if _, err := LoadPNG(filepath.Join(t.TempDir(), "missing.png")); err == nil {
		t.Error("LoadPNG of missing file succeeded")
	}
}

// Property: RGBA and Channels are exact inverses.
func TestQuickColorRoundTrip(t *testing.T) {
	f := func(r, g, b, a uint8) bool {
		rr, gg, bb, aa := Channels(RGBA(r, g, b, a))
		return rr == r && gg == g && bb == b && aa == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: single-channel extractors agree with Channels.
func TestQuickChannelExtractors(t *testing.T) {
	f := func(p uint32) bool {
		r, g, b, a := Channels(p)
		return R(p) == r && G(p) == g && B(p) == b && A(p) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Get(Set(p)) == p at arbitrary in-bounds coordinates.
func TestQuickImageSetGet(t *testing.T) {
	im := New(32)
	f := func(y, x uint8, p uint32) bool {
		yy, xx := int(y)%32, int(x)%32
		im.Set(yy, xx, p)
		return im.Get(yy, xx) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FillRect never panics and never writes outside the clipped
// rectangle.
func TestQuickFillRectClipped(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		im := New(16)
		im.FillRect(int(x), int(y), int(w), int(h), Red)
		for yy := 0; yy < 16; yy++ {
			for xx := 0; xx < 16; xx++ {
				inside := xx >= int(x) && xx < int(x)+int(w) &&
					yy >= int(y) && yy < int(y)+int(h)
				if !inside && im.Get(yy, xx) != 0 {
					return false
				}
				if inside && im.Get(yy, xx) != Red {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHSVPrimaries(t *testing.T) {
	cases := []struct {
		h    float64
		want Pixel
	}{
		{0, Red}, {120, Green}, {240, Blue}, {360, Red}, {-120, Blue},
	}
	for _, c := range cases {
		if got := HSV(c.h, 1, 1); got != c.want {
			t.Errorf("HSV(%v,1,1) = %#x, want %#x", c.h, got, c.want)
		}
	}
	if HSV(123, 0, 1) != White {
		t.Error("zero saturation should give white")
	}
	if HSV(123, 1, 0) != Black {
		t.Error("zero value should give black")
	}
}

func TestHeatColorRamp(t *testing.T) {
	if HeatColor(0) != Black {
		t.Errorf("HeatColor(0) = %#x", HeatColor(0))
	}
	if HeatColor(1) != White {
		t.Errorf("HeatColor(1) = %#x", HeatColor(1))
	}
	// Monotonically non-decreasing brightness.
	prev := -1
	for i := 0; i <= 100; i++ {
		b := int(Brightness(HeatColor(float64(i) / 100)))
		if b < prev {
			t.Fatalf("heat ramp brightness decreased at %d: %d < %d", i, b, prev)
		}
		prev = b
	}
	// Out-of-range inputs clamp.
	if HeatColor(-5) != HeatColor(0) || HeatColor(5) != HeatColor(1) {
		t.Error("HeatColor does not clamp")
	}
}

func TestCPUColorDistinctness(t *testing.T) {
	seen := make(map[Pixel]int)
	for r := 0; r < 48; r++ {
		c := CPUColor(r)
		if prev, dup := seen[c]; dup {
			t.Errorf("CPUColor(%d) == CPUColor(%d)", r, prev)
		}
		seen[c] = r
	}
	if CPUColor(-3) != CPUColor(3) {
		t.Error("negative ranks should mirror positive ranks")
	}
}

func TestScaleEndpoints(t *testing.T) {
	if Scale(Red, Blue, 0) != Red {
		t.Error("Scale t=0 is not a")
	}
	if Scale(Red, Blue, 1) != Blue {
		t.Error("Scale t=1 is not b")
	}
	mid := Scale(Black, White, 0.5)
	r, g, b, _ := Channels(mid)
	if r < 120 || r > 135 || g != r || b != r {
		t.Errorf("midpoint gray = %#x", mid)
	}
	if Scale(Red, Blue, -1) != Red || Scale(Red, Blue, 2) != Blue {
		t.Error("Scale does not clamp t")
	}
}

func TestBrightnessOrdering(t *testing.T) {
	if Brightness(Black) != 0 {
		t.Error("Brightness(Black) != 0")
	}
	if Brightness(White) != 255 {
		t.Error("Brightness(White) != 255")
	}
	if !(Brightness(Green) > Brightness(Red) && Brightness(Red) > Brightness(Blue)) {
		t.Error("Rec.601 ordering green > red > blue violated")
	}
}

func BenchmarkRowFill(b *testing.B) {
	im := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for y := 0; y < 1024; y++ {
			row := im.Row(y)
			for x := range row {
				row[x] = Pixel(x)
			}
		}
	}
}

func BenchmarkGetSet(b *testing.B) {
	im := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for y := 0; y < 1024; y++ {
			for x := 0; x < 1024; x++ {
				im.Set(y, x, im.Get(y, x)+1)
			}
		}
	}
}
