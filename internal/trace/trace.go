// Package trace records per-tile profiling events during kernel execution
// and reads them back for post-mortem analysis — the substrate behind
// EASYPAP's --trace option and the EASYVIEW explorer (paper §II-D).
//
// Events carry exactly the information the paper lists: start/end time,
// tile coordinates and the executing CPU, plus the iteration number and the
// MPI rank so multi-process traces can be merged. Recording is wait-free on
// the hot path: each worker appends to its own buffer; buffers are merged
// and sorted when the trace is finalized.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventKind distinguishes tile computations from other instrumented spans.
type EventKind uint8

const (
	// KindTile is a do_tile execution: the fundamental unit the paper's
	// Gantt charts display.
	KindTile EventKind = iota
	// KindTask is a dependent task execution (taskdep kernels).
	KindTask
	// KindOther is any other instrumented span (e.g. ghost-cell exchange).
	KindOther
	// KindService is a service-tier span (admit, queue, compute, proxy,
	// replicate, ...) recorded by easypapd rather than a kernel. Service
	// spans live in a SpanRing (see span.go) and use wall-clock unix
	// timestamps so spans from different nodes merge on one axis.
	KindService
)

// String returns a short name for the kind.
func (k EventKind) String() string {
	switch k {
	case KindTile:
		return "tile"
	case KindTask:
		return "task"
	case KindOther:
		return "other"
	case KindService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded span. Times are nanoseconds relative to the
// recording start, so traces from different runs can be compared directly.
//
// Work is the span's performance-counter value: the number of work units
// the task performed (escape iterations for mandel, pixels for stencils).
// It is the substitution for the per-task PAPI cache counters the paper
// lists as future work — a hardware-independent counter that EASYVIEW can
// correlate with task durations the same way.
type Event struct {
	Iter  int32     // iteration number (1-based, like EASYPAP's reports)
	CPU   int16     // worker rank within the process
	Rank  int16     // MPI process rank (0 when not distributed)
	Kind  EventKind //
	Start int64     // ns since trace start
	End   int64     // ns since trace start
	X     int32     // tile rectangle
	Y     int32
	W     int32
	H     int32
	Work  int64 // per-task counter (0 when the kernel does not report it)
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return time.Duration(e.End - e.Start) }

// Meta is the trace header: everything needed to interpret and label the
// events, mirroring the configuration block EASYPAP stores with each trace.
type Meta struct {
	Kernel     string    `json:"kernel"`
	Variant    string    `json:"variant"`
	Dim        int       `json:"dim"`
	TileW      int       `json:"tile_w"`
	TileH      int       `json:"tile_h"`
	Threads    int       `json:"threads"`
	Ranks      int       `json:"ranks"` // number of MPI processes (1 if none)
	Iterations int       `json:"iterations"`
	Schedule   string    `json:"schedule"`
	Label      string    `json:"label"` // free-form run label
	Recorded   time.Time `json:"recorded"`
}

// Recorder accumulates events during a run. The Start/EndTile pair is the
// hot path and is wait-free per worker: worker w only touches lane w.
// Construct with NewRecorder, finalize with Trace.
type Recorder struct {
	meta  Meta
	rank  int16
	epoch time.Time
	lanes []lane
	mu    sync.Mutex
	extra []Event // events recorded via RecordEvent (rare path)
}

// SetRank labels all subsequently recorded events with an MPI process rank
// so per-rank traces can be merged into one multi-process trace.
func (r *Recorder) SetRank(rank int) { r.rank = int16(rank) }

// lane is one worker's private event buffer. Padding avoids false sharing
// between adjacent workers' append cursors on the hot path.
type lane struct {
	events  []Event
	pending Event // the currently open span, if any
	open    bool
	_       [64]byte // padding: keep lanes on distinct cache lines
}

// NewRecorder creates a recorder for meta.Threads workers. The epoch (time
// zero of the trace) is the moment of the call.
func NewRecorder(meta Meta) *Recorder {
	if meta.Threads <= 0 {
		meta.Threads = 1
	}
	if meta.Ranks <= 0 {
		meta.Ranks = 1
	}
	meta.Recorded = time.Now()
	return &Recorder{
		meta:  meta,
		epoch: time.Now(),
		lanes: make([]lane, meta.Threads),
	}
}

// Now returns the current trace-relative timestamp in nanoseconds.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// StartTile opens a tile span on the worker's lane. It mirrors EASYPAP's
// monitoring_start_tile(who).
func (r *Recorder) StartTile(worker int) { r.StartSpan(worker, KindTile) }

// StartSpan opens a span of the given kind on the worker's lane (the task
// engine records KindTask spans so EASYVIEW can tell tasks from plain
// tiles).
func (r *Recorder) StartSpan(worker int, kind EventKind) {
	l := &r.lanes[worker]
	l.pending = Event{CPU: int16(worker), Rank: r.rank, Kind: kind, Start: r.Now()}
	l.open = true
}

// EndTile closes the span opened by StartTile, attaching the tile
// rectangle and iteration — EASYPAP's monitoring_end_tile(x, y, w, h, who).
func (r *Recorder) EndTile(x, y, w, h, worker, iter int) {
	l := &r.lanes[worker]
	if !l.open {
		return // unmatched end: ignore rather than corrupt the trace
	}
	e := l.pending
	e.End = r.Now()
	e.X, e.Y, e.W, e.H = int32(x), int32(y), int32(w), int32(h)
	e.Iter = int32(iter)
	l.events = append(l.events, e)
	l.open = false
}

// AddWork accumulates performance-counter units into the worker's open
// span (no-op when no span is open). Kernels call it from inside their
// tile computation; the count lands on the event EndTile closes.
func (r *Recorder) AddWork(worker int, units int64) {
	l := &r.lanes[worker]
	if l.open {
		l.pending.Work += units
	}
}

// RecordEvent appends a fully formed event (used by the task engine and the
// MPI layer, which know their own timing). Safe for concurrent use.
func (r *Recorder) RecordEvent(e Event) {
	r.mu.Lock()
	r.extra = append(r.extra, e)
	r.mu.Unlock()
}

// Trace finalizes the recording: all lanes are merged and sorted by start
// time. The recorder can keep recording afterwards (Trace snapshots).
func (r *Recorder) Trace() *Trace {
	var all []Event
	for i := range r.lanes {
		all = append(all, r.lanes[i].events...)
	}
	r.mu.Lock()
	all = append(all, r.extra...)
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].CPU < all[j].CPU
	})
	return &Trace{Meta: r.meta, Events: all}
}

// Trace is a finalized, immutable recording.
type Trace struct {
	Meta   Meta
	Events []Event
}

// Iterations returns the highest iteration number present (0 for an empty
// trace).
func (t *Trace) Iterations() int {
	maxIter := 0
	for _, e := range t.Events {
		if int(e.Iter) > maxIter {
			maxIter = int(e.Iter)
		}
	}
	return maxIter
}

// ForIter returns the events of one iteration, preserving start order.
func (t *Trace) ForIter(iter int) []Event {
	var out []Event
	for _, e := range t.Events {
		if int(e.Iter) == iter {
			out = append(out, e)
		}
	}
	return out
}

// ForIterRange returns the events whose iteration lies in [lo, hi].
func (t *Trace) ForIterRange(lo, hi int) []Event {
	var out []Event
	for _, e := range t.Events {
		if int(e.Iter) >= lo && int(e.Iter) <= hi {
			out = append(out, e)
		}
	}
	return out
}

// PerCPU groups events by (rank, cpu) and returns a map keyed by
// rank*threads+cpu with events in start order. Global CPU numbering is what
// EASYVIEW's Gantt rows use.
func (t *Trace) PerCPU() map[int][]Event {
	out := make(map[int][]Event)
	for _, e := range t.Events {
		key := int(e.Rank)*t.Meta.Threads + int(e.CPU)
		out[key] = append(out[key], e)
	}
	return out
}

// CPUCount returns the number of distinct (rank, cpu) rows.
func (t *Trace) CPUCount() int { return len(t.PerCPU()) }

// Span returns the earliest start and latest end over all events.
func (t *Trace) Span() (start, end int64) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	start, end = t.Events[0].Start, t.Events[0].End
	for _, e := range t.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return
}

// IterSpan returns the wall-clock span of one iteration.
func (t *Trace) IterSpan(iter int) (start, end int64) {
	first := true
	for _, e := range t.Events {
		if int(e.Iter) != iter {
			continue
		}
		if first {
			start, end = e.Start, e.End
			first = false
			continue
		}
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return
}
