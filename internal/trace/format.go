package trace

// Binary trace file format (the .evt files EASYPAP writes, reimagined):
//
//	magic   "EZPT"            4 bytes
//	version uint16            little endian
//	hdrLen  uint32            little endian, length of the JSON header
//	header  JSON-encoded Meta
//	count   uint64            number of events
//	events  count fixed-width little-endian records
//
// Fixed-width records keep the reader trivial and robust; traces compress
// well enough for lab-scale runs (a 100k-event trace is ~4 MB).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const (
	magic = "EZPT"
	// formatVersion 2 added the per-task Work counter (see Event.Work).
	formatVersion = 2
	// eventSize is the wire size of one event record.
	eventSize = 4 + 2 + 2 + 1 + 8 + 8 + 4*4 + 8
)

// maxReasonableEvents guards the reader against corrupt counts.
const maxReasonableEvents = 1 << 28

// Write serializes the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(formatVersion)); err != nil {
		return err
	}
	hdr, err := json.Marshal(t.Meta)
	if err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hdr))); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Events))); err != nil {
		return err
	}
	var rec [eventSize]byte
	for _, e := range t.Events {
		encodeEvent(&rec, e)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeEvent(rec *[eventSize]byte, e Event) {
	le := binary.LittleEndian
	le.PutUint32(rec[0:], uint32(e.Iter))
	le.PutUint16(rec[4:], uint16(e.CPU))
	le.PutUint16(rec[6:], uint16(e.Rank))
	rec[8] = byte(e.Kind)
	le.PutUint64(rec[9:], uint64(e.Start))
	le.PutUint64(rec[17:], uint64(e.End))
	le.PutUint32(rec[25:], uint32(e.X))
	le.PutUint32(rec[29:], uint32(e.Y))
	le.PutUint32(rec[33:], uint32(e.W))
	le.PutUint32(rec[37:], uint32(e.H))
	le.PutUint64(rec[41:], uint64(e.Work))
}

func decodeEvent(rec []byte) Event {
	le := binary.LittleEndian
	return Event{
		Iter:  int32(le.Uint32(rec[0:])),
		CPU:   int16(le.Uint16(rec[4:])),
		Rank:  int16(le.Uint16(rec[6:])),
		Kind:  EventKind(rec[8]),
		Start: int64(le.Uint64(rec[9:])),
		End:   int64(le.Uint64(rec[17:])),
		X:     int32(le.Uint32(rec[25:])),
		Y:     int32(le.Uint32(rec[29:])),
		W:     int32(le.Uint32(rec[33:])),
		H:     int32(le.Uint32(rec[37:])),
		Work:  int64(le.Uint64(rec[41:])),
	}
}

// Read parses a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q, not a trace file", m)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", version, formatVersion)
	}
	var hdrLen uint32
	if err := binary.Read(br, binary.LittleEndian, &hdrLen); err != nil {
		return nil, fmt.Errorf("trace: reading header length: %w", err)
	}
	if hdrLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(hdr, &meta); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if count > maxReasonableEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	events := make([]Event, 0, count)
	rec := make([]byte, eventSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading event %d of %d: %w", i, count, err)
		}
		events = append(events, decodeEvent(rec))
	}
	return &Trace{Meta: meta, Events: events}, nil
}

// Save writes the trace to path, creating parent directories.
func (t *Trace) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a trace from path.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: loading %s: %w", path, err)
	}
	return t, nil
}

// WriteJSON exports the trace as JSON (header + events) for interop with
// external tools.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Meta   Meta    `json:"meta"`
		Events []Event `json:"events"`
	}{t.Meta, t.Events})
}
