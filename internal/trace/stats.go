package trace

// Statistical summaries over traces: the numbers EASYVIEW surfaces when
// hovering tasks (durations) and when comparing two runs of the same kernel
// (paper Fig. 10).

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DurationStats summarizes a set of span durations.
type DurationStats struct {
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P90    time.Duration
	Total  time.Duration
}

// Durations computes statistics over the durations of the given events.
func Durations(events []Event) DurationStats {
	if len(events) == 0 {
		return DurationStats{}
	}
	ds := make([]time.Duration, len(events))
	var total time.Duration
	for i, e := range events {
		ds[i] = e.Duration()
		total += ds[i]
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return DurationStats{
		Count:  len(ds),
		Min:    ds[0],
		Max:    ds[len(ds)-1],
		Mean:   total / time.Duration(len(ds)),
		Median: ds[len(ds)/2],
		P90:    ds[len(ds)*9/10],
		Total:  total,
	}
}

// String formats the stats on one line.
func (s DurationStats) String() string {
	if s.Count == 0 {
		return "no events"
	}
	return fmt.Sprintf("n=%d min=%v median=%v mean=%v p90=%v max=%v total=%v",
		s.Count, s.Min, s.Median, s.Mean, s.P90, s.Max, s.Total)
}

// PerCPUBusy returns, for one iteration, each global CPU's cumulated busy
// time — the quantity the Activity Monitor window turns into a load
// percentage.
func (t *Trace) PerCPUBusy(iter int) map[int]time.Duration {
	busy := make(map[int]time.Duration)
	for _, e := range t.Events {
		if int(e.Iter) != iter {
			continue
		}
		key := int(e.Rank)*t.Meta.Threads + int(e.CPU)
		busy[key] += e.Duration()
	}
	return busy
}

// LoadImbalance computes, for one iteration, the ratio max/mean of per-CPU
// busy time: 1.0 is perfect balance; the static mandel distribution of
// paper Fig. 3 yields clearly higher values. CPUs with no events count as
// zero-busy only if they appear elsewhere in the trace.
func (t *Trace) LoadImbalance(iter int) float64 {
	cpus := t.PerCPU()
	if len(cpus) == 0 {
		return 0
	}
	busy := t.PerCPUBusy(iter)
	var total, maxBusy time.Duration
	for cpu := range cpus {
		b := busy[cpu]
		total += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	if total == 0 {
		return 0
	}
	mean := total / time.Duration(len(cpus))
	if mean == 0 {
		return 0
	}
	return float64(maxBusy) / float64(mean)
}

// WorkStats summarizes the per-task performance counters of a set of
// events: total work units, the mean work rate (units per µs of task
// time), and the Pearson correlation between a task's work and its
// duration — the analysis the paper's planned PAPI integration would feed
// EASYVIEW ("per-task cache usage information").
type WorkStats struct {
	Count       int     // events carrying a non-zero counter
	TotalWork   int64   // sum of work units
	MeanRate    float64 // units per microsecond of busy time
	Correlation float64 // Pearson r between work and duration
}

// Work computes counter statistics over the given events. Events with a
// zero counter are excluded (kernels that do not report work).
func Work(events []Event) WorkStats {
	var ws WorkStats
	var sumW, sumD, sumWW, sumDD, sumWD float64
	var busy time.Duration
	for _, e := range events {
		if e.Work == 0 {
			continue
		}
		ws.Count++
		ws.TotalWork += e.Work
		busy += e.Duration()
		w := float64(e.Work)
		d := float64(e.Duration())
		sumW += w
		sumD += d
		sumWW += w * w
		sumDD += d * d
		sumWD += w * d
	}
	if ws.Count == 0 {
		return ws
	}
	if us := busy.Microseconds(); us > 0 {
		ws.MeanRate = float64(ws.TotalWork) / float64(us)
	}
	n := float64(ws.Count)
	num := n*sumWD - sumW*sumD
	den := (n*sumWW - sumW*sumW) * (n*sumDD - sumD*sumD)
	if den > 0 {
		ws.Correlation = num / math.Sqrt(den)
	}
	return ws
}

// String formats the counter summary on one line.
func (w WorkStats) String() string {
	if w.Count == 0 {
		return "no counters"
	}
	return fmt.Sprintf("n=%d total=%d rate=%.1f units/µs corr(work,duration)=%.2f",
		w.Count, w.TotalWork, w.MeanRate, w.Correlation)
}

// CompareResult summarizes the alignment of two traces of the same kernel,
// the paper's Fig. 10 workflow ("the optimized version is ~3x faster; inner
// tasks are ~10x faster").
type CompareResult struct {
	A, B         Meta
	SpanA, SpanB time.Duration // total wall-clock span
	SpeedupAtoB  float64       // SpanA / SpanB (>1 means B is faster)
	TaskStatsA   DurationStats
	TaskStatsB   DurationStats
	// MedianTaskRatio is median(A tasks)/median(B tasks): how much faster a
	// typical task became.
	MedianTaskRatio float64
}

// Compare aligns two traces. It does not require identical event counts —
// variants may tile differently — but both must be non-empty.
func Compare(a, b *Trace) (CompareResult, error) {
	if len(a.Events) == 0 || len(b.Events) == 0 {
		return CompareResult{}, fmt.Errorf("trace: cannot compare empty traces")
	}
	sa0, sa1 := a.Span()
	sb0, sb1 := b.Span()
	res := CompareResult{
		A: a.Meta, B: b.Meta,
		SpanA:      time.Duration(sa1 - sa0),
		SpanB:      time.Duration(sb1 - sb0),
		TaskStatsA: Durations(a.Events),
		TaskStatsB: Durations(b.Events),
	}
	if res.SpanB > 0 {
		res.SpeedupAtoB = float64(res.SpanA) / float64(res.SpanB)
	}
	if res.TaskStatsB.Median > 0 {
		res.MedianTaskRatio = float64(res.TaskStatsA.Median) / float64(res.TaskStatsB.Median)
	}
	return res, nil
}

// String renders the comparison as the multi-line report easyview prints.
func (c CompareResult) String() string {
	return fmt.Sprintf(
		"trace A: %s/%s span=%v tasks{%s}\n"+
			"trace B: %s/%s span=%v tasks{%s}\n"+
			"speedup A->B: %.2fx  median task ratio: %.2fx",
		c.A.Kernel, c.A.Variant, c.SpanA, c.TaskStatsA,
		c.B.Kernel, c.B.Variant, c.SpanB, c.TaskStatsB,
		c.SpeedupAtoB, c.MedianTaskRatio)
}
