package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testMeta() Meta {
	return Meta{
		Kernel: "mandel", Variant: "omp_tiled", Dim: 512,
		TileW: 16, TileH: 16, Threads: 4, Ranks: 1,
		Iterations: 10, Schedule: "dynamic,2", Label: "unit",
	}
}

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(testMeta())
	r.StartTile(0)
	time.Sleep(time.Millisecond)
	r.EndTile(16, 32, 16, 16, 0, 1)
	tr := r.Trace()
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(tr.Events))
	}
	e := tr.Events[0]
	if e.X != 16 || e.Y != 32 || e.W != 16 || e.H != 16 {
		t.Errorf("tile rect = (%d,%d,%d,%d)", e.X, e.Y, e.W, e.H)
	}
	if e.CPU != 0 || e.Iter != 1 || e.Kind != KindTile {
		t.Errorf("event = %+v", e)
	}
	if e.Duration() < time.Millisecond {
		t.Errorf("duration %v too short", e.Duration())
	}
	if e.Start > e.End {
		t.Error("start after end")
	}
}

func TestRecorderUnmatchedEndIgnored(t *testing.T) {
	r := NewRecorder(testMeta())
	r.EndTile(0, 0, 8, 8, 2, 1) // no StartTile
	if got := len(r.Trace().Events); got != 0 {
		t.Errorf("unmatched EndTile produced %d events", got)
	}
}

func TestRecorderConcurrentLanes(t *testing.T) {
	meta := testMeta()
	meta.Threads = 8
	r := NewRecorder(meta)
	var wg sync.WaitGroup
	const perWorker = 200
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.StartTile(w)
				r.EndTile(w*16, i, 16, 16, w, 1+i%10)
			}
		}(w)
	}
	wg.Wait()
	tr := r.Trace()
	if len(tr.Events) != 8*perWorker {
		t.Fatalf("got %d events, want %d", len(tr.Events), 8*perWorker)
	}
	// Events must be sorted by start time.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Start < tr.Events[i-1].Start {
			t.Fatal("events not sorted by start time")
		}
	}
	if tr.CPUCount() != 8 {
		t.Errorf("CPUCount = %d, want 8", tr.CPUCount())
	}
}

func TestRecordEventExtraLane(t *testing.T) {
	r := NewRecorder(testMeta())
	r.RecordEvent(Event{Iter: 3, CPU: 1, Kind: KindTask, Start: 10, End: 20})
	tr := r.Trace()
	if len(tr.Events) != 1 || tr.Events[0].Kind != KindTask {
		t.Fatalf("events = %+v", tr.Events)
	}
}

func TestRecorderDefaults(t *testing.T) {
	r := NewRecorder(Meta{})
	if r.meta.Threads != 1 || r.meta.Ranks != 1 {
		t.Errorf("defaults not applied: %+v", r.meta)
	}
	if r.meta.Recorded.IsZero() {
		t.Error("Recorded timestamp not set")
	}
}

func makeTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	meta := testMeta()
	events := make([]Event, n)
	for i := range events {
		start := rng.Int63n(1e9)
		events[i] = Event{
			Iter: int32(1 + rng.Intn(10)), CPU: int16(rng.Intn(4)),
			Rank: int16(rng.Intn(2)), Kind: EventKind(rng.Intn(3)),
			Start: start, End: start + rng.Int63n(1e6),
			X: int32(rng.Intn(512)), Y: int32(rng.Intn(512)), W: 16, H: 16,
			Work: rng.Int63n(1e5),
		}
	}
	return &Trace{Meta: meta, Events: events}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := makeTrace(500, 42)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta != tr.Meta {
		t.Errorf("meta round trip: %+v != %+v", back.Meta, tr.Meta)
	}
	if !reflect.DeepEqual(back.Events, tr.Events) {
		t.Error("events altered by round trip")
	}
}

func TestQuickEventCodec(t *testing.T) {
	f := func(iter int32, cpu, rank int16, kind uint8, start, end int64, x, y, w, h int32, work int64) bool {
		e := Event{Iter: iter, CPU: cpu, Rank: rank, Kind: EventKind(kind % 3),
			Start: start, End: end, X: x, Y: y, W: w, H: h, Work: work}
		var rec [eventSize]byte
		encodeEvent(&rec, e)
		return decodeEvent(rec[:]) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddWorkAccumulates(t *testing.T) {
	r := NewRecorder(testMeta())
	r.AddWork(0, 5) // no open span: ignored
	r.StartTile(0)
	r.AddWork(0, 100)
	r.AddWork(0, 23)
	r.EndTile(0, 0, 16, 16, 0, 1)
	tr := r.Trace()
	if tr.Events[0].Work != 123 {
		t.Errorf("work = %d, want 123", tr.Events[0].Work)
	}
}

func TestWorkStats(t *testing.T) {
	// Perfectly proportional work and duration -> correlation 1.
	events := []Event{
		{Start: 0, End: 1000, Work: 10},
		{Start: 0, End: 2000, Work: 20},
		{Start: 0, End: 3000, Work: 30},
		{Start: 0, End: 500, Work: 0}, // no counter: excluded
	}
	ws := Work(events)
	if ws.Count != 3 || ws.TotalWork != 60 {
		t.Errorf("stats = %+v", ws)
	}
	if ws.Correlation < 0.999 {
		t.Errorf("correlation = %v, want ~1", ws.Correlation)
	}
	if ws.MeanRate <= 0 {
		t.Errorf("rate = %v", ws.MeanRate)
	}
	if Work(nil).String() != "no counters" {
		t.Error("empty work stats string")
	}
	// Anti-correlated work/duration.
	anti := []Event{
		{Start: 0, End: 3000, Work: 10},
		{Start: 0, End: 2000, Work: 20},
		{Start: 0, End: 1000, Work: 30},
	}
	if ws := Work(anti); ws.Correlation > -0.999 {
		t.Errorf("anti correlation = %v, want ~-1", ws.Correlation)
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := makeTrace(100, 7)
	path := filepath.Join(t.TempDir(), "traces", "run.evt")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != 100 {
		t.Errorf("loaded %d events", len(back.Events))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE after"),
		"truncated":   []byte("EZPT"),
		"bad version": append([]byte("EZPT"), 0xff, 0xff, 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
}

func TestReadRejectsTruncatedEvents(t *testing.T) {
	tr := makeTrace(10, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("Read accepted a truncated event section")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.evt")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestWriteJSON(t *testing.T) {
	tr := makeTrace(3, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"kernel": "mandel"`) || !strings.Contains(s, `"events"`) {
		t.Errorf("JSON export missing fields: %s", s[:min(len(s), 200)])
	}
}

func TestIterationQueries(t *testing.T) {
	tr := &Trace{Meta: testMeta(), Events: []Event{
		{Iter: 1, Start: 0, End: 10},
		{Iter: 2, Start: 10, End: 30},
		{Iter: 2, Start: 12, End: 25},
		{Iter: 5, Start: 40, End: 45},
	}}
	if tr.Iterations() != 5 {
		t.Errorf("Iterations = %d, want 5", tr.Iterations())
	}
	if n := len(tr.ForIter(2)); n != 2 {
		t.Errorf("ForIter(2) has %d events, want 2", n)
	}
	if n := len(tr.ForIterRange(1, 2)); n != 3 {
		t.Errorf("ForIterRange(1,2) has %d events, want 3", n)
	}
	if s, e := tr.IterSpan(2); s != 10 || e != 30 {
		t.Errorf("IterSpan(2) = (%d,%d), want (10,30)", s, e)
	}
	if s, e := tr.Span(); s != 0 || e != 45 {
		t.Errorf("Span = (%d,%d), want (0,45)", s, e)
	}
}

func TestEmptyTraceQueries(t *testing.T) {
	tr := &Trace{Meta: testMeta()}
	if tr.Iterations() != 0 {
		t.Error("Iterations of empty trace != 0")
	}
	if s, e := tr.Span(); s != 0 || e != 0 {
		t.Errorf("Span of empty trace = (%d,%d)", s, e)
	}
	if Durations(nil).Count != 0 {
		t.Error("Durations(nil) non-zero")
	}
	if Durations(nil).String() != "no events" {
		t.Error("empty stats string")
	}
}

func TestDurationStats(t *testing.T) {
	events := []Event{
		{Start: 0, End: 10}, {Start: 0, End: 20}, {Start: 0, End: 30},
		{Start: 0, End: 40}, {Start: 0, End: 100},
	}
	s := Durations(events)
	if s.Count != 5 || s.Min != 10 || s.Max != 100 || s.Mean != 40 || s.Median != 30 {
		t.Errorf("stats = %+v", s)
	}
	if s.Total != 200 {
		t.Errorf("total = %v", s.Total)
	}
}

func TestPerCPUBusyAndImbalance(t *testing.T) {
	meta := testMeta()
	meta.Threads = 2
	tr := &Trace{Meta: meta, Events: []Event{
		{Iter: 1, CPU: 0, Start: 0, End: 100},
		{Iter: 1, CPU: 1, Start: 0, End: 20},
		{Iter: 2, CPU: 0, Start: 200, End: 210},
	}}
	busy := tr.PerCPUBusy(1)
	if busy[0] != 100 || busy[1] != 20 {
		t.Errorf("busy = %v", busy)
	}
	// max=100, mean=(100+20)/2=60 -> imbalance 1.67
	got := tr.LoadImbalance(1)
	if got < 1.6 || got > 1.7 {
		t.Errorf("imbalance = %v, want ~1.67", got)
	}
	// Iteration where one CPU idles entirely.
	got = tr.LoadImbalance(2)
	if got != 2.0 { // max=10, mean=5
		t.Errorf("imbalance iter 2 = %v, want 2.0", got)
	}
}

func TestCompare(t *testing.T) {
	slow := &Trace{Meta: Meta{Kernel: "blur", Variant: "omp_tiled", Threads: 1}, Events: []Event{
		{Iter: 1, Start: 0, End: 300}, {Iter: 1, Start: 300, End: 600},
	}}
	fast := &Trace{Meta: Meta{Kernel: "blur", Variant: "omp_tiled_opt", Threads: 1}, Events: []Event{
		{Iter: 1, Start: 0, End: 100}, {Iter: 1, Start: 100, End: 200},
	}}
	res, err := Compare(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupAtoB != 3.0 {
		t.Errorf("speedup = %v, want 3.0", res.SpeedupAtoB)
	}
	if res.MedianTaskRatio != 3.0 {
		t.Errorf("median ratio = %v, want 3.0", res.MedianTaskRatio)
	}
	if !strings.Contains(res.String(), "speedup A->B: 3.00x") {
		t.Errorf("report: %s", res.String())
	}
	if _, err := Compare(slow, &Trace{}); err == nil {
		t.Error("Compare accepted an empty trace")
	}
}

func TestEventKindString(t *testing.T) {
	if KindTile.String() != "tile" || KindTask.String() != "task" || KindOther.String() != "other" {
		t.Error("kind names wrong")
	}
	if EventKind(9).String() != "kind(9)" {
		t.Error("unknown kind formatting")
	}
}

func BenchmarkRecordTile(b *testing.B) {
	r := NewRecorder(testMeta())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartTile(0)
		r.EndTile(0, 0, 16, 16, 0, 1)
	}
}

func BenchmarkRoundTrip10k(b *testing.B) {
	tr := makeTrace(10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
