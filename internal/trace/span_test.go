package trace

import (
	"fmt"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace ids %q %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two trace ids collided: %q", a)
	}
}

func TestSpanRingQueries(t *testing.T) {
	r := NewSpanRing(16)
	r.Record(Span{TraceID: "t1", Job: "j-1", Node: "n1", Stage: "admit", Start: 10, End: 20})
	r.Record(Span{TraceID: "t1", Job: "j-1", Node: "n1", Stage: "compute", Start: 20, End: 90})
	r.Record(Span{TraceID: "t2", Job: "j-2", Node: "n1", Stage: "admit", Start: 30, End: 35})
	if got := r.ForTrace("t1"); len(got) != 2 {
		t.Fatalf("ForTrace(t1) = %d spans, want 2", len(got))
	}
	if got := r.ForJob("j-2"); len(got) != 1 || got[0].Stage != "admit" {
		t.Fatalf("ForJob(j-2) = %+v", got)
	}
	if id := r.TraceIDOf("j-1"); id != "t1" {
		t.Fatalf("TraceIDOf(j-1) = %q, want t1", id)
	}
	if id := r.TraceIDOf("j-404"); id != "" {
		t.Fatalf("TraceIDOf(missing) = %q, want empty", id)
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{TraceID: "t", Job: fmt.Sprintf("j-%d", i), Stage: "s", Start: int64(i)})
	}
	got := r.ForTrace("t")
	if len(got) != 4 {
		t.Fatalf("ring of 4 returned %d spans", len(got))
	}
	// Only the newest four survive.
	for i, s := range got {
		if want := fmt.Sprintf("j-%d", 6+i); s.Job != want {
			t.Errorf("span %d = job %q, want %q", i, s.Job, want)
		}
	}
	// Reused job id resolves to the newest trace.
	r.Record(Span{TraceID: "old", Job: "dup", Start: 100})
	r.Record(Span{TraceID: "new", Job: "dup", Start: 200})
	if id := r.TraceIDOf("dup"); id != "new" {
		t.Fatalf("TraceIDOf(dup) = %q, want newest trace", id)
	}
}

func TestNestSpansContainment(t *testing.T) {
	spans := []Span{
		{TraceID: "t", Node: "n1", Stage: "request", Start: 0, End: 100},
		{TraceID: "t", Node: "n1", Stage: "queue", Start: 10, End: 30},
		{TraceID: "t", Node: "n1", Stage: "compute", Start: 30, End: 90},
		{TraceID: "t", Node: "n1", Stage: "lease", Start: 31, End: 35},
	}
	roots := NestSpans(spans)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	req := roots[0]
	if req.Span.Stage != "request" || len(req.Children) != 2 {
		t.Fatalf("root = %s with %d children, want request/2", req.Span.Stage, len(req.Children))
	}
	compute := req.Children[1]
	if compute.Span.Stage != "compute" || len(compute.Children) != 1 || compute.Children[0].Span.Stage != "lease" {
		t.Fatalf("compute subtree wrong: %+v", compute)
	}
}

// TestNestSpansCrossNode pins the property the first implementation got
// wrong: a span from another node interleaved in time must not break
// same-node containment.
func TestNestSpansCrossNode(t *testing.T) {
	spans := []Span{
		{TraceID: "t", Node: "n1", Stage: "request", Start: 0, End: 100},
		{TraceID: "t", Node: "n2", Stage: "compute", Start: 10, End: 50}, // remote, interleaved
		{TraceID: "t", Node: "n1", Stage: "fetch", Start: 60, End: 90},   // still n1's child
	}
	roots := NestSpans(spans)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (one per node)", len(roots))
	}
	if roots[0].Span.Node != "n1" || roots[1].Span.Node != "n2" {
		t.Fatalf("root order: %s, %s", roots[0].Span.Node, roots[1].Span.Node)
	}
	n1 := roots[0]
	if len(n1.Children) != 1 || n1.Children[0].Span.Stage != "fetch" {
		t.Fatalf("n1 lost its contained child: %+v", n1.Children)
	}
}

func TestNestSpansDoesNotMutateInput(t *testing.T) {
	spans := []Span{
		{Node: "n", Stage: "b", Start: 5, End: 6},
		{Node: "n", Stage: "a", Start: 0, End: 10},
	}
	NestSpans(spans)
	if spans[0].Stage != "b" {
		t.Fatal("NestSpans reordered its input slice")
	}
}
