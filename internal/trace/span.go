package trace

// Service-tier spans: the distributed sibling of the per-tile Event.
//
// A kernel Event is relative to one recorder's epoch because tile traces
// are single-process. A service Span crosses processes — a job admitted
// on node A, computed on node B, and replica-pushed to node C must merge
// onto one time axis — so spans carry wall-clock unix nanoseconds.
// NTP-level skew between nodes is acceptable at the µs..ms scales the
// service tier operates at (and EASYVIEW renders).
//
// Spans are correlated by trace id: every submission mints one (or
// inherits one from the X-Easypap-Trace header on a proxied hop), and
// each node files its spans for that id into its SpanRing. GET
// /v1/trace/{job} gathers every node's spans for the id and nests them
// by containment into one tree.

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Span is one service-level operation on one node. Start/End are
// wall-clock unix nanoseconds (not recorder-relative like Event.Start).
type Span struct {
	TraceID string `json:"trace_id"`
	Job     string `json:"job,omitempty"`  // job id on the recording node
	Node    string `json:"node,omitempty"` // recording node's id
	Stage   string `json:"stage"`          // admit, queue, compute, proxy, ...
	Peer    string `json:"peer,omitempty"` // remote node id/url for hop stages
	Start   int64  `json:"start"`          // unix ns
	End     int64  `json:"end"`            // unix ns
	Err     string `json:"err,omitempty"`  // non-empty when the stage failed
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// NewTraceID returns a fresh 16-hex-char trace id (64 random bits).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived id rather than panicking in a request path.
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// SpanRing is a fixed-capacity ring buffer of service spans. Service
// spans are recorded at µs..ms cadence (admission, queueing, compute),
// far off the tile dispatch hot path, so a mutex is the right tool: the
// ring stays readable while jobs run and old spans age out naturally.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int  // next write position
	wrap  bool // buf has wrapped at least once
}

// DefaultSpanRingSize holds a few hundred jobs' worth of service spans
// (≈8 spans per job) — enough history for post-hoc trace queries without
// unbounded growth.
const DefaultSpanRingSize = 4096

// NewSpanRing creates a ring holding up to size spans (DefaultSpanRingSize
// if size <= 0).
func NewSpanRing(size int) *SpanRing {
	if size <= 0 {
		size = DefaultSpanRingSize
	}
	return &SpanRing{buf: make([]Span, size)}
}

// Record appends a span, overwriting the oldest when full.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// snapshotLocked returns live spans in recording order. Caller holds mu.
func (r *SpanRing) snapshotLocked() []Span {
	if !r.wrap {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ForTrace returns all recorded spans carrying the trace id, in start
// order.
func (r *SpanRing) ForTrace(traceID string) []Span {
	r.mu.Lock()
	all := r.snapshotLocked()
	r.mu.Unlock()
	var out []Span
	for _, s := range all {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	SortSpans(out)
	return out
}

// ForJob returns all recorded spans for the job id, in start order.
func (r *SpanRing) ForJob(job string) []Span {
	r.mu.Lock()
	all := r.snapshotLocked()
	r.mu.Unlock()
	var out []Span
	for _, s := range all {
		if s.Job == job {
			out = append(out, s)
		}
	}
	SortSpans(out)
	return out
}

// TraceIDOf returns the trace id recorded for the job, or "" when the
// job's spans have aged out of the ring.
func (r *SpanRing) TraceIDOf(job string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Scan newest-first so a reused job id resolves to its latest trace.
	n := len(r.buf)
	limit := r.next
	if r.wrap {
		limit = n
	}
	for i := 0; i < limit; i++ {
		idx := (r.next - 1 - i + n) % n
		if r.buf[idx].Job == job {
			return r.buf[idx].TraceID
		}
	}
	return ""
}

// SortSpans orders spans by start time, widest first on ties (parents
// lead their children), then stage name for determinism.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].End != spans[j].End {
			return spans[i].End > spans[j].End // wider span first: parents lead
		}
		return spans[i].Stage < spans[j].Stage
	})
}

// SpanNode is one node of a nested span tree.
type SpanNode struct {
	Span     Span        `json:"span"`
	Children []*SpanNode `json:"children,omitempty"`
}

// NestSpans builds span trees by containment: a span becomes a child of
// the tightest same-node span that fully contains it; spans not
// contained by anything become roots. Containment only nests within one
// node — cross-node causality is an edge (Span.Peer), not a parent link
// — so spans are grouped by node before nesting and roots from all
// nodes merge in start order. The input is not modified.
func NestSpans(spans []Span) []*SpanNode {
	byNode := make(map[string][]Span)
	for _, s := range spans {
		byNode[s.Node] = append(byNode[s.Node], s)
	}
	var roots []*SpanNode
	for _, group := range byNode {
		SortSpans(group)
		var stack []*SpanNode // current containment chain within the node
		for _, s := range group {
			n := &SpanNode{Span: s}
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if top.Span.Start <= s.Start && s.End <= top.Span.End {
					break
				}
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				roots = append(roots, n)
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].Span.Start != roots[j].Span.Start {
			return roots[i].Span.Start < roots[j].Span.Start
		}
		return roots[i].Span.Node < roots[j].Span.Node
	})
	return roots
}
