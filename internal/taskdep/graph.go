// Package taskdep implements an OpenMP-style task graph with address-based
// dependencies — the substrate behind the paper's connected-components
// assignment (§III-C), where tiles carry
//
//	#pragma omp task depend(in: tile[i-1][j], tile[i][j-1]) \
//	                 depend(inout: tile[i][j])
//
// Tasks are declared sequentially (the analogue of the sequential task
// generation loop inside "#pragma omp single"); dependence addresses are
// arbitrary comparable keys (EASYPAP kernels use tile coordinates). The
// graph derives edges with OpenMP semantics:
//
//   - an "in" dependence orders the task after the last task with an
//     "out/inout" dependence on the same address;
//   - an "out/inout" dependence orders the task after the last writer and
//     after every "in" reader generated since.
//
// Because edges always point from earlier-declared to later-declared tasks,
// graphs are acyclic by construction; Validate double-checks the invariant
// defensively. Run executes the graph on a sched.Pool with a ready queue,
// recording per-task timing through an optional Observer so EASYVIEW can
// display the wavefront the paper shows in Fig. 12.
package taskdep

import (
	"fmt"
	"sync"

	"easypap/internal/sched"
)

// Task is one node of the graph. Fields are read-only after creation.
type Task struct {
	id    int
	label string
	fn    func(worker int)

	// Tile metadata (optional) so observers can link the task to the image
	// rectangle it computes, the graphical link EASYPAP establishes between
	// tasks and data.
	X, Y, W, H int

	succs   []*Task
	preds   int // number of predecessors (graph construction)
	pending int // countdown during execution
}

// ID returns the task's creation index (0-based, creation order).
func (t *Task) ID() int { return t.id }

// Label returns the task's display label.
func (t *Task) Label() string { return t.label }

// Deps returns the number of direct predecessors of the task.
func (t *Task) Deps() int { return t.preds }

// Succs returns the task's direct successors. The returned slice is shared;
// callers must not modify it.
func (t *Task) Succs() []*Task { return t.succs }

// Graph is a dependency graph under construction or execution. Declare
// tasks with Add, then execute with Run. A Graph is not safe for concurrent
// construction (task generation is sequential in the OpenMP model as well),
// but Run may be called once from any goroutine.
type Graph struct {
	tasks []*Task
	// lastWriter and readers track, per dependence address, the most recent
	// out/inout task and the in-tasks generated since — exactly the state
	// an OpenMP runtime keeps per depend address.
	lastWriter map[any]*Task
	readers    map[any][]*Task
	ran        bool
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		lastWriter: make(map[any]*Task),
		readers:    make(map[any][]*Task),
	}
}

// Deps bundles the dependence addresses of one task declaration.
type Deps struct {
	In    []any // read-after-write dependences
	InOut []any // write dependences (OpenMP out and inout behave identically here)
}

// Add declares a task with the given body and dependences and returns it.
// The label is used by observers and error messages.
func (g *Graph) Add(label string, fn func(worker int), deps Deps) *Task {
	t := &Task{id: len(g.tasks), label: label, fn: fn}
	g.tasks = append(g.tasks, t)

	addEdge := func(from *Task) {
		if from == nil || from == t {
			return
		}
		from.succs = append(from.succs, t)
		t.preds++
	}

	for _, addr := range deps.In {
		addEdge(g.lastWriter[addr])
		g.readers[addr] = append(g.readers[addr], t)
	}
	for _, addr := range deps.InOut {
		addEdge(g.lastWriter[addr])
		for _, r := range g.readers[addr] {
			addEdge(r)
		}
		g.lastWriter[addr] = t
		g.readers[addr] = nil
	}
	return t
}

// AddTile declares a task carrying tile coordinates, the standard shape of
// EASYPAP kernel tasks.
func (g *Graph) AddTile(label string, x, y, w, h int, fn func(worker int), deps Deps) *Task {
	t := g.Add(label, fn, deps)
	t.X, t.Y, t.W, t.H = x, y, w, h
	return t
}

// Len returns the number of declared tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Tasks returns the declared tasks in creation order. The slice is shared;
// callers must not modify it.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Edges returns the total number of dependence edges.
func (g *Graph) Edges() int {
	n := 0
	for _, t := range g.tasks {
		n += len(t.succs)
	}
	return n
}

// Validate checks the structural invariants: predecessor counts match the
// edge lists and the graph is acyclic (guaranteed by construction, verified
// defensively via topological elimination).
func (g *Graph) Validate() error {
	preds := make([]int, len(g.tasks))
	for _, t := range g.tasks {
		for _, s := range t.succs {
			preds[s.id]++
		}
	}
	queue := make([]*Task, 0, len(g.tasks))
	for _, t := range g.tasks {
		if preds[t.id] != t.preds {
			return fmt.Errorf("taskdep: task %d (%s): recorded %d preds, edges say %d",
				t.id, t.label, t.preds, preds[t.id])
		}
		if preds[t.id] == 0 {
			queue = append(queue, t)
		}
	}
	seen := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range t.succs {
			preds[s.id]--
			if preds[s.id] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(g.tasks) {
		return fmt.Errorf("taskdep: cycle detected: only %d of %d tasks reachable", seen, len(g.tasks))
	}
	return nil
}

// Observer receives execution callbacks. Both methods may be called
// concurrently from different workers and must be safe for concurrent use.
type Observer interface {
	TaskStart(t *Task, worker int)
	TaskEnd(t *Task, worker int)
}

// Run executes every task of the graph on the pool, honouring all
// dependences, and blocks until the last task finished. The optional
// observer (may be nil) sees start/end events. Run may only be called once.
func (g *Graph) Run(pool *sched.Pool, obs Observer) error {
	if g.ran {
		return fmt.Errorf("taskdep: graph already executed")
	}
	if err := g.Validate(); err != nil {
		return err
	}
	g.ran = true
	if len(g.tasks) == 0 {
		return nil
	}

	st := &execState{remaining: len(g.tasks)}
	st.cond = sync.NewCond(&st.mu)
	for _, t := range g.tasks {
		t.pending = t.preds
		if t.pending == 0 {
			st.ready = append(st.ready, t)
		}
	}

	pool.Run(func(worker int) {
		for {
			t := st.pop()
			if t == nil {
				return
			}
			if obs != nil {
				obs.TaskStart(t, worker)
			}
			t.fn(worker)
			if obs != nil {
				obs.TaskEnd(t, worker)
			}
			st.complete(t)
		}
	})
	return nil
}

// execState is the shared ready queue of an executing graph.
type execState struct {
	mu        sync.Mutex
	cond      *sync.Cond
	ready     []*Task
	remaining int
}

// pop blocks until a task is ready or the graph has drained; it returns nil
// on drain.
func (st *execState) pop() *Task {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.ready) == 0 && st.remaining > 0 {
		st.cond.Wait()
	}
	if len(st.ready) == 0 {
		return nil
	}
	t := st.ready[len(st.ready)-1]
	st.ready = st.ready[:len(st.ready)-1]
	return t
}

// complete marks t finished and releases any successors that became ready.
func (st *execState) complete(t *Task) {
	st.mu.Lock()
	for _, s := range t.succs {
		s.pending--
		if s.pending == 0 {
			st.ready = append(st.ready, s)
		}
	}
	st.remaining--
	st.cond.Broadcast()
	st.mu.Unlock()
}
