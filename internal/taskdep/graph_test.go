package taskdep

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"easypap/internal/sched"
)

// orderRecorder observes start/end order with a global sequence so tests
// can assert happens-before relations between tasks.
type orderRecorder struct {
	mu     sync.Mutex
	seq    int
	starts map[int]int
	ends   map[int]int
}

func newOrderRecorder() *orderRecorder {
	return &orderRecorder{starts: make(map[int]int), ends: make(map[int]int)}
}

func (r *orderRecorder) TaskStart(t *Task, worker int) {
	r.mu.Lock()
	r.seq++
	r.starts[t.ID()] = r.seq
	r.mu.Unlock()
}

func (r *orderRecorder) TaskEnd(t *Task, worker int) {
	r.mu.Lock()
	r.seq++
	r.ends[t.ID()] = r.seq
	r.mu.Unlock()
}

// assertHappensBefore checks end(a) < start(b).
func (r *orderRecorder) assertHappensBefore(t *testing.T, a, b *Task) {
	t.Helper()
	if r.ends[a.ID()] >= r.starts[b.ID()] {
		t.Errorf("task %q (end seq %d) did not complete before %q (start seq %d)",
			a.Label(), r.ends[a.ID()], b.Label(), r.starts[b.ID()])
	}
}

func TestEmptyGraph(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	g := New()
	if err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 || g.Edges() != 0 {
		t.Error("empty graph has tasks or edges")
	}
}

func TestSingleTask(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	g := New()
	ran := atomic.Int32{}
	g.Add("only", func(int) { ran.Add(1) }, Deps{})
	if err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Errorf("task ran %d times", ran.Load())
	}
}

func TestRunTwiceFails(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	g := New()
	g.Add("t", func(int) {}, Deps{})
	if err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(pool, nil); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestWriteAfterWriteOrdering(t *testing.T) {
	pool := sched.NewPool(8)
	defer pool.Close()
	g := New()
	rec := newOrderRecorder()
	key := "cell"
	var chain []*Task
	for i := 0; i < 10; i++ {
		chain = append(chain, g.Add("w", func(int) {}, Deps{InOut: []any{key}}))
	}
	if err := g.Run(pool, rec); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(chain); i++ {
		rec.assertHappensBefore(t, chain[i-1], chain[i])
	}
}

func TestReadAfterWriteAndWriteAfterRead(t *testing.T) {
	pool := sched.NewPool(8)
	defer pool.Close()
	g := New()
	rec := newOrderRecorder()
	key := 42
	w1 := g.Add("w1", func(int) { time.Sleep(time.Millisecond) }, Deps{InOut: []any{key}})
	r1 := g.Add("r1", func(int) { time.Sleep(time.Millisecond) }, Deps{In: []any{key}})
	r2 := g.Add("r2", func(int) { time.Sleep(time.Millisecond) }, Deps{In: []any{key}})
	w2 := g.Add("w2", func(int) {}, Deps{InOut: []any{key}})
	if err := g.Run(pool, rec); err != nil {
		t.Fatal(err)
	}
	rec.assertHappensBefore(t, w1, r1)
	rec.assertHappensBefore(t, w1, r2)
	rec.assertHappensBefore(t, r1, w2)
	rec.assertHappensBefore(t, r2, w2)
}

func TestIndependentReadersRunConcurrently(t *testing.T) {
	// Readers of the same address have no mutual edges: with enough
	// workers, their executions overlap (checked via a concurrency high
	// water mark).
	pool := sched.NewPool(8)
	defer pool.Close()
	g := New()
	key := "shared"
	g.Add("w", func(int) {}, Deps{InOut: []any{key}})
	var cur, peak atomic.Int32
	for i := 0; i < 8; i++ {
		g.Add("r", func(int) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
		}, Deps{In: []any{key}})
	}
	if err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("readers never overlapped (peak concurrency %d)", peak.Load())
	}
}

func TestEdgeCounts(t *testing.T) {
	g := New()
	key := "k"
	w1 := g.Add("w1", func(int) {}, Deps{InOut: []any{key}})
	r1 := g.Add("r1", func(int) {}, Deps{In: []any{key}})
	r2 := g.Add("r2", func(int) {}, Deps{In: []any{key}})
	w2 := g.Add("w2", func(int) {}, Deps{InOut: []any{key}})
	if w1.Deps() != 0 || r1.Deps() != 1 || r2.Deps() != 1 {
		t.Errorf("deps = %d,%d,%d want 0,1,1", w1.Deps(), r1.Deps(), r2.Deps())
	}
	// w2 depends on both readers; the last-writer edge is subsumed but our
	// runtime still records w1->r1->w2 transitive paths only through
	// readers (w1 edge is added too since lastWriter was w1... it was
	// cleared? No: lastWriter stays w1 until w2 is declared).
	if w2.Deps() != 3 {
		t.Errorf("w2 deps = %d, want 3 (last writer + 2 readers)", w2.Deps())
	}
	if g.Edges() != 1+1+1+1+1 {
		t.Errorf("edges = %d, want 5", g.Edges())
	}
}

func TestSelfDependenceIgnored(t *testing.T) {
	g := New()
	// in and inout on the same address within one task must not create a
	// self-edge.
	tk := g.Add("t", func(int) {}, Deps{In: []any{"a"}, InOut: []any{"a"}})
	if tk.Deps() != 0 {
		t.Errorf("self dependence created %d edges", tk.Deps())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New()
	a := g.Add("a", func(int) {}, Deps{InOut: []any{"k"}})
	b := g.Add("b", func(int) {}, Deps{InOut: []any{"k"}})
	// Corrupt the graph into a cycle manually (user code cannot do this
	// through the public API; this exercises the defensive check).
	b.succs = append(b.succs, a)
	a.preds++
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
	_ = b
}

// TestWavefrontDownRight reproduces the paper's Fig. 11/12: an NxN tile
// grid where task (i,j) depends on (i-1,j) and (i,j-1). Every task must
// start only after both neighbours finished, producing the diagonal wave
// the students observe in EASYVIEW.
func TestWavefrontDownRight(t *testing.T) {
	const N = 8
	pool := sched.NewPool(6)
	defer pool.Close()
	g := New()
	rec := newOrderRecorder()
	id := func(i, j int) [2]int { return [2]int{i, j} }
	tasks := make([][]*Task, N)
	for i := range tasks {
		tasks[i] = make([]*Task, N)
	}
	for j := 0; j < N; j++ {
		for i := 0; i < N; i++ {
			deps := Deps{InOut: []any{id(i, j)}}
			if i > 0 {
				deps.In = append(deps.In, id(i-1, j))
			}
			if j > 0 {
				deps.In = append(deps.In, id(i, j-1))
			}
			tasks[i][j] = g.AddTile("tile", i*8, j*8, 8, 8, func(int) {
				time.Sleep(200 * time.Microsecond)
			}, deps)
		}
	}
	if err := g.Run(pool, rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if i > 0 {
				rec.assertHappensBefore(t, tasks[i-1][j], tasks[i][j])
			}
			if j > 0 {
				rec.assertHappensBefore(t, tasks[i][j-1], tasks[i][j])
			}
		}
	}
	// The wave must exhibit parallelism: the middle anti-diagonal contains
	// N independent tasks, so total sequence length is far less than a
	// serial schedule would force. Check at least one pair of tasks on the
	// same anti-diagonal overlapped.
	overlap := false
	for d := 1; d < 2*N-2 && !overlap; d++ {
		for i := 0; i <= d && !overlap; i++ {
			j := d - i
			if i >= N || j >= N || j < 0 {
				continue
			}
			for i2 := i + 1; i2 <= d; i2++ {
				j2 := d - i2
				if i2 >= N || j2 < 0 {
					continue
				}
				a, b := tasks[i][j], tasks[i2][j2]
				if rec.starts[b.ID()] < rec.ends[a.ID()] && rec.starts[a.ID()] < rec.ends[b.ID()] {
					overlap = true
					break
				}
			}
		}
	}
	if !overlap {
		t.Error("no two independent anti-diagonal tasks overlapped; execution looks serial")
	}
}

// TestOverconstrainedGraphSerializes models the classic student mistake the
// paper describes (§III-C): over-constraining dependencies until execution
// is sequential. Chaining every tile through one address must yield zero
// overlap.
func TestOverconstrainedGraphSerializes(t *testing.T) {
	pool := sched.NewPool(8)
	defer pool.Close()
	g := New()
	var inside, violations atomic.Int32
	for i := 0; i < 20; i++ {
		g.Add("t", func(int) {
			if inside.Add(1) != 1 {
				violations.Add(1)
			}
			time.Sleep(time.Millisecond)
			inside.Add(-1)
		}, Deps{InOut: []any{"the-one-lock"}})
	}
	if err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Errorf("%d overlapping executions in an over-constrained graph", violations.Load())
	}
}

// TestQuickRandomGraphsRespectDeps generates random DAGs through random
// dependence patterns and verifies every edge's happens-before relation.
func TestQuickRandomGraphsRespectDeps(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	f := func(spec []uint8) bool {
		if len(spec) > 40 {
			spec = spec[:40]
		}
		g := New()
		rec := newOrderRecorder()
		for _, b := range spec {
			addr := any(int(b % 5)) // 5 addresses -> plenty of collisions
			if b&0x80 != 0 {
				g.Add("r", func(int) {}, Deps{In: []any{addr}})
			} else {
				g.Add("w", func(int) {}, Deps{InOut: []any{addr}})
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		if err := g.Run(pool, rec); err != nil {
			return false
		}
		for _, task := range g.Tasks() {
			for _, s := range task.Succs() {
				if rec.ends[task.ID()] >= rec.starts[s.ID()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddTileMetadata(t *testing.T) {
	g := New()
	tk := g.AddTile("tile", 16, 32, 8, 8, func(int) {}, Deps{})
	if tk.X != 16 || tk.Y != 32 || tk.W != 8 || tk.H != 8 {
		t.Errorf("tile metadata = (%d,%d,%d,%d)", tk.X, tk.Y, tk.W, tk.H)
	}
	if tk.Label() != "tile" {
		t.Errorf("label = %q", tk.Label())
	}
}

func BenchmarkWavefront16x16(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		g := New()
		id := func(i, j int) [2]int { return [2]int{i, j} }
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				deps := Deps{InOut: []any{id(i, j)}}
				if i > 0 {
					deps.In = append(deps.In, id(i-1, j))
				}
				if j > 0 {
					deps.In = append(deps.In, id(i, j-1))
				}
				g.Add("t", func(int) {}, deps)
			}
		}
		if err := g.Run(pool, nil); err != nil {
			b.Fatal(err)
		}
	}
}
