package monitor

import (
	"strings"
	"sync"
	"testing"
	"time"

	"easypap/internal/img2d"
)

func TestMonitorBasicIteration(t *testing.T) {
	m := New(2, 64)
	m.StartIteration(1)
	m.StartTile(0)
	time.Sleep(2 * time.Millisecond)
	m.EndTile(0, 0, 32, 32, 0)
	stats := m.EndIteration()
	if stats.Iter != 1 {
		t.Errorf("Iter = %d", stats.Iter)
	}
	if len(stats.Tiles) != 1 {
		t.Fatalf("tiles = %d", len(stats.Tiles))
	}
	if stats.Loads[0] <= 0 || stats.Loads[0] > 1 {
		t.Errorf("load[0] = %v", stats.Loads[0])
	}
	if stats.Loads[1] != 0 {
		t.Errorf("idle worker has load %v", stats.Loads[1])
	}
	if stats.Idleness <= 0 || stats.Idleness >= 1 {
		t.Errorf("idleness = %v", stats.Idleness)
	}
	if stats.MaxLoad() != stats.Loads[0] || stats.MinLoad() != 0 {
		t.Error("Max/MinLoad wrong")
	}
}

func TestMonitorPanicsOnBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, 64)
}

func TestMonitorConcurrentWorkers(t *testing.T) {
	const workers, tilesPer = 8, 50
	m := New(workers, 256)
	m.StartIteration(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tilesPer; i++ {
				m.StartTile(w)
				m.EndTile(w*32, i, 32, 32, w)
			}
		}(w)
	}
	wg.Wait()
	stats := m.EndIteration()
	if len(stats.Tiles) != workers*tilesPer {
		t.Errorf("tiles = %d, want %d", len(stats.Tiles), workers*tilesPer)
	}
	// Tiles must be sorted by start time.
	for i := 1; i < len(stats.Tiles); i++ {
		if stats.Tiles[i].Start < stats.Tiles[i-1].Start {
			t.Fatal("tiles not sorted by start")
		}
	}
}

func TestMonitorUnmatchedEndTile(t *testing.T) {
	m := New(1, 64)
	m.StartIteration(1)
	m.EndTile(0, 0, 8, 8, 0)
	stats := m.EndIteration()
	if len(stats.Tiles) != 0 {
		t.Error("unmatched EndTile recorded a tile")
	}
}

func TestMonitorIterationReset(t *testing.T) {
	m := New(1, 64)
	for iter := 1; iter <= 3; iter++ {
		m.StartIteration(iter)
		m.StartTile(0)
		m.EndTile(0, 0, 8, 8, 0)
		stats := m.EndIteration()
		if len(stats.Tiles) != 1 {
			t.Errorf("iter %d: %d tiles, want 1 (lanes not reset?)", iter, len(stats.Tiles))
		}
	}
	if len(m.IdlenessHistory()) != 3 {
		t.Errorf("history length = %d", len(m.IdlenessHistory()))
	}
	if len(m.Iterations()) != 3 {
		t.Errorf("iterations = %d", len(m.Iterations()))
	}
}

func TestImbalanceMetric(t *testing.T) {
	perfect := IterStats{Loads: []float64{0.8, 0.8, 0.8, 0.8}}
	if got := perfect.Imbalance(); got != 1.0 {
		t.Errorf("balanced imbalance = %v", got)
	}
	skewed := IterStats{Loads: []float64{1.0, 0.2, 0.2, 0.2}}
	if got := skewed.Imbalance(); got < 2.0 {
		t.Errorf("skewed imbalance = %v, want >= 2", got)
	}
	if (IterStats{}).Imbalance() != 0 {
		t.Error("empty imbalance != 0")
	}
	if (IterStats{Loads: []float64{0, 0}}).Imbalance() != 0 {
		t.Error("all-zero imbalance != 0")
	}
}

func TestSetRankLabelsTiles(t *testing.T) {
	m := New(1, 64)
	m.SetRank(3)
	m.StartIteration(1)
	m.StartTile(0)
	m.EndTile(0, 0, 8, 8, 0)
	stats := m.EndIteration()
	if stats.Tiles[0].Rank != 3 {
		t.Errorf("rank = %d, want 3", stats.Tiles[0].Rank)
	}
}

// fabricated stats: 4x4 grid of 16px tiles over a 64px image.
func fabricate(owners [][]int) IterStats {
	var stats IterStats
	maxW := 0
	for ty, row := range owners {
		for tx, w := range row {
			if w < 0 {
				continue
			}
			if w > maxW {
				maxW = w
			}
			stats.Tiles = append(stats.Tiles, TileRec{
				X: tx * 16, Y: ty * 16, W: 16, H: 16, Worker: w,
				Start: int64(len(stats.Tiles)), End: int64(len(stats.Tiles)) + 100,
			})
		}
	}
	stats.Loads = make([]float64, maxW+1)
	return stats
}

func TestOwnerGridRoundTrip(t *testing.T) {
	owners := [][]int{
		{0, 0, 1, 1},
		{2, 2, 3, 3},
		{0, 1, 2, 3},
		{3, 3, -1, 0},
	}
	stats := fabricate(owners)
	grid := OwnerGrid(stats, 64, 4, 4, 4)
	for ty := range owners {
		for tx := range owners[ty] {
			if grid[ty][tx] != owners[ty][tx] {
				t.Errorf("grid[%d][%d] = %d, want %d", ty, tx, grid[ty][tx], owners[ty][tx])
			}
		}
	}
}

func TestHeatGrid(t *testing.T) {
	stats := IterStats{Tiles: []TileRec{
		{X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 500},
		{X: 16, Y: 0, W: 16, H: 16, Start: 0, End: 100},
	}}
	grid := HeatGrid(stats, 32, 2, 2)
	if grid[0][0] != 500 || grid[0][1] != 100 {
		t.Errorf("heat grid = %v", grid)
	}
	if grid[1][0] != 0 || grid[1][1] != 0 {
		t.Error("uncomputed tiles should be zero")
	}
}

func TestOwnerGridDegenerate(t *testing.T) {
	grid := OwnerGrid(IterStats{}, 4, 8, 8, 1) // tiles bigger than dim
	if len(grid) != 8 {
		t.Fatal("grid shape wrong")
	}
	for _, row := range grid {
		for _, w := range row {
			if w != -1 {
				t.Fatal("degenerate grid should be unowned")
			}
		}
	}
}

func TestContiguousBlocks(t *testing.T) {
	static := [][]int{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{2, 2, 3, 3},
	}
	if !ContiguousBlocks(static) {
		t.Error("static pattern not recognized as contiguous")
	}
	scattered := [][]int{
		{0, 1, 0, 1},
		{2, 2, 3, 3},
		{0, 0, 1, 1},
	}
	if ContiguousBlocks(scattered) {
		t.Error("scattered pattern recognized as contiguous")
	}
	withHole := [][]int{{0, -1, 0}}
	if ContiguousBlocks(withHole) {
		t.Error("grid with holes cannot be contiguous")
	}
}

func TestRowRunsAndHistogram(t *testing.T) {
	grid := [][]int{
		{0, 0, 0, 1, 1, 2},
		{3, 3, 3, 3, 3, 3},
		{0, -1, 0, 0, 1, 1},
	}
	runs := RowRuns(grid)
	want := [][]int{{3, 2, 1}, {6}, {1, 2, 2}}
	for y := range want {
		if len(runs[y]) != len(want[y]) {
			t.Fatalf("row %d runs = %v, want %v", y, runs[y], want[y])
		}
		for i := range want[y] {
			if runs[y][i] != want[y][i] {
				t.Fatalf("row %d runs = %v, want %v", y, runs[y], want[y])
			}
		}
	}
	hist := RunLengthHistogram(grid)
	if hist[1] != 2 || hist[2] != 3 || hist[3] != 1 || hist[6] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestStripeRows(t *testing.T) {
	grid := [][]int{
		{0, 0, 0, 0, 0, 0},  // single color stripe
		{1, 2, 1, 2, 1, 2},  // two-color alternation: still a stripe
		{0, 1, 2, 3, 0, 1},  // four colors: not a stripe
		{0, 0, -1, 0, 0, 0}, // hole: not counted
		{3, 3, 3, 3, 1, 1},  // two colors: stripe
	}
	rows := StripeRows(grid)
	want := []int{0, 1, 4}
	if len(rows) != len(want) {
		t.Fatalf("stripe rows = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("stripe rows = %v, want %v", rows, want)
		}
	}
}

func TestCyclicScore(t *testing.T) {
	cyclic := [][]int{
		{0, 1, 2, 3, 0, 1, 2, 3},
		{1, 2, 3, 0, 1, 2, 3, 0},
	}
	if s := CyclicScore(cyclic, 0, 2); s != 1.0 {
		t.Errorf("perfect cyclic score = %v", s)
	}
	striped := [][]int{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	if s := CyclicScore(striped, 0, 2); s != 0.0 {
		t.Errorf("striped score = %v", s)
	}
	if s := CyclicScore(nil, 0, 5); s != 0 {
		t.Errorf("empty score = %v", s)
	}
}

func TestOwnedFractionAndShare(t *testing.T) {
	grid := [][]int{
		{0, 0, -1, -1},
		{1, -1, -1, -1},
	}
	if f := OwnedFraction(grid); f != 3.0/8 {
		t.Errorf("owned fraction = %v", f)
	}
	share := WorkerShare(grid)
	if share[0] != 2.0/3 || share[1] != 1.0/3 {
		t.Errorf("share = %v", share)
	}
	if OwnedFraction(nil) != 0 {
		t.Error("empty grid fraction != 0")
	}
}

func TestTilingImageColorsByWorker(t *testing.T) {
	stats := fabricate([][]int{
		{0, 0, 1, 1},
		{0, 0, 1, 1},
		{2, 2, 3, 3},
		{2, 2, 3, 3},
	})
	im := TilingImage(stats, 64, 128)
	if im.Dim() != 128 {
		t.Fatalf("window size %d", im.Dim())
	}
	// Sample the center of tile (0,0): worker 0's color.
	if got := im.Get(16, 16); got != img2d.CPUColor(0) {
		t.Errorf("tile(0,0) center = %#x, want worker 0 color %#x", got, img2d.CPUColor(0))
	}
	// Center of tile (3,3): worker 3's color.
	if got := im.Get(112, 112); got != img2d.CPUColor(3) {
		t.Errorf("tile(3,3) center = %#x, want %#x", got, img2d.CPUColor(3))
	}
}

func TestHeatImageBrightness(t *testing.T) {
	stats := IterStats{Tiles: []TileRec{
		{X: 0, Y: 0, W: 32, H: 32, Start: 0, End: 1000}, // hottest
		{X: 32, Y: 32, W: 32, H: 32, Start: 0, End: 10}, // cold
	}, Loads: []float64{1}}
	im := HeatImage(stats, 64, 64)
	hot := img2d.Brightness(im.Get(8, 8))
	cold := img2d.Brightness(im.Get(48, 48))
	if hot <= cold {
		t.Errorf("hot tile brightness %d <= cold %d", hot, cold)
	}
}

func TestActivityImage(t *testing.T) {
	stats := IterStats{Loads: []float64{1.0, 0.1}}
	im := ActivityImage(stats, []float64{0.2, 0.5, 0.8}, 128)
	if im.Dim() != 128 {
		t.Fatal("bad size")
	}
	// The fully loaded CPU's bar reaches near the top of the bar area;
	// sample inside bar 0 near the top.
	topSample := im.Get(8, 4)
	if topSample == img2d.RGB(35, 35, 40) || topSample == img2d.RGB(20, 20, 24) {
		t.Error("full bar not drawn to the top")
	}
	// Idle CPU's bar area near the top must still be background.
	if got := im.Get(8, 64+4); got != img2d.RGB(35, 35, 40) {
		t.Errorf("idle bar top = %#x, want background", got)
	}
	// No history -> still renders.
	im2 := ActivityImage(stats, nil, 64)
	if im2.Dim() != 64 {
		t.Error("render without history failed")
	}
	// Zero CPUs -> no panic.
	im3 := ActivityImage(IterStats{}, nil, 32)
	if im3.Dim() != 32 {
		t.Error("render with no CPUs failed")
	}
}

func TestASCIIReport(t *testing.T) {
	stats := IterStats{Iter: 4, Duration: time.Millisecond, Loads: []float64{0.5, 1.0}}
	s := ASCIIReport(stats)
	if !strings.Contains(s, "iteration 4") || !strings.Contains(s, "CPU  0") {
		t.Errorf("report: %s", s)
	}
	if !strings.Contains(s, "50.0%") || !strings.Contains(s, "100.0%") {
		t.Errorf("report loads: %s", s)
	}
}
