package monitor

// Renderers for the two monitoring side windows the paper shows in Fig. 3:
// the Tiling window (tile -> thread assignment, or heat map) and the
// Activity Monitor (per-CPU load + cumulated idleness history). Because
// this port is headless, windows are rendered into img2d images and saved
// as PNG by the gfx frame sink.

import (
	"easypap/internal/img2d"
)

// TilingImage renders the iteration's tile-to-thread assignment at the
// given output size. Each tile is filled with its worker's color
// (img2d.CPUColor) and outlined with a darker border so the decomposition
// is visible — the paper's Fig. 4 view. Tiles nobody computed stay black
// (the lazy Game of Life shows holes, Fig. 13).
func TilingImage(stats IterStats, dim, size int) *img2d.Image {
	out := img2d.New(size)
	out.Fill(img2d.RGB(12, 12, 16))
	for _, rec := range stats.Tiles {
		drawTile(out, rec, dim, size, workerColor(rec.Rank, rec.Worker))
	}
	return out
}

// workerColor picks the consistent color for a (rank, worker) pair.
// Workers of rank r are offset so every process gets its own palette
// region, keeping Fig. 13's per-process windows distinguishable.
func workerColor(rank, worker int) img2d.Pixel {
	return img2d.CPUColor(rank*1024 + worker)
}

// HeatImage renders the heat-map mode of the tiling window: brightness
// encodes the duration of the tile's task relative to the slowest tile of
// the iteration (paper Fig. 9).
func HeatImage(stats IterStats, dim, size int) *img2d.Image {
	out := img2d.New(size)
	out.Fill(img2d.Black)
	var maxDur int64 = 1
	for _, rec := range stats.Tiles {
		if d := int64(rec.Duration()); d > maxDur {
			maxDur = d
		}
	}
	for _, rec := range stats.Tiles {
		t := float64(rec.Duration()) / float64(maxDur)
		drawTile(out, rec, dim, size, img2d.HeatColor(t))
	}
	return out
}

// drawTile projects the tile rectangle from image coordinates (dim) into
// window coordinates (size), fills it and draws a subtle border.
func drawTile(out *img2d.Image, rec TileRec, dim, size int, fill img2d.Pixel) {
	if dim <= 0 {
		return
	}
	x0 := rec.X * size / dim
	y0 := rec.Y * size / dim
	x1 := (rec.X + rec.W) * size / dim
	y1 := (rec.Y + rec.H) * size / dim
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	out.FillRect(x0, y0, x1-x0, y1-y0, fill)
	border := img2d.Scale(fill, img2d.Black, 0.35)
	// Borders only when tiles are at least a few pixels on screen.
	if x1-x0 >= 3 && y1-y0 >= 3 {
		out.FillRect(x0, y0, x1-x0, 1, border)
		out.FillRect(x0, y0, 1, y1-y0, border)
		out.FillRect(x0, y1-1, x1-x0, 1, border)
		out.FillRect(x1-1, y0, 1, y1-y0, border)
	}
}

// FrontierImage renders the lazy-kernel activity heat map: each tile's
// brightness encodes the fraction of iterations it spent in the tile
// frontier (1 = active every iteration, black = never computed). It is
// the cumulative counterpart of TilingImage's per-iteration holes — the
// visual of a frontier collapsing onto the areas that keep changing.
// Returns nil when the monitor recorded no activity (eager kernels).
func FrontierImage(m *Monitor, size int) *img2d.Image {
	counts, tilesX, tilesY, iters := m.ActivityGrid()
	if counts == nil || iters == 0 {
		return nil
	}
	out := img2d.New(size)
	out.Fill(img2d.Black)
	for ty := 0; ty < tilesY; ty++ {
		y0, y1 := ty*size/tilesY, (ty+1)*size/tilesY
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for tx := 0; tx < tilesX; tx++ {
			c := counts[ty*tilesX+tx]
			if c == 0 {
				continue
			}
			x0, x1 := tx*size/tilesX, (tx+1)*size/tilesX
			if x1 <= x0 {
				x1 = x0 + 1
			}
			out.FillRect(x0, y0, x1-x0, y1-y0, img2d.HeatColor(float64(c)/float64(iters)))
		}
	}
	return out
}

// ActivityImage renders the Activity Monitor window: one vertical bar per
// CPU (height = load, color = the CPU's color) over the top 3/4 of the
// window, and the idleness history diagram across the bottom quarter.
func ActivityImage(stats IterStats, history []float64, size int) *img2d.Image {
	out := img2d.New(size)
	out.Fill(img2d.RGB(20, 20, 24))
	n := len(stats.Loads)
	if n == 0 {
		return out
	}
	barArea := size * 3 / 4
	barWidth := size / n
	for w, load := range stats.Loads {
		h := int(load * float64(barArea-4))
		x := w * barWidth
		// Bar background (dim) then the filled portion from the bottom.
		out.FillRect(x+2, 2, barWidth-4, barArea-4, img2d.RGB(35, 35, 40))
		out.FillRect(x+2, barArea-2-h, barWidth-4, h, workerColor(0, w))
	}
	// Idleness history: one column per recorded iteration, height
	// proportional to idleness.
	histTop := barArea + 2
	histH := size - histTop - 2
	if histH > 0 && len(history) > 0 {
		cols := len(history)
		colW := size / cols
		if colW < 1 {
			colW = 1
			cols = size
			history = history[len(history)-cols:]
		}
		for i, idle := range history {
			h := int(idle * float64(histH))
			out.FillRect(i*colW, size-2-h, colW, h, img2d.RGB(200, 80, 80))
		}
	}
	return out
}
