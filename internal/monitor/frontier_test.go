package monitor

import "testing"

// TestRecordActivityIntoIterStats: frontier reports land in the
// iteration snapshot and accumulate per-tile residency counts.
func TestRecordActivityIntoIterStats(t *testing.T) {
	m := New(2, 64)
	m.StartIteration(1)
	m.RecordActivity(3, 16, []int32{0, 5, 10}, 4, 4)
	s := m.EndIteration()
	if s.ActiveTiles != 3 || s.FrontierTotal != 16 {
		t.Fatalf("IterStats activity = %d/%d, want 3/16", s.ActiveTiles, s.FrontierTotal)
	}

	m.StartIteration(2)
	m.RecordActivity(2, 16, []int32{5, 10}, 4, 4)
	s = m.EndIteration()
	if s.ActiveTiles != 2 {
		t.Fatalf("second iteration activity = %d, want 2", s.ActiveTiles)
	}

	counts, tx, ty, iters := m.ActivityGrid()
	if tx != 4 || ty != 4 || iters != 2 {
		t.Fatalf("ActivityGrid geometry = %dx%d over %d iters", tx, ty, iters)
	}
	want := map[int]int{0: 1, 5: 2, 10: 2}
	for tile, n := range want {
		if counts[tile] != n {
			t.Errorf("tile %d residency = %d, want %d", tile, counts[tile], n)
		}
	}
	if counts[1] != 0 {
		t.Errorf("untouched tile has residency %d", counts[1])
	}
}

// TestIterationWithoutActivityReportsZero: eager iterations leave the
// frontier fields at zero (FrontierTotal == 0 means "not reported").
func TestIterationWithoutActivityReportsZero(t *testing.T) {
	m := New(1, 32)
	m.StartIteration(1)
	s := m.EndIteration()
	if s.ActiveTiles != 0 || s.FrontierTotal != 0 {
		t.Fatalf("eager iteration reports activity %d/%d", s.ActiveTiles, s.FrontierTotal)
	}
	if counts, _, _, _ := m.ActivityGrid(); counts != nil {
		t.Fatal("eager monitor has a tile-activity grid")
	}
}

// TestFrontierImage: the heat map renders nil without activity, and hot
// tiles brighter than cold ones with it.
func TestFrontierImage(t *testing.T) {
	m := New(1, 32)
	if img := FrontierImage(m, 64); img != nil {
		t.Fatal("FrontierImage without activity should be nil")
	}
	m.StartIteration(1)
	m.RecordActivity(2, 16, []int32{0, 15}, 4, 4)
	m.EndIteration()
	m.StartIteration(2)
	m.RecordActivity(1, 16, []int32{15}, 4, 4)
	m.EndIteration()
	img := FrontierImage(m, 64)
	if img == nil {
		t.Fatal("FrontierImage with activity is nil")
	}
	// Tile 15 (bottom-right) was active twice, tile 0 once, tile 5 never.
	hot := img.Get(60, 60)
	warm := img.Get(2, 2)
	cold := img.Get(20, 20)
	if hot == cold || warm == cold {
		t.Errorf("active tiles not distinguishable from inactive: hot=%v warm=%v cold=%v",
			hot, warm, cold)
	}
}
