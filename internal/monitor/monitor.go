// Package monitor implements EASYPAP's real-time monitoring facilities
// (paper §II-B): the per-CPU Activity Monitor and the Tiling window that
// shows how tiles were assigned to threads at each iteration, including the
// "heat map" mode where tile brightness reflects task duration (Fig. 9).
//
// Kernels bracket their tile computations with StartTile/EndTile — the
// analogue of monitoring_start_tile / monitoring_end_tile — and the run
// loop brackets iterations with StartIteration/EndIteration. The recording
// path is wait-free per worker (one lane per thread); EndIteration merges
// lanes into an IterStats snapshot that the window renderers (window.go)
// and the figure benchmarks consume.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TileRec is one completed tile computation within an iteration.
type TileRec struct {
	X, Y, W, H int
	Worker     int
	Rank       int   // MPI process rank (0 if not distributed)
	Start, End int64 // ns relative to the monitor epoch
}

// Duration returns the time spent computing the tile.
func (t TileRec) Duration() time.Duration { return time.Duration(t.End - t.Start) }

// IterStats is the per-iteration snapshot displayed by the monitoring
// windows.
type IterStats struct {
	Iter     int
	Duration time.Duration
	// Loads[w] is worker w's busy fraction over the iteration in [0,1] —
	// the per-CPU percentage of the Activity Monitor window.
	Loads []float64
	// Idleness is 1 - mean(Loads): the quantity whose cumulated history
	// the Activity Monitor graphs at the bottom of the window.
	Idleness float64
	Tiles    []TileRec

	// ActiveTiles/FrontierTotal are the lazy tile-frontier size of the
	// iteration as reported through Ctx.ReportActivity: ActiveTiles of
	// FrontierTotal owned tiles were dispatched. FrontierTotal == 0 means
	// the kernel does not report activity (eager variants).
	ActiveTiles   int
	FrontierTotal int
}

// MaxLoad and MinLoad return the extreme per-CPU loads.
func (s IterStats) MaxLoad() float64 {
	m := 0.0
	for _, l := range s.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

func (s IterStats) MinLoad() float64 {
	if len(s.Loads) == 0 {
		return 0
	}
	m := s.Loads[0]
	for _, l := range s.Loads {
		if l < m {
			m = l
		}
	}
	return m
}

// Imbalance returns max/mean of per-CPU busy time (1.0 = perfect balance).
func (s IterStats) Imbalance() float64 {
	if len(s.Loads) == 0 {
		return 0
	}
	var sum, maxLoad float64
	for _, l := range s.Loads {
		sum += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if sum == 0 {
		return 0
	}
	return maxLoad / (sum / float64(len(s.Loads)))
}

// Monitor accumulates tile activity. One Monitor instance watches one
// process (MPI debug mode creates one per rank, as in Fig. 13).
type Monitor struct {
	workers   int
	dim       int
	rank      int
	epoch     time.Time
	lanes     []mlane
	iter      int
	iterStart int64
	history   []float64   // per-iteration idleness
	iters     []IterStats // every completed iteration

	// Frontier activity (lazy kernels, via Ctx.ReportActivity):
	// tileActivity[tile] counts the iterations the tile spent in the
	// frontier; activityIters is how many iterations reported, so the
	// frontier heat map can normalize.
	tileActivity     []int
	tilesX, tilesY   int
	activityIters    int
	curActive        int // current iteration's frontier size
	curFrontierTotal int
}

// mlane is one worker's private recording lane, padded against false
// sharing.
type mlane struct {
	tiles   []TileRec
	pending TileRec
	open    bool
	busy    int64 // accumulated busy ns in the current iteration
	_       [64]byte
}

// New creates a monitor for the given number of workers over a dim x dim
// image.
func New(workers, dim int) *Monitor {
	if workers <= 0 {
		panic(fmt.Sprintf("monitor: workers = %d", workers))
	}
	return &Monitor{
		workers: workers,
		dim:     dim,
		epoch:   time.Now(),
		lanes:   make([]mlane, workers),
	}
}

// SetRank labels all subsequent records with an MPI process rank.
func (m *Monitor) SetRank(rank int) { m.rank = rank }

// Workers returns the number of monitored workers.
func (m *Monitor) Workers() int { return m.workers }

// Dim returns the monitored image dimension.
func (m *Monitor) Dim() int { return m.dim }

// now returns ns since the monitor epoch.
func (m *Monitor) now() int64 { return int64(time.Since(m.epoch)) }

// StartIteration begins recording iteration iter (1-based).
func (m *Monitor) StartIteration(iter int) {
	m.iter = iter
	m.iterStart = m.now()
	m.curActive, m.curFrontierTotal = 0, 0
	for w := range m.lanes {
		m.lanes[w].busy = 0
		m.lanes[w].tiles = m.lanes[w].tiles[:0]
		m.lanes[w].open = false
	}
}

// RecordActivity records the iteration's tile frontier: active of total
// owned tiles were dispatched, tiles listing their indices in a tilesX x
// tilesY decomposition (nil is allowed: counts only). Called by
// Ctx.ReportActivity between StartIteration and EndIteration.
func (m *Monitor) RecordActivity(active, total int, tiles []int32, tilesX, tilesY int) {
	m.curActive, m.curFrontierTotal = active, total
	if tilesX <= 0 || tilesY <= 0 {
		return
	}
	if m.tileActivity == nil || m.tilesX != tilesX || m.tilesY != tilesY {
		m.tileActivity = make([]int, tilesX*tilesY)
		m.tilesX, m.tilesY = tilesX, tilesY
		m.activityIters = 0
	}
	m.activityIters++
	for _, t := range tiles {
		if int(t) >= 0 && int(t) < len(m.tileActivity) {
			m.tileActivity[t]++
		}
	}
}

// ActivityGrid returns the per-tile frontier residency counts (how many
// iterations each tile of the tilesX x tilesY grid spent active) and the
// number of reporting iterations. It returns (nil, 0, 0, 0) when the
// kernel never reported activity.
func (m *Monitor) ActivityGrid() (counts []int, tilesX, tilesY, iters int) {
	return m.tileActivity, m.tilesX, m.tilesY, m.activityIters
}

// StartTile opens a tile span on worker w's lane
// (monitoring_start_tile(who)).
func (m *Monitor) StartTile(worker int) {
	l := &m.lanes[worker]
	l.pending = TileRec{Worker: worker, Rank: m.rank, Start: m.now()}
	l.open = true
}

// EndTile closes the span with the tile rectangle
// (monitoring_end_tile(x, y, w, h, who)).
func (m *Monitor) EndTile(x, y, w, h, worker int) {
	l := &m.lanes[worker]
	if !l.open {
		return
	}
	rec := l.pending
	rec.End = m.now()
	rec.X, rec.Y, rec.W, rec.H = x, y, w, h
	l.tiles = append(l.tiles, rec)
	l.busy += rec.End - rec.Start
	l.open = false
}

// EndIteration finalizes the iteration and returns its snapshot. The
// snapshot is also retained: see History and Iterations.
func (m *Monitor) EndIteration() IterStats {
	end := m.now()
	dur := end - m.iterStart
	if dur <= 0 {
		dur = 1
	}
	stats := IterStats{
		Iter:          m.iter,
		Duration:      time.Duration(dur),
		Loads:         make([]float64, m.workers),
		ActiveTiles:   m.curActive,
		FrontierTotal: m.curFrontierTotal,
	}
	var loadSum float64
	for w := range m.lanes {
		load := float64(m.lanes[w].busy) / float64(dur)
		if load > 1 {
			load = 1
		}
		stats.Loads[w] = load
		loadSum += load
		stats.Tiles = append(stats.Tiles, m.lanes[w].tiles...)
	}
	sort.Slice(stats.Tiles, func(i, j int) bool { return stats.Tiles[i].Start < stats.Tiles[j].Start })
	stats.Idleness = 1 - loadSum/float64(m.workers)
	m.history = append(m.history, stats.Idleness)
	m.iters = append(m.iters, stats)
	return stats
}

// IdlenessHistory returns the per-iteration idleness series (the history
// diagram at the bottom of the Activity Monitor window).
func (m *Monitor) IdlenessHistory() []float64 { return m.history }

// Iterations returns every recorded iteration snapshot.
func (m *Monitor) Iterations() []IterStats { return m.iters }

// OwnerGrid maps each tile of a tilesX x tilesY decomposition to the worker
// that computed it in the given iteration (-1 for tiles nobody computed —
// e.g. skipped by the lazy Game of Life). The grid is indexed [ty][tx].
// Global worker ids are rank*workers+worker when processes are involved.
func OwnerGrid(stats IterStats, dim, tilesX, tilesY, workersPerRank int) [][]int {
	grid := make([][]int, tilesY)
	for ty := range grid {
		grid[ty] = make([]int, tilesX)
		for tx := range grid[ty] {
			grid[ty][tx] = -1
		}
	}
	tileW, tileH := dim/tilesX, dim/tilesY
	if tileW == 0 || tileH == 0 {
		return grid
	}
	for _, rec := range stats.Tiles {
		tx, ty := rec.X/tileW, rec.Y/tileH
		if ty >= 0 && ty < tilesY && tx >= 0 && tx < tilesX {
			grid[ty][tx] = rec.Rank*workersPerRank + rec.Worker
		}
	}
	return grid
}

// HeatGrid maps each tile to its computation duration in ns (0 for tiles
// nobody computed) — the data behind the heat-map mode of Fig. 9.
func HeatGrid(stats IterStats, dim, tilesX, tilesY int) [][]int64 {
	grid := make([][]int64, tilesY)
	for ty := range grid {
		grid[ty] = make([]int64, tilesX)
	}
	tileW, tileH := dim/tilesX, dim/tilesY
	if tileW == 0 || tileH == 0 {
		return grid
	}
	for _, rec := range stats.Tiles {
		tx, ty := rec.X/tileW, rec.Y/tileH
		if ty >= 0 && ty < tilesY && tx >= 0 && tx < tilesX {
			grid[ty][tx] = int64(rec.Duration())
		}
	}
	return grid
}

// ASCIIReport renders the iteration's per-CPU loads as a terminal-friendly
// bar chart — the headless stand-in for the Activity Monitor window.
func ASCIIReport(stats IterStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iteration %d: %v, idleness %.1f%%\n",
		stats.Iter, stats.Duration.Round(time.Microsecond), stats.Idleness*100)
	for w, load := range stats.Loads {
		bars := int(load*40 + 0.5)
		fmt.Fprintf(&b, "  CPU %2d %5.1f%% %s\n", w, load*100, strings.Repeat("█", bars))
	}
	return b.String()
}
