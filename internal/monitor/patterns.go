package monitor

// Pattern analysis over tile-ownership grids: programmatic versions of what
// students observe visually in the tiling window. The paper's Fig. 4
// characterizes the four scheduling policies by their assignment shapes,
// and Fig. 8 spots two patterns under dynamic scheduling of small tiles:
// same-color horizontal stripes (cheap rows swallowed by one or two
// threads) and quasi-cyclic color distribution (uniformly heavy areas).

// RowRuns returns, for each grid row, the lengths of the maximal runs of
// consecutive tiles owned by the same worker. Unowned tiles (-1) break
// runs and are excluded.
func RowRuns(grid [][]int) [][]int {
	out := make([][]int, len(grid))
	for y, row := range grid {
		var runs []int
		i := 0
		for i < len(row) {
			if row[i] < 0 {
				i++
				continue
			}
			j := i
			for j < len(row) && row[j] == row[i] {
				j++
			}
			runs = append(runs, j-i)
			i = j
		}
		out[y] = runs
	}
	return out
}

// ContiguousBlocks reports whether the (row-major flattened) ownership
// sequence consists of exactly one contiguous block per worker in
// increasing worker order — the signature of schedule(static) in Fig. 4a.
func ContiguousBlocks(grid [][]int) bool {
	prev := -1
	seen := map[int]bool{}
	for _, row := range grid {
		for _, w := range row {
			if w < 0 {
				return false
			}
			if w != prev {
				if seen[w] {
					return false // worker appears in two separate blocks
				}
				seen[w] = true
				prev = w
			}
		}
	}
	return true
}

// StripeRows returns the indices of rows entirely owned by at most two
// alternating workers — the paper's Fig. 8 "Pattern 1": stripes of one or
// two colors where tiles are cheap enough that one or two threads compute
// whole rows while the others chew on expensive areas.
func StripeRows(grid [][]int) []int {
	var rows []int
	for y, row := range grid {
		owners := map[int]bool{}
		ok := true
		for _, w := range row {
			if w < 0 {
				ok = false
				break
			}
			owners[w] = true
		}
		if ok && len(owners) <= 2 && len(row) >= 4 {
			rows = append(rows, y)
		}
	}
	return rows
}

// CyclicScore measures how close a region's ownership is to a perfect
// cyclic distribution (Fig. 8 "Pattern 2"): for each pair of horizontally
// adjacent tiles, a point is scored when the owners differ; the result is
// the fraction of differing adjacent pairs in [0,1]. A cyclic distribution
// scores ~1, a striped one ~0.
func CyclicScore(grid [][]int, y0, y1 int) float64 {
	pairs, diff := 0, 0
	for y := y0; y < y1 && y < len(grid); y++ {
		row := grid[y]
		for x := 1; x < len(row); x++ {
			if row[x-1] < 0 || row[x] < 0 {
				continue
			}
			pairs++
			if row[x] != row[x-1] {
				diff++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(diff) / float64(pairs)
}

// RunLengthHistogram aggregates RowRuns into a histogram keyed by run
// length. Guided scheduling (Fig. 4d) shows a spread of decreasing run
// lengths; dynamic with chunk k concentrates near k.
func RunLengthHistogram(grid [][]int) map[int]int {
	hist := make(map[int]int)
	for _, runs := range RowRuns(grid) {
		for _, r := range runs {
			hist[r]++
		}
	}
	return hist
}

// OwnedFraction returns the fraction of tiles with an owner — the lazy
// Game of Life (Fig. 13) computes only a small fraction of the grid.
func OwnedFraction(grid [][]int) float64 {
	total, owned := 0, 0
	for _, row := range grid {
		for _, w := range row {
			total++
			if w >= 0 {
				owned++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(owned) / float64(total)
}

// WorkerShare returns the per-worker fraction of owned tiles.
func WorkerShare(grid [][]int) map[int]float64 {
	counts := make(map[int]int)
	owned := 0
	for _, row := range grid {
		for _, w := range row {
			if w >= 0 {
				counts[w]++
				owned++
			}
		}
	}
	out := make(map[int]float64, len(counts))
	for w, c := range counts {
		out[w] = float64(c) / float64(max(owned, 1))
	}
	return out
}
