package gfx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"easypap/internal/img2d"
)

func gradientImage(dim int) *img2d.Image {
	im := img2d.New(dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			im.Set(y, x, img2d.RGB(uint8(x), uint8(y), 128))
		}
	}
	return im
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamSink(&buf)
	im1, im2 := gradientImage(16), gradientImage(32)
	if err := sink.Frame("main", 1, im1); err != nil {
		t.Fatal(err)
	}
	if err := sink.Frame("tiling", 2, im2); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&buf)
	f1, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Window != "main" || f1.Iter != 1 {
		t.Errorf("frame 1 = %s/%d, want main/1", f1.Window, f1.Iter)
	}
	got, err := f1.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 16 || got.Get(3, 5) != im1.Get(3, 5) {
		t.Error("frame 1 pixels did not survive the round trip")
	}
	f2, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Window != "tiling" || f2.Iter != 2 {
		t.Errorf("frame 2 = %s/%d, want tiling/2", f2.Window, f2.Iter)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestStreamWindowFilter(t *testing.T) {
	var buf bytes.Buffer
	sink := &StreamSink{W: &buf, Windows: []string{"main"}}
	im := gradientImage(8)
	if err := sink.Frame("main", 1, im); err != nil {
		t.Fatal(err)
	}
	if err := sink.Frame("tiling", 1, im); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	if f, err := ReadFrame(r); err != nil || f.Window != "main" {
		t.Fatalf("first frame %v, %v", f, err)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("tiling frame was not filtered: %v", err)
	}
}

func TestStreamTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "main", 1, gradientImage(8)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc))); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated record: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestStreamMalformedHeader(t *testing.T) {
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("BOGUS main 1 4\nabcd"))); err == nil {
		t.Error("malformed magic accepted")
	}
}

// The malformed-header battery: every corrupt header a peer (or an
// attacker) could send must map to a typed error — never a panic, never
// an attempt to honor an absurd allocation.
func TestStreamHeaderBattery(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error // sentinel to match with errors.Is (nil: any error)
	}{
		{"garbage line", "not a header at all\n", ErrMalformedHeader},
		{"empty line", "\n", ErrMalformedHeader},
		{"missing fields", "EZFRAME main\n", ErrMalformedHeader},
		{"non-numeric iter", "EZFRAME main x 4\nabcd", ErrMalformedHeader},
		{"non-numeric size", "EZFRAME main 1 x\n", ErrMalformedHeader},
		{"negative size", "EZFRAME main 1 -4\n", ErrMalformedHeader},
		{"wrong magic", "EZWRONG main 1 4\nabcd", ErrMalformedHeader},
		{"oversized record", fmt.Sprintf("EZFRAME main 1 %d\n", MaxRecordPayload+1), ErrRecordTooLarge},
		{"absurd size", "EZFRAME main 1 999999999999\n", ErrRecordTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bufio.NewReader(strings.NewReader(tc.input)))
			if err == nil {
				t.Fatalf("ReadFrame accepted %q", tc.input)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("ReadFrame(%q) = %v, want errors.Is(err, %v)", tc.input, err, tc.want)
			}
			// ReadRecord shares the header path and the same discipline.
			_, err = ReadRecord(bufio.NewReader(strings.NewReader(tc.input)))
			if err == nil {
				t.Fatalf("ReadRecord accepted %q", tc.input)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("ReadRecord(%q) = %v, want errors.Is(err, %v)", tc.input, err, tc.want)
			}
		})
	}
	// A header at exactly the cap is structurally fine (just truncated
	// here): it must fail with short-payload, not the size cap.
	atCap := fmt.Sprintf("EZFRAME main 1 %d\nxx", MaxRecordPayload)
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader(atCap))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("at-cap header: got %v, want ErrUnexpectedEOF", err)
	}
}

// A plain ReadFrame client pointed at a delta stream fails cleanly on the
// first EZDELTA record (old clients never negotiate delta, so seeing one
// is a protocol violation, not a crash).
func TestReadFrameRejectsDeltaRecord(t *testing.T) {
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("EZDELTA main 2 4\nabcd"))); !errors.Is(err, ErrMalformedHeader) {
		t.Errorf("EZDELTA via ReadFrame: got %v, want ErrMalformedHeader", err)
	}
}

// ReadRecord round-trips both record kinds through Record.Encode.
func TestRecordEncodeRoundTrip(t *testing.T) {
	recs := []*Record{
		{Kind: RecordFull, Window: "main", Iter: 1, Payload: []byte("pngpng")},
		{Kind: RecordDelta, Window: "main", Iter: 2, Payload: []byte{1, 2, 3}},
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(rec.Encode())
	}
	r := bufio.NewReader(&buf)
	for i, want := range recs {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Window != want.Window || got.Iter != want.Iter || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadRecord(r); err != io.EOF {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestStreamRejectsWhitespaceWindow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "bad window", 1, gradientImage(8)); err == nil {
		t.Error("whitespace window name accepted")
	}
}
