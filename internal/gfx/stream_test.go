package gfx

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"easypap/internal/img2d"
)

func gradientImage(dim int) *img2d.Image {
	im := img2d.New(dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			im.Set(y, x, img2d.RGB(uint8(x), uint8(y), 128))
		}
	}
	return im
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamSink(&buf)
	im1, im2 := gradientImage(16), gradientImage(32)
	if err := sink.Frame("main", 1, im1); err != nil {
		t.Fatal(err)
	}
	if err := sink.Frame("tiling", 2, im2); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&buf)
	f1, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Window != "main" || f1.Iter != 1 {
		t.Errorf("frame 1 = %s/%d, want main/1", f1.Window, f1.Iter)
	}
	got, err := f1.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 16 || got.Get(3, 5) != im1.Get(3, 5) {
		t.Error("frame 1 pixels did not survive the round trip")
	}
	f2, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Window != "tiling" || f2.Iter != 2 {
		t.Errorf("frame 2 = %s/%d, want tiling/2", f2.Window, f2.Iter)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestStreamWindowFilter(t *testing.T) {
	var buf bytes.Buffer
	sink := &StreamSink{W: &buf, Windows: []string{"main"}}
	im := gradientImage(8)
	if err := sink.Frame("main", 1, im); err != nil {
		t.Fatal(err)
	}
	if err := sink.Frame("tiling", 1, im); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	if f, err := ReadFrame(r); err != nil || f.Window != "main" {
		t.Fatalf("first frame %v, %v", f, err)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("tiling frame was not filtered: %v", err)
	}
}

func TestStreamTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "main", 1, gradientImage(8)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc))); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated record: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestStreamMalformedHeader(t *testing.T) {
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("BOGUS main 1 4\nabcd"))); err == nil {
		t.Error("malformed magic accepted")
	}
}

func TestStreamRejectsWhitespaceWindow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "bad window", 1, gradientImage(8)); err == nil {
		t.Error("whitespace window name accepted")
	}
}
