package gfx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"easypap/internal/img2d"
)

// The frame stream format is how easypapd serves live frames over HTTP
// (GET /v1/jobs/{id}/frames): a sequence of self-delimiting records, each
// a one-line ASCII header followed by the PNG bytes:
//
//	EZFRAME <window> <iter> <png-bytes>\n
//	<png-bytes bytes of PNG data>
//
// The header is trivially greppable, the payload is a standard PNG, and a
// reader needs no state beyond "read a line, then N bytes" — deliberately
// simpler than multipart MIME so curl users can split it with a ten-line
// script.
//
// Streams negotiated as FormatDelta interleave a second record type,
// EZDELTA, carrying dirty-tile patches between keyframes (see delta.go).

// streamMagic starts every full-frame header line.
const streamMagic = "EZFRAME"

// MaxRecordPayload bounds the payload size a stream reader will accept
// from a wire header, so a corrupt or malicious length field cannot make
// the decoder attempt an arbitrarily large allocation (same discipline as
// the store's index decoder). Frames are dim² PNGs — 64 MiB is far above
// any legitimate record.
const MaxRecordPayload = 64 << 20

// ErrRecordTooLarge is returned when a stream header announces a payload
// larger than MaxRecordPayload.
var ErrRecordTooLarge = errors.New("gfx: frame record exceeds size cap")

// ErrMalformedHeader is returned (wrapped, with detail) when a stream
// header line does not parse.
var ErrMalformedHeader = errors.New("gfx: malformed frame header")

// StreamFormat selects the wire encoding of a served frame stream.
type StreamFormat string

const (
	// FormatFull is the default golden-pinned stream: every record a
	// self-contained EZFRAME PNG.
	FormatFull StreamFormat = "full"
	// FormatDelta interleaves EZDELTA dirty-tile patch records between
	// periodic EZFRAME keyframes. Clients opt in via ?format=delta or
	// Accept: application/x-easypap-frames-delta.
	FormatDelta StreamFormat = "delta"
)

// StreamFrame is one decoded record of a frame stream.
type StreamFrame struct {
	Window string // source window ("main", "tiling", "activity-rank2", ...)
	Iter   int    // 1-based iteration the frame belongs to
	PNG    []byte // the encoded image
}

// Decode parses the PNG payload back into an image.
func (f *StreamFrame) Decode() (*img2d.Image, error) {
	return img2d.DecodePNG(bytes.NewReader(f.PNG))
}

// WriteFrame encodes img as PNG and writes one stream record to w.
// Window names must not contain whitespace (the run loop's names never
// do).
func WriteFrame(w io.Writer, window string, iter int, img *img2d.Image) error {
	if strings.ContainsAny(window, " \t\n") {
		return fmt.Errorf("gfx: window name %q contains whitespace", window)
	}
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		return fmt.Errorf("gfx: encoding frame %s/%d: %w", window, iter, err)
	}
	if _, err := fmt.Fprintf(w, "%s %s %d %d\n", streamMagic, window, iter, buf.Len()); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readHeader parses one record header line: magic, window, iter, size.
// It returns io.EOF at a clean end of stream, io.ErrUnexpectedEOF on a
// truncated line, ErrMalformedHeader (wrapped) on garbage, and
// ErrRecordTooLarge (wrapped) when size exceeds MaxRecordPayload.
func readHeader(r *bufio.Reader) (magic, window string, iter, size int, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return "", "", 0, 0, io.EOF
		}
		if err == io.EOF {
			return "", "", 0, 0, io.ErrUnexpectedEOF
		}
		return "", "", 0, 0, err
	}
	if _, serr := fmt.Sscanf(strings.TrimSuffix(line, "\n"), "%s %s %d %d", &magic, &window, &iter, &size); serr != nil {
		return "", "", 0, 0, fmt.Errorf("%w: %q", ErrMalformedHeader, line)
	}
	if size < 0 {
		return "", "", 0, 0, fmt.Errorf("%w: negative size in %q", ErrMalformedHeader, line)
	}
	if size > MaxRecordPayload {
		return "", "", 0, 0, fmt.Errorf("%w: %d bytes in %q (cap %d)", ErrRecordTooLarge, size, line, MaxRecordPayload)
	}
	return magic, window, iter, size, nil
}

// readPayload reads exactly size bytes, mapping a short read to
// io.ErrUnexpectedEOF.
func readPayload(r *bufio.Reader, size int) ([]byte, error) {
	p := make([]byte, size)
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}

// ReadFrame reads the next full-frame record from a frame stream. It
// returns io.EOF at a clean end of stream, io.ErrUnexpectedEOF on a
// truncated record, and errors wrapping ErrMalformedHeader /
// ErrRecordTooLarge on corrupt headers. Delta-format streams must be read
// with ReadRecord instead; an EZDELTA record here is a malformed-header
// error (plain clients never negotiate deltas, so they never see one).
func ReadFrame(r *bufio.Reader) (*StreamFrame, error) {
	magic, window, iter, size, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if magic != streamMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrMalformedHeader, magic)
	}
	png, err := readPayload(r, size)
	if err != nil {
		return nil, err
	}
	return &StreamFrame{Window: window, Iter: iter, PNG: png}, nil
}

// RecordKind distinguishes the record types of a delta-format stream.
type RecordKind int

const (
	// RecordFull is a self-contained EZFRAME PNG record (a keyframe, in a
	// delta stream).
	RecordFull RecordKind = iota
	// RecordDelta is an EZDELTA dirty-tile patch record, meaningful only
	// relative to the window's previous frame.
	RecordDelta
)

// Record is one decoded record of either kind. Encode reproduces the
// exact wire bytes, so proxies can re-publish records without caring
// about the payload.
type Record struct {
	Kind    RecordKind
	Window  string
	Iter    int
	Payload []byte // PNG bytes (RecordFull) or delta payload (RecordDelta)
}

// ReadRecord reads the next record of a (possibly delta-format) stream,
// accepting both EZFRAME and EZDELTA records. Error contract matches
// ReadFrame.
func ReadRecord(r *bufio.Reader) (*Record, error) {
	magic, window, iter, size, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	var kind RecordKind
	switch magic {
	case streamMagic:
		kind = RecordFull
	case deltaMagic:
		kind = RecordDelta
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrMalformedHeader, magic)
	}
	payload, err := readPayload(r, size)
	if err != nil {
		return nil, err
	}
	return &Record{Kind: kind, Window: window, Iter: iter, Payload: payload}, nil
}

// Encode returns the record's wire encoding (header line + payload).
func (rec *Record) Encode() []byte {
	magic := streamMagic
	if rec.Kind == RecordDelta {
		magic = deltaMagic
	}
	buf := make([]byte, 0, len(rec.Payload)+64)
	buf = fmt.Appendf(buf, "%s %s %d %d\n", magic, rec.Window, rec.Iter, len(rec.Payload))
	return append(buf, rec.Payload...)
}

// EncodeFrameRecord builds the wire bytes of one EZFRAME record from an
// already-encoded PNG payload.
func EncodeFrameRecord(window string, iter int, png []byte) ([]byte, error) {
	if strings.ContainsAny(window, " \t\n") {
		return nil, fmt.Errorf("gfx: window name %q contains whitespace", window)
	}
	rec := Record{Kind: RecordFull, Window: window, Iter: iter, Payload: png}
	return rec.Encode(), nil
}

// EncodeDeltaRecord builds the wire bytes of one EZDELTA record from an
// encoded delta payload (see EncodeDelta).
func EncodeDeltaRecord(window string, iter int, payload []byte) ([]byte, error) {
	if strings.ContainsAny(window, " \t\n") {
		return nil, fmt.Errorf("gfx: window name %q contains whitespace", window)
	}
	rec := Record{Kind: RecordDelta, Window: window, Iter: iter, Payload: payload}
	return rec.Encode(), nil
}

// StreamSink is a FrameSink that appends stream records to an io.Writer —
// the live-frames backend of the daemon. If the writer also implements
// Flush() error (e.g. a bufio.Writer or an HTTP response wrapper), every
// frame is flushed so subscribers see it as soon as it is rendered.
type StreamSink struct {
	W io.Writer

	// Windows, when non-empty, selects which windows are streamed
	// (typically just "main"); others are dropped.
	Windows []string
}

// NewStreamSink streams every window's frames to w.
func NewStreamSink(w io.Writer) *StreamSink { return &StreamSink{W: w} }

// Frame implements FrameSink.
func (s *StreamSink) Frame(window string, iter int, img *img2d.Image) error {
	if len(s.Windows) > 0 {
		keep := false
		for _, w := range s.Windows {
			if w == window {
				keep = true
				break
			}
		}
		if !keep {
			return nil
		}
	}
	if err := WriteFrame(s.W, window, iter, img); err != nil {
		return err
	}
	if f, ok := s.W.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// Close implements FrameSink; the underlying writer is owned by the
// caller.
func (s *StreamSink) Close() error {
	if f, ok := s.W.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}
