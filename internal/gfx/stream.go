package gfx

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"easypap/internal/img2d"
)

// The frame stream format is how easypapd serves live frames over HTTP
// (GET /v1/jobs/{id}/frames): a sequence of self-delimiting records, each
// a one-line ASCII header followed by the PNG bytes:
//
//	EZFRAME <window> <iter> <png-bytes>\n
//	<png-bytes bytes of PNG data>
//
// The header is trivially greppable, the payload is a standard PNG, and a
// reader needs no state beyond "read a line, then N bytes" — deliberately
// simpler than multipart MIME so curl users can split it with a ten-line
// script.

// streamMagic starts every frame header line.
const streamMagic = "EZFRAME"

// StreamFrame is one decoded record of a frame stream.
type StreamFrame struct {
	Window string // source window ("main", "tiling", "activity-rank2", ...)
	Iter   int    // 1-based iteration the frame belongs to
	PNG    []byte // the encoded image
}

// Decode parses the PNG payload back into an image.
func (f *StreamFrame) Decode() (*img2d.Image, error) {
	return img2d.DecodePNG(bytes.NewReader(f.PNG))
}

// WriteFrame encodes img as PNG and writes one stream record to w.
// Window names must not contain whitespace (the run loop's names never
// do).
func WriteFrame(w io.Writer, window string, iter int, img *img2d.Image) error {
	if strings.ContainsAny(window, " \t\n") {
		return fmt.Errorf("gfx: window name %q contains whitespace", window)
	}
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		return fmt.Errorf("gfx: encoding frame %s/%d: %w", window, iter, err)
	}
	if _, err := fmt.Fprintf(w, "%s %s %d %d\n", streamMagic, window, iter, buf.Len()); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadFrame reads the next record from a frame stream. It returns io.EOF
// at a clean end of stream and io.ErrUnexpectedEOF on a truncated record.
func ReadFrame(r *bufio.Reader) (*StreamFrame, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, io.EOF
		}
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var magic, window string
	var iter, size int
	if _, err := fmt.Sscanf(strings.TrimSuffix(line, "\n"), "%s %s %d %d", &magic, &window, &iter, &size); err != nil || magic != streamMagic {
		return nil, fmt.Errorf("gfx: malformed frame header %q", line)
	}
	if size < 0 {
		return nil, fmt.Errorf("gfx: negative frame size in header %q", line)
	}
	png := make([]byte, size)
	if _, err := io.ReadFull(r, png); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return &StreamFrame{Window: window, Iter: iter, PNG: png}, nil
}

// StreamSink is a FrameSink that appends stream records to an io.Writer —
// the live-frames backend of the daemon. If the writer also implements
// Flush() error (e.g. a bufio.Writer or an HTTP response wrapper), every
// frame is flushed so subscribers see it as soon as it is rendered.
type StreamSink struct {
	W io.Writer

	// Windows, when non-empty, selects which windows are streamed
	// (typically just "main"); others are dropped.
	Windows []string
}

// NewStreamSink streams every window's frames to w.
func NewStreamSink(w io.Writer) *StreamSink { return &StreamSink{W: w} }

// Frame implements FrameSink.
func (s *StreamSink) Frame(window string, iter int, img *img2d.Image) error {
	if len(s.Windows) > 0 {
		keep := false
		for _, w := range s.Windows {
			if w == window {
				keep = true
				break
			}
		}
		if !keep {
			return nil
		}
	}
	if err := WriteFrame(s.W, window, iter, img); err != nil {
		return err
	}
	if f, ok := s.W.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// Close implements FrameSink; the underlying writer is owned by the
// caller.
func (s *StreamSink) Close() error {
	if f, ok := s.W.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}
