package gfx

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"math/rand"
	"testing"

	"easypap/internal/img2d"
)

// patchImage builds a deterministic pseudo-random image; twoColor tiles
// are restricted to two colors so the encoder picks bitplane2 for them.
func patchImage(dim int, seed int64, twoColor bool) *img2d.Image {
	rng := rand.New(rand.NewSource(seed))
	im := img2d.New(dim)
	for y := 0; y < dim; y++ {
		row := im.Row(y)
		for x := range row {
			if twoColor {
				if rng.Intn(2) == 0 {
					row[x] = 0xff0000ff
				} else {
					row[x] = 0x000000ff
				}
			} else {
				row[x] = rng.Uint32()
			}
		}
	}
	return im
}

func fullTileSet(dim, tileW, tileH int) *TileSet {
	set := &TileSet{TilesX: dim / tileW, TilesY: dim / tileH, TileW: tileW, TileH: tileH}
	for t := 0; t < set.TilesX*set.TilesY; t++ {
		set.Tiles = append(set.Tiles, int32(t))
	}
	return set
}

// Round trip: patching a stale base with the dirty tiles of a new image
// reproduces the new image exactly, for both encodings.
func TestDeltaRoundTrip(t *testing.T) {
	for _, twoColor := range []bool{true, false} {
		for _, seed := range []int64{1, 7, 42} {
			next := patchImage(32, seed, twoColor)
			base := patchImage(32, seed+100, twoColor)
			// Dirty = every tile, so the whole base must be overwritten.
			set := fullTileSet(32, 8, 8)
			payload, err := EncodeDelta(next, set)
			if err != nil {
				t.Fatal(err)
			}
			if err := ApplyDelta(base, payload); err != nil {
				t.Fatal(err)
			}
			if !base.Equal(next) {
				t.Errorf("seed %d twoColor=%v: patched image differs (%d pixels)",
					seed, twoColor, base.DiffCount(next))
			}
		}
	}
}

// Partial dirty sets only touch their tiles.
func TestDeltaPartialPatch(t *testing.T) {
	next := patchImage(32, 3, false)
	base := patchImage(32, 4, false)
	want := base.Clone()
	set := &TileSet{TilesX: 4, TilesY: 4, TileW: 8, TileH: 8, Tiles: []int32{0, 5, 15}}
	payload, err := EncodeDelta(next, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(base, payload); err != nil {
		t.Fatal(err)
	}
	for _, tile := range set.Tiles {
		tx, ty := int(tile)%4, int(tile)/4
		for y := ty * 8; y < ty*8+8; y++ {
			for x := tx * 8; x < tx*8+8; x++ {
				want.Set(y, x, next.Get(y, x))
			}
		}
	}
	if !base.Equal(want) {
		t.Errorf("partial patch touched pixels outside its tiles (%d diffs)", base.DiffCount(want))
	}
}

// Two-color tiles must compress: the bitplane2 encoding packs 1 bit per
// pixel instead of 32.
func TestDeltaBitplaneCompression(t *testing.T) {
	dim, tile := 64, 16
	binaryImg := patchImage(dim, 9, true)
	noisyImg := patchImage(dim, 9, false)
	set := fullTileSet(dim, tile, tile)
	packed, err := EncodeDelta(binaryImg, set)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeDelta(noisyImg, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed)*8 > len(raw) {
		t.Errorf("bitplane2 payload %dB not ~32x under raw %dB", len(packed), len(raw))
	}
}

// Corrupt delta payloads must error out, never panic or write out of
// bounds.
func TestDeltaMalformedPayloadBattery(t *testing.T) {
	img := patchImage(32, 5, true)
	set := fullTileSet(32, 8, 8)
	good, err := EncodeDelta(img, set)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(mut func(p []byte) []byte) []byte {
		p := append([]byte(nil), good...)
		return mut(p)
	}
	// craft builds a payload with the good header (ntiles patched) over a
	// hand-built, properly DEFLATE-compressed tile stream — for corruption
	// below the compression layer.
	craft := func(ntiles uint32, tiles []byte) []byte {
		p := append([]byte(nil), good[:14]...)
		binary.LittleEndian.PutUint32(p[10:], ntiles)
		var z bytes.Buffer
		zw, err := flate.NewWriter(&z, flate.BestSpeed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(tiles); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return append(p, z.Bytes()...)
	}
	// One raw tile (index 0) so the crafted streams are structurally
	// complete up to the corrupted field.
	rawTile := make([]byte, 5+4*8*8)
	rawTile[4] = 0 // enc = raw
	badIndex := append([]byte(nil), rawTile...)
	binary.LittleEndian.PutUint32(badIndex[0:], 99)
	badEnc := append([]byte(nil), rawTile...)
	badEnc[4] = 42

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"truncated header", good[:10]},
		{"bad version", mutate(func(p []byte) []byte { p[0] = 99; return p })},
		{"wrong dim", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint32(p[2:], 64); return p })},
		{"zero tileW", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint16(p[6:], 0); return p })},
		{"non-dividing tileH", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint16(p[8:], 7); return p })},
		{"tile count over grid", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint32(p[10:], 1000); return p })},
		{"tile index out of range", craft(1, badIndex)},
		{"unknown encoding", craft(1, badEnc)},
		{"tile stream under-claims", craft(2, rawTile)},
		{"tile stream over-claims", craft(1, append(append([]byte(nil), rawTile...), rawTile...))},
		{"truncated tile body", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte(nil), good...), 0xde, 0xad)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := img.Clone()
			if err := ApplyDelta(target, tc.payload); err == nil {
				t.Errorf("corrupt payload accepted")
			}
		})
	}
}

// The reassembler applies keyframes and deltas in order and refuses a
// delta with no base.
func TestReassembler(t *testing.T) {
	frame1 := patchImage(32, 11, true)
	frame2 := frame1.Clone()
	// Mutate one tile to two known colors.
	frame2.FillRect(8, 8, 8, 8, 0x00ff00ff)
	set := &TileSet{TilesX: 4, TilesY: 4, TileW: 8, TileH: 8, Tiles: []int32{5}}
	payload, err := EncodeDelta(frame2, set)
	if err != nil {
		t.Fatal(err)
	}

	var png bytes.Buffer
	if err := frame1.EncodePNG(&png); err != nil {
		t.Fatal(err)
	}

	ra := NewReassembler()
	if _, err := ra.Apply(&Record{Kind: RecordDelta, Window: "main", Iter: 2, Payload: payload}); err == nil {
		t.Error("delta before keyframe accepted")
	}
	img, err := ra.Apply(&Record{Kind: RecordFull, Window: "main", Iter: 1, Payload: png.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(frame1) {
		t.Error("keyframe did not decode to the original image")
	}
	img, err = ra.Apply(&Record{Kind: RecordDelta, Window: "main", Iter: 2, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(frame2) {
		t.Errorf("keyframe+delta differs from the true frame (%d diffs)", img.DiffCount(frame2))
	}
}
