package gfx_test

// Golden-file regression for the frame stream wire format. The cluster
// layer proxies /v1/jobs/{id}/frames byte-for-byte between nodes, so
// any drift in the encoder — header layout, PNG encoding, record
// framing — would silently corrupt every proxied stream. This test
// encodes a fixed, fully deterministic frame sequence and compares it
// against a checked-in golden file.
//
// The golden stream has two sections: the original EZFRAME-only
// sequence (the default full format, unchanged since PR 2), followed by
// a delta-format sub-sequence — one keyframe plus EZDELTA dirty-tile
// records covering both tile encodings (bitplane2 and raw). Extending
// the file instead of adding a second golden keeps the "full prefix
// unchanged" property visible in the diff whenever it is regenerated.
//
// Refresh after an *intentional* format change with:
//
//	go test ./internal/gfx/ -run TestStreamGolden -update
//
// (Go's image/png output is deterministic for a given Go release; a
// toolchain major bump may legitimately re-golden this file — the
// decode-level assertions below tell that case apart from real
// corruption.)

import (
	"bufio"
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/stream.golden"

// goldenSequence is the fixed frame sequence: three windows across two
// iterations, tiny deterministic images with distinct patterns per
// window so a swapped or truncated record cannot compare equal.
func goldenSequence() []struct {
	window string
	iter   int
	img    *img2d.Image
} {
	mk := func(dim int, f func(y, x int) img2d.Pixel) *img2d.Image {
		im := img2d.New(dim)
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				im.Set(y, x, f(y, x))
			}
		}
		return im
	}
	gradient := func(iter int) *img2d.Image {
		return mk(16, func(y, x int) img2d.Pixel {
			return img2d.RGB(uint8(x*16), uint8(y*16), uint8(iter*40))
		})
	}
	checker := func(iter int) *img2d.Image {
		return mk(8, func(y, x int) img2d.Pixel {
			if (x+y+iter)%2 == 0 {
				return img2d.RGB(255, 255, 255)
			}
			return img2d.RGB(0, 0, 0)
		})
	}
	diag := func(iter int) *img2d.Image {
		return mk(12, func(y, x int) img2d.Pixel {
			return img2d.RGB(uint8((x*y+iter)%256), uint8(x*21), uint8(y*21))
		})
	}
	return []struct {
		window string
		iter   int
		img    *img2d.Image
	}{
		{"main", 1, gradient(1)},
		{"tiling", 1, checker(1)},
		{"activity", 1, diag(1)},
		{"main", 2, gradient(2)},
		{"tiling", 2, checker(2)},
		{"activity", 2, diag(2)},
	}
}

func encodeGoldenSequence(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range goldenSequence() {
		if err := gfx.WriteFrame(&buf, f.window, f.iter, f.img); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// goldenDeltaSequence builds the delta-format section: a 16x16 two-color
// keyframe (iter 3) and two EZDELTA records — iter 4 patches one
// two-color tile (bitplane2 encoding), iter 5 patches one gradient tile
// (raw encoding). Returns the wire bytes plus the three expected full
// images in stream order.
func goldenDeltaSequence(t *testing.T) ([]byte, []*img2d.Image) {
	t.Helper()
	const dim, tile = 16, 4
	base := img2d.New(dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			if (x+y)%2 == 0 {
				base.Set(y, x, img2d.RGB(255, 0, 0))
			} else {
				base.Set(y, x, img2d.RGB(0, 0, 0))
			}
		}
	}
	// Iter 4: tile 5 (tx=1, ty=1) flips to solid green — two colors in
	// the tile, so the encoder packs it as bitplane2.
	f4 := base.Clone()
	f4.FillRect(1*tile, 1*tile, tile, tile, img2d.RGB(0, 255, 0))
	// Iter 5: tile 10 (tx=2, ty=2) becomes a gradient — >2 colors, raw.
	f5 := f4.Clone()
	for y := 2 * tile; y < 3*tile; y++ {
		for x := 2 * tile; x < 3*tile; x++ {
			f5.Set(y, x, img2d.RGB(uint8(x*16), uint8(y*16), 128))
		}
	}

	var buf bytes.Buffer
	var png bytes.Buffer
	if err := base.EncodePNG(&png); err != nil {
		t.Fatal(err)
	}
	key, err := gfx.EncodeFrameRecord("main", 3, png.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(key)
	grid := &gfx.TileSet{TilesX: dim / tile, TilesY: dim / tile, TileW: tile, TileH: tile}
	for _, d := range []struct {
		iter int
		img  *img2d.Image
		dirt []int32
	}{
		{4, f4, []int32{5}},
		{5, f5, []int32{10}},
	} {
		set := &gfx.TileSet{TilesX: grid.TilesX, TilesY: grid.TilesY, TileW: tile, TileH: tile, Tiles: d.dirt}
		payload, err := gfx.EncodeDelta(d.img, set)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := gfx.EncodeDeltaRecord("main", d.iter, payload)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(rec)
	}
	return buf.Bytes(), []*img2d.Image{base, f4, f5}
}

func TestStreamGolden(t *testing.T) {
	fullSection := encodeGoldenSequence(t)
	deltaSection, deltaImgs := goldenDeltaSequence(t)
	got := append(append([]byte(nil), fullSection...), deltaSection...)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}

	// Structural check first: if the bytes differ, report whether the
	// stream still *decodes* to the same frames — that distinguishes a
	// benign PNG-encoder change (re-golden) from format corruption
	// (fix the encoder).
	if !bytes.Equal(got, want) {
		structural := "and no longer decodes to the same frames — the stream format broke"
		if framesEquivalent(t, got, want) {
			structural = "but still decodes to identical frames — likely a PNG encoder change; re-golden with -update if intentional"
		}
		t.Fatalf("encoded stream differs from %s (%d vs %d bytes), %s",
			goldenPath, len(got), len(want), structural)
	}

	// The full-format section must still read with the plain ReadFrame
	// reader — old clients never see EZDELTA on a default stream, and the
	// golden's EZFRAME prefix is byte-compatible with pre-delta golden
	// files.
	r := bufio.NewReader(bytes.NewReader(want))
	seq := goldenSequence()
	for i, exp := range seq {
		f, err := gfx.ReadFrame(r)
		if err != nil {
			t.Fatalf("decoding golden record %d: %v", i, err)
		}
		if f.Window != exp.window || f.Iter != exp.iter {
			t.Fatalf("record %d = %s/%d, want %s/%d", i, f.Window, f.Iter, exp.window, exp.iter)
		}
		im, err := f.Decode()
		if err != nil {
			t.Fatalf("record %d PNG: %v", i, err)
		}
		if !im.Equal(exp.img) {
			t.Errorf("record %d: decoded pixels differ from source image", i)
		}
	}

	// The delta section reads with ReadRecord and reassembles to the
	// expected full images: keyframe, bitplane2 patch, raw patch.
	ra := gfx.NewReassembler()
	wantKinds := []gfx.RecordKind{gfx.RecordFull, gfx.RecordDelta, gfx.RecordDelta}
	for i, kind := range wantKinds {
		rec, err := gfx.ReadRecord(r)
		if err != nil {
			t.Fatalf("decoding delta-section record %d: %v", i, err)
		}
		if rec.Kind != kind || rec.Window != "main" || rec.Iter != 3+i {
			t.Fatalf("delta-section record %d = kind %d %s/%d, want kind %d main/%d",
				i, rec.Kind, rec.Window, rec.Iter, kind, 3+i)
		}
		im, err := ra.Apply(rec)
		if err != nil {
			t.Fatalf("reassembling delta-section record %d: %v", i, err)
		}
		if !im.Equal(deltaImgs[i]) {
			t.Errorf("delta-section record %d: reassembled pixels differ from source image", i)
		}
	}
	if _, err := gfx.ReadRecord(r); err != io.EOF {
		t.Fatalf("expected clean EOF after golden records, got %v", err)
	}
}

// framesEquivalent reports whether two encoded streams decode (and
// reassemble, for delta records) to identical frame sequences — same
// windows, iterations, kinds and pixels.
func framesEquivalent(t *testing.T, a, b []byte) bool {
	t.Helper()
	ra, rb := bufio.NewReader(bytes.NewReader(a)), bufio.NewReader(bytes.NewReader(b))
	asmA, asmB := gfx.NewReassembler(), gfx.NewReassembler()
	for {
		fa, erra := gfx.ReadRecord(ra)
		fb, errb := gfx.ReadRecord(rb)
		if erra == io.EOF && errb == io.EOF {
			return true
		}
		if erra != nil || errb != nil {
			return false
		}
		if fa.Window != fb.Window || fa.Iter != fb.Iter || fa.Kind != fb.Kind {
			return false
		}
		ia, ea := asmA.Apply(fa)
		ib, eb := asmB.Apply(fb)
		if ea != nil || eb != nil || !ia.Equal(ib) {
			return false
		}
	}
}
