package gfx_test

// Golden-file regression for the frame stream wire format. The cluster
// layer proxies /v1/jobs/{id}/frames byte-for-byte between nodes, so
// any drift in the encoder — header layout, PNG encoding, record
// framing — would silently corrupt every proxied stream. This test
// encodes a fixed, fully deterministic frame sequence and compares it
// against a checked-in golden file.
//
// Refresh after an *intentional* format change with:
//
//	go test ./internal/gfx/ -run TestStreamGolden -update
//
// (Go's image/png output is deterministic for a given Go release; a
// toolchain major bump may legitimately re-golden this file — the
// decode-level assertions below tell that case apart from real
// corruption.)

import (
	"bufio"
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"easypap/internal/gfx"
	"easypap/internal/img2d"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/stream.golden"

// goldenSequence is the fixed frame sequence: three windows across two
// iterations, tiny deterministic images with distinct patterns per
// window so a swapped or truncated record cannot compare equal.
func goldenSequence() []struct {
	window string
	iter   int
	img    *img2d.Image
} {
	mk := func(dim int, f func(y, x int) img2d.Pixel) *img2d.Image {
		im := img2d.New(dim)
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				im.Set(y, x, f(y, x))
			}
		}
		return im
	}
	gradient := func(iter int) *img2d.Image {
		return mk(16, func(y, x int) img2d.Pixel {
			return img2d.RGB(uint8(x*16), uint8(y*16), uint8(iter*40))
		})
	}
	checker := func(iter int) *img2d.Image {
		return mk(8, func(y, x int) img2d.Pixel {
			if (x+y+iter)%2 == 0 {
				return img2d.RGB(255, 255, 255)
			}
			return img2d.RGB(0, 0, 0)
		})
	}
	diag := func(iter int) *img2d.Image {
		return mk(12, func(y, x int) img2d.Pixel {
			return img2d.RGB(uint8((x*y+iter)%256), uint8(x*21), uint8(y*21))
		})
	}
	return []struct {
		window string
		iter   int
		img    *img2d.Image
	}{
		{"main", 1, gradient(1)},
		{"tiling", 1, checker(1)},
		{"activity", 1, diag(1)},
		{"main", 2, gradient(2)},
		{"tiling", 2, checker(2)},
		{"activity", 2, diag(2)},
	}
}

func encodeGoldenSequence(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range goldenSequence() {
		if err := gfx.WriteFrame(&buf, f.window, f.iter, f.img); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestStreamGolden(t *testing.T) {
	got := encodeGoldenSequence(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}

	// Structural check first: if the bytes differ, report whether the
	// stream still *decodes* to the same frames — that distinguishes a
	// benign PNG-encoder change (re-golden) from format corruption
	// (fix the encoder).
	if !bytes.Equal(got, want) {
		structural := "and no longer decodes to the same frames — the stream format broke"
		if framesEquivalent(t, got, want) {
			structural = "but still decodes to identical frames — likely a PNG encoder change; re-golden with -update if intentional"
		}
		t.Fatalf("encoded stream differs from %s (%d vs %d bytes), %s",
			goldenPath, len(got), len(want), structural)
	}

	// The golden bytes must round-trip through the reader: headers,
	// sizes and pixel content all intact.
	r := bufio.NewReader(bytes.NewReader(want))
	seq := goldenSequence()
	for i, exp := range seq {
		f, err := gfx.ReadFrame(r)
		if err != nil {
			t.Fatalf("decoding golden record %d: %v", i, err)
		}
		if f.Window != exp.window || f.Iter != exp.iter {
			t.Fatalf("record %d = %s/%d, want %s/%d", i, f.Window, f.Iter, exp.window, exp.iter)
		}
		im, err := f.Decode()
		if err != nil {
			t.Fatalf("record %d PNG: %v", i, err)
		}
		if !im.Equal(exp.img) {
			t.Errorf("record %d: decoded pixels differ from source image", i)
		}
	}
	if _, err := gfx.ReadFrame(r); err != io.EOF {
		t.Fatalf("expected clean EOF after %d records, got %v", len(seq), err)
	}
}

// framesEquivalent reports whether two encoded streams decode to
// identical frame sequences (same windows, iterations and pixels).
func framesEquivalent(t *testing.T, a, b []byte) bool {
	t.Helper()
	ra, rb := bufio.NewReader(bytes.NewReader(a)), bufio.NewReader(bytes.NewReader(b))
	for {
		fa, erra := gfx.ReadFrame(ra)
		fb, errb := gfx.ReadFrame(rb)
		if erra == io.EOF && errb == io.EOF {
			return true
		}
		if erra != nil || errb != nil {
			return false
		}
		if fa.Window != fb.Window || fa.Iter != fb.Iter {
			return false
		}
		ia, ea := fa.Decode()
		ib, eb := fb.Decode()
		if ea != nil || eb != nil || !ia.Equal(ib) {
			return false
		}
	}
}
