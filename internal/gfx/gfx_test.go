package gfx

import (
	"os"
	"path/filepath"
	"testing"

	"easypap/internal/img2d"
)

func TestNullSink(t *testing.T) {
	var s Null
	if err := s.Frame("main", 1, img2d.New(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPNGSinkWritesFrames(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "frames")
	s, err := NewPNGSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	im := img2d.New(8)
	im.Fill(img2d.Red)
	for iter := 1; iter <= 3; iter++ {
		if err := s.Frame("main", iter, im); err != nil {
			t.Fatal(err)
		}
	}
	if s.Written() != 3 {
		t.Errorf("written = %d", s.Written())
	}
	for _, name := range []string{"main_0001.png", "main_0002.png", "main_0003.png"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing frame %s: %v", name, err)
		}
	}
	back, err := img2d.LoadPNG(filepath.Join(dir, "main_0001.png"))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(im) {
		t.Error("frame content altered")
	}
}

func TestPNGSinkEvery(t *testing.T) {
	s, err := NewPNGSink(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	im := img2d.New(4)
	for iter := 1; iter <= 9; iter++ {
		if err := s.Frame("main", iter, im); err != nil {
			t.Fatal(err)
		}
	}
	if s.Written() != 3 { // iterations 3, 6, 9
		t.Errorf("written = %d, want 3", s.Written())
	}
}

func TestMemorySinkClones(t *testing.T) {
	m := NewMemory()
	im := img2d.New(4)
	im.Fill(img2d.Green)
	if err := m.Frame("tiling", 1, im); err != nil {
		t.Fatal(err)
	}
	im.Fill(img2d.Red) // mutate after handing over
	if m.Frames["tiling"].Get(0, 0) != img2d.Green {
		t.Error("Memory sink did not clone the frame")
	}
	if m.Count != 1 {
		t.Errorf("count = %d", m.Count)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	multi := Multi{a, b}
	if err := multi.Frame("main", 1, img2d.New(4)); err != nil {
		t.Fatal(err)
	}
	if a.Count != 1 || b.Count != 1 {
		t.Error("multi sink did not fan out")
	}
	if err := multi.Close(); err != nil {
		t.Fatal(err)
	}
}
