package gfx

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"easypap/internal/img2d"
)

// Dirty-tile delta frames.
//
// Lazy kernels already know exactly which tiles changed each iteration —
// tilegrid.Frontier's active set. A delta-format stream exploits that: a
// periodic EZFRAME keyframe carries the full PNG, and between keyframes
// each iteration ships only the dirty tiles as an EZDELTA record:
//
//	EZDELTA <window> <iter> <size>\n
//	<size bytes of binary payload>
//
// Payload layout (little-endian):
//
//	u16 version   (deltaVersion = 2)
//	u32 dim       image side length
//	u16 tileW     tile width in pixels
//	u16 tileH     tile height in pixels
//	u32 ntiles    number of tile patches that follow
//	DEFLATE-compressed tile stream of ntiles ×:
//	  u32 tile    tile index (row-major: ty*tilesX + tx)
//	  u8  enc     0 = raw, 1 = bitplane2
//	  raw:        tileW*tileH u32 pixels, row-major within the tile
//	  bitplane2:  u32 c0, u32 c1, ceil(tileW*tileH/8) bytes of bits
//	              (LSB-first; bit set → c1, clear → c0)
//
// bitplane2 is the life_bitpack trick: binary-state kernels (life, fire
// fronts, toppled/untoppled sandpile cells) render tiles with at most two
// distinct colors, which compress 32x over raw pixels. The encoder picks
// bitplane2 per tile whenever the tile has ≤ 2 distinct colors. The tile
// stream is then DEFLATE-compressed, because the competing EZFRAME
// keyframe is a PNG — itself DEFLATE over the whole frame — and an
// uncompressed patch would lose to it on the sparse near-uniform images
// lazy kernels produce.
//
// The tile grid is uniform (sched.TileGrid requires dim divisible by the
// tile dimensions), so every patch is exactly tileW x tileH.

// deltaMagic starts every delta record header line.
const deltaMagic = "EZDELTA"

// deltaVersion is the current delta payload version.
const deltaVersion = 2

// Tile patch encodings.
const (
	deltaEncRaw       = 0
	deltaEncBitplane2 = 1
)

// TileSet describes which tiles of a frame changed this iteration, in the
// frame's tile-grid geometry. Tiles holds row-major tile indices.
type TileSet struct {
	TilesX, TilesY int
	TileW, TileH   int
	Tiles          []int32
}

// DirtySink is the optional extension of FrameSink that accepts
// frame-plus-dirty-tiles deliveries. The run loop uses it when the kernel
// reported its active tile set for the displayed iteration; sinks that do
// not implement it keep receiving plain Frame calls.
type DirtySink interface {
	// FrameDirty delivers the rendered image plus the set of tiles that
	// changed since the previous frame of the same window. Implementations
	// must not retain img or dirty after returning.
	FrameDirty(window string, iter int, img *img2d.Image, dirty *TileSet) error
}

// EncodeDelta builds a delta payload patching the dirty tiles of img.
// The caller guarantees every pixel outside dirty's tiles is unchanged
// since the window's previous frame (the frontier no-copy invariant).
func EncodeDelta(img *img2d.Image, dirty *TileSet) ([]byte, error) {
	dim := img.Dim()
	if dirty.TileW <= 0 || dirty.TileH <= 0 ||
		dirty.TilesX*dirty.TileW != dim || dirty.TilesY*dirty.TileH != dim {
		return nil, fmt.Errorf("gfx: tile set %dx%d tiles of %dx%d does not cover dim %d",
			dirty.TilesX, dirty.TilesY, dirty.TileW, dirty.TileH, dim)
	}
	var buf bytes.Buffer
	npix := dirty.TileW * dirty.TileH
	bits := make([]byte, (npix+7)/8)
	var word [4]byte
	for _, t := range dirty.Tiles {
		if t < 0 || int(t) >= dirty.TilesX*dirty.TilesY {
			return nil, fmt.Errorf("gfx: tile index %d out of range [0,%d)", t, dirty.TilesX*dirty.TilesY)
		}
		tx, ty := int(t)%dirty.TilesX, int(t)/dirty.TilesX
		x0, y0 := tx*dirty.TileW, ty*dirty.TileH

		// One scan decides the encoding: collect up to two distinct colors.
		var c0, c1 img2d.Pixel
		ncolors := 0
		for y := y0; y < y0+dirty.TileH && ncolors <= 2; y++ {
			row := img.Row(y)[x0 : x0+dirty.TileW]
			for _, p := range row {
				switch {
				case ncolors == 0:
					c0, ncolors = p, 1
				case ncolors == 1 && p != c0:
					c1, ncolors = p, 2
				case ncolors == 2 && p != c0 && p != c1:
					ncolors = 3
				}
			}
		}

		binary.LittleEndian.PutUint32(word[:], uint32(t))
		buf.Write(word[:])
		if ncolors <= 2 {
			buf.WriteByte(deltaEncBitplane2)
			binary.LittleEndian.PutUint32(word[:], c0)
			buf.Write(word[:])
			binary.LittleEndian.PutUint32(word[:], c1)
			buf.Write(word[:])
			for i := range bits {
				bits[i] = 0
			}
			i := 0
			for y := y0; y < y0+dirty.TileH; y++ {
				row := img.Row(y)[x0 : x0+dirty.TileW]
				for _, p := range row {
					if p == c1 {
						bits[i>>3] |= 1 << (i & 7)
					}
					i++
				}
			}
			buf.Write(bits)
		} else {
			buf.WriteByte(deltaEncRaw)
			for y := y0; y < y0+dirty.TileH; y++ {
				row := img.Row(y)[x0 : x0+dirty.TileW]
				for _, p := range row {
					binary.LittleEndian.PutUint32(word[:], p)
					buf.Write(word[:])
				}
			}
		}
	}

	out := make([]byte, 14, 14+buf.Len()/2)
	binary.LittleEndian.PutUint16(out[0:], deltaVersion)
	binary.LittleEndian.PutUint32(out[2:], uint32(dim))
	binary.LittleEndian.PutUint16(out[6:], uint16(dirty.TileW))
	binary.LittleEndian.PutUint16(out[8:], uint16(dirty.TileH))
	binary.LittleEndian.PutUint32(out[10:], uint32(len(dirty.Tiles)))
	zbuf := bytes.NewBuffer(out)
	zw, err := flate.NewWriter(zbuf, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(buf.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return zbuf.Bytes(), nil
}

// ApplyDelta patches img in place with the tile patches of a delta
// payload. img must be the window's previous frame at the delta's
// geometry. Every structural field is validated so a corrupt or malicious
// payload errors out instead of panicking or writing out of bounds.
func ApplyDelta(img *img2d.Image, payload []byte) error {
	if len(payload) < 14 {
		return fmt.Errorf("gfx: delta payload truncated (%d bytes)", len(payload))
	}
	version := binary.LittleEndian.Uint16(payload[0:])
	if version != deltaVersion {
		return fmt.Errorf("gfx: unsupported delta version %d", version)
	}
	dim := int(binary.LittleEndian.Uint32(payload[2:]))
	tileW := int(binary.LittleEndian.Uint16(payload[6:]))
	tileH := int(binary.LittleEndian.Uint16(payload[8:]))
	ntiles := int(binary.LittleEndian.Uint32(payload[10:]))
	if dim != img.Dim() {
		return fmt.Errorf("gfx: delta dim %d does not match image dim %d", dim, img.Dim())
	}
	if tileW <= 0 || tileH <= 0 || dim%tileW != 0 || dim%tileH != 0 {
		return fmt.Errorf("gfx: delta tile geometry %dx%d invalid for dim %d", tileW, tileH, dim)
	}
	tilesX, tilesY := dim/tileW, dim/tileH
	if ntiles > tilesX*tilesY {
		return fmt.Errorf("gfx: delta claims %d tiles, grid has %d", ntiles, tilesX*tilesY)
	}
	// The tile stream is DEFLATE-compressed; read it tile by tile so a
	// corrupt ntiles or a decompression bomb can at most make us read the
	// bounded per-tile sizes below, never allocate from attacker data.
	br := bytes.NewReader(payload[14:])
	// bytes.Reader is an io.ByteReader, so flate reads it unbuffered and
	// br.Len() is exact once the stream's final block ends.
	zr := flate.NewReader(br)
	defer zr.Close()
	npix := tileW * tileH
	nbits := (npix + 7) / 8
	thdr := make([]byte, 5)
	body := make([]byte, max(4*npix, 8+nbits))
	for k := 0; k < ntiles; k++ {
		if _, err := io.ReadFull(zr, thdr); err != nil {
			return fmt.Errorf("gfx: delta payload truncated in tile %d header: %w", k, err)
		}
		t := int(binary.LittleEndian.Uint32(thdr[0:]))
		enc := thdr[4]
		if t >= tilesX*tilesY {
			return fmt.Errorf("gfx: delta tile index %d out of range [0,%d)", t, tilesX*tilesY)
		}
		tx, ty := t%tilesX, t/tilesX
		x0, y0 := tx*tileW, ty*tileH
		switch enc {
		case deltaEncRaw:
			p := body[:4*npix]
			if _, err := io.ReadFull(zr, p); err != nil {
				return fmt.Errorf("gfx: delta payload truncated in tile %d pixels: %w", k, err)
			}
			i := 0
			for y := y0; y < y0+tileH; y++ {
				row := img.Row(y)[x0 : x0+tileW]
				for x := range row {
					row[x] = binary.LittleEndian.Uint32(p[i:])
					i += 4
				}
			}
		case deltaEncBitplane2:
			p := body[:8+nbits]
			if _, err := io.ReadFull(zr, p); err != nil {
				return fmt.Errorf("gfx: delta payload truncated in tile %d bitplane: %w", k, err)
			}
			c0 := img2d.Pixel(binary.LittleEndian.Uint32(p[0:]))
			c1 := img2d.Pixel(binary.LittleEndian.Uint32(p[4:]))
			bits := p[8 : 8+nbits]
			i := 0
			for y := y0; y < y0+tileH; y++ {
				row := img.Row(y)[x0 : x0+tileW]
				for x := range row {
					if bits[i>>3]&(1<<(i&7)) != 0 {
						row[x] = c1
					} else {
						row[x] = c0
					}
					i++
				}
			}
		default:
			return fmt.Errorf("gfx: unknown delta tile encoding %d", enc)
		}
	}
	var one [1]byte
	if n, err := zr.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		return fmt.Errorf("gfx: trailing bytes after delta tiles")
	}
	if br.Len() != 0 {
		return fmt.Errorf("gfx: %d trailing bytes after delta stream", br.Len())
	}
	return nil
}

// Reassembler rebuilds full images from a delta-format record stream:
// feed it every record in order and it returns the window's current full
// image after each one. A delta arriving before the window's first
// keyframe is an error (a hub subscriber is always synced on a keyframe
// first, so this only happens on corrupt or missequenced streams).
type Reassembler struct {
	imgs map[string]*img2d.Image
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{imgs: make(map[string]*img2d.Image)}
}

// Apply incorporates one record and returns the window's resulting full
// image. The returned image aliases the reassembler's state: it is valid
// until the window's next Apply.
func (ra *Reassembler) Apply(rec *Record) (*img2d.Image, error) {
	switch rec.Kind {
	case RecordFull:
		img, err := img2d.DecodePNG(bytes.NewReader(rec.Payload))
		if err != nil {
			return nil, fmt.Errorf("gfx: decoding keyframe %s/%d: %w", rec.Window, rec.Iter, err)
		}
		ra.imgs[rec.Window] = img
		return img, nil
	case RecordDelta:
		img := ra.imgs[rec.Window]
		if img == nil {
			return nil, fmt.Errorf("gfx: delta record %s/%d before any keyframe", rec.Window, rec.Iter)
		}
		if err := ApplyDelta(img, rec.Payload); err != nil {
			return nil, err
		}
		return img, nil
	default:
		return nil, fmt.Errorf("gfx: unknown record kind %d", rec.Kind)
	}
}
