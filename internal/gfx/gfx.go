// Package gfx is the headless display layer: where EASYPAP opens SDL
// windows, this port materializes the same frames as PNG sequences (or
// discards them in performance mode). The per-iteration refresh path of the
// framework is identical; only the final sink differs (see DESIGN.md §1).
package gfx

import (
	"fmt"
	"os"
	"path/filepath"

	"easypap/internal/img2d"
)

// FrameSink receives one frame per displayed iteration. Window names
// distinguish the main view from the monitoring side windows ("main",
// "tiling", "activity", or "main-rank2" in MPI debug mode).
type FrameSink interface {
	// Frame delivers the rendered image for the given window and
	// iteration. Implementations must not retain img after returning.
	Frame(window string, iter int, img *img2d.Image) error
	// Close flushes any buffered output.
	Close() error
}

// Null is a sink that discards frames — the --no-display performance mode.
type Null struct{}

// Frame implements FrameSink by discarding the frame.
func (Null) Frame(string, int, *img2d.Image) error { return nil }

// Close implements FrameSink.
func (Null) Close() error { return nil }

// PNGSink writes frames as dir/<window>_<iter>.png. Every frame is written
// unless Every is set to n > 1, in which case only every n-th iteration is
// kept ("skipping frames" to accelerate the animation, as the paper's
// interactive mode allows).
type PNGSink struct {
	Dir   string
	Every int // keep one frame every Every iterations (0/1 = all)

	written int
}

// NewPNGSink creates the output directory eagerly so configuration errors
// surface before the run starts.
func NewPNGSink(dir string, every int) (*PNGSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gfx: %w", err)
	}
	return &PNGSink{Dir: dir, Every: every}, nil
}

// Frame implements FrameSink.
func (s *PNGSink) Frame(window string, iter int, img *img2d.Image) error {
	if s.Every > 1 && iter%s.Every != 0 {
		return nil
	}
	path := filepath.Join(s.Dir, fmt.Sprintf("%s_%04d.png", window, iter))
	if err := img.SavePNG(path); err != nil {
		return err
	}
	s.written++
	return nil
}

// Written returns the number of frames written so far.
func (s *PNGSink) Written() int { return s.written }

// Close implements FrameSink.
func (s *PNGSink) Close() error { return nil }

// Memory keeps the last frame of every window in memory — used by tests
// and by the examples to inspect what would have been displayed.
type Memory struct {
	Frames map[string]*img2d.Image // last frame per window
	Count  int
}

// NewMemory creates an empty in-memory sink.
func NewMemory() *Memory { return &Memory{Frames: make(map[string]*img2d.Image)} }

// Frame implements FrameSink by cloning the image (sinks must not retain
// the original).
func (m *Memory) Frame(window string, _ int, img *img2d.Image) error {
	m.Frames[window] = img.Clone()
	m.Count++
	return nil
}

// Close implements FrameSink.
func (m *Memory) Close() error { return nil }

// Multi fans frames out to several sinks.
type Multi []FrameSink

// Frame implements FrameSink, stopping at the first error.
func (m Multi) Frame(window string, iter int, img *img2d.Image) error {
	for _, s := range m {
		if err := s.Frame(window, iter, img); err != nil {
			return err
		}
	}
	return nil
}

// Close closes all sinks, returning the first error.
func (m Multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
