package ezview

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easypap/internal/img2d"
	"easypap/internal/trace"
)

// syntheticTrace builds a 2-CPU trace: CPU 0 computes the left tiles, CPU 1
// the right tiles, over 2 iterations.
func syntheticTrace() *trace.Trace {
	meta := trace.Meta{Kernel: "mandel", Variant: "omp_tiled", Dim: 64,
		TileW: 16, TileH: 16, Threads: 2, Ranks: 1, Iterations: 2, Schedule: "static"}
	var events []trace.Event
	t := int64(0)
	for iter := int32(1); iter <= 2; iter++ {
		for ty := int32(0); ty < 4; ty++ {
			for tx := int32(0); tx < 4; tx++ {
				cpu := int16(0)
				if tx >= 2 {
					cpu = 1
				}
				events = append(events, trace.Event{
					Iter: iter, CPU: cpu, Kind: trace.KindTile,
					Start: t, End: t + 100,
					X: tx * 16, Y: ty * 16, W: 16, H: 16,
				})
				t += 50 // overlapping spans across CPUs
			}
		}
	}
	return &trace.Trace{Meta: meta, Events: events}
}

func TestRows(t *testing.T) {
	v := New(syntheticTrace())
	rows := v.Rows()
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestTasksAtTime(t *testing.T) {
	v := New(syntheticTrace())
	// At t=75, events started at 0 and 50 are both open (end=100, 150).
	got := v.TasksAtTime(75, 1, 2)
	if len(got) != 2 {
		t.Errorf("TasksAtTime(75) = %d events, want 2", len(got))
	}
	if n := len(v.TasksAtTime(-5, 1, 2)); n != 0 {
		t.Errorf("negative time matched %d events", n)
	}
}

func TestTasksOfCPU(t *testing.T) {
	v := New(syntheticTrace())
	cpu0 := v.TasksOfCPU(0, 1, 2)
	cpu1 := v.TasksOfCPU(1, 1, 2)
	if len(cpu0) != 16 || len(cpu1) != 16 {
		t.Fatalf("per-CPU counts = %d/%d, want 16/16", len(cpu0), len(cpu1))
	}
	for _, e := range cpu0 {
		if e.X >= 32 {
			t.Error("CPU 0 task on the right half")
		}
	}
	// Single-iteration selection.
	if n := len(v.TasksOfCPU(0, 1, 1)); n != 8 {
		t.Errorf("iteration 1 CPU 0 = %d tasks, want 8", n)
	}
}

func TestCoverageMap(t *testing.T) {
	v := New(syntheticTrace())
	thumb := img2d.New(64)
	thumb.Fill(img2d.RGB(100, 100, 100))
	cov, err := v.CoverageMap(thumb, 0, 1, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Left half must be tinted with CPU 0's color, right half only dimmed.
	left := cov.Get(32, 8)
	right := cov.Get(32, 56)
	if left == right {
		t.Error("coverage map does not distinguish covered tiles")
	}
	if _, err := v.CoverageMap(thumb, 0, 1, 2, 0); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestCoverageLocality(t *testing.T) {
	// A CPU covering one corner is more local than one covering scattered
	// tiles.
	meta := trace.Meta{Kernel: "blur", Dim: 64, TileW: 16, TileH: 16, Threads: 1, Ranks: 1}
	local := &trace.Trace{Meta: meta, Events: []trace.Event{
		{Iter: 1, X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 1},
		{Iter: 1, X: 16, Y: 0, W: 16, H: 16, Start: 1, End: 2},
		{Iter: 1, X: 0, Y: 16, W: 16, H: 16, Start: 2, End: 3},
	}}
	scattered := &trace.Trace{Meta: meta, Events: []trace.Event{
		{Iter: 1, X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 1},
		{Iter: 1, X: 48, Y: 48, W: 16, H: 16, Start: 1, End: 2},
		{Iter: 1, X: 48, Y: 0, W: 16, H: 16, Start: 2, End: 3},
		{Iter: 1, X: 0, Y: 48, W: 16, H: 16, Start: 3, End: 4},
	}}
	ll := New(local).CoverageLocality(0, 1, 1)
	ls := New(scattered).CoverageLocality(0, 1, 1)
	if ll >= ls {
		t.Errorf("locality: clustered %v >= scattered %v", ll, ls)
	}
	if New(local).CoverageLocality(5, 1, 1) != 0 {
		t.Error("locality of absent CPU != 0")
	}
}

func TestWavefrontOrderDetectsViolations(t *testing.T) {
	meta := trace.Meta{Kernel: "cc", Dim: 32, TileW: 16, TileH: 16, Threads: 2, Ranks: 1}
	// Correct wave: (0,0) then (16,0) and (0,16) after it ends.
	good := &trace.Trace{Meta: meta, Events: []trace.Event{
		{Iter: 1, Kind: trace.KindTask, X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 10},
		{Iter: 1, Kind: trace.KindTask, X: 16, Y: 0, W: 16, H: 16, Start: 10, End: 20},
		{Iter: 1, Kind: trace.KindTask, X: 0, Y: 16, W: 16, H: 16, Start: 12, End: 22},
		{Iter: 1, Kind: trace.KindTask, X: 16, Y: 16, W: 16, H: 16, Start: 25, End: 30},
	}}
	if n := New(good).WavefrontOrder(1); n != 0 {
		t.Errorf("correct wave reported %d violations", n)
	}
	// Broken wave: (16,0) starts before (0,0) ends.
	bad := &trace.Trace{Meta: meta, Events: []trace.Event{
		{Iter: 1, Kind: trace.KindTask, X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 10},
		{Iter: 1, Kind: trace.KindTask, X: 16, Y: 0, W: 16, H: 16, Start: 5, End: 15},
	}}
	if n := New(bad).WavefrontOrder(1); n == 0 {
		t.Error("broken wave reported no violations")
	}
	// Non-task events are ignored.
	tiles := &trace.Trace{Meta: meta, Events: []trace.Event{
		{Iter: 1, Kind: trace.KindTile, X: 0, Y: 0, W: 16, H: 16, Start: 0, End: 10},
		{Iter: 1, Kind: trace.KindTile, X: 16, Y: 0, W: 16, H: 16, Start: 5, End: 15},
	}}
	if n := New(tiles).WavefrontOrder(1); n != 0 {
		t.Errorf("tile events counted as wave violations: %d", n)
	}
}

func TestGanttSVGStructure(t *testing.T) {
	v := New(syntheticTrace())
	svg := v.GanttSVG(GanttOptions{})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "CPU 0") || !strings.Contains(svg, "CPU 1") {
		t.Error("missing CPU lanes")
	}
	if got := strings.Count(svg, "<rect"); got < 32 {
		t.Errorf("only %d rects for 32 events", got)
	}
	if !strings.Contains(svg, "<title>") {
		t.Error("missing duration tooltips")
	}
	if !strings.Contains(svg, "mandel/omp_tiled") {
		t.Error("missing caption")
	}
}

func TestGanttSVGIterationRange(t *testing.T) {
	v := New(syntheticTrace())
	all := v.GanttSVG(GanttOptions{})
	one := v.GanttSVG(GanttOptions{IterLo: 1, IterHi: 1})
	if strings.Count(one, "<title>") >= strings.Count(all, "<title>") {
		t.Error("iteration range did not restrict the chart")
	}
}

func TestSaveGanttSVG(t *testing.T) {
	v := New(syntheticTrace())
	path := filepath.Join(t.TempDir(), "charts", "g.svg")
	if err := v.SaveGanttSVG(path, GanttOptions{Caption: "test <&>"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "test &lt;&amp;&gt;") {
		t.Error("caption not escaped")
	}
}

func TestGanttReport(t *testing.T) {
	v := New(syntheticTrace())
	rep := v.GanttReport(1, 2)
	if !strings.Contains(rep, "CPU   0") || !strings.Contains(rep, "16 tasks") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestCompareReport(t *testing.T) {
	slow := syntheticTrace()
	fast := syntheticTrace()
	for i := range fast.Events {
		fast.Events[i].Start /= 3
		fast.Events[i].End /= 3
	}
	fast.Meta.Variant = "omp_tiled_opt"
	rep, err := CompareReport(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "speedup A->B") {
		t.Errorf("report: %s", rep)
	}
	if _, err := CompareReport(slow, &trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestGanttSVGEmptyTrace(t *testing.T) {
	v := New(&trace.Trace{Meta: trace.Meta{Kernel: "x", Threads: 1}})
	svg := v.GanttSVG(GanttOptions{})
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("empty trace did not render")
	}
}
