package ezview

// Service-span Gantt rendering: the cluster-tier sibling of GanttSVG.
// Where the kernel Gantt lays out tile tasks per CPU, this lays out one
// distributed job's service spans per node — one horizontal lane per
// cluster node, one bar per stage (admit, queue, compute, proxy, ...),
// and a vertical hop edge wherever a span names a Peer, so a proxied
// submission or a replica fetch reads as an arrow from the caller's
// lane to the callee's.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"easypap/internal/trace"
)

// stageColors maps service stages to bar fills. Stages are open-ended
// (the cluster layer adds its own); unknown stages fall back to grey.
var stageColors = map[string]string{
	"admit":         "#7aa2f7",
	"queue":         "#e0af68",
	"lease":         "#bb9af7",
	"compute":       "#9ece6a",
	"cache_mem":     "#2ac3de",
	"cache_disk":    "#0db9d7",
	"replica_fetch": "#ff9e64",
	"spill":         "#73daca",
	"proxy":         "#f7768e",
	"replicate":     "#c0caf5",
	"gossip":        "#565f89",
}

func stageColor(stage string) string {
	if c, ok := stageColors[stage]; ok {
		return c
	}
	return "#787c99"
}

// ServiceGanttSVG renders a distributed trace's flat span set as an SVG
// document: nodes as rows (first-appearance order), spans as bars, hop
// edges where a span names a peer node. Spans with errors get a red
// outline. The caption defaults to "trace <id>".
func ServiceGanttSVG(spans []trace.Span, opt GanttOptions) string {
	if opt.Width <= 0 {
		opt.Width = 1200
	}
	if opt.LaneH <= 0 {
		opt.LaneH = 28
	}

	// Node rows in first-appearance order — the entry node leads because
	// its admit span is the earliest.
	sorted := append([]trace.Span(nil), spans...)
	trace.SortSpans(sorted)
	rowOf := make(map[string]int)
	var nodes []string
	for _, s := range sorted {
		if _, ok := rowOf[s.Node]; !ok {
			rowOf[s.Node] = len(nodes)
			nodes = append(nodes, s.Node)
		}
	}
	height := (len(nodes)+1)*opt.LaneH + 40

	var t0, t1 int64
	for i, s := range sorted {
		if i == 0 || s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	const labelW = 120
	xOf := func(t int64) float64 {
		return labelW + float64(t-t0)/float64(t1-t0)*float64(opt.Width-labelW-20)
	}
	laneY := func(row int) int { return 30 + row*opt.LaneH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		opt.Width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#16161c"/>`+"\n")
	caption := opt.Caption
	if caption == "" && len(sorted) > 0 {
		caption = "trace " + sorted[0].TraceID
	}
	fmt.Fprintf(&b, `<text x="10" y="20" fill="#ddd" font-size="14">%s</text>`+"\n", xmlEscape(caption))

	// Node labels and lane separators.
	for i, node := range nodes {
		y := laneY(i)
		fmt.Fprintf(&b, `<text x="8" y="%d" fill="#aaa" font-size="12">%s</text>`+"\n",
			y+opt.LaneH*2/3, xmlEscape(node))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#2a2a33"/>`+"\n",
			labelW, y, opt.Width-20, y)
	}

	// Span bars with tooltips; errored spans get a red outline.
	for _, s := range sorted {
		row := rowOf[s.Node]
		x := xOf(s.Start)
		wpx := xOf(s.End) - x
		if wpx < 0.5 {
			wpx = 0.5
		}
		y := laneY(row) + 2
		stroke := ""
		if s.Err != "" {
			stroke = ` stroke="#f7768e" stroke-width="1.5"`
		}
		tip := fmt.Sprintf("%s: %v", s.Stage, s.Duration().Round(time.Microsecond))
		if s.Peer != "" {
			tip += " → " + s.Peer
		}
		if s.Err != "" {
			tip += " [" + s.Err + "]"
		}
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"%s><title>%s</title></rect>`+"\n",
			x, y, wpx, opt.LaneH-4, stageColor(s.Stage), stroke, xmlEscape(tip))
	}

	// Hop edges: a span naming a peer that owns a lane draws a dashed
	// vertical connector from the span's start to the peer's lane — the
	// visual of "this stage crossed the wire to that node".
	for _, s := range sorted {
		if s.Peer == "" {
			continue
		}
		peerRow, ok := rowOf[s.Peer]
		if !ok || s.Peer == s.Node {
			continue
		}
		x := xOf(s.Start)
		y1 := laneY(rowOf[s.Node]) + opt.LaneH/2
		y2 := laneY(peerRow) + opt.LaneH/2
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#7dcfff" stroke-dasharray="3 3"><title>%s: %s → %s</title></line>`+"\n",
			x, y1, x, y2, xmlEscape(s.Stage), xmlEscape(s.Node), xmlEscape(s.Peer))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SaveServiceGanttSVG writes the service-span chart to path, creating
// parent directories.
func SaveServiceGanttSVG(path string, spans []trace.Span, opt GanttOptions) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("ezview: %w", err)
	}
	return os.WriteFile(path, []byte(ServiceGanttSVG(spans, opt)), 0o644)
}
