// Package ezview is the post-mortem trace explorer (the paper's EASYVIEW,
// §II-D): it loads traces recorded with --trace and provides the analyses
// the interactive tool exposes — per-CPU Gantt charts over a selectable
// iteration range, the vertical-mouse query (which tasks intersect a time
// coordinate, and which tiles they cover), the horizontal-mouse "coverage
// map" of one CPU (§III-B), duration statistics, and side-by-side
// comparison of two traces (Fig. 10).
//
// Being headless, the interactive views become queries and rendered
// artifacts: Gantt charts are emitted as SVG, coverage maps as tile
// highlight overlays on image thumbnails.
package ezview

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"easypap/internal/img2d"
	"easypap/internal/trace"
)

// View wraps a trace with the query API of the explorer.
type View struct {
	Trace *trace.Trace
}

// New creates a view over a trace.
func New(t *trace.Trace) *View { return &View{Trace: t} }

// GlobalCPU identifies a Gantt row: the flattened (rank, cpu) pair.
func (v *View) GlobalCPU(rank, cpu int) int { return rank*v.Trace.Meta.Threads + cpu }

// Rows returns the sorted list of global CPU ids present in the trace —
// the Gantt chart's vertical axis.
func (v *View) Rows() []int {
	per := v.Trace.PerCPU()
	rows := make([]int, 0, len(per))
	for cpu := range per {
		rows = append(rows, cpu)
	}
	sort.Ints(rows)
	return rows
}

// TasksAtTime returns the events whose span contains the absolute trace
// time t (ns), over the given iteration range — the vertical mouse mode:
// "tasks intersecting the mouse x-axis have their corresponding tile
// highlighted over the image thumbnail".
func (v *View) TasksAtTime(t int64, iterLo, iterHi int) []trace.Event {
	var out []trace.Event
	for _, e := range v.Trace.ForIterRange(iterLo, iterHi) {
		if e.Start <= t && t < e.End {
			out = append(out, e)
		}
	}
	return out
}

// TasksOfCPU returns all events of one global CPU in the iteration range —
// the horizontal mouse mode used to display a CPU's coverage map.
func (v *View) TasksOfCPU(globalCPU, iterLo, iterHi int) []trace.Event {
	var out []trace.Event
	for _, e := range v.Trace.ForIterRange(iterLo, iterHi) {
		if v.GlobalCPU(int(e.Rank), int(e.CPU)) == globalCPU {
			out = append(out, e)
		}
	}
	return out
}

// CoverageMap renders the "coverage map" of one CPU (paper §III-B): the
// image thumbnail with the tiles computed by that CPU over the iteration
// range highlighted. thumb is scaled to size; highlighted tiles are tinted
// with the CPU's color.
func (v *View) CoverageMap(thumb *img2d.Image, globalCPU, iterLo, iterHi, size int) (*img2d.Image, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ezview: invalid size %d", size)
	}
	base, err := thumb.Thumbnail(min(size, thumb.Dim()))
	if err != nil {
		return nil, err
	}
	out := img2d.New(base.Dim())
	out.CopyFrom(base)
	// Dim the un-covered background so highlights pop.
	for i, p := range out.Pixels() {
		out.Pixels()[i] = img2d.Scale(p, img2d.Black, 0.55)
	}
	dim := v.Trace.Meta.Dim
	if dim <= 0 {
		return nil, fmt.Errorf("ezview: trace has no image dimension")
	}
	color := img2d.CPUColor(globalCPU)
	for _, e := range v.TasksOfCPU(globalCPU, iterLo, iterHi) {
		x0 := int(e.X) * out.Dim() / dim
		y0 := int(e.Y) * out.Dim() / dim
		x1 := (int(e.X) + int(e.W)) * out.Dim() / dim
		y1 := (int(e.Y) + int(e.H)) * out.Dim() / dim
		for y := y0; y < max(y1, y0+1); y++ {
			for x := x0; x < max(x1, x0+1); x++ {
				if y >= 0 && y < out.Dim() && x >= 0 && x < out.Dim() {
					out.Set(y, x, img2d.Scale(out.Get(y, x), color, 0.65))
				}
			}
		}
	}
	return out, nil
}

// CoverageLocality measures how clustered a CPU's tiles are over an
// iteration range: the mean Manhattan distance (in tiles) from each tile
// to the centroid, normalized by the grid diagonal. Lower is more local —
// the property the paper attributes to nonmonotonic:dynamic in §III-B.
func (v *View) CoverageLocality(globalCPU, iterLo, iterHi int) float64 {
	events := v.TasksOfCPU(globalCPU, iterLo, iterHi)
	if len(events) == 0 {
		return 0
	}
	meta := v.Trace.Meta
	tw, th := max(meta.TileW, 1), max(meta.TileH, 1)
	var cx, cy float64
	for _, e := range events {
		cx += float64(int(e.X) / tw)
		cy += float64(int(e.Y) / th)
	}
	cx /= float64(len(events))
	cy /= float64(len(events))
	var dist float64
	for _, e := range events {
		dx := float64(int(e.X)/tw) - cx
		dy := float64(int(e.Y)/th) - cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		dist += dx + dy
	}
	dist /= float64(len(events))
	diag := float64(meta.Dim/tw + meta.Dim/th)
	if diag == 0 {
		return 0
	}
	return dist / diag
}

// WavefrontOrder verifies the Fig. 12 property on a trace of dependent
// tasks. In the cc kernel each tile executes two tasks per iteration: the
// bottom-right propagation first, then the up-left one. The first task
// event recorded on each tile is therefore the down-right task, and it must
// start only after the first (down-right) tasks of the left and upper
// neighbour tiles ended. WavefrontOrder returns the number of violations
// (0 for a correctly enforced wave).
func (v *View) WavefrontOrder(iter int) int {
	events := v.Trace.ForIter(iter)
	type key struct{ x, y int32 }
	first := make(map[key]trace.Event)
	for _, e := range events {
		if e.Kind != trace.KindTask {
			continue
		}
		k := key{e.X, e.Y}
		if prev, ok := first[k]; !ok || e.Start < prev.Start {
			first[k] = e
		}
	}
	violations := 0
	for k, e := range first {
		if left, ok := first[key{k.x - e.W, k.y}]; ok && e.Start < left.End {
			violations++
		}
		if up, ok := first[key{k.x, k.y - e.H}]; ok && e.Start < up.End {
			violations++
		}
	}
	return violations
}

// MaxConcurrency returns the maximum number of simultaneously running
// events over the iteration range — the quantity that distinguishes a
// correct dependency wave (overlapping anti-diagonal tasks) from the
// over-constrained, fully serialized schedule of §III-C.
func (v *View) MaxConcurrency(iterLo, iterHi int) int {
	events := v.Trace.ForIterRange(iterLo, iterHi)
	type edge struct {
		t     int64
		delta int
	}
	edges := make([]edge, 0, 2*len(events))
	for _, e := range events {
		edges = append(edges, edge{e.Start, 1}, edge{e.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // process ends before starts
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// GanttReport prints a textual Gantt summary: per CPU, the number of
// tasks, busy time and span — the terminal fallback for the interactive
// chart.
func (v *View) GanttReport(iterLo, iterHi int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s dim=%d threads=%d ranks=%d iterations %d..%d\n",
		v.Trace.Meta.Kernel, v.Trace.Meta.Variant, v.Trace.Meta.Dim,
		v.Trace.Meta.Threads, v.Trace.Meta.Ranks, iterLo, iterHi)
	for _, cpu := range v.Rows() {
		events := v.TasksOfCPU(cpu, iterLo, iterHi)
		var busy time.Duration
		for _, e := range events {
			busy += e.Duration()
		}
		fmt.Fprintf(&b, "  CPU %3d: %4d tasks, busy %v\n", cpu, len(events), busy.Round(time.Microsecond))
	}
	stats := trace.Durations(v.Trace.ForIterRange(iterLo, iterHi))
	fmt.Fprintf(&b, "  tasks: %s\n", stats)
	if ws := trace.Work(v.Trace.ForIterRange(iterLo, iterHi)); ws.Count > 0 {
		// Per-task performance counters (the PAPI-analog of the paper's
		// future work): totals, rate and work/duration correlation.
		fmt.Fprintf(&b, "  counters: %s\n", ws)
	}
	return b.String()
}
