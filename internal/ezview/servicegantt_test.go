package ezview

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easypap/internal/trace"
)

func serviceSpans() []trace.Span {
	return []trace.Span{
		{TraceID: "t1", Node: "n-entry", Stage: "admit", Start: 0, End: 100_000},
		{TraceID: "t1", Node: "n-entry", Stage: "proxy", Peer: "n-owner", Start: 10_000, End: 90_000},
		{TraceID: "t1", Node: "n-owner", Stage: "admit", Start: 20_000, End: 80_000},
		{TraceID: "t1", Node: "n-owner", Stage: "queue", Start: 25_000, End: 40_000},
		{TraceID: "t1", Node: "n-owner", Stage: "compute", Start: 40_000, End: 78_000, Err: "boom <&>"},
	}
}

func TestServiceGanttSVG(t *testing.T) {
	svg := ServiceGanttSVG(serviceSpans(), GanttOptions{Width: 800})

	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not an SVG document:\n%.200s", svg)
	}
	// One lane label per node, entry first (earliest span).
	if !strings.Contains(svg, ">n-entry</text>") || !strings.Contains(svg, ">n-owner</text>") {
		t.Errorf("missing node lane labels")
	}
	if strings.Index(svg, ">n-entry</text>") > strings.Index(svg, ">n-owner</text>") {
		t.Errorf("entry node is not the first lane")
	}
	// One bar per span (5 rects + background).
	if got := strings.Count(svg, "<rect "); got != len(serviceSpans())+1 {
		t.Errorf("rect count = %d, want %d spans + background", got, len(serviceSpans()))
	}
	// The hop edge: proxy names a peer with its own lane.
	if !strings.Contains(svg, "proxy: n-entry → n-owner") {
		t.Errorf("missing hop edge tooltip")
	}
	// Error outline and escaped tooltip.
	if !strings.Contains(svg, `stroke="#f7768e"`) {
		t.Errorf("errored span has no red outline")
	}
	if strings.Contains(svg, "boom <&>") || !strings.Contains(svg, "boom &lt;&amp;&gt;") {
		t.Errorf("tooltip not XML-escaped")
	}
	// Default caption names the trace.
	if !strings.Contains(svg, "trace t1") {
		t.Errorf("default caption missing trace id")
	}
}

func TestSaveServiceGanttSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svg", "service.svg")
	if err := SaveServiceGanttSVG(path, serviceSpans(), GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "</svg>") {
		t.Fatalf("saved file is not an SVG")
	}
}

func TestServiceGanttEmpty(t *testing.T) {
	svg := ServiceGanttSVG(nil, GanttOptions{Caption: "empty"})
	if !strings.Contains(svg, "empty") || !strings.Contains(svg, "</svg>") {
		t.Fatalf("empty span set must still render a document:\n%s", svg)
	}
}
