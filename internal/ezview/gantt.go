package ezview

// SVG Gantt chart rendering: the left panel of the EASYVIEW window
// (Fig. 7). One horizontal lane per CPU, one rectangle per task colored by
// CPU (consistent with the monitoring windows), with hover tooltips
// carrying the task duration — the pop-up bubble of the interactive tool
// becomes an SVG <title> element.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"easypap/internal/img2d"
	"easypap/internal/trace"
)

// GanttOptions parameterizes rendering.
type GanttOptions struct {
	Width   int // SVG width in px (default 1200)
	LaneH   int // lane height in px (default 28)
	IterLo  int // first iteration (default 1)
	IterHi  int // last iteration (default: all)
	Caption string
}

// GanttSVG renders the trace's events as an SVG document.
func (v *View) GanttSVG(opt GanttOptions) string {
	if opt.Width <= 0 {
		opt.Width = 1200
	}
	if opt.LaneH <= 0 {
		opt.LaneH = 28
	}
	if opt.IterLo <= 0 {
		opt.IterLo = 1
	}
	if opt.IterHi <= 0 {
		opt.IterHi = max(v.Trace.Iterations(), 1)
	}
	events := v.Trace.ForIterRange(opt.IterLo, opt.IterHi)
	rows := v.Rows()
	height := (len(rows)+1)*opt.LaneH + 40

	// Time extent of the selection.
	var t0, t1 int64
	for i, e := range events {
		if i == 0 || e.Start < t0 {
			t0 = e.Start
		}
		if e.End > t1 {
			t1 = e.End
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	xOf := func(t int64) float64 {
		return 80 + float64(t-t0)/float64(t1-t0)*float64(opt.Width-100)
	}
	rowIndex := make(map[int]int, len(rows))
	for i, cpu := range rows {
		rowIndex[cpu] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		opt.Width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#16161c"/>`+"\n")
	caption := opt.Caption
	if caption == "" {
		caption = fmt.Sprintf("%s/%s dim=%d iterations %d..%d",
			v.Trace.Meta.Kernel, v.Trace.Meta.Variant, v.Trace.Meta.Dim, opt.IterLo, opt.IterHi)
	}
	fmt.Fprintf(&b, `<text x="10" y="20" fill="#ddd" font-size="14">%s</text>`+"\n", xmlEscape(caption))

	// Lane labels and separators.
	for i, cpu := range rows {
		y := 30 + i*opt.LaneH
		fmt.Fprintf(&b, `<text x="8" y="%d" fill="#aaa" font-size="12">CPU %d</text>`+"\n",
			y+opt.LaneH*2/3, cpu)
		fmt.Fprintf(&b, `<line x1="80" y1="%d" x2="%d" y2="%d" stroke="#2a2a33"/>`+"\n",
			y, opt.Width-20, y)
	}

	// Task rectangles with duration tooltips.
	for _, e := range events {
		row, ok := rowIndex[v.GlobalCPU(int(e.Rank), int(e.CPU))]
		if !ok {
			continue
		}
		x := xOf(e.Start)
		wpx := xOf(e.End) - x
		if wpx < 0.5 {
			wpx = 0.5
		}
		y := 30 + row*opt.LaneH + 2
		color := img2d.CPUColor(v.GlobalCPU(int(e.Rank), int(e.CPU)))
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#%06x"><title>%s tile(%d,%d %dx%d) iter %d: %v</title></rect>`+"\n",
			x, y, wpx, opt.LaneH-4, color>>8,
			e.Kind, e.X, e.Y, e.W, e.H, e.Iter, e.Duration().Round(time.Microsecond))
	}

	// Iteration boundaries as vertical dashed lines.
	for iter := opt.IterLo; iter <= opt.IterHi; iter++ {
		s, _ := v.Trace.IterSpan(iter)
		if s == 0 && iter > 1 {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="28" x2="%.1f" y2="%d" stroke="#555" stroke-dasharray="4 3"/>`+"\n",
			xOf(s), xOf(s), height-10)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SaveGanttSVG writes the chart to path, creating parent directories.
func (v *View) SaveGanttSVG(path string, opt GanttOptions) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("ezview: %w", err)
	}
	return os.WriteFile(path, []byte(v.GanttSVG(opt)), 0o644)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// CompareReport renders the Fig. 10 workflow: two traces of the same
// kernel side by side, with the whole-run speedup and the per-task
// distribution shift ("many tasks are approximately 10 times faster").
func CompareReport(a, b *trace.Trace) (string, error) {
	res, err := trace.Compare(a, b)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(res.String())
	sb.WriteString("\n")
	// Highlight the fast/slow task populations (inner vs border tiles in
	// the blur study): report the ratio between A's median and B's p10-ish
	// fastest quartile to expose the bimodal shift.
	fast := fastestQuartileMedian(b.Events)
	if fast > 0 {
		ratio := float64(trace.Durations(a.Events).Median) / float64(fast)
		fmt.Fprintf(&sb, "fastest-quartile ratio (A median / B fast tasks): %.1fx\n", ratio)
	}
	return sb.String(), nil
}

// fastestQuartileMedian returns the median duration of the fastest quarter
// of events.
func fastestQuartileMedian(events []trace.Event) time.Duration {
	if len(events) < 4 {
		return 0
	}
	ds := make([]time.Duration, len(events))
	for i, e := range events {
		ds[i] = e.Duration()
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	quart := ds[:len(ds)/4]
	return quart[len(quart)/2]
}
