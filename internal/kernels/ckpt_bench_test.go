package kernels

// Checkpointing economics: what does snapshotting cost while a run is
// in flight, and what does resuming buy compared to recomputing the
// shared prefix? Recorded in BENCH_ckpt.json. life is the subject: a
// stateful kernel whose codec serializes both board generations, so
// the snapshot is the full restartable state, not a derived image.

import (
	"context"
	"testing"

	"easypap/internal/core"
)

func benchCfg(iters int) core.Config {
	return core.Config{
		Kernel: "life", Variant: "seq", Dim: 256, TileW: 8, TileH: 8,
		Iterations: iters, Threads: 1, Seed: 7, NoDisplay: true,
	}
}

func mustRun(b *testing.B, cfg core.Config, opts core.RunOptions) *core.RunOutput {
	b.Helper()
	out, err := core.RunWith(context.Background(), cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkCkptBaseline100 is the comparator for the snapshot-overhead
// pair: 100 iterations, no checkpointing.
func BenchmarkCkptBaseline100(b *testing.B) {
	cfg := benchCfg(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, cfg, core.RunOptions{})
	}
}

// BenchmarkCkptSnapshotEvery10 pays 10 state serializations across the
// same 100 iterations — the in-run cost of -snapshot-every 10 minus
// the (write-behind, off this path) disk write.
func BenchmarkCkptSnapshotEvery10(b *testing.B) {
	cfg := benchCfg(100)
	var bytesOut int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, cfg, core.RunOptions{
			SnapshotEvery: 10,
			OnSnapshot:    func(_ int, state []byte) { bytesOut += int64(len(state)) },
		})
	}
	b.ReportMetric(float64(bytesOut)/float64(b.N), "snapbytes/op")
}

// BenchmarkCkptColdFull1000 recomputes the whole 1000-iteration run —
// what every deepening step of a sweep costs without checkpointing.
func BenchmarkCkptColdFull1000(b *testing.B) {
	cfg := benchCfg(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, cfg, core.RunOptions{})
	}
}

// BenchmarkCkptResumeTail100 answers the same 1000-iteration request
// from a depth-900 snapshot: restore state, compute the 100-iteration
// suffix. The spread to BenchmarkCkptColdFull1000 is what the deepest
// prefix is worth.
func BenchmarkCkptResumeTail100(b *testing.B) {
	cfg := benchCfg(1000)
	var state []byte
	mustRun(b, cfg, core.RunOptions{
		SnapshotEvery: 900,
		OnSnapshot: func(iter int, s []byte) {
			if iter == 900 {
				state = append([]byte(nil), s...)
			}
		},
	})
	if state == nil {
		b.Fatal("no snapshot at iteration 900")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := mustRun(b, cfg, core.RunOptions{
			Resume: &core.ResumeState{Iter: 900, State: state},
		})
		if out.Result.ResumedFrom != 900 {
			b.Fatalf("resume did not take: %+v", out.Result)
		}
	}
}
