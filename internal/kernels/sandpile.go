package kernels

// The Abelian sandpile (EASYPAP's "sable" kernel, listed in §II-A): every
// cell holds a number of sand grains; cells with 4 or more grains topple,
// sending one grain to each 4-neighbour. The synchronous formulation
// (next = cur%4 + incoming spills) is deterministic and
// order-independent, so all variants produce identical boards.

import (
	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/tilegrid"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "sandpile",
		Description: "synchronous Abelian sandpile",
		Init:        sandInit,
		Refresh:     sandRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       sandSeq,
			"omp_tiled": sandOmpTiled,
			"lazy_omp":  sandLazyOmp,
		},
		DefaultVariant: "seq",
	})
}

// sandState is the kernel-private grain grid (uint32 per cell; counts can
// exceed 255 transiently with large initial piles) plus the shared
// tile-activity frontier for the lazy variant and convergence tracking.
type sandState struct {
	dim       int
	cur, next []uint32
	tileW     int
	tileH     int
	fr        *tilegrid.Frontier
}

func sandInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &sandState{dim: dim, cur: make([]uint32, dim*dim), next: make([]uint32, dim*dim),
		tileW: ctx.Cfg.TileW, tileH: ctx.Cfg.TileH, fr: tilegrid.New(ctx.Grid)}
	st.fr.Advance() // first iteration computes every tile
	// EASYPAP's classic setup: every interior cell starts with 5 grains
	// (unstable), the one-cell border stays empty and absorbs grains.
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			st.cur[y*dim+x] = 5
		}
	}
	ctx.SetPriv(st)
	sandRefresh(ctx)
	return nil
}

func sandStateOf(ctx *core.Ctx) *sandState { return ctx.Priv().(*sandState) }

// sandRefresh maps grain counts to colors (0..3 grains: dark ramp; 4+:
// bright red — still unstable).
func sandRefresh(ctx *core.Ctx) {
	st := sandStateOf(ctx)
	im := ctx.Cur()
	palette := [4]img2d.Pixel{
		img2d.Black,
		img2d.RGB(60, 60, 160),
		img2d.RGB(80, 160, 220),
		img2d.RGB(240, 240, 170),
	}
	for y := 0; y < st.dim; y++ {
		row := im.Row(y)
		for x := 0; x < st.dim; x++ {
			g := st.cur[y*st.dim+x]
			if g < 4 {
				row[x] = palette[g]
			} else {
				row[x] = img2d.Red
			}
		}
	}
}

// sandStepTile computes the synchronous topple step for a tile, returning
// whether any cell in the tile is still unstable or changed. Border cells
// (the absorbing rim) always stay zero.
func (s *sandState) sandStepTile(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			idx := yy*s.dim + xx
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				s.next[idx] = 0
				continue
			}
			v := s.cur[idx] % 4
			v += s.cur[idx-1]/4 + s.cur[idx+1]/4 + s.cur[idx-s.dim]/4 + s.cur[idx+s.dim]/4
			s.next[idx] = v
			if v != s.cur[idx] || v >= 4 {
				active = true
			}
		}
	}
	return active
}

func sandSeq(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		active := st.sandStepTile(0, 0, st.dim, st.dim)
		st.cur, st.next = st.next, st.cur
		return active
	})
}

func sandOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.sandStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		// Frontier used for convergence only (and without the []bool the
		// old implementation allocated per iteration).
		return st.fr.Advance() > 0
	})
}

// sandLazyOmp dispatches only the active tiles: a tile re-enters the
// frontier when it (or an 8-neighbour) changed or still holds an unstable
// cell — the exact continuation criterion of the eager variants, so
// iteration counts and final boards match them byte for byte. Skipped
// tiles need no copy: see the tilegrid no-copy invariant (a skipped tile
// was computed-and-steady, so both grain buffers already agree on it).
func sandLazyOmp(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.sandStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		return st.fr.Advance() > 0
	})
}

// SandGrainsSnapshot exposes a copy of the grain grid for tests.
func SandGrainsSnapshot(ctx *core.Ctx) []uint32 {
	st := sandStateOf(ctx)
	out := make([]uint32, len(st.cur))
	copy(out, st.cur)
	return out
}
