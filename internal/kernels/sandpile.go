package kernels

// The Abelian sandpile (EASYPAP's "sable" kernel, listed in §II-A): every
// cell holds a number of sand grains; cells with 4 or more grains topple,
// sending one grain to each 4-neighbour. The synchronous formulation
// (next = cur%4 + incoming spills) is deterministic and
// order-independent, so all variants produce identical boards.

import (
	"easypap/internal/core"
	"easypap/internal/img2d"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "sandpile",
		Description: "synchronous Abelian sandpile",
		Init:        sandInit,
		Refresh:     sandRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       sandSeq,
			"omp_tiled": sandOmpTiled,
		},
		DefaultVariant: "seq",
	})
}

// sandState is the kernel-private grain grid (uint32 per cell; counts can
// exceed 255 transiently with large initial piles).
type sandState struct {
	dim       int
	cur, next []uint32
}

func sandInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &sandState{dim: dim, cur: make([]uint32, dim*dim), next: make([]uint32, dim*dim)}
	// EASYPAP's classic setup: every interior cell starts with 5 grains
	// (unstable), the one-cell border stays empty and absorbs grains.
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			st.cur[y*dim+x] = 5
		}
	}
	ctx.SetPriv(st)
	sandRefresh(ctx)
	return nil
}

func sandStateOf(ctx *core.Ctx) *sandState { return ctx.Priv().(*sandState) }

// sandRefresh maps grain counts to colors (0..3 grains: dark ramp; 4+:
// bright red — still unstable).
func sandRefresh(ctx *core.Ctx) {
	st := sandStateOf(ctx)
	im := ctx.Cur()
	palette := [4]img2d.Pixel{
		img2d.Black,
		img2d.RGB(60, 60, 160),
		img2d.RGB(80, 160, 220),
		img2d.RGB(240, 240, 170),
	}
	for y := 0; y < st.dim; y++ {
		row := im.Row(y)
		for x := 0; x < st.dim; x++ {
			g := st.cur[y*st.dim+x]
			if g < 4 {
				row[x] = palette[g]
			} else {
				row[x] = img2d.Red
			}
		}
	}
}

// sandStepTile computes the synchronous topple step for a tile, returning
// whether any cell in the tile is still unstable or changed. Border cells
// (the absorbing rim) always stay zero.
func (s *sandState) sandStepTile(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			idx := yy*s.dim + xx
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				s.next[idx] = 0
				continue
			}
			v := s.cur[idx] % 4
			v += s.cur[idx-1]/4 + s.cur[idx+1]/4 + s.cur[idx-s.dim]/4 + s.cur[idx+s.dim]/4
			s.next[idx] = v
			if v != s.cur[idx] || v >= 4 {
				active = true
			}
		}
	}
	return active
}

func sandSeq(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		active := st.sandStepTile(0, 0, st.dim, st.dim)
		st.cur, st.next = st.next, st.cur
		return active
	})
}

func sandOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		activeTiles := make([]bool, ctx.Grid.Tiles())
		ctx.Pool.ParallelFor(ctx.Grid.Tiles(), ctx.Cfg.Schedule, func(tile, worker int) {
			x, y, w, h := ctx.Grid.Coords(tile)
			ctx.StartTile(worker)
			activeTiles[tile] = st.sandStepTile(x, y, w, h)
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		for _, a := range activeTiles {
			if a {
				return true
			}
		}
		return false
	})
}

// SandGrainsSnapshot exposes a copy of the grain grid for tests.
func SandGrainsSnapshot(ctx *core.Ctx) []uint32 {
	st := sandStateOf(ctx)
	out := make([]uint32, len(st.cur))
	copy(out, st.cur)
	return out
}
